//! # clustered-vliw
//!
//! Facade crate for the reproduction of Lapinskii, Jacome and de Veciana,
//! *"High-Quality Operation Binding for Clustered VLIW Datapaths"*
//! (DAC 2001). It re-exports the workspace crates under stable module
//! names so examples and downstream users need a single dependency:
//!
//! * [`dfg`] — dataflow-graph substrate and ASAP/ALAP analysis;
//! * [`datapath`] — clustered machine model and the paper's `[i,j|…]`
//!   configuration notation;
//! * [`sched`] — bound-DFG construction and the resource-constrained list
//!   scheduler;
//! * [`binding`] — the paper's contribution: B-INIT, B-ITER and the driver;
//! * [`pcc`] — the Partial Component Clustering baseline (Desoli,
//!   HPL-98-13) reconstructed for comparison;
//! * [`kernels`] — the benchmark DFGs of the paper's evaluation
//!   (EWF, ARF, FFT, DCT-DIF, DCT-LEE, DCT-DIT, DCT-DIT-2);
//! * [`sim`] — a cycle-accurate datapath simulator used as an independent
//!   oracle for schedule validity;
//! * [`baselines`] — further binding baselines from the paper's related
//!   work: unified assign-and-schedule (Özer et al.) and simulated
//!   annealing (Leupers);
//! * [`modulo`] — software pipelining: MII bounds, modulo scheduling and
//!   an II-driven binding driver (the paper's §4 context);
//! * [`explore`] — design-space exploration under an area budget (the
//!   paper's stated ongoing work).
//!
//! # Quickstart
//!
//! Bind the elliptic-wave-filter kernel onto a two-cluster machine and
//! schedule it:
//!
//! ```
//! use clustered_vliw::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let dfg = clustered_vliw::kernels::ewf();
//! let machine = Machine::parse("[1,1|1,1]")?;
//! let result = Binder::new(&machine).bind(&dfg);
//! println!(
//!     "latency {} with {} transfers",
//!     result.schedule.latency(),
//!     result.moves()
//! );
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub use vliw_baselines as baselines;
pub use vliw_binding as binding;
pub use vliw_datapath as datapath;
pub use vliw_dfg as dfg;
pub use vliw_explore as explore;
pub use vliw_kernels as kernels;
pub use vliw_modulo as modulo;
pub use vliw_pcc as pcc;
pub use vliw_sched as sched;
pub use vliw_sim as sim;

/// Convenience prelude importing the types most programs need.
pub mod prelude {
    pub use vliw_binding::{Binder, BinderConfig, BindingResult};
    pub use vliw_datapath::{ClusterId, Machine, MachineBuilder};
    pub use vliw_dfg::{Dfg, DfgBuilder, DfgStats, OpId, OpType, Timing};
    pub use vliw_pcc::Pcc;
    pub use vliw_sched::{Binding, BoundDfg, ListScheduler, Schedule};
    pub use vliw_sim::Simulator;
}
