//! Offline stand-in for `proptest`.
//!
//! crates.io is unreachable in this build environment, so the workspace
//! vendors the proptest API subset its property tests use: the
//! [`proptest!`] macro, [`Strategy`] with `prop_map`/`prop_flat_map`,
//! integer-range strategies, tuple strategies, [`collection::vec`],
//! [`sample::select`], [`any`], [`Just`], [`ProptestConfig`] and the
//! `prop_assert*` macros.
//!
//! Differences from upstream: generation is deterministic (the RNG is
//! seeded from the test name, so failures reproduce exactly), there is
//! **no shrinking** — a failing case reports the assertion panic for
//! the raw generated input — and `prop_assert!`/`prop_assert_eq!`
//! panic immediately instead of returning `TestCaseError`.

// Vendored stand-in crate: keep the subset simple, not lint-perfect.
#![allow(clippy::all)]

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Number of cases per property and RNG seeding policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Cases generated per property (upstream default is 256; the
    /// stand-in defaults lower because the binder-heavy properties in
    /// this repo are expensive).
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic SplitMix64 generator driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded from an arbitrary label (the `proptest!`
    /// expansion passes the property's name, so every property gets a
    /// distinct but reproducible stream).
    pub fn deterministic(label: &str) -> Self {
        // FNV-1a over the label.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u128) -> u128 {
        assert!(bound > 0, "cannot sample an empty range");
        let wide = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
        wide % bound
    }
}

/// A generator of test values (upstream's `Strategy`, minus shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into `f` to pick a dependent strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Discards generated values failing `f` by resampling (upstream
    /// rejects with a filter budget; the stand-in retries a bounded
    /// number of times).
    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            f,
            reason,
        }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 candidates in a row: {}",
            self.reason
        );
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128) - (self.start as u128);
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as u128) - (*self.start() as u128) + 1;
                self.start() + rng.below(span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0);
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
    (A: 0, B: 1, C: 2, D: 3, E: 4);
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
}

/// Types with a canonical full-range strategy (upstream's `Arbitrary`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The full-range strategy for `T` (`any::<bool>()` etc).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// See [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for [`vec`]: an exact length or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `Vec` whose length is drawn from `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min) as u128;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling strategies.

    use super::{Strategy, TestRng};

    /// See [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    /// Uniformly one of `options`.
    ///
    /// # Panics
    ///
    /// Panics (at generation time) if `options` is empty.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            assert!(!self.options.is_empty(), "select over no options");
            let idx = rng.below(self.options.len() as u128) as usize;
            self.options[idx].clone()
        }
    }
}

pub mod prelude {
    //! The glob-import surface, mirroring `proptest::prelude`.

    pub use crate::{any, Arbitrary, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    pub mod prop {
        //! Mirrors the upstream `prop` module alias.
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `body` for [`ProptestConfig::cases`]
/// generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    let ($($arg,)+) = (
                        $($crate::Strategy::generate(&($strat), &mut __rng),)+
                    );
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property (panics on failure; the
/// stand-in has no shrinking phase to report to).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::deterministic("ranges");
        for _ in 0..1000 {
            let x = (3usize..17).generate(&mut rng);
            assert!((3..17).contains(&x));
            let y = (1u32..=4).generate(&mut rng);
            assert!((1..=4).contains(&y));
        }
    }

    #[test]
    fn full_usize_range_is_usable() {
        let mut rng = crate::TestRng::deterministic("full");
        let _ = (0usize..usize::MAX).generate(&mut rng);
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = crate::TestRng::deterministic("compose");
        let strat = (1usize..=4)
            .prop_flat_map(|n| prop::collection::vec(0u32..10, n).prop_map(move |v| (n, v)));
        for _ in 0..200 {
            let (n, v) = strat.generate(&mut rng);
            assert_eq!(v.len(), n);
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn select_draws_from_options() {
        let mut rng = crate::TestRng::deterministic("select");
        let strat = prop::sample::select(vec!["a", "b"]);
        let mut seen = [false; 2];
        for _ in 0..64 {
            match strat.generate(&mut rng) {
                "a" => seen[0] = true,
                "b" => seen[1] = true,
                _ => unreachable!(),
            }
        }
        assert!(seen[0] && seen[1]);
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::deterministic("same");
        let mut b = crate::TestRng::deterministic("same");
        let strat = prop::collection::vec(0u64..1000, 0..8);
        for _ in 0..32 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: patterns bind, config is honored.
        #[test]
        fn macro_generates_cases(x in 0u32..50, flag in any::<bool>(), v in prop::collection::vec(0usize..5, 3)) {
            prop_assert!(x < 50);
            prop_assert_eq!(v.len(), 3);
            let _ = flag;
        }
    }
}
