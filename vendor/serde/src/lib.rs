//! Offline stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, so the workspace
//! vendors a minimal data-model-compatible replacement: a JSON-shaped
//! [`Value`] tree, [`Serialize`]/[`Deserialize`] traits that convert to
//! and from that tree, and `#[derive(Serialize, Deserialize)]` macros
//! (re-exported from the sibling `serde_derive` crate) for structs with
//! named fields, newtype structs, and enums with unit variants — the
//! exact shapes this repository serializes. `serde_json` (also
//! vendored) layers JSON text parsing/printing on top of [`Value`].
//!
//! Compatibility notes versus upstream serde:
//! - serialization is eager and tree-based, not visitor-based;
//! - unknown object fields are ignored on deserialize (upstream
//!   default), and `#[serde(default)]` on a field falls back to
//!   `Default::default()` when the field is missing;
//! - unit enum variants serialize as their name string, newtype structs
//!   as their inner value, tuples and arrays as JSON arrays — all
//!   matching upstream serde_json conventions, so documented JSON
//!   formats stay valid.

// Vendored stand-in crate: keep the subset simple, not lint-perfect.
#![allow(clippy::all)]

mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::{Number, Value};

use std::fmt;

/// Serialization/deserialization error: a message describing the
/// mismatch between a [`Value`] and the requested type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// An error with the given message (mirrors `serde::de::Error::custom`).
    pub fn custom(message: impl fmt::Display) -> Self {
        Error {
            message: message.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Types that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// The value-tree form of `self`.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] naming the first structural mismatch.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Field lookup in an object body, used by the derive expansion.
#[doc(hidden)]
pub fn __find<'v>(fields: &'v [(String, Value)], name: &str) -> Option<&'v Value> {
    fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64().ok_or_else(|| {
                    Error::custom(format!(
                        "expected unsigned integer, found {}", v.kind()
                    ))
                })?;
                <$t>::try_from(n).map_err(|_| {
                    Error::custom(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 {
                    Value::Number(Number::PosInt(i as u64))
                } else {
                    Value::Number(Number::NegInt(i))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64().ok_or_else(|| {
                    Error::custom(format!("expected integer, found {}", v.kind()))
                })?;
                <$t>::try_from(n).map_err(|_| {
                    Error::custom(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .ok_or_else(|| Error::custom(format!("expected number, found {}", v.kind())))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(f64::from(*self)))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!(
                "expected bool, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::custom(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Deserialize for std::sync::Arc<str> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        String::from_value(v).map(std::sync::Arc::from)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        let got = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::custom(format!("expected array of length {N}, found {got}")))
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+) with $len:expr;)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) if items.len() == $len => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    Value::Array(items) => Err(Error::custom(format!(
                        "expected tuple of length {}, found {}", $len, items.len()
                    ))),
                    other => Err(Error::custom(format!(
                        "expected array, found {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0) with 1;
    (A: 0, B: 1) with 2;
    (A: 0, B: 1, C: 2) with 3;
    (A: 0, B: 1, C: 2, D: 3) with 4;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uint_round_trip_and_range_check() {
        let v = 300u32.to_value();
        assert_eq!(u32::from_value(&v), Ok(300));
        assert!(u8::from_value(&v).is_err());
    }

    #[test]
    fn int_sign_preserved() {
        let v = (-5i32).to_value();
        assert_eq!(i32::from_value(&v), Ok(-5));
        assert!(u32::from_value(&v).is_err());
    }

    #[test]
    fn float_accepts_integer_literals() {
        let v = Value::Number(Number::PosInt(3));
        assert_eq!(f64::from_value(&v), Ok(3.0));
    }

    #[test]
    fn option_null_round_trip() {
        assert_eq!(Option::<u32>::from_value(&Value::Null), Ok(None));
        assert_eq!(Some(7u32).to_value(), 7u32.to_value());
    }

    #[test]
    fn tuple_as_array() {
        let v = (3u32, 4u32).to_value();
        assert_eq!(v, Value::Array(vec![3u32.to_value(), 4u32.to_value()]));
        assert_eq!(<(u32, u32)>::from_value(&v), Ok((3, 4)));
    }

    #[test]
    fn fixed_array_length_checked() {
        let v = [1u32, 2].to_value();
        assert_eq!(<[u32; 2]>::from_value(&v), Ok([1, 2]));
        assert!(<[u32; 3]>::from_value(&v).is_err());
    }

    #[test]
    fn find_locates_fields() {
        let fields = vec![
            ("a".to_string(), Value::Null),
            ("b".to_string(), Value::Bool(true)),
        ];
        assert_eq!(__find(&fields, "b"), Some(&Value::Bool(true)));
        assert_eq!(__find(&fields, "c"), None);
    }
}
