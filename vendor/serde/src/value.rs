//! The JSON-shaped value tree shared by the vendored `serde` and
//! `serde_json` stand-ins.

use std::fmt;
use std::ops::Index;

/// A JSON number: unsigned, signed-negative, or floating.
///
/// Keeping integers apart from floats lets `u64`/`i64` round-trip
/// losslessly, matching upstream `serde_json::Number`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A floating-point number.
    Float(f64),
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::PosInt(n) => write!(f, "{n}"),
            Number::NegInt(n) => write!(f, "{n}"),
            Number::Float(x) => {
                if x.is_finite() && x.fract() == 0.0 && x.abs() < 1e15 {
                    // Keep a fractional part so the text re-parses as a float.
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
        }
    }
}

/// A JSON document tree (stand-in for `serde_json::Value`).
///
/// Objects preserve insertion order; lookup is linear, which is fine at
/// the sizes this repository serializes.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Number(Number),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An object as ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// A short name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// The object body, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The array body, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value as `u64` if losslessly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::PosInt(n)) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as `i64` if losslessly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::PosInt(n)) => i64::try_from(*n).ok(),
            Value::Number(Number::NegInt(n)) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as `f64` (integers convert).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::PosInt(n)) => Some(*n as f64),
            Value::Number(Number::NegInt(n)) => Some(*n as f64),
            Value::Number(Number::Float(x)) => Some(*x),
            _ => None,
        }
    }

    /// Member lookup; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|fields| fields.iter().find(|(k, _)| k == key))
            .map(|(_, v)| v)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        matches!(self, Value::Bool(b) if b == other)
    }
}

macro_rules! impl_value_eq_num {
    ($($t:ty => $via:ident),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.$via().and_then(|n| <$t>::try_from(n).ok()) == Some(*other)
            }
        }
    )*};
}

impl_value_eq_num!(u8 => as_u64, u16 => as_u64, u32 => as_u64, u64 => as_u64,
                   i8 => as_i64, i16 => as_i64, i32 => as_i64, i64 => as_i64);

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        matches!(self, Value::Number(Number::Float(x)) if x == other)
    }
}

static NULL: Value = Value::Null;

impl Index<&str> for Value {
    type Output = Value;

    /// `value["key"]`, yielding `Null` for anything missing — the same
    /// forgiving behavior as `serde_json`.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_missing_is_null() {
        let v = Value::Object(vec![("a".into(), Value::Bool(true))]);
        assert_eq!(v["a"], Value::Bool(true));
        assert_eq!(v["zzz"], Value::Null);
        assert_eq!(Value::Null["anything"], Value::Null);
    }

    #[test]
    fn number_display_keeps_float_shape() {
        assert_eq!(Number::Float(1.0).to_string(), "1.0");
        assert_eq!(Number::Float(1.5).to_string(), "1.5");
        assert_eq!(Number::PosInt(7).to_string(), "7");
        assert_eq!(Number::NegInt(-7).to_string(), "-7");
    }

    #[test]
    fn as_i64_covers_both_int_variants() {
        assert_eq!(Value::Number(Number::PosInt(5)).as_i64(), Some(5));
        assert_eq!(Value::Number(Number::NegInt(-5)).as_i64(), Some(-5));
        assert_eq!(Value::Number(Number::Float(5.0)).as_i64(), None);
    }
}
