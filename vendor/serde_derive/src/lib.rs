//! Offline stand-in for `serde_derive`.
//!
//! crates.io (and therefore `syn`/`quote`) is unreachable in this build
//! environment, so the derive macros are written directly against
//! `proc_macro` token trees. They support exactly the shapes this
//! workspace serializes:
//!
//! - structs with named fields (honoring `#[serde(default)]` and
//!   `#[serde(default = "path")]` per field),
//! - one-field tuple structs (serialized transparently, like upstream
//!   serde's newtype structs),
//! - enums whose variants are all unit variants (serialized as the
//!   variant-name string).
//!
//! Anything else (generics, data-carrying enum variants, multi-field
//! tuple structs) produces a `compile_error!` naming the limitation, so
//! a future change that outgrows the stand-in fails loudly rather than
//! silently mis-serializing.

// Vendored stand-in crate: keep the subset simple, not lint-perfect.
#![allow(clippy::all)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse(input) {
        Ok(item) => expand_serialize(&item)
            .parse()
            .expect("generated impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse(input) {
        Ok(item) => expand_deserialize(&item)
            .parse()
            .expect("generated impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("error token stream parses")
}

/// One named field: its identifier and its `#[serde(default)]` policy.
struct Field {
    name: String,
    default: FieldDefault,
}

/// How a missing field deserializes.
#[derive(Clone, PartialEq)]
enum FieldDefault {
    /// No default attribute: missing field is an error.
    Required,
    /// `#[serde(default)]`: use `Default::default()`.
    Trait,
    /// `#[serde(default = "path")]`: call `path()`.
    Path(String),
}

enum Shape {
    /// `struct S { a: T, b: U }`
    Named(Vec<Field>),
    /// `struct S(T);`
    Newtype,
    /// `enum E { A, B, C }`
    UnitEnum(Vec<String>),
}

struct Item {
    name: String,
    shape: Shape,
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Skips `#[...]` attribute groups, reporting any
    /// `#[serde(default)]` / `#[serde(default = "path")]` among them.
    fn skip_attributes(&mut self) -> FieldDefault {
        let mut default = FieldDefault::Required;
        while matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            self.next(); // '#'
            if let Some(TokenTree::Group(g)) = self.next() {
                if let Some(d) = serde_default(&g.stream()) {
                    default = d;
                }
            }
        }
        default
    }

    /// Skips `pub` / `pub(crate)` / `pub(in ...)`.
    fn skip_visibility(&mut self) {
        if matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
            self.next();
            if matches!(
                self.peek(),
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
            ) {
                self.next();
            }
        }
    }

    fn expect_ident(&mut self) -> Result<String, String> {
        match self.next() {
            Some(TokenTree::Ident(i)) => Ok(i.to_string()),
            other => Err(format!(
                "serde stand-in derive: expected identifier, found {other:?}"
            )),
        }
    }
}

/// `serde ( default )` and `serde ( default = "path" )` — the only helper
/// attribute forms the stand-in honors.
fn serde_default(attr_body: &TokenStream) -> Option<FieldDefault> {
    let tokens: Vec<TokenTree> = attr_body.clone().into_iter().collect();
    let args = match tokens.as_slice() {
        [TokenTree::Ident(name), TokenTree::Group(args)] if name.to_string() == "serde" => {
            args.stream().into_iter().collect::<Vec<TokenTree>>()
        }
        _ => return None,
    };
    match args.as_slice() {
        [TokenTree::Ident(i)] if i.to_string() == "default" => Some(FieldDefault::Trait),
        [TokenTree::Ident(i), TokenTree::Punct(eq), TokenTree::Literal(lit)]
            if i.to_string() == "default" && eq.as_char() == '=' =>
        {
            let text = lit.to_string();
            let path = text.trim_matches('"').to_string();
            Some(FieldDefault::Path(path))
        }
        _ => None,
    }
}

fn parse(input: TokenStream) -> Result<Item, String> {
    let mut c = Cursor::new(input);
    c.skip_attributes();
    c.skip_visibility();
    let kw = c.expect_ident()?;
    let name = c.expect_ident()?;
    if matches!(c.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde stand-in derive: generic type `{name}` is not supported; \
             extend vendor/serde_derive if this is needed"
        ));
    }
    let body = match c.next() {
        Some(TokenTree::Group(g)) => g,
        other => {
            return Err(format!(
                "serde stand-in derive: expected body of `{name}`, found {other:?}"
            ))
        }
    };
    let shape = match (kw.as_str(), body.delimiter()) {
        ("struct", Delimiter::Brace) => Shape::Named(parse_named_fields(body.stream())?),
        ("struct", Delimiter::Parenthesis) => {
            let arity = parse_tuple_arity(body.stream());
            if arity == 1 {
                Shape::Newtype
            } else {
                return Err(format!(
                    "serde stand-in derive: tuple struct `{name}` has {arity} fields; \
                     only newtype (1-field) tuple structs are supported"
                ));
            }
        }
        ("enum", Delimiter::Brace) => Shape::UnitEnum(parse_unit_variants(body.stream(), &name)?),
        _ => {
            return Err(format!(
                "serde stand-in derive: unsupported item `{kw} {name}`"
            ))
        }
    };
    Ok(Item { name, shape })
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let mut c = Cursor::new(stream);
    let mut fields = Vec::new();
    while c.peek().is_some() {
        let default = c.skip_attributes();
        if c.peek().is_none() {
            break;
        }
        c.skip_visibility();
        let name = c.expect_ident()?;
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => {
                return Err(format!(
                    "serde stand-in derive: expected `:` after field `{name}`, found {other:?}"
                ))
            }
        }
        // Skip the type: everything up to the next comma that is not
        // nested inside `<...>` (commas inside (), [] and {} are whole
        // groups and never split).
        let mut angle_depth = 0i32;
        while let Some(t) = c.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    c.next();
                    break;
                }
                _ => {}
            }
            c.next();
        }
        fields.push(Field { name, default });
    }
    Ok(fields)
}

fn parse_tuple_arity(stream: TokenStream) -> usize {
    // Fields of a tuple struct are separated by top-level commas; a
    // trailing comma does not add a field.
    let mut arity = 0usize;
    let mut saw_tokens = false;
    let mut angle_depth = 0i32;
    for t in stream {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                arity += 1;
                saw_tokens = false;
                continue;
            }
            _ => {}
        }
        saw_tokens = true;
    }
    if saw_tokens {
        arity += 1;
    }
    arity
}

fn parse_unit_variants(stream: TokenStream, enum_name: &str) -> Result<Vec<String>, String> {
    let mut c = Cursor::new(stream);
    let mut variants = Vec::new();
    while c.peek().is_some() {
        c.skip_attributes();
        if c.peek().is_none() {
            break;
        }
        let name = c.expect_ident()?;
        match c.next() {
            None => {
                variants.push(name);
                break;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => variants.push(name),
            Some(TokenTree::Group(_)) => {
                return Err(format!(
                    "serde stand-in derive: variant `{enum_name}::{name}` carries data; \
                     only unit variants are supported"
                ));
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                // Skip an explicit discriminant.
                while let Some(t) = c.next() {
                    if matches!(&t, TokenTree::Punct(q) if q.as_char() == ',') {
                        break;
                    }
                }
                variants.push(name);
            }
            other => {
                return Err(format!(
                    "serde stand-in derive: unexpected token after variant \
                     `{enum_name}::{name}`: {other:?}"
                ));
            }
        }
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn expand_serialize(item: &Item) -> String {
    let name = &item.name;
    match &item.shape {
        Shape::Named(fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "__fields.push((::std::string::String::from({n:?}), \
                         ::serde::Serialize::to_value(&self.{n})));\n",
                        n = f.name
                    )
                })
                .collect();
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n\
                         {pushes}\
                         ::serde::Value::Object(__fields)\n\
                     }}\n\
                 }}\n"
            )
        }
        Shape::Newtype => format!(
            "#[automatically_derived]\n\
             impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Serialize::to_value(&self.0)\n\
                 }}\n\
             }}\n"
        ),
        Shape::UnitEnum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => {v:?},\n"))
                .collect();
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::String(::std::string::String::from(match self {{\n\
                             {arms}\
                         }}))\n\
                     }}\n\
                 }}\n"
            )
        }
    }
}

fn expand_deserialize(item: &Item) -> String {
    let name = &item.name;
    match &item.shape {
        Shape::Named(fields) => {
            let field_inits: String = fields
                .iter()
                .map(|f| {
                    let missing = match &f.default {
                        FieldDefault::Trait => "::std::default::Default::default()".to_string(),
                        FieldDefault::Path(path) => format!("{path}()"),
                        FieldDefault::Required => {
                            let msg = format!("missing field `{}` in {}", f.name, name);
                            format!(
                                "return ::std::result::Result::Err(::serde::Error::custom({msg:?}))"
                            )
                        }
                    };
                    format!(
                        "{n}: match ::serde::__find(__fields, {n:?}) {{\n\
                             ::std::option::Option::Some(__x) => ::serde::Deserialize::from_value(__x)?,\n\
                             ::std::option::Option::None => {missing},\n\
                         }},\n",
                        n = f.name
                    )
                })
                .collect();
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         let __fields = match __v {{\n\
                             ::serde::Value::Object(__m) => __m.as_slice(),\n\
                             __other => return ::std::result::Result::Err(::serde::Error::custom(\
                                 ::std::format!(\"expected object for struct {name}, found {{}}\", __other.kind()))),\n\
                         }};\n\
                         ::std::result::Result::Ok({name} {{\n\
                             {field_inits}\
                         }})\n\
                     }}\n\
                 }}\n"
            )
        }
        Shape::Newtype => format!(
            "#[automatically_derived]\n\
             impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                     ::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))\n\
                 }}\n\
             }}\n"
        ),
        Shape::UnitEnum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{v:?} => ::std::result::Result::Ok({name}::{v}),\n"))
                .collect();
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match __v {{\n\
                             ::serde::Value::String(__s) => match __s.as_str() {{\n\
                                 {arms}\
                                 __other => ::std::result::Result::Err(::serde::Error::custom(\
                                     ::std::format!(\"unknown variant `{{}}` of {name}\", __other))),\n\
                             }},\n\
                             __other => ::std::result::Result::Err(::serde::Error::custom(\
                                 ::std::format!(\"expected string for enum {name}, found {{}}\", __other.kind()))),\n\
                         }}\n\
                     }}\n\
                 }}\n"
            )
        }
    }
}
