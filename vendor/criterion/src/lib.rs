//! Offline stand-in for the `criterion` benchmark harness.
//!
//! crates.io is unreachable in this build environment, so the workspace
//! vendors the slice of the criterion API its benches use:
//! [`Criterion::benchmark_group`], `sample_size`, `bench_function`,
//! `bench_with_input`, [`BenchmarkId`], [`black_box`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros. There is no
//! statistical analysis: each closure is warmed up once and then timed
//! over `sample_size` samples, and the mean/min per-iteration times are
//! printed. That is enough to compare runs side by side, which is how
//! the repo's EXPERIMENTS.md uses these numbers.

// Vendored stand-in crate: keep the subset simple, not lint-perfect.
#![allow(clippy::all)]

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque benchmark identifier (display-only here).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id from a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Prevents the optimizer from deleting a computed value.
#[inline]
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Timing context handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Mean and minimum per-iteration time of the last `iter` call.
    result: Option<(Duration, Duration)>,
}

impl Bencher {
    /// Times `f`: one warm-up call, then `samples` timed calls.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        for _ in 0..self.samples {
            let t = Instant::now();
            black_box(f());
            let dt = t.elapsed();
            total += dt;
            min = min.min(dt);
        }
        let mean = total / self.samples as u32;
        self.result = Some((mean, min));
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (criterion default: 100;
    /// this stand-in defaults to 10 to keep `--bench` runs quick).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Ignored (accepted for API compatibility).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` with no external input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            result: None,
        };
        f(&mut b);
        self.report(&id, b.result);
        self
    }

    /// Benchmarks `f` against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            result: None,
        };
        f(&mut b, input);
        self.report(&id, b.result);
        self
    }

    fn report(&self, id: &BenchmarkId, result: Option<(Duration, Duration)>) {
        match result {
            Some((mean, min)) => println!(
                "{}/{:<24} mean {:>12.3?}  min {:>12.3?}  ({} samples)",
                self.name, id, mean, min, self.sample_size
            ),
            None => println!("{}/{} (no iterations recorded)", self.name, id),
        }
    }

    /// Ends the group (printing happens eagerly, so this is a no-op).
    pub fn finish(self) {}
}

/// Top-level harness state.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== group {name} ==");
        BenchmarkGroup {
            name,
            sample_size: 10,
            _criterion: self,
        }
    }
}

/// Bundles benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_records_timing() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("unit");
        group.sample_size(3);
        let mut calls = 0u32;
        group.bench_function("noop", |b| {
            b.iter(|| calls += 1);
        });
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("unit");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::from_parameter("x"), &21u32, |b, &x| {
            b.iter(|| black_box(x * 2));
        });
    }

    #[test]
    fn ids_display() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("arf").to_string(), "arf");
    }
}
