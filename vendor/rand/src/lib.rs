//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the tiny API subset it actually consumes: [`rngs::StdRng`]
//! seeded via [`SeedableRng::seed_from_u64`], and the [`Rng`] extension
//! methods `gen_range`, `gen_bool` and `gen::<f64>()`. The generator is
//! SplitMix64 — deterministic per seed, which is all the callers
//! (seeded kernel generators, the annealing baseline, property tests)
//! rely on. It is **not** a cryptographic generator and makes no
//! attempt to match upstream `rand`'s value streams.

// Vendored stand-in crate: keep the subset simple, not lint-perfect.
#![allow(clippy::all)]

use std::ops::Range;

/// Core entropy source: everything above is derived from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding support (subset of upstream's `SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed. The same seed always
    /// yields the same stream.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that [`Rng::gen`] can produce (upstream: the `Standard`
/// distribution).
pub trait Standard: Sized {
    fn from_bits(bits: u64) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn from_bits(bits: u64) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    #[inline]
    fn from_bits(bits: u64) -> bool {
        bits & 1 == 1
    }
}

impl Standard for u32 {
    #[inline]
    fn from_bits(bits: u64) -> u32 {
        (bits >> 32) as u32
    }
}

impl Standard for u64 {
    #[inline]
    fn from_bits(bits: u64) -> u64 {
        bits
    }
}

/// Types usable as [`Rng::gen_range`] bounds.
pub trait SampleUniform: Copy {
    fn sample_half_open(rng: &mut dyn RngCore, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open(rng: &mut dyn RngCore, range: Range<$t>) -> $t {
                assert!(
                    range.start < range.end,
                    "cannot sample empty range {}..{}",
                    range.start,
                    range.end
                );
                let span = (range.end as u128).wrapping_sub(range.start as u128);
                let r = ((rng.next_u64() as u128) % span) as $t;
                range.start + r
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize);

/// Extension methods over any [`RngCore`] (subset of upstream's `Rng`).
pub trait Rng: RngCore {
    /// A value of `T` from its standard distribution (`f64` in `[0,1)`).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::from_bits(self.next_u64())
    }

    /// A uniform value in `range` (half-open).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_half_open(self, range)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        #[inline]
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014) — public-domain mixer.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.gen_range(5usize..5);
    }
}
