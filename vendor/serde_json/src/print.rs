//! JSON text printing (compact and pretty) for [`Value`] trees.

use crate::Error;
use serde::{Number, Value};
use std::fmt::Write;

/// Prints `value`; `indent = None` is compact, `Some(n)` indents nested
/// levels by `n` spaces per depth (serde_json pretty style).
pub(crate) fn print(value: &Value, indent: Option<usize>) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, value, indent, 0)?;
    Ok(out)
}

fn write_value(
    out: &mut String,
    value: &Value,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => {
            if let Number::Float(x) = n {
                if !x.is_finite() {
                    return Err(Error::new(format!(
                        "JSON cannot represent non-finite float {x}"
                    )));
                }
            }
            let _ = write!(out, "{n}");
        }
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(n) = indent {
        out.push('\n');
        for _ in 0..n * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_output() {
        let v = Value::Object(vec![
            (
                "a".into(),
                Value::Array(vec![Value::Null, Value::Bool(true)]),
            ),
            ("b".into(), Value::Number(Number::Float(1.0))),
        ]);
        assert_eq!(print(&v, None).unwrap(), r#"{"a":[null,true],"b":1.0}"#);
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = Value::Object(vec![("a".into(), Value::Number(Number::PosInt(1)))]);
        assert_eq!(print(&v, Some(2)).unwrap(), "{\n  \"a\": 1\n}");
    }

    #[test]
    fn control_chars_escaped() {
        let v = Value::String("a\u{1}b".into());
        assert_eq!(print(&v, None).unwrap(), "\"a\\u0001b\"");
    }
}
