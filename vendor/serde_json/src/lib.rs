//! Offline stand-in for `serde_json`.
//!
//! Layers JSON text parsing and printing over the vendored `serde`
//! crate's [`Value`] tree, covering the API subset this workspace uses:
//! [`to_string`], [`to_string_pretty`], [`from_str`], [`from_value`],
//! [`to_value`], [`Value`]/[`Number`], [`Error`], and a [`json!`] macro
//! supporting object/array literals with string keys and arbitrary
//! serializable expression values.

// Vendored stand-in crate: keep the subset simple, not lint-perfect.
#![allow(clippy::all)]

mod parse;
mod print;

pub use serde::{Number, Value};

use serde::{Deserialize, Serialize};
use std::fmt;

/// JSON error: a message, optionally with the byte offset where text
/// parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
    offset: Option<usize>,
}

impl Error {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
            offset: None,
        }
    }

    pub(crate) fn at(message: impl Into<String>, offset: usize) -> Self {
        Error {
            message: message.into(),
            offset: Some(offset),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(o) => write!(f, "{} at byte {o}", self.message),
            None => f.write_str(&self.message),
        }
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes `value` as compact JSON text.
///
/// # Errors
///
/// Returns an [`Error`] if the value contains a non-finite float (JSON
/// has no representation for NaN/infinity).
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    print::print(&value.to_value(), None)
}

/// Serializes `value` as two-space-indented JSON text.
///
/// # Errors
///
/// Same conditions as [`to_string`].
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    print::print(&value.to_value(), Some(2))
}

/// Parses JSON text into any deserializable type.
///
/// # Errors
///
/// Returns an [`Error`] for malformed JSON or a structural mismatch
/// with `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse::parse(text)?;
    Ok(T::from_value(&value)?)
}

/// Converts a [`Value`] tree into any deserializable type.
///
/// # Errors
///
/// Returns an [`Error`] on structural mismatch.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T, Error> {
    Ok(T::from_value(&value)?)
}

/// Converts any serializable value into a [`Value`] tree.
///
/// Infallible in this stand-in (upstream returns `Result`); the
/// [`json!`] macro relies on it.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Builds a [`Value`] from a JSON-shaped literal.
///
/// Supports `null`, `true`/`false`, array literals, object literals
/// with string-literal keys, and arbitrary serializable Rust
/// expressions in value position:
///
/// ```
/// let who = "paper";
/// let v = serde_json::json!({
///     "name": who,
///     "tables": [1, 2],
///     "nested": { "ok": true },
/// });
/// assert_eq!(v["nested"]["ok"], serde_json::Value::Bool(true));
/// ```
#[macro_export]
macro_rules! json {
    ($($tt:tt)+) => { $crate::json_value!($($tt)+) };
}

/// Implementation detail of [`json!`]: classifies one JSON value.
#[doc(hidden)]
#[macro_export]
macro_rules! json_value {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([]) => { $crate::Value::Array(::std::vec::Vec::new()) };
    ([ $($tt:tt)+ ]) => {{
        let mut __items: ::std::vec::Vec<$crate::Value> = ::std::vec::Vec::new();
        $crate::json_munch!(@arr __items () ($($tt)+));
        $crate::Value::Array(__items)
    }};
    ({}) => { $crate::Value::Object(::std::vec::Vec::new()) };
    ({ $($tt:tt)+ }) => {{
        let mut __fields: ::std::vec::Vec<(::std::string::String, $crate::Value)> =
            ::std::vec::Vec::new();
        $crate::json_munch!(@obj __fields ($($tt)+));
        $crate::Value::Object(__fields)
    }};
    ($($expr:tt)+) => { $crate::to_value(&($($expr)+)) };
}

/// Implementation detail of [`json!`]: token munchers for object and
/// array bodies. Commas nested inside `()`/`[]`/`{}` are invisible to
/// the muncher (they sit inside a single token tree), so value
/// expressions may contain calls and literals freely.
#[doc(hidden)]
#[macro_export]
macro_rules! json_munch {
    // -- objects: `key : value , ...` with string-literal keys --------
    (@obj $fields:ident ()) => {};
    (@obj $fields:ident ($key:tt : $($rest:tt)+)) => {
        $crate::json_munch!(@objval $fields $key () ($($rest)+));
    };
    // Value complete at a top-level comma.
    (@objval $fields:ident $key:tt ($($val:tt)+) (, $($rest:tt)*)) => {
        $fields.push((::std::string::String::from($key), $crate::json_value!($($val)+)));
        $crate::json_munch!(@obj $fields ($($rest)*));
    };
    // Value complete at end of input.
    (@objval $fields:ident $key:tt ($($val:tt)+) ()) => {
        $fields.push((::std::string::String::from($key), $crate::json_value!($($val)+)));
    };
    // Otherwise: move one token into the accumulator.
    (@objval $fields:ident $key:tt ($($val:tt)*) ($next:tt $($rest:tt)*)) => {
        $crate::json_munch!(@objval $fields $key ($($val)* $next) ($($rest)*));
    };

    // -- arrays: `value , value , ...` --------------------------------
    (@arr $items:ident ($($val:tt)+) (, $($rest:tt)*)) => {
        $items.push($crate::json_value!($($val)+));
        $crate::json_munch!(@arr $items () ($($rest)*));
    };
    (@arr $items:ident ($($val:tt)+) ()) => {
        $items.push($crate::json_value!($($val)+));
    };
    (@arr $items:ident () ()) => {};
    (@arr $items:ident ($($val:tt)*) ($next:tt $($rest:tt)*)) => {
        $crate::json_munch!(@arr $items ($($val)* $next) ($($rest)*));
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_literals() {
        assert_eq!(json!(null), Value::Null);
        assert_eq!(json!(true), Value::Bool(true));
        assert_eq!(json!(3), Value::Number(Number::PosInt(3)));
        assert_eq!(json!("hi"), Value::String("hi".into()));
    }

    #[test]
    fn json_macro_nested_structures() {
        let kernel = "arf";
        let pair = (8u32, 2u32);
        let v = json!({
            "kernel": kernel,
            "paper": { "pcc": pair, "empty": {} },
            "rows": [1, 2, 3],
            "trailing": [true, false,],
        });
        assert_eq!(v["kernel"], Value::String("arf".into()));
        assert_eq!(v["paper"]["pcc"][1], Value::Number(Number::PosInt(2)));
        assert_eq!(v["paper"]["empty"], Value::Object(vec![]));
        assert_eq!(v["rows"].as_array().unwrap().len(), 3);
        assert_eq!(v["trailing"].as_array().unwrap().len(), 2);
    }

    #[test]
    fn json_macro_method_call_values() {
        struct P;
        impl P {
            fn name(&self) -> String {
                "ewf".into()
            }
            fn gain(&self, base: f64) -> f64 {
                base + 1.5
            }
        }
        let p = P;
        let v = json!({ "name": p.name(), "gain": p.gain(2.0), "sum": 1 + 2 });
        assert_eq!(v["name"].as_str(), Some("ewf"));
        assert_eq!(v["gain"].as_f64(), Some(3.5));
        assert_eq!(v["sum"].as_u64(), Some(3));
    }

    #[test]
    fn round_trip_through_text() {
        let v = json!({
            "a": [1, -2, 3.5],
            "b": { "c": null, "d": "x\"y\n" },
        });
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
        let pretty = to_string_pretty(&v).unwrap();
        let back2: Value = from_str(&pretty).unwrap();
        assert_eq!(back2, v);
    }

    #[test]
    fn from_value_and_to_value() {
        let v = to_value(&vec![(1u32, 2u32)]);
        let back: Vec<(u32, u32)> = from_value(v).unwrap();
        assert_eq!(back, vec![(1, 2)]);
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        assert!(from_str::<Value>("{ not json").is_err());
        assert!(from_str::<u32>("\"string\"").is_err());
        assert!(to_string(&f64::NAN).is_err());
    }
}
