//! Recursive-descent JSON text parser producing [`Value`] trees.

use crate::Error;
use serde::{Number, Value};

pub(crate) fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::at("trailing characters after JSON value", p.pos));
    }
    Ok(value)
}

struct Parser<'t> {
    bytes: &'t [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::at(format!("expected `{}`", b as char), self.pos))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(Error::at(
                format!("unexpected character `{}`", c as char),
                self.pos,
            )),
            None => Err(Error::at("unexpected end of input", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::at("expected `,` or `]` in array", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::at("expected `,` or `}` in object", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by `\uXXXX` with a low surrogate.
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                if !(self.eat_keyword("\\u")) {
                                    return Err(Error::at("unpaired surrogate", self.pos));
                                }
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(Error::at("invalid low surrogate", self.pos));
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(c)
                            } else {
                                char::from_u32(cp)
                            };
                            match ch {
                                Some(c) => out.push(c),
                                None => return Err(Error::at("invalid unicode escape", self.pos)),
                            }
                            continue;
                        }
                        _ => return Err(Error::at("invalid escape sequence", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::at("invalid UTF-8 inside string", self.pos))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::at("unterminated string", self.pos)),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::at("truncated unicode escape", self.pos));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::at("invalid unicode escape", self.pos))?;
        let cp = u32::from_str_radix(hex, 16)
            .map_err(|_| Error::at("invalid unicode escape", self.pos))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::at("invalid number", start))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(n)));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Number(Number::NegInt(n)));
            }
        }
        text.parse::<f64>()
            .map(|x| Value::Number(Number::Float(x)))
            .map_err(|_| Error::at(format!("invalid number `{text}`"), start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("42").unwrap(), Value::Number(Number::PosInt(42)));
        assert_eq!(parse("-7").unwrap(), Value::Number(Number::NegInt(-7)));
        assert_eq!(parse("2.5e2").unwrap(), Value::Number(Number::Float(250.0)));
        assert_eq!(parse("\"a\"").unwrap(), Value::String("a".into()));
    }

    #[test]
    fn parses_structures() {
        let v = parse(r#"{"a": [1, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(v["a"][1]["b"], Value::Null);
        assert_eq!(v["c"].as_str(), Some("x"));
    }

    #[test]
    fn parses_escapes() {
        let v = parse(r#""line\nquote\" A 😀""#).unwrap();
        assert_eq!(v.as_str(), Some("line\nquote\" A 😀"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("nul").is_err());
    }
}
