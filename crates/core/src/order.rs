//! The three-component binding order (paper Section 3.1.1).
//!
//! Operations are ranked lexicographically by:
//!
//! 1. `alap(v)` — earlier ALAP levels first, so the order is
//!    "level-oriented" and cluster load can be estimated without fixing
//!    start times;
//! 2. mobility `μ(v)` — lower mobility (more constrained) first;
//! 3. number of consumers of the result — more consumers first (their
//!    placement constrains more of the remaining graph).
//!
//! Ties beyond that are broken by operation id, keeping the whole
//! algorithm deterministic. The order guarantees that when an operation
//! is bound, all its predecessors already are (ALAP of a consumer strictly
//! exceeds its producers' in a level-compatible sense — see
//! `order_is_topological` below, which pins this invariant down by test).

use vliw_dfg::{Dfg, OpId, Timing};

/// Computes the binding order for a DFG under the given timing
/// (ASAP/ALAP computed with `L_TG = L_PR`).
///
/// For the paper's Figure 2 graph the result is `v1 v2 v3 v4 v5 v6`.
///
/// # Example
///
/// ```
/// use vliw_binding::order::binding_order;
/// use vliw_dfg::{DfgBuilder, OpType, Timing};
///
/// # fn main() -> Result<(), vliw_dfg::DfgError> {
/// let mut b = DfgBuilder::new();
/// let v1 = b.add_op(OpType::Add, &[]);
/// let v2 = b.add_op(OpType::Add, &[v1]);
/// let dfg = b.finish()?;
/// let timing = Timing::with_critical_path(&dfg, &[1, 1]);
/// assert_eq!(binding_order(&dfg, &timing), vec![v1, v2]);
/// # Ok(())
/// # }
/// ```
pub fn binding_order(dfg: &Dfg, timing: &Timing) -> Vec<OpId> {
    let mut order: Vec<OpId> = dfg.op_ids().collect();
    order.sort_by_key(|&v| {
        (
            timing.alap(v),
            timing.mobility(v),
            std::cmp::Reverse(dfg.out_degree(v)),
            v,
        )
    });
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_dfg::{DfgBuilder, OpType};

    /// The DFG of the paper's Figure 2.
    fn figure2() -> (Dfg, Vec<OpId>) {
        let mut b = DfgBuilder::new();
        let v1 = b.add_op(OpType::Add, &[]);
        let v2 = b.add_op(OpType::Add, &[v1]);
        let v3 = b.add_op(OpType::Add, &[]);
        let v4 = b.add_op(OpType::Add, &[v2, v3]);
        let v5 = b.add_op(OpType::Add, &[]);
        let v6 = b.add_op(OpType::Add, &[v4, v5]);
        (b.finish().expect("acyclic"), vec![v1, v2, v3, v4, v5, v6])
    }

    #[test]
    fn figure2_order_matches_paper() {
        let (dfg, v) = figure2();
        let timing = Timing::with_critical_path(&dfg, &vec![1; dfg.len()]);
        let order = binding_order(&dfg, &timing);
        assert_eq!(order, v, "paper says the order is v1 v2 v3 v4 v5 v6");
    }

    #[test]
    fn order_is_topological() {
        // Producers always precede consumers: alap(u) < alap(v) whenever
        // u -> v, since a producer must be able to start strictly earlier.
        let (dfg, _) = figure2();
        let timing = Timing::with_critical_path(&dfg, &vec![1; dfg.len()]);
        let order = binding_order(&dfg, &timing);
        let mut pos = vec![0; dfg.len()];
        for (i, &v) in order.iter().enumerate() {
            pos[v.index()] = i;
        }
        for (u, v) in dfg.edges() {
            assert!(pos[u.index()] < pos[v.index()], "{u} must come before {v}");
        }
    }

    #[test]
    fn lower_mobility_wins_within_level() {
        // Two ops at the same ALAP level; the one on the longer chain has
        // less mobility and must come first.
        let mut b = DfgBuilder::new();
        let head = b.add_op(OpType::Add, &[]);
        let critical = b.add_op(OpType::Add, &[head]); // alap 1, mobility 0
        let mobile = b.add_op(OpType::Add, &[]); //        alap 1, mobility 1
        let _tail = b.add_op(OpType::Add, &[critical, mobile]);
        let dfg = b.finish().expect("acyclic");
        let timing = Timing::with_critical_path(&dfg, &vec![1; dfg.len()]);
        let order = binding_order(&dfg, &timing);
        let pos = |x: OpId| order.iter().position(|&o| o == x).expect("present");
        assert!(pos(critical) < pos(mobile));
    }

    #[test]
    fn more_consumers_wins_at_equal_level_and_mobility() {
        // Both sources are mobile by one level; `shared` feeds two
        // consumers, `single` feeds one -> `shared` first.
        let mut b = DfgBuilder::new();
        let chain0 = b.add_op(OpType::Add, &[]);
        let chain1 = b.add_op(OpType::Add, &[chain0]);
        let _chain2 = b.add_op(OpType::Add, &[chain1]);
        let shared = b.add_op(OpType::Add, &[]);
        let single = b.add_op(OpType::Add, &[]);
        let _c1 = b.add_op(OpType::Add, &[shared, single]);
        let _c2 = b.add_op(OpType::Add, &[shared]);
        let dfg = b.finish().expect("acyclic");
        let timing = Timing::with_critical_path(&dfg, &vec![1; dfg.len()]);
        assert_eq!(timing.alap(shared), timing.alap(single));
        assert_eq!(timing.mobility(shared), timing.mobility(single));
        let order = binding_order(&dfg, &timing);
        let pos = |x: OpId| order.iter().position(|&o| o == x).expect("present");
        assert!(pos(shared) < pos(single));
    }

    #[test]
    fn stretched_lpr_preserves_topological_property() {
        let (dfg, _) = figure2();
        let lat = vec![1; dfg.len()];
        let timing = Timing::new(&dfg, &lat, 9);
        let order = binding_order(&dfg, &timing);
        let mut pos = vec![0; dfg.len()];
        for (i, &v) in order.iter().enumerate() {
            pos[v.index()] = i;
        }
        for (u, v) in dfg.edges() {
            assert!(pos[u.index()] < pos[v.index()]);
        }
    }
}
