//! High-quality operation binding for clustered VLIW datapaths —
//! the algorithm of Lapinskii, Jacome and de Veciana (DAC 2001).
//!
//! The binding problem: given a basic block's dataflow graph and a
//! clustered datapath, choose a cluster `bn(v) ∈ TS(v)` for every
//! operation so that the resulting *bound* graph (with inter-cluster
//! `move`s materialized) schedules in as few cycles as possible, with the
//! number of data transfers as the secondary figure of merit.
//!
//! The algorithm has two phases plus a driver:
//!
//! * [`init`] — **B-INIT**, a greedy initial binding ordered by
//!   `(alap, mobility, consumer count)` and driven by the cost function
//!   `icost(v,c) = α·fucost·dii(v) + β·buscost·dii(move) + γ·trcost·lat(move)`
//!   built on force-directed-style load profiles (paper Section 3.1);
//! * [`iter`] — **B-ITER**, iterative improvement by boundary
//!   perturbations under the lexicographic quality vectors
//!   `Q_U = (L, U_0, U_1, …)` then `Q_M = (L, N_MV)` (Section 3.2);
//! * [`Binder`] — the driver (Section 3): sweeps the load-profile latency
//!   `L_PR` (Section 3.1.3) and the binding direction (Section 3.1.4),
//!   evaluates every candidate with a real list schedule, and hands the
//!   best initial binding to B-ITER.
//!
//! All candidate evaluations funnel through [`eval::Evaluator`], a
//! memoized engine that optionally fans independent evaluations across a
//! scoped thread pool ([`BinderConfig::threads`]) with a deterministic
//! reduction — the parallel result is bit-identical to the serial one.
//!
//! An exact branch-and-bound binder ([`exact`]) serves as an optimality
//! oracle for small graphs, mirroring the paper's observation that B-INIT
//! solutions are frequently optimal.
//!
//! # Example
//!
//! ```
//! use vliw_binding::Binder;
//! use vliw_datapath::Machine;
//! use vliw_dfg::{DfgBuilder, OpType};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A small mul/add tree on a two-cluster machine.
//! let mut b = DfgBuilder::new();
//! let m1 = b.add_op(OpType::Mul, &[]);
//! let m2 = b.add_op(OpType::Mul, &[]);
//! let a1 = b.add_op(OpType::Add, &[m1, m2]);
//! let m3 = b.add_op(OpType::Mul, &[]);
//! let _ = b.add_op(OpType::Add, &[a1, m3]);
//! let dfg = b.finish()?;
//!
//! let machine = Machine::parse("[1,1|1,1]")?;
//! let result = Binder::new(&machine).bind(&dfg);
//! assert!(result.latency() >= 3);
//! result.schedule.validate(&result.bound, &machine)?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod budget;
mod config;
mod driver;
pub mod error;
pub mod eval;
pub mod exact;
pub mod init;
pub mod iter;
pub mod order;
pub mod pool;
pub mod profile;
pub mod stats;

pub use config::{BinderConfig, CostModel, PairMode};
pub use driver::{resource_lower_bound, BindStats, Binder, BindingResult};
pub use error::{validate_inputs, verify_result, BindError};
pub use eval::{EvalOutcome, EvalStats, Evaluator};
pub use iter::{Quality, QualityKind};
pub use stats::{CounterSummary, PhaseStats, PhaseSummary};
