//! Typed errors for the fallible binding pipeline.
//!
//! Every `try_*` entry point of [`crate::Binder`] (and the downstream
//! modulo/PCC/baseline drivers) reports failures through [`BindError`]
//! instead of panicking: malformed input graphs, unusable machine
//! descriptions, operations with no compatible FU anywhere, and — when
//! [`crate::BinderConfig::verify`] is on — results that fail the
//! independent [`vliw_sched::verify`] re-check.

use std::error::Error;
use std::fmt;
use vliw_datapath::{Machine, MachineError};
use vliw_dfg::{Dfg, DfgError, OpId, OpType};
use vliw_sched::{BindingError, Violation};

/// Why a binding run could not produce (or certify) a result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BindError {
    /// The input DFG is structurally broken (cycle, dangling edge,
    /// duplicate edge, self-loop).
    Dfg(DfgError),
    /// The input DFG already contains `move` operations; binding applies
    /// to *original* (move-free) graphs only.
    MoveInInput {
        /// The offending operation.
        op: OpId,
    },
    /// The machine description is unusable (no clusters, empty cluster,
    /// no bus, zero latency/dii) — typically a hand-edited or
    /// deserialized description that bypassed the builder.
    Machine(MachineError),
    /// A supplied binding is illegal for this DFG/machine pair.
    Binding(BindingError),
    /// An operation has no compatible FU in *any* cluster, so no binding
    /// exists at all.
    Unsupported {
        /// The operation with an empty target set.
        op: OpId,
        /// Its operation type.
        op_type: OpType,
    },
    /// The produced result failed the independent verifier
    /// ([`vliw_sched::verify`]); carries every violation found.
    Verification(Vec<Violation>),
    /// A produced schedule failed its owning scheduler's bespoke
    /// re-validation (used by drivers whose schedule type has its own
    /// checker, e.g. the modulo pipeline's `ModuloSchedule::validate`).
    InvalidSchedule(String),
    /// A pool worker panicked while processing one item. The supervisor
    /// ([`crate::pool::run_indexed_fallible`]) contains the unwind, so
    /// one poisoned item degrades to this typed error instead of
    /// aborting the run.
    WorkerPanicked {
        /// Input-order index of the item whose processing panicked.
        index: usize,
        /// The failpoint site that injected the panic, when the panic
        /// came from [`vliw_fault`]; `None` for organic panics.
        site: Option<String>,
        /// The panic payload, when it was a string; a placeholder
        /// otherwise.
        payload: String,
    },
    /// A [`vliw_fault`] failpoint fired its `error` action at this site.
    FaultInjected {
        /// The failpoint site that fired.
        site: String,
        /// The configured message.
        message: String,
    },
}

impl fmt::Display for BindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BindError::Dfg(e) => write!(f, "invalid DFG: {e}"),
            BindError::MoveInInput { op } => {
                write!(
                    f,
                    "input DFG contains a move at {op}; bind original graphs only"
                )
            }
            BindError::Machine(e) => write!(f, "invalid machine: {e}"),
            BindError::Binding(e) => write!(f, "invalid binding: {e}"),
            BindError::Unsupported { op, op_type } => {
                write!(
                    f,
                    "no cluster can execute {op} ({op_type}): empty target set"
                )
            }
            BindError::Verification(violations) => {
                write!(
                    f,
                    "result failed verification ({} violations):",
                    violations.len()
                )?;
                for v in violations {
                    write!(f, "\n  - {v}")?;
                }
                Ok(())
            }
            BindError::InvalidSchedule(reason) => {
                write!(f, "result failed schedule validation: {reason}")
            }
            BindError::WorkerPanicked {
                index,
                site,
                payload,
            } => {
                write!(f, "worker panicked on item {index}")?;
                if let Some(site) = site {
                    write!(f, " (injected at {site})")?;
                }
                write!(f, ": {payload}")
            }
            BindError::FaultInjected { site, message } => {
                write!(f, "injected fault at {site}: {message}")
            }
        }
    }
}

impl Error for BindError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BindError::Dfg(e) => Some(e),
            BindError::Machine(e) => Some(e),
            BindError::Binding(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DfgError> for BindError {
    fn from(e: DfgError) -> Self {
        BindError::Dfg(e)
    }
}

impl From<MachineError> for BindError {
    fn from(e: MachineError) -> Self {
        BindError::Machine(e)
    }
}

impl From<BindingError> for BindError {
    fn from(e: BindingError) -> Self {
        BindError::Binding(e)
    }
}

impl From<vliw_fault::FaultError> for BindError {
    fn from(e: vliw_fault::FaultError) -> Self {
        BindError::FaultInjected {
            site: e.site,
            message: e.message,
        }
    }
}

/// Front-door validation shared by every fallible driver: checks the DFG
/// structure, rejects pre-existing moves, re-validates the machine
/// invariants (deserialized descriptions bypass the builder), and
/// requires a non-empty target set for every operation.
///
/// # Errors
///
/// The first problem found, as a [`BindError`].
pub fn validate_inputs(dfg: &Dfg, machine: &Machine) -> Result<(), BindError> {
    dfg.validate()?;
    if let Some(op) = dfg.op_ids().find(|&v| dfg.op_type(v) == OpType::Move) {
        return Err(BindError::MoveInInput { op });
    }
    machine.validate()?;
    if let Err(op) = machine.check_supports_dfg(dfg) {
        return Err(BindError::Unsupported {
            op,
            op_type: dfg.op_type(op),
        });
    }
    Ok(())
}

/// Runs the independent verifier ([`vliw_sched::verify`]) over a
/// materialized result, mapping any violations to
/// [`BindError::Verification`]. Shared by [`crate::Binder`] and the
/// downstream PCC/baseline drivers.
///
/// # Errors
///
/// [`BindError::Verification`] carrying every violation found.
pub fn verify_result(
    dfg: &Dfg,
    machine: &Machine,
    result: &crate::driver::BindingResult,
) -> Result<(), BindError> {
    verify_result_traced(dfg, machine, result, &vliw_trace::Tracer::off())
}

/// [`verify_result`] with the verifier's wall clock recorded under a
/// `verify` phase span on `tracer` (see [`vliw_sched::verify_traced`]).
///
/// # Errors
///
/// [`BindError::Verification`] carrying every violation found.
pub fn verify_result_traced(
    dfg: &Dfg,
    machine: &Machine,
    result: &crate::driver::BindingResult,
    tracer: &vliw_trace::Tracer,
) -> Result<(), BindError> {
    let violations = vliw_sched::verify_traced(
        dfg,
        machine,
        &result.binding,
        &result.bound,
        &result.schedule,
        tracer,
    );
    if violations.is_empty() {
        Ok(())
    } else {
        Err(BindError::Verification(violations))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_dfg::DfgBuilder;

    #[test]
    fn accepts_well_formed_inputs() {
        let mut b = DfgBuilder::new();
        let a = b.add_op(OpType::Add, &[]);
        let _ = b.add_op(OpType::Mul, &[a]);
        let dfg = b.finish().expect("acyclic");
        let machine = Machine::parse("[1,1|1,1]").expect("machine");
        assert_eq!(validate_inputs(&dfg, &machine), Ok(()));
    }

    #[test]
    fn rejects_unsupported_operations() {
        let mut b = DfgBuilder::new();
        let _ = b.add_op(OpType::Mul, &[]);
        let dfg = b.finish().expect("acyclic");
        let no_mul = Machine::parse("[2,0|3,0]").expect("machine");
        assert!(matches!(
            validate_inputs(&dfg, &no_mul),
            Err(BindError::Unsupported {
                op_type: OpType::Mul,
                ..
            })
        ));
    }

    #[test]
    fn rejects_moves_in_input() {
        let mut b = DfgBuilder::new();
        let a = b.add_op(OpType::Add, &[]);
        let _ = b.add_op(OpType::Move, &[a]);
        let dfg = b.finish().expect("acyclic");
        let machine = Machine::parse("[1,1]").expect("machine");
        assert!(matches!(
            validate_inputs(&dfg, &machine),
            Err(BindError::MoveInInput { .. })
        ));
    }

    #[test]
    fn error_conversions_and_display() {
        let e: BindError = DfgError::Cycle.into();
        assert!(e.to_string().contains("cycle"));
        let e: BindError = MachineError::NoBus.into();
        assert!(e.to_string().contains("bus"));
        let e: BindError = BindingError::WrongLength {
            got: 1,
            expected: 2,
        }
        .into();
        assert!(e.to_string().contains("entries"));
        let e = BindError::Verification(vec![Violation::BusOverload {
            cycle: 3,
            used: 4,
            capacity: 2,
        }]);
        let text = e.to_string();
        assert!(
            text.contains("1 violations") && text.contains("cycle 3"),
            "{text}"
        );
    }

    #[test]
    fn fault_variants_display_their_site() {
        let e = BindError::WorkerPanicked {
            index: 7,
            site: Some("eval.candidate".into()),
            payload: "chaos".into(),
        };
        let text = e.to_string();
        assert!(
            text.contains("item 7") && text.contains("eval.candidate") && text.contains("chaos"),
            "{text}"
        );
        let organic = BindError::WorkerPanicked {
            index: 0,
            site: None,
            payload: "oops".into(),
        };
        assert!(!organic.to_string().contains("injected"));
        let e: BindError = vliw_fault::FaultError {
            site: "sched.list".into(),
            message: "boom".into(),
        }
        .into();
        assert_eq!(
            e,
            BindError::FaultInjected {
                site: "sched.list".into(),
                message: "boom".into(),
            }
        );
        assert!(e.to_string().contains("sched.list"));
    }
}
