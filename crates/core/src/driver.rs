//! The driver algorithm (paper Section 3): sweep B-INIT over the
//! load-profile latency and binding direction, pick the best by actual
//! list-schedule quality, then refine with B-ITER.

use crate::budget::Budget;
use crate::config::BinderConfig;
use crate::error::{validate_inputs, BindError};
use crate::eval::{EvalStats, Evaluator};
use crate::init::initial_binding;
use crate::iter;
use crate::stats::PhaseStats;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use vliw_analysis::{analyze, BoundReport, Infeasibility};
use vliw_datapath::Machine;
use vliw_dfg::{critical_path_len, Dfg};
use vliw_sched::{Binding, BoundDfg, ListScheduler, Schedule};
use vliw_trace::{PhaseCollector, SpanCat, TraceSink, Tracer};

/// The certified latency floor of a `(dfg, machine)` pair: the maximum
/// over every bound [`vliw_analysis::analyze`] derives — critical path,
/// per-class resource and interval (window) bounds, and the
/// bus-bandwidth bound implied by forced transfers. No binding of `dfg`
/// on `machine` can schedule below it.
///
/// This strengthens the historical contract, which ignored op-class /
/// FU-class compatibility (it divided each class's op count by that
/// class's *total* FU count but knew nothing of windows or forced
/// transfers); every value returned now is still a true lower bound,
/// just never weaker than before. The driver uses it (together with the
/// analyzer's transfer floor) to stop sweeping or descending the moment
/// an incumbent provably cannot be beaten.
pub fn resource_lower_bound(dfg: &Dfg, machine: &Machine) -> u32 {
    analyze(dfg, machine).latency_bound()
}

/// Maps an analyzer infeasibility certificate onto the pipeline's typed
/// error, naming the first witness operation. `None` only for a
/// certificate with an empty witness set, which the analyzer never
/// emits.
fn infeasibility_error(dfg: &Dfg, inf: &Infeasibility) -> Option<BindError> {
    let Infeasibility::NoCompatibleFu { ops, .. } = inf;
    let &op = ops.first()?;
    Some(BindError::Unsupported {
        op,
        op_type: dfg.op_type(op),
    })
}

/// The outcome of binding a DFG: the binding itself, the bound graph with
/// materialized transfers, and its list schedule.
///
/// The paper's tables report this as an `L/M` pair —
/// [`BindingResult::latency`] / [`BindingResult::moves`].
#[derive(Debug, Clone)]
pub struct BindingResult {
    /// The operation-to-cluster assignment.
    pub binding: Binding,
    /// The bound DFG (original operations plus inserted transfers).
    pub bound: BoundDfg,
    /// The list schedule of the bound DFG.
    pub schedule: Schedule,
}

impl BindingResult {
    /// Materializes the bound graph for `binding` and schedules it —
    /// the evaluation step used throughout the driver and B-ITER.
    ///
    /// # Panics
    ///
    /// Panics if the binding is incomplete or mismatched with `dfg`, or
    /// when an armed [`vliw_fault`] failpoint fires at the `sched.list`
    /// site (contained as a typed error by the supervised entry points).
    pub fn evaluate(dfg: &Dfg, machine: &Machine, binding: Binding) -> Self {
        Self::evaluate_with(dfg, machine, binding, &mut vliw_sched::SchedArena::new())
    }

    /// [`BindingResult::evaluate`] with a caller-owned scheduling arena:
    /// a warm arena makes the steady-state evaluation allocation-free.
    /// Bit-identical to a fresh arena — the arena only recycles scratch
    /// capacity, never scheduling state.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`BindingResult::evaluate`].
    pub fn evaluate_with(
        dfg: &Dfg,
        machine: &Machine,
        binding: Binding,
        arena: &mut vliw_sched::SchedArena,
    ) -> Self {
        let bound = BoundDfg::new_in(dfg, machine, &binding, arena.bound_scratch());
        // The list-scheduler invocation has no error channel, so faults
        // injected here surface as supervised panics.
        vliw_fault::point_infallible("sched.list");
        let schedule = ListScheduler::new(machine).schedule_with(&bound, arena);
        BindingResult {
            binding,
            bound,
            schedule,
        }
    }

    /// Returns this result's bound-graph storage to `arena`'s
    /// construction pool, making the next [`BindingResult::evaluate_with`]
    /// against the same arena allocation-free. Called on evaluation
    /// results that are reduced to metrics and discarded (the bulk of a
    /// descent's neighborhood).
    pub fn recycle_into(self, arena: &mut vliw_sched::SchedArena) {
        self.bound.dismantle_into(arena.bound_scratch());
    }

    /// Schedule latency `L` in cycles.
    pub fn latency(&self) -> u32 {
        self.schedule.latency()
    }

    /// Number of inserted data transfers `N_MV`.
    pub fn moves(&self) -> usize {
        self.bound.move_count()
    }

    /// The `(L, N_MV)` pair as reported in the paper's tables.
    pub fn lm(&self) -> (u32, usize) {
        (self.latency(), self.moves())
    }
}

/// Counters reported by [`Binder::try_bind_with_stats`]: the evaluation
/// cache statistics of the run, whether a budget limit
/// ([`BinderConfig::deadline_ms`] / [`BinderConfig::max_iter_rounds`])
/// cut the search short, and — with [`BinderConfig::trace`] on — the
/// per-phase breakdown derived from the run's trace event stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BindStats {
    /// Evaluation-cache counters of the run.
    pub eval: EvalStats,
    /// Whether the search stopped early on an exhausted budget. The
    /// returned result is still the best *fully evaluated* (and, with
    /// [`BinderConfig::verify`] on, verified) binding found so far.
    pub truncated: bool,
    /// Per-phase elapsed times and counters, folded from the same trace
    /// events any attached [`TraceSink`] saw. Empty when
    /// [`BinderConfig::trace`] is off.
    #[serde(default)]
    pub phases: PhaseStats,
    /// The certified latency lower bound of the instance
    /// ([`vliw_analysis::BoundReport::latency_bound`]): no binding can
    /// schedule in fewer cycles.
    #[serde(default)]
    pub lower_bound: u32,
    /// The certified transfer lower bound
    /// ([`vliw_analysis::BoundReport::moves_bound`]): every binding
    /// materializes at least this many inter-cluster moves.
    #[serde(default)]
    pub moves_lower_bound: usize,
    /// Relative gap of the returned latency to the certified bound,
    /// `(L − LB) / LB` (`0.0` for the degenerate `LB = 0` empty-DFG
    /// case). `0.0` means the latency is certifiably optimal.
    #[serde(default)]
    pub optimality_gap: f64,
    /// Whether the returned result is *provably* lexicographically
    /// optimal: its `(L, N_MV)` equals the certified
    /// `(lower_bound, moves_lower_bound)` pair, so no other binding can
    /// beat either component. `false` only means the certificates were
    /// not strong enough to prove it — the result may still be optimal.
    #[serde(default)]
    pub proved_optimal: bool,
    /// Snapshot of the process-global [`vliw_metrics`] registry taken
    /// when the run finished — counters, gauges and latency histograms
    /// accumulated by every instrumented subsystem (evaluator, worker
    /// pool, descents, verifier). `None` unless the embedding process
    /// enabled the registry with [`vliw_metrics::set_enabled`]; note the
    /// totals are process-wide, not per-run.
    #[serde(default)]
    pub metrics: Option<crate::stats::MetricsStats>,
}

impl BindStats {
    /// Fraction of evaluations served from the memo (see
    /// [`EvalStats::hit_rate`]).
    pub fn hit_rate(&self) -> f64 {
        self.eval.hit_rate()
    }

    /// Assembles the stats of one run from its counters and the
    /// analyzer report the run was steered by.
    fn from_run(
        result: &BindingResult,
        report: &BoundReport,
        eval: EvalStats,
        truncated: bool,
        phases: PhaseStats,
    ) -> Self {
        let (lb_l, lb_m) = report.lm_bound();
        let gap = if lb_l == 0 {
            0.0
        } else {
            f64::from(result.latency() - lb_l) / f64::from(lb_l)
        };
        BindStats {
            eval,
            truncated,
            phases,
            lower_bound: lb_l,
            moves_lower_bound: lb_m,
            optimality_gap: gap,
            proved_optimal: result.lm() == (lb_l, lb_m),
            metrics: vliw_metrics::enabled()
                .then(|| crate::stats::MetricsStats::from(vliw_metrics::snapshot())),
        }
    }
}

/// One point of the B-INIT parameter sweep: the greedy binding produced
/// at load-profile latency `l_pr` in the given direction.
#[derive(Debug, Clone)]
struct SweepPoint {
    binding: Binding,
    l_pr: u32,
    reverse: bool,
}

/// Emits the instantaneous detail span recording one evaluated sweep
/// point (`L_PR`, direction, resulting `(L, N_MV)`).
fn trace_sweep_point(tracer: &Tracer, point: &SweepPoint, lm: (u32, usize)) {
    if !tracer.is_enabled() {
        return;
    }
    let _point = tracer.span(
        SpanCat::Detail,
        "sweep_point",
        vec![
            ("l_pr", point.l_pr.into()),
            ("reverse", point.reverse.into()),
            ("latency", lm.0.into()),
            ("moves", lm.1.into()),
        ],
    );
}

/// The binding driver: B-INIT parameter sweep plus B-ITER refinement.
///
/// # Example
///
/// ```
/// use vliw_binding::{Binder, BinderConfig};
/// use vliw_datapath::Machine;
/// use vliw_dfg::{DfgBuilder, OpType};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = DfgBuilder::new();
/// let x = b.add_op(OpType::Mul, &[]);
/// let y = b.add_op(OpType::Mul, &[]);
/// let _ = b.add_op(OpType::Add, &[x, y]);
/// let dfg = b.finish()?;
/// let machine = Machine::parse("[1,1|1,1]")?;
///
/// // Phase 1 only: the full B-INIT sweep (it can stop early when a
/// // candidate provably cannot be beaten, but still evaluates every
/// // sweep point otherwise — it is cheaper than `bind`, not free).
/// let quick = Binder::new(&machine).bind_initial(&dfg);
/// // Full quality: initial + iterative improvement.
/// let best = Binder::new(&machine).bind(&dfg);
/// assert!(best.latency() <= quick.latency());
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct Binder<'m> {
    machine: &'m Machine,
    config: BinderConfig,
    sinks: Vec<Arc<dyn TraceSink>>,
}

impl std::fmt::Debug for Binder<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Binder")
            .field("machine", &self.machine)
            .field("config", &self.config)
            .field("sinks", &self.sinks.len())
            .finish()
    }
}

impl<'m> Binder<'m> {
    /// A binder with the paper's default configuration.
    pub fn new(machine: &'m Machine) -> Self {
        Binder {
            machine,
            config: BinderConfig::default(),
            sinks: Vec::new(),
        }
    }

    /// A binder with an explicit configuration (ablations, tuning).
    pub fn with_config(machine: &'m Machine, config: BinderConfig) -> Self {
        Binder {
            machine,
            config,
            sinks: Vec::new(),
        }
    }

    /// Attaches a sink that receives this binder's trace events.
    /// Inert unless [`BinderConfig::trace`] is on — attaching a sink
    /// deliberately does *not* enable tracing, so a wired-up-but-disabled
    /// binder emits exactly zero events.
    pub fn with_trace_sink(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.sinks.push(sink);
        self
    }

    /// The tracer of one run plus the collector backing
    /// [`BindStats::phases`]. With [`BinderConfig::trace`] off this is
    /// the null tracer: no collector, no events, a single branch per
    /// call site.
    fn run_tracer(&self) -> (Tracer, Option<Arc<PhaseCollector>>) {
        if !self.config.trace {
            return (Tracer::off(), None);
        }
        let collector = Arc::new(PhaseCollector::new());
        let mut sinks: Vec<Arc<dyn TraceSink>> = vec![collector.clone()];
        sinks.extend(self.sinks.iter().cloned());
        if let Some(global) = vliw_trace::global_sink() {
            sinks.push(global);
        }
        (Tracer::with_sinks(sinks), Some(collector))
    }

    /// The active configuration.
    pub fn config(&self) -> &BinderConfig {
        &self.config
    }

    /// The target machine.
    pub fn machine(&self) -> &Machine {
        self.machine
    }

    /// Phase 1 only — **B-INIT** under the driver's parameter sweep
    /// (Sections 3.1.3–3.1.4): runs the greedy binding over the
    /// `L_PR ∈ {L_CP, …}` × direction grid, evaluates the candidates
    /// with a real list schedule, and returns the lexicographically best
    /// `(L, N_MV)`. The sweep stops early once a candidate reaches the
    /// analyzer's certified `(latency, transfers)` floor
    /// ([`vliw_analysis::BoundReport::lm_bound`]) — nothing later in the
    /// sweep can beat a bound that every binding obeys, so the result is
    /// identical to the exhaustive sweep either way.
    ///
    /// # Panics
    ///
    /// Panics if the machine cannot execute some operation of `dfg`
    /// (empty target set) or `dfg` already contains `move` operations.
    /// Use [`Binder::try_bind_initial`] for a fallible variant.
    pub fn bind_initial(&self, dfg: &Dfg) -> BindingResult {
        self.try_bind_initial(dfg)
            .unwrap_or_else(|e| panic!("binding failed: {e}"))
    }

    /// Fallible [`Binder::bind_initial`]: validates the inputs up front
    /// and, with [`BinderConfig::verify`] on, re-checks the returned
    /// result with the independent verifier.
    ///
    /// # Errors
    ///
    /// A [`BindError`] for malformed inputs or a result failing
    /// verification.
    pub fn try_bind_initial(&self, dfg: &Dfg) -> Result<BindingResult, BindError> {
        Ok(self.try_bind_initial_with_stats(dfg)?.0)
    }

    /// [`Binder::try_bind_initial`], also reporting the run's
    /// [`BindStats`] (phase timings and eval counters under
    /// [`BinderConfig::trace`]).
    ///
    /// # Errors
    ///
    /// A [`BindError`] for malformed inputs or a result failing
    /// verification.
    pub fn try_bind_initial_with_stats(
        &self,
        dfg: &Dfg,
    ) -> Result<(BindingResult, BindStats), BindError> {
        validate_inputs(dfg, self.machine)?;
        let report = analyze(dfg, self.machine);
        if let Some(e) = report
            .infeasible
            .as_ref()
            .and_then(|inf| infeasibility_error(dfg, inf))
        {
            return Err(e);
        }
        let (tracer, collector) = self.run_tracer();
        let run_span = tracer.span(SpanCat::Phase, "run", vec![("ops", dfg.len().into())]);
        let budget = Budget::new(&self.config).with_tracer(tracer.clone(), &self.config);
        let evaluator = Evaluator::new(dfg, self.machine, &self.config).with_tracer(tracer.clone());
        let result = self.bind_initial_eval(dfg, &evaluator, &budget, &report)?;
        self.verify_result(dfg, &result, &tracer)?;
        if tracer.is_enabled() {
            tracer.counter("result_latency", u64::from(result.latency()), vec![]);
            tracer.counter("result_moves", result.moves() as u64, vec![]);
        }
        drop(run_span);
        let stats = BindStats::from_run(
            &result,
            &report,
            evaluator.stats(),
            budget.truncated(),
            collector.map_or_else(PhaseStats::default, |c| PhaseStats::from(c.totals())),
        );
        Ok((result, stats))
    }

    /// [`Binder::bind_initial`] against a caller-supplied evaluator, so
    /// the memo carries over into later phases. Only the winning sweep
    /// point is materialized into a full result; the sweep itself runs on
    /// memoized [`crate::EvalOutcome`] metrics. At least one chunk of
    /// sweep points is always evaluated, so an already-expired budget
    /// still yields a real (best-of-first-chunk) binding.
    fn bind_initial_eval(
        &self,
        dfg: &Dfg,
        evaluator: &Evaluator<'_>,
        budget: &Budget,
        report: &BoundReport,
    ) -> Result<BindingResult, BindError> {
        let tracer = evaluator.tracer();
        let _phase = tracer.span(SpanCat::Phase, "b_init", vec![]);
        // A candidate meeting the certified `(L, N_MV)` floor is
        // lexicographically unbeatable — both components are
        // simultaneous lower bounds — so the sweep may stop there
        // without changing its result.
        let floor = report.lm_bound();
        // Evaluate a pool of sweep points at a time: big enough to keep
        // the workers busy, small enough that the early exit still skips
        // most of the sweep when the floor is reached quickly.
        let chunk = if evaluator.threads() > 1 {
            evaluator.threads() * 2
        } else {
            1
        };
        let mut best: Option<((u32, usize), Binding)> = None;
        for batch in self.sweep_points(dfg, report).chunks(chunk) {
            let bindings: Vec<Binding> = batch.iter().map(|p| p.binding.clone()).collect();
            for (point, outcome) in batch.iter().zip(evaluator.try_outcomes(&bindings)?) {
                trace_sweep_point(tracer, point, outcome.lm());
                if outcome.lm() == floor {
                    return evaluator.try_evaluate(point.binding.clone());
                }
                if best.as_ref().is_none_or(|(lm, _)| outcome.lm() < *lm) {
                    best = Some((outcome.lm(), point.binding.clone()));
                }
            }
            if budget.expired() {
                break;
            }
        }
        let (_, binding) = best.expect("the L_PR sweep is never empty"); // lint:allow(no-panic)
        evaluator.try_evaluate(binding)
    }

    /// The *distinct* sweep points produced by the B-INIT parameter
    /// sweep, in sweep order (before evaluation). A binding reachable
    /// from several `(L_PR, direction)` parameters is kept at its first
    /// occurrence, exactly as the pre-dedup enumeration visits it.
    fn sweep_points(&self, dfg: &Dfg, report: &BoundReport) -> Vec<SweepPoint> {
        let lat = self.machine.op_latencies(dfg);
        let l_cp = critical_path_len(dfg, &lat);
        // With `lpr_anchor_bound` on, the grid starts at the certified
        // latency floor: profiles for target latencies no schedule can
        // meet only mislead the greedy pass. Off (the default), the
        // grid is the paper's bare `L_CP` anchor, bit-identically.
        let anchor = if self.config.lpr_anchor_bound {
            l_cp.max(report.latency_bound())
        } else {
            l_cp
        };
        let directions: &[bool] = if self.config.try_reverse {
            &[false, true]
        } else {
            &[false]
        };
        let mut points: Vec<SweepPoint> = Vec::new();
        for l_pr in self.config.lpr_values(anchor) {
            for &reverse in directions {
                let binding = initial_binding(dfg, self.machine, &self.config, l_pr, reverse);
                if !points.iter().any(|p| p.binding == binding) {
                    points.push(SweepPoint {
                        binding,
                        l_pr,
                        reverse,
                    });
                }
            }
        }
        points
    }

    /// All *distinct* bindings produced by the driver sweep, evaluated
    /// and sorted best-first by `(L, N_MV)`. [`Binder::bind`] refines the
    /// top [`BinderConfig::improve_starts`] of these with B-ITER.
    ///
    /// # Panics
    ///
    /// Panics when an armed [`vliw_fault`] failpoint fires during the
    /// sweep; the fallible driver entry points contain such faults as
    /// typed errors.
    pub fn initial_candidates(&self, dfg: &Dfg) -> Vec<BindingResult> {
        let evaluator = Evaluator::new(dfg, self.machine, &self.config);
        let report = analyze(dfg, self.machine);
        self.initial_candidates_eval(dfg, &evaluator, &Budget::unlimited(), &report)
            .unwrap_or_else(|e| panic!("binding failed: {e}"))
    }

    /// [`Binder::initial_candidates`] against a caller-supplied
    /// evaluator. The stable sort preserves sweep order among equal
    /// `(L, N_MV)` pairs, so the outcome does not depend on thread count
    /// or cache state. With a deadline set, sweep points are evaluated a
    /// chunk at a time and an expiring clock stops after the current
    /// chunk — the first chunk always completes, so at least one
    /// candidate is returned.
    fn initial_candidates_eval(
        &self,
        dfg: &Dfg,
        evaluator: &Evaluator<'_>,
        budget: &Budget,
        report: &BoundReport,
    ) -> Result<Vec<BindingResult>, BindError> {
        let tracer = evaluator.tracer();
        let _phase = tracer.span(SpanCat::Phase, "b_init", vec![]);
        let points = self.sweep_points(dfg, report);
        let chunk = if budget.has_deadline() {
            (evaluator.threads() * 2).max(1)
        } else {
            points.len().max(1)
        };
        let mut results: Vec<BindingResult> = Vec::with_capacity(points.len());
        for batch in points.chunks(chunk) {
            let bindings: Vec<Binding> = batch.iter().map(|p| p.binding.clone()).collect();
            let evaluated = evaluator.try_evaluate_all(bindings)?;
            for (point, result) in batch.iter().zip(&evaluated) {
                trace_sweep_point(tracer, point, result.lm());
            }
            results.extend(evaluated);
            if budget.expired() {
                break;
            }
        }
        results.sort_by_key(BindingResult::lm);
        Ok(results)
    }

    /// Phase 2 — **B-ITER** refinement of an existing result
    /// (Section 3.2).
    ///
    /// # Panics
    ///
    /// Panics on the [`Binder::try_improve`] error conditions.
    pub fn improve(&self, dfg: &Dfg, start: BindingResult) -> BindingResult {
        iter::improve(dfg, self.machine, &self.config, start)
    }

    /// Fallible [`Binder::improve`]: validates the inputs and the
    /// starting binding, runs both B-ITER descents under the configured
    /// budget, and (with [`BinderConfig::verify`] on) re-checks the
    /// refined result.
    ///
    /// # Errors
    ///
    /// A [`BindError`] for malformed inputs, a starting binding that is
    /// illegal for this DFG/machine pair, or a result failing
    /// verification.
    pub fn try_improve(&self, dfg: &Dfg, start: BindingResult) -> Result<BindingResult, BindError> {
        validate_inputs(dfg, self.machine)?;
        start.binding.validate(dfg, self.machine)?;
        let report = analyze(dfg, self.machine);
        let (tracer, _collector) = self.run_tracer();
        let run_span = tracer.span(SpanCat::Phase, "run", vec![("ops", dfg.len().into())]);
        let budget = Budget::new(&self.config).with_tracer(tracer.clone(), &self.config);
        let evaluator = Evaluator::new(dfg, self.machine, &self.config).with_tracer(tracer.clone());
        let improved = iter::improve_eval_budgeted(
            &evaluator,
            &self.config,
            start,
            &budget,
            Some(report.lm_bound()),
        )?;
        self.verify_result(dfg, &improved, &tracer)?;
        drop(run_span);
        Ok(improved)
    }

    /// The complete algorithm: B-INIT sweep followed by B-ITER on the
    /// top [`BinderConfig::improve_starts`] distinct initial bindings,
    /// keeping the best refined result. One [`Evaluator`] is shared by
    /// every phase, so its memo spans the sweep, all starts and both
    /// descent passes.
    ///
    /// # Panics
    ///
    /// Panics on the [`Binder::try_bind`] error conditions. Use
    /// [`Binder::try_bind`] for a fallible variant.
    pub fn bind(&self, dfg: &Dfg) -> BindingResult {
        self.try_bind(dfg)
            .unwrap_or_else(|e| panic!("binding failed: {e}"))
    }

    /// Fallible [`Binder::bind`]: rejects malformed inputs with a typed
    /// [`BindError`] instead of panicking, bounds the search by
    /// [`BinderConfig::deadline_ms`] / [`BinderConfig::max_iter_rounds`],
    /// and (with [`BinderConfig::verify`] on) re-checks the final result
    /// with the independent verifier.
    ///
    /// # Errors
    ///
    /// A [`BindError`] for malformed inputs or a result failing
    /// verification.
    pub fn try_bind(&self, dfg: &Dfg) -> Result<BindingResult, BindError> {
        Ok(self.try_bind_with_stats(dfg)?.0)
    }

    /// [`Binder::bind`], also reporting the run's [`BindStats`] (for the
    /// benchmark harness and budget-aware callers).
    ///
    /// # Panics
    ///
    /// Panics on the [`Binder::try_bind`] error conditions.
    pub fn bind_with_stats(&self, dfg: &Dfg) -> (BindingResult, BindStats) {
        self.try_bind_with_stats(dfg)
            .unwrap_or_else(|e| panic!("binding failed: {e}"))
    }

    /// Fallible [`Binder::bind_with_stats`]: the full pipeline with
    /// input validation, budgeted descents and optional result
    /// verification. An exhausted budget is not an error — the best
    /// result found so far comes back with `truncated: true` in the
    /// stats.
    ///
    /// # Errors
    ///
    /// A [`BindError`] for malformed inputs or a result failing
    /// verification.
    pub fn try_bind_with_stats(&self, dfg: &Dfg) -> Result<(BindingResult, BindStats), BindError> {
        validate_inputs(dfg, self.machine)?;
        let report = analyze(dfg, self.machine);
        if let Some(e) = report
            .infeasible
            .as_ref()
            .and_then(|inf| infeasibility_error(dfg, inf))
        {
            return Err(e);
        }
        let (tracer, collector) = self.run_tracer();
        let run_span = tracer.span(SpanCat::Phase, "run", vec![("ops", dfg.len().into())]);
        let budget = Budget::new(&self.config).with_tracer(tracer.clone(), &self.config);
        let evaluator = Evaluator::new(dfg, self.machine, &self.config).with_tracer(tracer.clone());
        let starts = self.config.improve_starts.max(1);
        // The certified lexicographic floor: an incumbent reaching it is
        // provably optimal, so remaining starts (and descent rounds —
        // see `iter::improve_eval_budgeted`) can be skipped without
        // changing the returned `(L, N_MV)`.
        let floor = report.lm_bound();
        let mut best: Option<BindingResult> = None;
        for start in self
            .initial_candidates_eval(dfg, &evaluator, &budget, &report)?
            .into_iter()
            .take(starts)
        {
            let improved =
                iter::improve_eval_budgeted(&evaluator, &self.config, start, &budget, Some(floor))?;
            if best.as_ref().is_none_or(|b| improved.lm() < b.lm()) {
                best = Some(improved);
            }
            if best.as_ref().is_some_and(|b| b.lm() == floor) || budget.expired() {
                break;
            }
        }
        let best = best.expect("at least one initial candidate exists"); // lint:allow(no-panic)
        self.verify_result(dfg, &best, &tracer)?;
        if tracer.is_enabled() {
            tracer.counter("result_latency", u64::from(best.latency()), vec![]);
            tracer.counter("result_moves", best.moves() as u64, vec![]);
        }
        drop(run_span);
        let stats = BindStats::from_run(
            &best,
            &report,
            evaluator.stats(),
            budget.truncated(),
            collector.map_or_else(PhaseStats::default, |c| PhaseStats::from(c.totals())),
        );
        Ok((best, stats))
    }

    /// Runs the independent verifier over a materialized result when
    /// [`BinderConfig::verify`] is on, its wall clock recorded under a
    /// `verify` phase span.
    fn verify_result(
        &self,
        dfg: &Dfg,
        result: &BindingResult,
        tracer: &Tracer,
    ) -> Result<(), BindError> {
        if !self.config.verify {
            return Ok(());
        }
        crate::error::verify_result_traced(dfg, self.machine, result, tracer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_dfg::{DfgBuilder, OpType};

    /// A two-chain graph wide enough to benefit from both clusters.
    fn two_chains(len: usize) -> Dfg {
        let mut b = DfgBuilder::new();
        for _ in 0..2 {
            let mut prev = b.add_op(OpType::Add, &[]);
            for _ in 1..len {
                prev = b.add_op(OpType::Add, &[prev]);
            }
        }
        b.finish().expect("acyclic")
    }

    #[test]
    fn bind_initial_achieves_ideal_split() {
        let dfg = two_chains(5);
        let machine = Machine::parse("[1,1|1,1]").expect("machine");
        let result = Binder::new(&machine).bind_initial(&dfg);
        assert_eq!(result.latency(), 5);
        assert_eq!(result.moves(), 0);
        result
            .schedule
            .validate(&result.bound, &machine)
            .expect("valid schedule");
    }

    #[test]
    fn bind_never_worse_than_bind_initial() {
        let mut b = DfgBuilder::new();
        let mut frontier = Vec::new();
        for _ in 0..4 {
            frontier.push(b.add_op(OpType::Mul, &[]));
        }
        while frontier.len() > 1 {
            let x = frontier.remove(0);
            let y = frontier.remove(0);
            frontier.push(b.add_op(OpType::Add, &[x, y]));
        }
        let dfg = b.finish().expect("acyclic");
        let machine = Machine::parse("[1,1|1,1]").expect("machine");
        let binder = Binder::new(&machine);
        let init = binder.bind_initial(&dfg);
        let full = binder.bind(&dfg);
        assert!(full.lm() <= init.lm());
    }

    #[test]
    fn single_cluster_machine_is_trivially_bound() {
        let dfg = two_chains(3);
        let machine = Machine::parse("[2,1]").expect("machine");
        let result = Binder::new(&machine).bind(&dfg);
        assert_eq!(result.moves(), 0);
        assert_eq!(result.latency(), 3);
    }

    #[test]
    fn empty_dfg_binds_to_empty_result() {
        let dfg = DfgBuilder::new().finish().expect("empty");
        let machine = Machine::parse("[1,1|1,1]").expect("machine");
        let result = Binder::new(&machine).bind(&dfg);
        assert_eq!(result.latency(), 0);
        assert_eq!(result.moves(), 0);
    }

    #[test]
    fn heterogeneous_machine_respected_end_to_end() {
        // Mul-heavy DFG on a machine whose cluster 0 has no multiplier.
        let mut b = DfgBuilder::new();
        let mut prev = b.add_op(OpType::Mul, &[]);
        for _ in 0..3 {
            let other = b.add_op(OpType::Mul, &[]);
            prev = b.add_op(OpType::Add, &[prev, other]);
        }
        let dfg = b.finish().expect("acyclic");
        let machine = Machine::parse("[3,0|1,2]").expect("machine");
        let result = Binder::new(&machine).bind(&dfg);
        assert!(result.binding.validate(&dfg, &machine).is_ok());
        result
            .schedule
            .validate(&result.bound, &machine)
            .expect("valid schedule");
    }

    #[test]
    fn lm_pairs_order_latency_first() {
        let dfg = two_chains(4);
        let machine = Machine::parse("[1,1|1,1]").expect("machine");
        let r = Binder::new(&machine).bind(&dfg);
        assert_eq!(r.lm(), (r.latency(), r.moves()));
    }

    #[test]
    fn config_accessors() {
        let machine = Machine::parse("[1,1]").expect("machine");
        let binder = Binder::new(&machine);
        assert_eq!(binder.config().gamma, 1.1);
        assert_eq!(binder.machine().cluster_count(), 1);
    }

    #[test]
    fn try_bind_rejects_unsupported_operations() {
        let mut b = DfgBuilder::new();
        let _ = b.add_op(OpType::Mul, &[]);
        let dfg = b.finish().expect("acyclic");
        let no_mul = Machine::parse("[2,0]").expect("machine");
        let err = Binder::new(&no_mul).try_bind(&dfg).unwrap_err();
        assert!(matches!(err, BindError::Unsupported { .. }), "{err}");
        assert!(Binder::new(&no_mul).try_bind_initial(&dfg).is_err());
    }

    #[test]
    fn try_bind_rejects_moves_in_input() {
        let mut b = DfgBuilder::new();
        let a = b.add_op(OpType::Add, &[]);
        let _ = b.add_op(vliw_dfg::OpType::Move, &[a]);
        let dfg = b.finish().expect("acyclic");
        let machine = Machine::parse("[1,1|1,1]").expect("machine");
        assert!(matches!(
            Binder::new(&machine).try_bind(&dfg),
            Err(BindError::MoveInInput { .. })
        ));
    }

    #[test]
    fn expired_deadline_still_returns_verified_result() {
        let dfg = two_chains(6);
        let machine = Machine::parse("[1,1|1,1]").expect("machine");
        let config = BinderConfig {
            deadline_ms: Some(0),
            verify: true,
            ..BinderConfig::default()
        };
        let (result, stats) = Binder::with_config(&machine, config)
            .try_bind_with_stats(&dfg)
            .expect("degrades gracefully, never errors on an expired clock");
        assert!(stats.truncated, "a 0 ms deadline must truncate the search");
        result
            .schedule
            .validate(&result.bound, &machine)
            .expect("best-so-far result is still legal");
        assert!(result.binding.validate(&dfg, &machine).is_ok());
    }

    #[test]
    fn round_cap_truncates_but_stays_valid() {
        // A butterfly ladder: each layer's adds read both results of the
        // previous layer, so no binding reaches the certified floor (a
        // split pays bus latency, one cluster pays serialization) and
        // the descents genuinely draw budget rounds — `two_chains` would
        // be proved optimal before the first round.
        let mut b = DfgBuilder::new();
        let mut layer = (b.add_op(OpType::Add, &[]), b.add_op(OpType::Add, &[]));
        for _ in 0..3 {
            let (x, y) = layer;
            layer = (
                b.add_op(OpType::Add, &[x, y]),
                b.add_op(OpType::Add, &[x, y]),
            );
        }
        let dfg = b.finish().expect("acyclic");
        let machine = Machine::parse("[1,1|1,1]").expect("machine");
        let config = BinderConfig {
            max_iter_rounds: Some(1),
            ..BinderConfig::default()
        };
        let binder = Binder::with_config(&machine, config);
        let (result, stats) = binder.try_bind_with_stats(&dfg).expect("binds");
        assert!(stats.truncated, "one round cannot finish both descents");
        result
            .schedule
            .validate(&result.bound, &machine)
            .expect("valid schedule");
        // An unbounded run must be at least as good.
        let full = Binder::new(&machine).bind(&dfg);
        assert!(full.lm() <= result.lm());
    }

    #[test]
    fn unbudgeted_runs_report_untruncated_stats() {
        let dfg = two_chains(4);
        let machine = Machine::parse("[1,1|1,1]").expect("machine");
        let (_, stats) = Binder::new(&machine).bind_with_stats(&dfg);
        assert!(!stats.truncated);
        assert_eq!(stats.hit_rate(), stats.eval.hit_rate());
    }

    #[test]
    fn try_improve_rejects_foreign_bindings() {
        let dfg = two_chains(3);
        let other = two_chains(4);
        let machine = Machine::parse("[1,1|1,1]").expect("machine");
        let binder = Binder::new(&machine);
        let start = binder.bind_initial(&other);
        assert!(matches!(
            binder.try_improve(&dfg, start),
            Err(BindError::Binding(_))
        ));
    }
}
