//! Exhaustive/exact binding for small DFGs — an optimality oracle.
//!
//! The paper notes that "in some cases we were able to verify that the
//! generated solutions were optimal (at our level of abstraction)". This
//! module provides that verification: a depth-first search over all
//! bindings, evaluating each leaf with the same list scheduler, with
//! cluster-permutation symmetry breaking on homogeneous machines and
//! early exit at provable lower bounds.
//!
//! Intended for graphs of a dozen operations or so; the search space is
//! `∏ |TS(v)|` and the caller supplies a hard cap.

use crate::driver::BindingResult;
use vliw_datapath::Machine;
use vliw_dfg::{topo_order, Dfg};
use vliw_sched::Binding;

/// Exhaustively searches all bindings of `dfg`, returning the one whose
/// list schedule minimizes `(L, N_MV)` lexicographically.
///
/// Returns `None` when the search space `∏ |TS(v)|` exceeds `max_leaves`
/// (after symmetry reduction), so callers can skip oversized instances
/// instead of hanging.
///
/// # Panics
///
/// Panics if some operation has an empty target set.
///
/// # Example
///
/// ```
/// use vliw_binding::{exact, Binder};
/// use vliw_datapath::Machine;
/// use vliw_dfg::{DfgBuilder, OpType};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = DfgBuilder::new();
/// let x = b.add_op(OpType::Add, &[]);
/// let y = b.add_op(OpType::Add, &[]);
/// let _ = b.add_op(OpType::Add, &[x, y]);
/// let dfg = b.finish()?;
/// let machine = Machine::parse("[1,1|1,1]")?;
/// let best = exact::bind_exhaustive(&dfg, &machine, 1 << 20).expect("small");
/// let heuristic = Binder::new(&machine).bind(&dfg);
/// assert_eq!(heuristic.latency(), best.latency()); // optimal here
/// # Ok(())
/// # }
/// ```
pub fn bind_exhaustive(dfg: &Dfg, machine: &Machine, max_leaves: u64) -> Option<BindingResult> {
    let order = topo_order(dfg).expect("acyclic");
    let target_sets: Vec<_> = order
        .iter()
        .map(|&v| {
            let ts = machine.target_set(dfg.op_type(v));
            assert!(!ts.is_empty(), "operation {v} has an empty target set");
            ts
        })
        .collect();

    // Size check (with first-op symmetry reduction on homogeneous
    // machines: any cluster permutation maps a solution to an equally
    // good one, so the first operation may be pinned).
    let symmetric = machine.is_homogeneous();
    let mut leaves: u64 = 1;
    for (i, ts) in target_sets.iter().enumerate() {
        let width = if i == 0 && symmetric {
            1
        } else {
            ts.len() as u64
        };
        leaves = leaves.saturating_mul(width);
        if leaves > max_leaves {
            return None;
        }
    }

    if dfg.is_empty() {
        let binding = Binding::unbound(dfg);
        return Some(BindingResult::evaluate(dfg, machine, binding));
    }

    // Binding-independent certified floor for early exit: the analyzer's
    // `(L, N_MV)` lower-bound pair. A leaf meeting both components is
    // lexicographically unbeatable, so the search may stop there.
    let lower = vliw_analysis::analyze(dfg, machine).lm_bound();

    let mut best: Option<BindingResult> = None;
    let mut binding = Binding::unbound(dfg);
    // One arena for the whole enumeration: every leaf evaluation after
    // the first reuses its scratch buffers in place.
    let mut arena = vliw_sched::SchedArena::new();
    search(
        dfg,
        machine,
        &order,
        &target_sets,
        0,
        symmetric,
        lower,
        &mut binding,
        &mut best,
        &mut arena,
    );
    best
}

#[allow(clippy::too_many_arguments)]
fn search(
    dfg: &Dfg,
    machine: &Machine,
    order: &[vliw_dfg::OpId],
    target_sets: &[Vec<vliw_datapath::ClusterId>],
    depth: usize,
    symmetric: bool,
    lower: (u32, usize),
    binding: &mut Binding,
    best: &mut Option<BindingResult>,
    arena: &mut vliw_sched::SchedArena,
) {
    // Early exit once a provably optimal solution (one meeting the
    // certified `(L, N_MV)` floor) is in hand.
    if let Some(b) = best {
        if b.lm() == lower {
            return;
        }
    }
    if depth == order.len() {
        let result = BindingResult::evaluate_with(dfg, machine, binding.clone(), arena);
        if best.as_ref().is_none_or(|b| result.lm() < b.lm()) {
            *best = Some(result);
        }
        return;
    }
    let v = order[depth];
    let choices: &[vliw_datapath::ClusterId] = if depth == 0 && symmetric {
        &target_sets[0][..1]
    } else {
        &target_sets[depth]
    };
    for &c in choices {
        binding.bind(v, c);
        search(
            dfg,
            machine,
            order,
            target_sets,
            depth + 1,
            symmetric,
            lower,
            binding,
            best,
            arena,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Binder;
    use vliw_dfg::{DfgBuilder, OpType};

    #[test]
    fn exhaustive_finds_obvious_optimum() {
        // Two independent 3-chains on two 1-ALU clusters: optimum 3/0.
        let mut b = DfgBuilder::new();
        for _ in 0..2 {
            let mut prev = b.add_op(OpType::Add, &[]);
            for _ in 0..2 {
                prev = b.add_op(OpType::Add, &[prev]);
            }
        }
        let dfg = b.finish().expect("acyclic");
        let machine = Machine::parse("[1,1|1,1]").expect("machine");
        let best = bind_exhaustive(&dfg, &machine, 1 << 20).expect("small instance");
        assert_eq!(best.lm(), (3, 0));
    }

    #[test]
    fn returns_none_when_space_exceeds_cap() {
        let mut b = DfgBuilder::new();
        for _ in 0..20 {
            b.add_op(OpType::Add, &[]);
        }
        let dfg = b.finish().expect("acyclic");
        let machine = Machine::parse("[1,1|1,1|1,1]").expect("machine");
        assert!(bind_exhaustive(&dfg, &machine, 1 << 10).is_none());
    }

    #[test]
    fn symmetry_reduction_preserves_optimum() {
        // Same instance searched with and without homogeneity must agree
        // (a heterogeneous machine that happens to dominate the
        // homogeneous one would differ; here we compare by re-running on
        // an equivalent machine expressed heterogeneously is impossible,
        // so instead check against the heuristic upper bound).
        let mut b = DfgBuilder::new();
        let x = b.add_op(OpType::Mul, &[]);
        let y = b.add_op(OpType::Add, &[x]);
        let z = b.add_op(OpType::Mul, &[]);
        let _ = b.add_op(OpType::Add, &[y, z]);
        let dfg = b.finish().expect("acyclic");
        let machine = Machine::parse("[1,1|1,1]").expect("machine");
        let exact = bind_exhaustive(&dfg, &machine, 1 << 20).expect("small");
        let heuristic = Binder::new(&machine).bind(&dfg);
        assert!(exact.lm() <= heuristic.lm());
        assert!(exact.latency() <= heuristic.latency());
    }

    #[test]
    fn heuristic_matches_exact_on_small_batch() {
        // The paper's optimality observation, in miniature: across a
        // family of small structured graphs, B-INIT+B-ITER should land on
        // the exact optimum latency most of the time — here we require
        // every instance to be within one cycle and count exact hits.
        let machine = Machine::parse("[1,1|1,1]").expect("machine");
        let mut exact_hits = 0;
        let mut total = 0;
        for shape in 0..8u32 {
            let mut b = DfgBuilder::new();
            let i0 = b.add_op(OpType::Add, &[]);
            let i1 = b.add_op(OpType::Mul, &[]);
            let i2 = b.add_op(OpType::Add, &[]);
            let m0 = b.add_op(
                if shape & 1 == 0 {
                    OpType::Add
                } else {
                    OpType::Mul
                },
                &[i0, i1],
            );
            let m1 = b.add_op(
                if shape & 2 == 0 {
                    OpType::Add
                } else {
                    OpType::Mul
                },
                &[i1, i2],
            );
            let top = b.add_op(OpType::Add, &[m0, m1]);
            if shape & 4 != 0 {
                let _ = b.add_op(OpType::Mul, &[top]);
            }
            let dfg = b.finish().expect("acyclic");
            let exact = bind_exhaustive(&dfg, &machine, 1 << 22).expect("small");
            let heuristic = Binder::new(&machine).bind(&dfg);
            total += 1;
            if heuristic.latency() == exact.latency() {
                exact_hits += 1;
            }
            assert!(
                heuristic.latency() <= exact.latency() + 1,
                "shape {shape}: heuristic {} vs exact {}",
                heuristic.latency(),
                exact.latency()
            );
        }
        assert!(
            exact_hits * 2 >= total,
            "heuristic should be optimal on at least half the batch ({exact_hits}/{total})"
        );
    }

    #[test]
    fn exact_respects_heterogeneous_target_sets() {
        let mut b = DfgBuilder::new();
        let m = b.add_op(OpType::Mul, &[]);
        let _ = b.add_op(OpType::Add, &[m]);
        let dfg = b.finish().expect("acyclic");
        let machine = Machine::parse("[2,0|1,1]").expect("machine");
        let best = bind_exhaustive(&dfg, &machine, 1 << 10).expect("tiny");
        assert!(best.binding.validate(&dfg, &machine).is_ok());
    }
}
