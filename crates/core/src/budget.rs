//! Search budgets: wall-clock deadlines and descent-round caps.
//!
//! The driver and both B-ITER descents share one [`Budget`] per run, so
//! the configured limits bound the *whole* bind, not each phase. An
//! exhausted budget never aborts: phases keep whatever best-so-far result
//! they hold and the driver reports `truncated: true` in its stats.
//!
//! With tracing attached ([`Budget::with_tracer`]), the budget emits its
//! consumption timeline: one `budget_round` counter per claimed round
//! (carrying the wall-clock consumed so far) and a single
//! `budget_truncated` counter naming the cause (`deadline` or `rounds`)
//! the first time a limit fires.

use crate::config::BinderConfig;
use std::cell::Cell;
use std::time::Instant;
use vliw_trace::Tracer;

/// Shared, interior-mutable budget for one binding run.
#[derive(Debug)]
pub(crate) struct Budget {
    deadline: Option<Instant>,
    rounds_left: Cell<Option<usize>>,
    truncated: Cell<bool>,
    started: Instant,
    tracer: Tracer,
}

impl Budget {
    /// A budget from the config's `deadline_ms` / `max_iter_rounds`
    /// knobs; `None` on both means unlimited.
    pub(crate) fn new(config: &BinderConfig) -> Self {
        Budget {
            deadline: config
                .deadline_ms
                .map(|ms| Instant::now() + std::time::Duration::from_millis(ms)),
            rounds_left: Cell::new(config.max_iter_rounds),
            truncated: Cell::new(false),
            started: Instant::now(),
            tracer: Tracer::off(),
        }
    }

    /// An unlimited budget, for the infallible legacy entry points.
    pub(crate) fn unlimited() -> Self {
        Budget {
            deadline: None,
            rounds_left: Cell::new(None),
            truncated: Cell::new(false),
            started: Instant::now(),
            tracer: Tracer::off(),
        }
    }

    /// Attaches a tracer for the consumption timeline, announcing the
    /// configured limits as counters so the trace is self-describing.
    pub(crate) fn with_tracer(mut self, tracer: Tracer, config: &BinderConfig) -> Self {
        if tracer.is_enabled() {
            if let Some(ms) = config.deadline_ms {
                tracer.counter("budget_deadline_ms", ms, vec![]);
            }
            if let Some(rounds) = config.max_iter_rounds {
                tracer.counter("budget_round_cap", rounds as u64, vec![]);
            }
        }
        self.tracer = tracer;
        self
    }

    /// Milliseconds of wall clock consumed since the budget was created.
    fn consumed_ms(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_millis()).unwrap_or(u64::MAX)
    }

    /// Marks the run truncated, emitting the cause once.
    fn truncate(&self, cause: &'static str) {
        if !self.truncated.replace(true) {
            self.tracer.counter(
                "budget_truncated",
                1,
                vec![
                    ("cause", cause.into()),
                    ("consumed_ms", self.consumed_ms().into()),
                ],
            );
        }
    }

    /// Whether a wall-clock deadline is set at all. Phases use this to
    /// keep the deadline-free fast path batch-granular.
    pub(crate) fn has_deadline(&self) -> bool {
        self.deadline.is_some()
    }

    /// Whether the wall-clock deadline has passed. Checking an expired
    /// budget marks the run as truncated.
    pub(crate) fn expired(&self) -> bool {
        match self.deadline {
            Some(d) if Instant::now() >= d => {
                self.truncate("deadline");
                true
            }
            _ => false,
        }
    }

    /// Claims one descent round. Returns `false` (and marks the run
    /// truncated) once the round cap is exhausted; the deadline is
    /// checked too, so a round never starts on an expired budget.
    pub(crate) fn take_round(&self) -> bool {
        if self.expired() {
            return false;
        }
        let granted = match self.rounds_left.get() {
            None => true,
            Some(0) => {
                self.truncate("rounds");
                false
            }
            Some(n) => {
                self.rounds_left.set(Some(n - 1));
                true
            }
        };
        if granted && self.tracer.is_enabled() {
            self.tracer.counter(
                "budget_round",
                1,
                vec![("consumed_ms", self.consumed_ms().into())],
            );
        }
        granted
    }

    /// Whether any limit cut the search short.
    pub(crate) fn truncated(&self) -> bool {
        self.truncated.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use vliw_trace::{EventKind, MemorySink};

    #[test]
    fn unlimited_budget_never_truncates() {
        let b = Budget::unlimited();
        for _ in 0..100 {
            assert!(b.take_round());
            assert!(!b.expired());
        }
        assert!(!b.truncated());
    }

    #[test]
    fn round_cap_is_enforced() {
        let config = BinderConfig {
            max_iter_rounds: Some(2),
            ..BinderConfig::default()
        };
        let b = Budget::new(&config);
        assert!(b.take_round());
        assert!(b.take_round());
        assert!(!b.take_round(), "third round exceeds the cap");
        assert!(b.truncated());
    }

    #[test]
    fn zero_deadline_expires_immediately() {
        let config = BinderConfig {
            deadline_ms: Some(0),
            ..BinderConfig::default()
        };
        let b = Budget::new(&config);
        assert!(b.expired());
        assert!(!b.take_round());
        assert!(b.truncated());
    }

    #[test]
    fn traced_budget_emits_timeline_and_one_truncation() {
        let config = BinderConfig {
            max_iter_rounds: Some(2),
            deadline_ms: Some(60_000),
            ..BinderConfig::default()
        };
        let sink = Arc::new(MemorySink::new());
        let b = Budget::new(&config).with_tracer(Tracer::new(sink.clone()), &config);
        while b.take_round() {}
        assert!(!b.take_round(), "stays exhausted");
        let events = sink.events();
        let count = |name: &str| {
            events
                .iter()
                .filter(|e| e.name == name && matches!(e.kind, EventKind::Counter { .. }))
                .count()
        };
        assert_eq!(count("budget_deadline_ms"), 1);
        assert_eq!(count("budget_round_cap"), 1);
        assert_eq!(count("budget_round"), 2, "one event per granted round");
        assert_eq!(count("budget_truncated"), 1, "cause reported exactly once");
        let trunc = events
            .iter()
            .find(|e| e.name == "budget_truncated")
            .unwrap();
        assert!(trunc
            .attrs
            .iter()
            .any(|(k, v)| k == "cause" && *v == vliw_trace::AttrValue::Str("rounds".into())));
    }
}
