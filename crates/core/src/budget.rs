//! Search budgets: wall-clock deadlines and descent-round caps.
//!
//! The driver and both B-ITER descents share one [`Budget`] per run, so
//! the configured limits bound the *whole* bind, not each phase. An
//! exhausted budget never aborts: phases keep whatever best-so-far result
//! they hold and the driver reports `truncated: true` in its stats.

use crate::config::BinderConfig;
use std::cell::Cell;
use std::time::Instant;

/// Shared, interior-mutable budget for one binding run.
#[derive(Debug)]
pub(crate) struct Budget {
    deadline: Option<Instant>,
    rounds_left: Cell<Option<usize>>,
    truncated: Cell<bool>,
}

impl Budget {
    /// A budget from the config's `deadline_ms` / `max_iter_rounds`
    /// knobs; `None` on both means unlimited.
    pub(crate) fn new(config: &BinderConfig) -> Self {
        Budget {
            deadline: config
                .deadline_ms
                .map(|ms| Instant::now() + std::time::Duration::from_millis(ms)),
            rounds_left: Cell::new(config.max_iter_rounds),
            truncated: Cell::new(false),
        }
    }

    /// An unlimited budget, for the infallible legacy entry points.
    pub(crate) fn unlimited() -> Self {
        Budget {
            deadline: None,
            rounds_left: Cell::new(None),
            truncated: Cell::new(false),
        }
    }

    /// Whether a wall-clock deadline is set at all. Phases use this to
    /// keep the deadline-free fast path batch-granular.
    pub(crate) fn has_deadline(&self) -> bool {
        self.deadline.is_some()
    }

    /// Whether the wall-clock deadline has passed. Checking an expired
    /// budget marks the run as truncated.
    pub(crate) fn expired(&self) -> bool {
        match self.deadline {
            Some(d) if Instant::now() >= d => {
                self.truncated.set(true);
                true
            }
            _ => false,
        }
    }

    /// Claims one descent round. Returns `false` (and marks the run
    /// truncated) once the round cap is exhausted; the deadline is
    /// checked too, so a round never starts on an expired budget.
    pub(crate) fn take_round(&self) -> bool {
        if self.expired() {
            return false;
        }
        match self.rounds_left.get() {
            None => true,
            Some(0) => {
                self.truncated.set(true);
                false
            }
            Some(n) => {
                self.rounds_left.set(Some(n - 1));
                true
            }
        }
    }

    /// Whether any limit cut the search short.
    pub(crate) fn truncated(&self) -> bool {
        self.truncated.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_truncates() {
        let b = Budget::unlimited();
        for _ in 0..100 {
            assert!(b.take_round());
            assert!(!b.expired());
        }
        assert!(!b.truncated());
    }

    #[test]
    fn round_cap_is_enforced() {
        let config = BinderConfig {
            max_iter_rounds: Some(2),
            ..BinderConfig::default()
        };
        let b = Budget::new(&config);
        assert!(b.take_round());
        assert!(b.take_round());
        assert!(!b.take_round(), "third round exceeds the cap");
        assert!(b.truncated());
    }

    #[test]
    fn zero_deadline_expires_immediately() {
        let config = BinderConfig {
            deadline_ms: Some(0),
            ..BinderConfig::default()
        };
        let b = Budget::new(&config);
        assert!(b.expired());
        assert!(!b.take_round());
        assert!(b.truncated());
    }
}
