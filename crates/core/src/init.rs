//! B-INIT: the greedy initial binding phase (paper Section 3.1).
//!
//! Operations are visited in the three-component order of
//! [`crate::order::binding_order`]; each is bound to the cluster of its
//! target set minimizing Equation 1:
//!
//! ```text
//! icost(v,c) = fucost(v,c)·α·dii(v) + buscost(v,c)·β·dii(move)
//!            + trcost(v,c)·γ·lat(move)
//! ```
//!
//! with `trcost = trcost_dd + trcost_cc` (direct data dependencies plus
//! the common-consumer look-ahead). Reverse-order binding (Section 3.1.4)
//! runs the identical algorithm on the transposed graph.

use crate::config::BinderConfig;
use crate::order::binding_order;
use crate::profile::LoadProfiles;
use vliw_datapath::{ClusterId, Machine};
use vliw_dfg::{Dfg, OpId, OpType, Timing};
use vliw_sched::Binding;

/// `trcost_dd(v,c)`: the number of `v`'s operands whose (already bound)
/// producers live in a different cluster than `c` — each needs a data
/// transfer if `v` is bound to `c` (paper Figure 3, left).
pub fn trcost_dd(dfg: &Dfg, binding: &Binding, v: OpId, c: ClusterId) -> u32 {
    dfg.preds(v)
        .iter()
        .filter(|&&u| matches!(binding.get(u), Some(b) if b != c))
        .count() as u32
}

/// `trcost_cc(v,c)`: the common-consumer look-ahead (paper Figure 3,
/// right). For each (possibly unbound) consumer `u ∈ succ(v)`: if some
/// *other* operand producer `z ∈ pred(u)` is already bound to a cluster
/// different from `c`, a transfer will be needed no matter where `u` ends
/// up, so add 1.
pub fn trcost_cc(dfg: &Dfg, binding: &Binding, v: OpId, c: ClusterId) -> u32 {
    dfg.succs(v)
        .iter()
        .filter(|&&u| {
            dfg.preds(u)
                .iter()
                .any(|&z| z != v && matches!(binding.get(z), Some(b) if b != c))
        })
        .count() as u32
}

/// One run of the greedy initial binding for a fixed load-profile latency
/// `l_pr` and direction.
///
/// `reverse = true` binds "from the output nodes" (Section 3.1.4) by
/// running the same algorithm on the transposed DFG; the returned binding
/// is expressed in original operation ids either way.
///
/// # Panics
///
/// Panics if some operation has an empty target set (the machine cannot
/// execute the DFG) or if `l_pr` is below the critical-path length.
pub fn initial_binding(
    dfg: &Dfg,
    machine: &Machine,
    config: &BinderConfig,
    l_pr: u32,
    reverse: bool,
) -> Binding {
    if reverse {
        let transposed = dfg.transposed();
        return initial_binding_forward(&transposed, machine, config, l_pr);
    }
    initial_binding_forward(dfg, machine, config, l_pr)
}

fn initial_binding_forward(
    dfg: &Dfg,
    machine: &Machine,
    config: &BinderConfig,
    l_pr: u32,
) -> Binding {
    let lat = machine.op_latencies(dfg);
    let timing = Timing::new(dfg, &lat, l_pr);
    let order = binding_order(dfg, &timing);
    let mut profiles = LoadProfiles::new(dfg, machine, &timing);
    let mut binding = Binding::unbound(dfg);

    let lat_move = machine.move_latency() as f64;
    let dii_move = machine.dii_of_op(OpType::Move) as f64;

    for v in order {
        let ts = machine.target_set(dfg.op_type(v));
        assert!(
            !ts.is_empty(),
            "operation {v} ({}) has an empty target set on {machine}",
            dfg.op_type(v)
        );
        let dii_v = machine.dii_of_op(dfg.op_type(v)) as f64;
        let mut best: Option<(f64, ClusterId)> = None;
        for &c in &ts {
            let fucost = profiles.fu_cost(config.cost_model, v, c);
            let buscost = profiles.bus_cost(config.cost_model, &binding, v, c);
            let trcost = (trcost_dd(dfg, &binding, v, c) + trcost_cc(dfg, &binding, v, c)) as f64;
            let icost = fucost * config.alpha * dii_v
                + buscost * config.beta * dii_move
                + trcost * config.gamma * lat_move;
            // Strict `<` keeps the lowest-indexed cluster on ties, making
            // the greedy pass deterministic.
            if best.is_none_or(|(b, _)| icost < b - 1e-12) {
                best = Some((icost, c));
            }
        }
        let (_, c) = best.expect("target set is non-empty"); // lint:allow(no-panic)
        profiles.commit(&binding, v, c);
        binding.bind(v, c);
    }
    binding
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_dfg::DfgBuilder;

    fn cl(i: usize) -> ClusterId {
        ClusterId::from_index(i)
    }

    fn cfg() -> BinderConfig {
        BinderConfig::default()
    }

    #[test]
    fn trcost_dd_counts_cross_cluster_operands() {
        // Figure 3: v1 bound to A, evaluating v on B -> dd cost 1.
        let mut b = DfgBuilder::new();
        let v1 = b.add_op(OpType::Add, &[]);
        let v = b.add_op(OpType::Add, &[v1]);
        let dfg = b.finish().expect("acyclic");
        let mut bn = Binding::unbound(&dfg);
        bn.bind(v1, cl(0));
        assert_eq!(trcost_dd(&dfg, &bn, v, cl(1)), 1);
        assert_eq!(trcost_dd(&dfg, &bn, v, cl(0)), 0);
    }

    #[test]
    fn trcost_dd_ignores_unbound_producers() {
        let mut b = DfgBuilder::new();
        let u = b.add_op(OpType::Add, &[]);
        let v = b.add_op(OpType::Add, &[u]);
        let dfg = b.finish().expect("acyclic");
        let bn = Binding::unbound(&dfg);
        assert_eq!(trcost_dd(&dfg, &bn, v, cl(0)), 0);
    }

    #[test]
    fn trcost_cc_detects_common_consumer() {
        // Figure 3: v and v2 share consumer v3; v2 bound to A. Binding v
        // to B forces a transfer regardless of v3's placement.
        let mut b = DfgBuilder::new();
        let v1 = b.add_op(OpType::Add, &[]);
        let v = b.add_op(OpType::Add, &[v1]);
        let v2 = b.add_op(OpType::Add, &[]);
        let _v3 = b.add_op(OpType::Add, &[v, v2]);
        let dfg = b.finish().expect("acyclic");
        let mut bn = Binding::unbound(&dfg);
        bn.bind(v1, cl(0));
        bn.bind(v2, cl(0));
        assert_eq!(trcost_cc(&dfg, &bn, v, cl(1)), 1);
        assert_eq!(trcost_cc(&dfg, &bn, v, cl(0)), 0);
        // Total figure-3 cost on B: dd(1) + cc(1) = 2.
        assert_eq!(
            trcost_dd(&dfg, &bn, v, cl(1)) + trcost_cc(&dfg, &bn, v, cl(1)),
            2
        );
    }

    #[test]
    fn greedy_keeps_dependent_chain_together() {
        // A single chain must stay in one cluster: transfers would only
        // hurt and the load never exceeds one unit.
        let mut b = DfgBuilder::new();
        let mut prev = b.add_op(OpType::Add, &[]);
        for _ in 0..5 {
            prev = b.add_op(OpType::Add, &[prev]);
        }
        let dfg = b.finish().expect("acyclic");
        let machine = Machine::parse("[1,1|1,1]").expect("machine");
        let bn = initial_binding(&dfg, &machine, &cfg(), 6, false);
        let first = bn.cluster_of(OpId::from_index(0));
        for v in dfg.op_ids() {
            assert_eq!(bn.cluster_of(v), first, "chain must not be split");
        }
    }

    #[test]
    fn greedy_splits_parallel_chains() {
        // Two independent chains on two 1-ALU clusters: serialization
        // pressure must push them apart.
        let mut b = DfgBuilder::new();
        for _ in 0..2 {
            let mut prev = b.add_op(OpType::Add, &[]);
            for _ in 0..3 {
                prev = b.add_op(OpType::Add, &[prev]);
            }
        }
        let dfg = b.finish().expect("acyclic");
        let machine = Machine::parse("[1,1|1,1]").expect("machine");
        let bn = initial_binding(&dfg, &machine, &cfg(), 4, false);
        let c_first = bn.cluster_of(OpId::from_index(0));
        let c_second = bn.cluster_of(OpId::from_index(4));
        assert_ne!(c_first, c_second, "independent chains should split");
        // And each chain stays whole.
        for i in 0..4 {
            assert_eq!(bn.cluster_of(OpId::from_index(i)), c_first);
            assert_eq!(bn.cluster_of(OpId::from_index(4 + i)), c_second);
        }
    }

    #[test]
    fn binding_respects_target_sets() {
        // Multiplications can only go to cluster 1.
        let mut b = DfgBuilder::new();
        let m1 = b.add_op(OpType::Mul, &[]);
        let a1 = b.add_op(OpType::Add, &[m1]);
        let m2 = b.add_op(OpType::Mul, &[a1]);
        let _ = b.add_op(OpType::Add, &[m2]);
        let dfg = b.finish().expect("acyclic");
        let machine = Machine::parse("[2,0|1,1]").expect("machine");
        let bn = initial_binding(&dfg, &machine, &cfg(), 4, false);
        assert!(bn.validate(&dfg, &machine).is_ok());
        assert_eq!(bn.cluster_of(m1), cl(1));
        assert_eq!(bn.cluster_of(m2), cl(1));
    }

    #[test]
    fn reverse_direction_produces_valid_binding() {
        let mut b = DfgBuilder::new();
        let src = b.add_op(OpType::Add, &[]);
        // One input fanning out to four outputs: the shape Section 3.1.4
        // says benefits from reverse binding.
        for _ in 0..4 {
            let mid = b.add_op(OpType::Mul, &[src]);
            let _ = b.add_op(OpType::Add, &[mid]);
        }
        let dfg = b.finish().expect("acyclic");
        let machine = Machine::parse("[2,1|2,1]").expect("machine");
        let fwd = initial_binding(&dfg, &machine, &cfg(), 3, false);
        let rev = initial_binding(&dfg, &machine, &cfg(), 3, true);
        assert!(fwd.validate(&dfg, &machine).is_ok());
        assert!(rev.validate(&dfg, &machine).is_ok());
    }

    #[test]
    fn stretched_lpr_produces_valid_binding() {
        let mut b = DfgBuilder::new();
        let mut prev = b.add_op(OpType::Mul, &[]);
        for i in 0..7 {
            let other = b.add_op(OpType::Add, &[]);
            prev = b.add_op(
                if i % 2 == 0 { OpType::Add } else { OpType::Mul },
                &[prev, other],
            );
        }
        let dfg = b.finish().expect("acyclic");
        let machine = Machine::parse("[1,1|1,1]").expect("machine");
        for stretch in 0..4 {
            let bn = initial_binding(&dfg, &machine, &cfg(), 8 + stretch, false);
            assert!(
                bn.validate(&dfg, &machine).is_ok(),
                "L_PR = {}",
                8 + stretch
            );
        }
    }

    #[test]
    #[should_panic(expected = "empty target set")]
    fn unsupported_op_panics() {
        let mut b = DfgBuilder::new();
        let _ = b.add_op(OpType::Mul, &[]);
        let dfg = b.finish().expect("acyclic");
        let machine = Machine::parse("[2,0]").expect("machine");
        let _ = initial_binding(&dfg, &machine, &cfg(), 1, false);
    }
}
