//! B-ITER: iterative improvement by boundary perturbations
//! (paper Section 3.2).
//!
//! Operations at cluster boundaries (those with an operand or result
//! crossing clusters) are tentatively re-bound — singly and in pairs — and
//! every perturbed binding is evaluated by an actual list schedule. The
//! search is steepest-descent under the lexicographic quality vector
//! `Q_U = (L, U_0, U_1, …)` (latency, then the number of regular
//! operations completing at the last cycle, the cycle before, …), which
//! rewards "thinning out" the tail of the schedule even when the latency
//! itself cannot drop in a single step (Figure 6). A second descent under
//! `Q_M = (L, N_MV)` then sheds redundant data transfers at equal latency.

use crate::budget::Budget;
use crate::config::{BinderConfig, PairMode};
use crate::driver::BindingResult;
use crate::error::BindError;
use crate::eval::Evaluator;
use vliw_datapath::{ClusterId, Machine};
use vliw_dfg::{Dfg, OpId};
use vliw_sched::{Binding, BoundDfg, Schedule};
use vliw_trace::{SpanCat, Stopwatch};

/// Which quality vector steers an improvement pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QualityKind {
    /// `Q_U = (L, U_0, U_1, …)` — latency, then completion-tail counts.
    Qu,
    /// `Q_M = (L, N_MV)` — latency, then number of data transfers.
    Qm,
}

/// A measured quality vector; smaller is better, compared
/// lexicographically (latency first, then the tail vector).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Quality {
    latency: u32,
    tail: Vec<usize>,
}

impl Quality {
    /// Measures a bound graph + schedule under the chosen vector.
    pub fn measure(kind: QualityKind, bound: &BoundDfg, schedule: &Schedule) -> Self {
        let tail = match kind {
            QualityKind::Qu => schedule.completion_profile(bound),
            QualityKind::Qm => vec![bound.move_count()],
        };
        Quality {
            latency: schedule.latency(),
            tail,
        }
    }

    /// Reassembles a quality vector from memoized components
    /// (see [`crate::eval::EvalOutcome::quality`]).
    pub(crate) fn from_parts(latency: u32, tail: Vec<usize>) -> Self {
        Quality { latency, tail }
    }

    /// The schedule latency component `L`.
    pub fn latency(&self) -> u32 {
        self.latency
    }

    /// The secondary components (`U_i` profile or `[N_MV]`).
    pub fn tail(&self) -> &[usize] {
        &self.tail
    }
}

/// One perturbation: re-bind up to two operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct Perturbation {
    first: (OpId, ClusterId),
    second: Option<(OpId, ClusterId)>,
}

/// Runs the full B-ITER improvement: a `Q_U` steepest descent to minimum
/// latency, then a `Q_M` descent to shed transfers (paper: "we first use
/// `Q_U` to achieve the minimum latency and then use `Q_M` to minimize
/// `N_MV`").
pub fn improve(
    dfg: &Dfg,
    machine: &Machine,
    config: &BinderConfig,
    start: BindingResult,
) -> BindingResult {
    let evaluator = Evaluator::new(dfg, machine, config);
    improve_eval(&evaluator, config, start)
}

/// [`improve`] against a caller-supplied evaluator, so the memo and
/// worker pool are shared with the rest of the run. The descents stop
/// early once the incumbent reaches the certified
/// [`vliw_analysis::analyze`] floor — a result whose `(L, N_MV)` meets
/// two simultaneous lower bounds cannot be improved, so the early stop
/// never changes the outcome.
///
/// # Panics
///
/// Panics when an armed [`vliw_fault`] failpoint fires during an
/// evaluation batch; the fallible driver entry points
/// ([`crate::Binder::try_bind`]) contain such faults as typed errors.
pub fn improve_eval(
    evaluator: &Evaluator<'_>,
    config: &BinderConfig,
    start: BindingResult,
) -> BindingResult {
    let floor = vliw_analysis::analyze(evaluator.dfg(), evaluator.machine()).lm_bound();
    improve_eval_budgeted(evaluator, config, start, &Budget::unlimited(), Some(floor))
        .unwrap_or_else(|e| panic!("improvement failed: {e}"))
}

/// [`improve_eval`] under a shared search [`Budget`]: both quality
/// passes draw rounds from (and check the deadline of) the same budget,
/// so the caller's limits bound the whole refinement. `floor` is the
/// caller's certified `(L, N_MV)` lower-bound pair; a descent whose
/// incumbent reaches it stops before enumerating another neighborhood.
pub(crate) fn improve_eval_budgeted(
    evaluator: &Evaluator<'_>,
    config: &BinderConfig,
    start: BindingResult,
    budget: &Budget,
    floor: Option<(u32, usize)>,
) -> Result<BindingResult, BindError> {
    let current =
        improve_with_eval_budgeted(evaluator, config, start, QualityKind::Qu, budget, floor)?;
    improve_with_eval_budgeted(evaluator, config, current, QualityKind::Qm, budget, floor)
}

/// A single steepest-descent pass under one quality vector.
pub fn improve_with(
    dfg: &Dfg,
    machine: &Machine,
    config: &BinderConfig,
    start: BindingResult,
    kind: QualityKind,
) -> BindingResult {
    let evaluator = Evaluator::new(dfg, machine, config);
    improve_with_eval(&evaluator, config, start, kind)
}

/// [`improve_with`] against a caller-supplied evaluator. Each descent
/// step measures the whole perturbation neighborhood as one
/// [`Evaluator::outcomes`] batch (memoized, fanned across the
/// evaluator's workers) and reduces it in enumeration order with a
/// strict `<`, which keeps the first of equally good candidates —
/// exactly what the serial loop did, so the outcome is bit-identical for
/// any thread count. Only the winning candidate of a step is
/// materialized into a full [`BindingResult`]; since evaluation is a
/// pure function of the binding, that materialization reproduces exactly
/// the result whose metrics won the reduction.
///
/// # Panics
///
/// Panics when an armed [`vliw_fault`] failpoint fires during an
/// evaluation batch; the fallible driver entry points contain such
/// faults as typed errors.
pub fn improve_with_eval(
    evaluator: &Evaluator<'_>,
    config: &BinderConfig,
    start: BindingResult,
    kind: QualityKind,
) -> BindingResult {
    improve_with_eval_budgeted(evaluator, config, start, kind, &Budget::unlimited(), None)
        .unwrap_or_else(|e| panic!("improvement failed: {e}"))
}

/// [`improve_with_eval`] under a shared [`Budget`]. Each descent round
/// first claims a round from the budget; with a deadline set, the
/// neighborhood is additionally evaluated chunk by chunk so an expiring
/// clock stops the round mid-batch (the evaluated prefix still competes,
/// keeping the best-so-far result valid). With
/// [`BinderConfig::verify`] on, every accepted step is re-checked by the
/// independent verifier and any candidate producing violations is
/// discarded — the descent falls through to the next-best strictly
/// improving candidate instead of propagating a corrupt result. A
/// `floor` of certified `(L, N_MV)` lower bounds stops the descent as
/// soon as the incumbent meets it (provably nothing can be better).
pub(crate) fn improve_with_eval_budgeted(
    evaluator: &Evaluator<'_>,
    config: &BinderConfig,
    start: BindingResult,
    kind: QualityKind,
    budget: &Budget,
    floor: Option<(u32, usize)>,
) -> Result<BindingResult, BindError> {
    let dfg = evaluator.dfg();
    let machine = evaluator.machine();
    let tracer = evaluator.tracer();
    // The per-quality phase span: every evaluation batch, budget round
    // and perturbation counter inside this descent is attributed to it.
    let _phase = tracer.span(
        SpanCat::Phase,
        match kind {
            QualityKind::Qu => "b_iter_qu",
            QualityKind::Qm => "b_iter_qm",
        },
        vec![],
    );
    // Global accepted-move delta histograms, resolved once per descent
    // pass; strictly observational (recording never steers the search).
    let accept_metrics = vliw_metrics::enabled().then(|| {
        (
            vliw_metrics::histogram(
                "iter_accepted_latency_delta",
                "Latency improvement in cycles of each accepted B-ITER step (0 for tail-only Q_U steps)",
            ),
            vliw_metrics::histogram(
                "iter_accepted_moves_delta",
                "Transfer-count improvement of each accepted B-ITER step (0 when moves were unchanged or grew)",
            ),
        )
    });
    // Tier-1 screening state: the delta-aware bound analyzer is built
    // once per descent pass (its windows and critical path are
    // binding-independent) and re-anchored on each round's incumbent.
    let mut screener = config
        .screen
        .then(|| vliw_analysis::DeltaBoundAnalyzer::new(dfg, machine));
    let screen_metrics = vliw_metrics::enabled().then(|| {
        (
            vliw_metrics::counter(
                "iter_screened_total",
                "B-ITER candidates proven unable to beat the incumbent by the delta bound and skipped without scheduling",
            ),
            vliw_metrics::histogram(
                "screen_bound_us",
                "Wall-clock of one descent round's delta-bound screening pass, in microseconds",
            ),
        )
    });
    let mut current = start;
    let mut quality = Quality::measure(kind, &current.bound, &current.schedule);
    for _ in 0..config.max_iterations {
        // Certified early stop: an incumbent whose `(L, N_MV)` equals a
        // pair of simultaneous lower bounds is lexicographically optimal
        // — no perturbation can beat it, so skip the neighborhood
        // without even drawing a budget round.
        if floor.is_some_and(|f| current.lm() == f) {
            break;
        }
        if !budget.take_round() {
            break;
        }
        let candidates = {
            // Detail spans (here and below) give `vliw profile` a
            // per-stage breakdown of the round without affecting the
            // Phase-span accounting of `vliw trace`.
            let _span = tracer.span(SpanCat::Detail, "neighbors", vec![]);
            perturbations(dfg, machine, config, &current.binding)
        };
        // Tier-1 screening: a candidate is accepted only with a strictly
        // better quality vector, so one whose certified `(L, N_MV)` floor
        // already ties or exceeds the incumbent can be skipped without
        // scheduling. The skip rules are exact about what the bound can
        // and cannot discriminate — the latency bound is admissible
        // (true `L` may exceed it) while the transfer recount is exact:
        //
        // * `Q_U`: skip iff `L_bound > L_inc`. The completion tail is
        //   not bounded, so an equal-latency candidate always evaluates.
        // * `Q_M`: skip iff `L_bound > L_inc`, or `L_bound == L_inc`
        //   and `moves >= M_inc` — any true latency at or above the tie
        //   makes the vector `(L, N_MV)` non-improving.
        //
        // Skipped candidates therefore never had a chance to win a
        // round, and survivors keep their enumeration order, so the
        // accepted-move sequence is bit-identical to screening off.
        let survivors: Vec<usize> = match screener.as_mut() {
            Some(screener) => {
                // A Detail span: `vliw profile` folds it into its own
                // collapsed-stack frame under the descent phase, while
                // per-phase accounting (which sums Phase spans only)
                // keeps attributing the time to the enclosing descent.
                let _screen_span = tracer.span(SpanCat::Detail, "screen", vec![]);
                let started = Stopwatch::start();
                screener.anchor(current.binding.as_slice());
                let mut keep = Vec::with_capacity(candidates.len());
                let (mut skipped_single, mut skipped_pair) = (0u64, 0u64);
                for (i, p) in candidates.iter().enumerate() {
                    let mut delta = [(p.first.0, p.first.1); 2];
                    let mut len = 1;
                    if let Some(second) = p.second {
                        delta[1] = second;
                        len = 2;
                    }
                    let delta = &delta[..len];
                    let (lb, mb) = screener.screen(delta);
                    let mut skip = match kind {
                        QualityKind::Qu => lb > quality.latency(),
                        QualityKind::Qm => {
                            lb > quality.latency()
                                || (lb == quality.latency() && mb >= quality.tail()[0])
                        }
                    };
                    if skip && config.verify {
                        // Audit mode: every skip must carry a witness the
                        // derivation-independent checker accepts; a failed
                        // check fails open (the candidate is evaluated
                        // normally), never silently prunes.
                        let bound = screener.certify(delta);
                        let mut cand = current.binding.as_slice().to_vec();
                        for &(v, c) in delta {
                            cand[v.index()] = c;
                        }
                        skip = vliw_sched::verify::check_delta_bound(dfg, machine, &cand, &bound)
                            .is_ok();
                    }
                    if skip {
                        if p.second.is_some() {
                            skipped_pair += 1;
                        } else {
                            skipped_single += 1;
                        }
                    } else {
                        keep.push(i);
                    }
                }
                if let Some((screened, bound_us)) = &screen_metrics {
                    screened.add(skipped_single + skipped_pair);
                    bound_us
                        .record(u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX));
                }
                if tracer.is_enabled() {
                    if skipped_single > 0 {
                        tracer.counter("screened_single", skipped_single, vec![]);
                    }
                    if skipped_pair > 0 {
                        tracer.counter("screened_pair", skipped_pair, vec![]);
                    }
                }
                keep
            }
            None => (0..candidates.len()).collect(),
        };
        let bindings: Vec<Binding> = survivors
            .iter()
            .map(|&i| {
                let p = &candidates[i];
                let mut binding = current.binding.clone();
                binding.bind(p.first.0, p.first.1);
                if let Some((v, c)) = p.second {
                    binding.bind(v, c);
                }
                binding
            })
            .collect();
        // Without a deadline the whole neighborhood goes to the workers
        // at once (identical to the unbudgeted loop); with one, chunking
        // bounds how stale an expired clock can get.
        let chunk = if budget.has_deadline() {
            32.max(evaluator.threads() * 4)
        } else {
            bindings.len().max(1)
        };
        let mut scored: Vec<(Quality, usize)> = Vec::new();
        {
            let _span = tracer.span(SpanCat::Detail, "evaluate", vec![]);
            let mut offset = 0;
            for batch in bindings.chunks(chunk) {
                for (j, outcome) in evaluator.try_outcomes(batch)?.into_iter().enumerate() {
                    scored.push((outcome.quality(kind), offset + j));
                }
                offset += batch.len();
                if budget.expired() {
                    break;
                }
            }
        }
        if tracer.is_enabled() {
            // `tried` counts perturbations actually evaluated this round
            // (the whole neighborhood, or the prefix an expiring deadline
            // allowed), split by kind.
            let pairs = scored
                .iter()
                .filter(|&&(_, i)| candidates[survivors[i]].second.is_some())
                .count() as u64;
            let singles = scored.len() as u64 - pairs;
            if singles > 0 {
                tracer.counter("tried_single", singles, vec![]);
            }
            if pairs > 0 {
                tracer.counter("tried_pair", pairs, vec![]);
            }
        }
        // Best quality first, candidate enumeration order breaking ties —
        // the same winner the serial reduction picked.
        scored.sort();
        let mut accepted = false;
        for (q, i) in scored {
            if q >= quality {
                break;
            }
            let result = evaluator.try_evaluate(bindings[i].clone())?;
            if config.verify {
                let violations = vliw_sched::verify(
                    dfg,
                    machine,
                    &result.binding,
                    &result.bound,
                    &result.schedule,
                );
                if !violations.is_empty() {
                    // Catch-and-reject: a perturbation whose materialized
                    // result fails verification never becomes `current`.
                    continue;
                }
            }
            if tracer.is_enabled() {
                // `accepted` = became the new descent point (strictly
                // better quality vector); `improved` additionally lowered
                // the reported `(L, N_MV)` — a `Q_U` step can thin the
                // completion tail without touching either, so
                // tried ≥ accepted ≥ improved holds per kind.
                let pair = candidates[survivors[i]].second.is_some();
                tracer.counter(
                    if pair {
                        "accepted_pair"
                    } else {
                        "accepted_single"
                    },
                    1,
                    vec![],
                );
                if result.lm() < current.lm() {
                    tracer.counter(
                        if pair {
                            "improved_pair"
                        } else {
                            "improved_single"
                        },
                        1,
                        vec![],
                    );
                }
            }
            if let Some((lat_h, mov_h)) = &accept_metrics {
                let (l0, m0) = current.lm();
                let (l1, m1) = result.lm();
                lat_h.record(u64::from(l0.saturating_sub(l1)));
                mov_h.record(m0.saturating_sub(m1) as u64);
            }
            quality = q;
            current = result;
            accepted = true;
            break;
        }
        if !accepted {
            break;
        }
    }
    Ok(current)
}

/// Enumerates boundary perturbations of a binding: single re-binds of
/// boundary operations to the clusters of their neighbors, plus joint
/// re-binds of operation pairs according to [`PairMode`].
fn perturbations(
    dfg: &Dfg,
    machine: &Machine,
    config: &BinderConfig,
    binding: &Binding,
) -> Vec<Perturbation> {
    let mut out = Vec::new();
    // Clusters where v's operands/results reside, minus its own,
    // restricted to TS(v).
    let neighbor_clusters = |v: OpId| -> Vec<ClusterId> {
        let own = binding.cluster_of(v);
        let mut cs: Vec<ClusterId> = dfg
            .preds(v)
            .iter()
            .chain(dfg.succs(v))
            .map(|&u| binding.cluster_of(u))
            .filter(|&c| c != own && machine.supports(c, dfg.op_type(v)))
            .collect();
        cs.sort_unstable();
        cs.dedup();
        cs
    };

    let boundary: Vec<OpId> = dfg
        .op_ids()
        .filter(|&v| {
            let own = binding.cluster_of(v);
            dfg.preds(v)
                .iter()
                .chain(dfg.succs(v))
                .any(|&u| binding.cluster_of(u) != own)
        })
        .collect();

    for &v in &boundary {
        for c in neighbor_clusters(v) {
            out.push(Perturbation {
                first: (v, c),
                second: None,
            });
        }
    }

    match config.pair_mode {
        PairMode::None => {}
        PairMode::Adjacent => {
            // Pairs joined by a cluster-crossing dependence: swap their
            // clusters or collapse both onto one cluster (Figure 5 moves a
            // producer across the boundary; jointly moving its partner
            // covers the cases a single move cannot reach).
            for (u, v) in dfg.edges() {
                let cu = binding.cluster_of(u);
                let cv = binding.cluster_of(v);
                if cu == cv {
                    continue;
                }
                if machine.supports(cv, dfg.op_type(u)) && machine.supports(cu, dfg.op_type(v)) {
                    out.push(Perturbation {
                        first: (u, cv),
                        second: Some((v, cu)),
                    });
                }
                let mut joint: Vec<ClusterId> = neighbor_clusters(u);
                joint.extend(neighbor_clusters(v));
                joint.sort_unstable();
                joint.dedup();
                for c in joint {
                    if machine.supports(c, dfg.op_type(u)) && machine.supports(c, dfg.op_type(v)) {
                        let first = if binding.cluster_of(u) != c {
                            (u, c)
                        } else {
                            (v, c)
                        };
                        let second = if binding.cluster_of(v) != c && first.0 != v {
                            Some((v, c))
                        } else {
                            None
                        };
                        out.push(Perturbation { first, second });
                    }
                }
            }
        }
        PairMode::All => {
            for (i, &u) in boundary.iter().enumerate() {
                for &v in &boundary[i + 1..] {
                    for cu in neighbor_clusters(u) {
                        for cv in neighbor_clusters(v) {
                            out.push(Perturbation {
                                first: (u, cu),
                                second: Some((v, cv)),
                            });
                        }
                    }
                }
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::Binder;
    use vliw_dfg::{DfgBuilder, OpType};

    fn cl(i: usize) -> ClusterId {
        ClusterId::from_index(i)
    }

    /// A deliberately poor hand binding that B-ITER must repair: a chain
    /// zig-zagged across clusters.
    #[test]
    fn iter_heals_zigzag_chain() {
        let mut b = DfgBuilder::new();
        let mut prev = b.add_op(OpType::Add, &[]);
        for _ in 0..5 {
            prev = b.add_op(OpType::Add, &[prev]);
        }
        let dfg = b.finish().expect("acyclic");
        let machine = Machine::parse("[2,1|2,1]").expect("machine");
        let zigzag: Vec<ClusterId> = (0..6).map(|i| cl(i % 2)).collect();
        let bad = Binding::new(&dfg, &machine, zigzag).expect("valid");
        let start = BindingResult::evaluate(&dfg, &machine, bad);
        assert!(start.latency() > 6, "zigzag pays for its transfers");
        let improved = improve(&dfg, &machine, &BinderConfig::default(), start);
        assert_eq!(improved.latency(), 6, "chain belongs on one cluster");
        assert_eq!(improved.moves(), 0);
    }

    #[test]
    fn qm_phase_sheds_redundant_transfers() {
        // Two independent 2-op chains forced to cross clusters; latency is
        // already minimal (2 with 2 ALUs per cluster) but moves are not.
        let mut b = DfgBuilder::new();
        for _ in 0..2 {
            let p = b.add_op(OpType::Add, &[]);
            let _ = b.add_op(OpType::Add, &[p]);
        }
        let dfg = b.finish().expect("acyclic");
        let machine = Machine::parse("[2,1|2,1]").expect("machine");
        let crossed = Binding::new(&dfg, &machine, vec![cl(0), cl(1), cl(1), cl(0)]).expect("ok");
        let start = BindingResult::evaluate(&dfg, &machine, crossed);
        assert_eq!(start.moves(), 2);
        let improved = improve(&dfg, &machine, &BinderConfig::default(), start);
        assert_eq!(improved.moves(), 0, "no transfer is ever needed here");
        assert_eq!(improved.latency(), 2);
    }

    #[test]
    fn quality_vectors_order_lexicographically() {
        let a = Quality {
            latency: 5,
            tail: vec![2, 1, 0],
        };
        let b = Quality {
            latency: 5,
            tail: vec![1, 9, 9],
        };
        let c = Quality {
            latency: 4,
            tail: vec![9, 9, 9, 9],
        };
        assert!(b < a, "fewer ops at the last cycle wins at equal latency");
        assert!(c < b, "lower latency always wins");
    }

    #[test]
    fn qu_distinguishes_equal_latency_bindings() {
        // Figure 6's insight: at equal L, fewer completions in the final
        // cycle is strictly better under Q_U but invisible to Q_M.
        let mk = |finishes: Vec<u32>| {
            // Build a star so every op is regular and independent.
            let mut b = DfgBuilder::new();
            for _ in 0..finishes.len() {
                b.add_op(OpType::Add, &[]);
            }
            let dfg = b.finish().expect("acyclic");
            let machine = Machine::parse("[4,1]").expect("machine");
            let bn = Binding::new(&dfg, &machine, vec![cl(0); finishes.len()]).expect("ok");
            let bound = BoundDfg::new(&dfg, &machine, &bn);
            let starts: Vec<u32> = finishes.iter().map(|&f| f - 1).collect();
            let lat = bound.latencies(&machine);
            (bound, Schedule::from_starts(starts, &lat))
        };
        let (bound_a, sched_a) = mk(vec![3, 3, 2, 1]);
        let (bound_b, sched_b) = mk(vec![3, 2, 2, 1]);
        let qa = Quality::measure(QualityKind::Qu, &bound_a, &sched_a);
        let qb = Quality::measure(QualityKind::Qu, &bound_b, &sched_b);
        assert!(qb < qa);
        let ma = Quality::measure(QualityKind::Qm, &bound_a, &sched_a);
        let mb = Quality::measure(QualityKind::Qm, &bound_b, &sched_b);
        assert_eq!(ma, mb, "Q_M cannot tell them apart");
    }

    #[test]
    fn improvement_never_worsens_quality() {
        // On a batch of structured graphs, B-ITER output must never be
        // worse than its input under (L, N_MV).
        let machine = Machine::parse("[1,1|1,1]").expect("machine");
        for seed in 0..6u32 {
            let mut b = DfgBuilder::new();
            let mut layer = vec![b.add_op(OpType::Add, &[]), b.add_op(OpType::Mul, &[])];
            for i in 0..6 {
                let kind = if (seed + i) % 3 == 0 {
                    OpType::Mul
                } else {
                    OpType::Add
                };
                let n = b.add_op(kind, &[layer[0], layer[1]]);
                layer = vec![layer[1], n];
            }
            let dfg = b.finish().expect("acyclic");
            let start = Binder::new(&machine).bind_initial(&dfg);
            let (l0, m0) = (start.latency(), start.moves());
            let improved = improve(&dfg, &machine, &BinderConfig::default(), start);
            assert!(
                (improved.latency(), improved.moves()) <= (l0, m0),
                "seed {seed}: ({}, {}) vs ({l0}, {m0})",
                improved.latency(),
                improved.moves()
            );
        }
    }

    #[test]
    fn pair_mode_none_still_improves_singles() {
        let mut b = DfgBuilder::new();
        let mut prev = b.add_op(OpType::Add, &[]);
        for _ in 0..3 {
            prev = b.add_op(OpType::Add, &[prev]);
        }
        let dfg = b.finish().expect("acyclic");
        let machine = Machine::parse("[1,1|1,1]").expect("machine");
        let bad = Binding::new(&dfg, &machine, vec![cl(0), cl(1), cl(0), cl(1)]).expect("ok");
        let start = BindingResult::evaluate(&dfg, &machine, bad);
        let cfg = BinderConfig {
            pair_mode: PairMode::None,
            ..BinderConfig::default()
        };
        let improved = improve(&dfg, &machine, &cfg, start);
        assert_eq!(improved.latency(), 4);
    }

    #[test]
    fn all_pairs_mode_matches_or_beats_adjacent() {
        let mut b = DfgBuilder::new();
        let x0 = b.add_op(OpType::Add, &[]);
        let x1 = b.add_op(OpType::Mul, &[]);
        let x2 = b.add_op(OpType::Add, &[x0, x1]);
        let x3 = b.add_op(OpType::Mul, &[x0]);
        let x4 = b.add_op(OpType::Add, &[x2, x3]);
        let _ = b.add_op(OpType::Add, &[x4, x1]);
        let dfg = b.finish().expect("acyclic");
        let machine = Machine::parse("[1,1|1,1]").expect("machine");
        let start = Binder::new(&machine).bind_initial(&dfg);
        let adj = improve(
            &dfg,
            &machine,
            &BinderConfig::default(),
            BindingResult::evaluate(&dfg, &machine, start.binding.clone()),
        );
        let cfg_all = BinderConfig {
            pair_mode: PairMode::All,
            ..BinderConfig::default()
        };
        let all = improve(&dfg, &machine, &cfg_all, start);
        assert!(all.latency() <= adj.latency());
    }
}
