//! Tunable parameters of the binding algorithm.

use serde::{Deserialize, Serialize};

/// Which operation pairs B-ITER perturbs jointly (paper Section 3.2:
/// "we perform such re-binding for individual operations and for pairs of
/// operations").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum PairMode {
    /// Singles only — cheapest, weakest.
    None,
    /// Singles plus pairs connected by a cluster-crossing data dependence
    /// (the perturbations that reposition/eliminate/collapse the transfer
    /// on that edge, cf. Figure 5). The default.
    #[default]
    Adjacent,
    /// Singles plus every pair of boundary operations — the most thorough
    /// and by far the slowest; used by the ablation bench.
    All,
}

/// How the serialization penalties `fucost`/`buscost` measure profile
/// overload (paper Section 3.1.2).
///
/// The paper's text says the penalty "is increased by 1 for each clock
/// cycle τ" where the profile exceeds its threshold
/// ([`CostModel::BinaryCycles`]). That indicator saturates: once a cycle
/// is overloaded, piling further operations onto it is free, so a greedy
/// pass happily serializes a whole butterfly on one multiplier. The
/// mass-based variants integrate the *amount* of overload instead, which
/// keeps growing past saturation but loses the sharp threshold step.
/// [`CostModel::Hybrid`] combines both and best reproduces the paper's
/// reported quality across Tables 1–2, so it is the default; the
/// `ablation -- fucost` study compares all four.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum CostModel {
    /// Count overloaded cycles (the paper's literal wording).
    BinaryCycles,
    /// Integrate the marginal overload mass the candidate adds
    /// (`Σ_τ [load_after − thr]₊ − [load_before − thr]₊`).
    ExcessMass,
    /// Integrate the *total* overload mass of the updated profile —
    /// like [`CostModel::ExcessMass`] but also repelling candidates from
    /// clusters that are already overloaded at the candidate's time
    /// frame, regardless of the candidate's own contribution.
    TotalExcess,
    /// Sum of [`CostModel::BinaryCycles`] and [`CostModel::TotalExcess`]:
    /// the cycle count provides the threshold-crossing step the paper
    /// describes, the mass term keeps growing past saturation (default).
    #[default]
    Hybrid,
}

/// Configuration of [`crate::Binder`].
///
/// The defaults reproduce the paper's reported settings: cost
/// coefficients `α = β = 1.0`, `γ = 1.1` (Section 3.1.2 — the transfer
/// penalty gets "just a slightly larger priority"), `L_PR` sweeping and
/// reverse-order binding enabled (Sections 3.1.3–3.1.4), and adjacent-pair
/// boundary perturbations in B-ITER.
///
/// # Example
///
/// ```
/// use vliw_binding::{BinderConfig, PairMode};
///
/// let fast = BinderConfig {
///     pair_mode: PairMode::None,
///     ..BinderConfig::default()
/// };
/// assert_eq!(fast.gamma, 1.1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BinderConfig {
    /// Weight `α` of the FU serialization penalty `fucost`.
    pub alpha: f64,
    /// Weight `β` of the bus serialization penalty `buscost`.
    pub beta: f64,
    /// Weight `γ` of the data-transfer penalty `trcost`; the paper found
    /// `γ = 1.1` (slightly above `α = β = 1`) to work best.
    pub gamma: f64,
    /// How far beyond `L_CP` the driver stretches the load-profile
    /// latency `L_PR` (Section 3.1.3). `None` selects
    /// `max(4, ⌈L_CP/2⌉)` extra levels automatically.
    pub lpr_stretch: Option<u32>,
    /// Whether the driver also tries binding from the output nodes
    /// (Section 3.1.4).
    pub try_reverse: bool,
    /// Joint-perturbation policy for B-ITER.
    pub pair_mode: PairMode,
    /// Safety cap on B-ITER improvement iterations per quality function.
    pub max_iterations: usize,
    /// Overload measure used by the serialization penalties.
    pub cost_model: CostModel,
    /// How many distinct initial bindings from the driver's
    /// `L_PR`/direction sweep B-ITER refines (the best refined result is
    /// returned). `1` reproduces the paper's single-start description;
    /// larger values trade compile time for robustness against local
    /// minima of the boundary-perturbation search.
    pub improve_starts: usize,
    /// Worker threads for candidate evaluation (`0` = one per available
    /// CPU). Parallel evaluation is bit-identical to `threads = 1`: the
    /// fan-out only covers the independent schedule evaluations and the
    /// reduction breaks ties by candidate enumeration index.
    #[serde(default)]
    pub threads: usize,
    /// Whether evaluations are memoized per distinct binding, so the
    /// sweep/descent never schedules the same binding twice (on by
    /// default; a cache hit returns the identical stored result, so
    /// quality is unaffected).
    #[serde(default = "default_eval_cache")]
    pub eval_cache: bool,
    /// Whether every materialized result (including each accepted B-ITER
    /// step) is re-checked by the independent verifier
    /// ([`vliw_sched::verify`]). Defaults to the `VLIW_VERIFY`
    /// environment variable (`0`/`false`/`off` disables, anything else
    /// enables) and, when unset, to on in debug builds and off in
    /// release builds — tests and CI verify, hot benchmark paths do not.
    #[serde(default = "default_verify")]
    pub verify: bool,
    /// Wall-clock budget for a whole `try_bind` run, in milliseconds.
    /// When it expires, the driver stops sweeping/descending and returns
    /// the best result found so far, flagged `truncated` in its stats.
    /// `None` (the default) runs to convergence.
    #[serde(default)]
    pub deadline_ms: Option<u64>,
    /// Cap on the total number of B-ITER descent rounds across both
    /// quality passes and all improvement starts. `None` (the default)
    /// leaves only the per-pass `max_iterations` safety cap.
    #[serde(default)]
    pub max_iter_rounds: Option<usize>,
    /// Whether the B-INIT sweep anchors its `L_PR` grid at the certified
    /// analyzer lower bound ([`crate::resource_lower_bound`]) instead of
    /// the bare critical path: load profiles computed for target
    /// latencies no schedule can meet mislead the greedy pass, so with
    /// this on the sweep starts where feasible schedules start. Off by
    /// default to keep the sweep grid (and thus results) bit-identical
    /// to the paper-faithful driver; the certified *early exits* are
    /// active either way, because they provably cannot change the
    /// returned `(L, N_MV)`.
    #[serde(default)]
    pub lpr_anchor_bound: bool,
    /// Whether the run emits structured trace events (spans, counters)
    /// to the binder's attached [`vliw_trace::TraceSink`]s and the
    /// process-global sink, and derives per-phase
    /// [`crate::PhaseStats`] into the returned [`crate::BindStats`].
    /// Off by default: the disabled path is a single branch per call
    /// site, and results are bit-identical either way — tracing only
    /// observes the search, it never steers it.
    #[serde(default)]
    pub trace: bool,
    /// Whether B-ITER screens perturbation candidates with the
    /// delta-aware admissible bound ([`vliw_analysis::DeltaBoundAnalyzer`])
    /// before scheduling them: candidates whose certified `(L, N_MV)`
    /// floor already ties or exceeds the incumbent under the active
    /// lexicographic quality cannot be accepted and are skipped. On by
    /// default; provably acceptance-order-preserving, so the returned
    /// binding, schedule and accepted-move sequence are bit-identical
    /// either way.
    #[serde(default = "default_screen")]
    pub screen: bool,
    /// Whether candidate evaluations reuse pooled [`vliw_sched::SchedArena`]
    /// scratch workspaces, making steady-state B-INIT/B-ITER evaluation
    /// allocation-free. On by default; arenas recycle capacity, never
    /// scheduling state, so results are bit-identical either way.
    #[serde(default = "default_arena")]
    pub arena: bool,
}

/// Serde default for [`BinderConfig::eval_cache`] (on).
fn default_eval_cache() -> bool {
    true
}

/// Serde default for [`BinderConfig::screen`] (on).
fn default_screen() -> bool {
    true
}

/// Serde default for [`BinderConfig::arena`] (on).
fn default_arena() -> bool {
    true
}

/// Serde/`Default` default for [`BinderConfig::verify`]: the
/// `VLIW_VERIFY` environment variable when set, otherwise on in debug
/// builds, off in release builds.
fn default_verify() -> bool {
    match std::env::var("VLIW_VERIFY") {
        Ok(v) => !matches!(v.to_ascii_lowercase().as_str(), "0" | "false" | "off" | ""),
        Err(_) => cfg!(debug_assertions),
    }
}

impl Default for BinderConfig {
    fn default() -> Self {
        BinderConfig {
            alpha: 1.0,
            beta: 1.0,
            gamma: 1.1,
            lpr_stretch: None,
            try_reverse: true,
            pair_mode: PairMode::Adjacent,
            max_iterations: 1_000,
            cost_model: CostModel::Hybrid,
            improve_starts: 3,
            threads: 0,
            eval_cache: true,
            verify: default_verify(),
            deadline_ms: None,
            max_iter_rounds: None,
            lpr_anchor_bound: false,
            trace: false,
            screen: true,
            arena: true,
        }
    }
}

impl BinderConfig {
    /// The `L_PR` values the driver will sweep for a DFG with critical
    /// path `l_cp`: `L_CP ..= L_CP + stretch`.
    pub fn lpr_values(&self, l_cp: u32) -> std::ops::RangeInclusive<u32> {
        let stretch = self.lpr_stretch.unwrap_or_else(|| 4.max(l_cp.div_ceil(2)));
        l_cp..=l_cp.saturating_add(stretch)
    }

    /// A configuration with `L_PR` sweeping disabled (only `L_PR = L_CP`),
    /// for the ablation study.
    pub fn without_lpr_sweep(mut self) -> Self {
        self.lpr_stretch = Some(0);
        self
    }

    /// A configuration that never tries reverse-order binding, for the
    /// ablation study.
    pub fn without_reverse(mut self) -> Self {
        self.try_reverse = false;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let cfg = BinderConfig::default();
        assert_eq!(cfg.alpha, 1.0);
        assert_eq!(cfg.beta, 1.0);
        assert_eq!(cfg.gamma, 1.1);
        assert!(cfg.try_reverse);
        assert_eq!(cfg.pair_mode, PairMode::Adjacent);
    }

    #[test]
    fn lpr_values_auto_stretch() {
        let cfg = BinderConfig::default();
        // L_CP = 6 -> stretch max(4, 3) = 4 -> 6..=10.
        assert_eq!(cfg.lpr_values(6), 6..=10);
        // L_CP = 14 -> stretch max(4, 7) = 7 -> 14..=21.
        assert_eq!(cfg.lpr_values(14), 14..=21);
    }

    #[test]
    fn lpr_values_explicit_stretch() {
        let cfg = BinderConfig {
            lpr_stretch: Some(2),
            ..BinderConfig::default()
        };
        assert_eq!(cfg.lpr_values(7), 7..=9);
    }

    #[test]
    fn legacy_configs_without_parallel_fields_deserialize() {
        // Configs serialized before `threads`/`eval_cache`/`verify`/
        // budget knobs existed must keep loading: absent fields fall back
        // to auto threads, a warm cache and an unbounded search.
        let mut v = serde_json::to_value(&BinderConfig::default());
        if let serde_json::Value::Object(fields) = &mut v {
            fields.retain(|(k, _)| {
                k != "threads"
                    && k != "eval_cache"
                    && k != "verify"
                    && k != "deadline_ms"
                    && k != "max_iter_rounds"
                    && k != "trace"
                    && k != "screen"
                    && k != "arena"
            });
        }
        let cfg: BinderConfig = serde_json::from_value(v).expect("legacy config loads");
        assert_eq!(cfg.threads, 0);
        assert!(cfg.eval_cache);
        assert_eq!(cfg.deadline_ms, None);
        assert_eq!(cfg.max_iter_rounds, None);
        assert!(!cfg.trace, "legacy configs load with tracing off");
        assert!(cfg.screen, "legacy configs load with screening on");
        assert!(cfg.arena, "legacy configs load with arena reuse on");
    }

    #[test]
    fn ablation_helpers() {
        let cfg = BinderConfig::default()
            .without_lpr_sweep()
            .without_reverse();
        assert_eq!(cfg.lpr_values(9), 9..=9);
        assert!(!cfg.try_reverse);
    }
}
