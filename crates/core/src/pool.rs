//! A scoped worker pool with a deterministic, slot-indexed reduction.
//!
//! Both the evaluation engine ([`crate::eval::Evaluator`]) and the
//! design-space explorer fan independent work items across threads with
//! the same shape: workers claim items by an atomic cursor
//! (work-stealing by index), tag every result with the claimed index,
//! and the caller merges the tagged results back into input order — so
//! the parallel output is positionally bit-identical to a serial loop,
//! whatever the interleaving. This module is that shape, extracted once.
//!
//! Timing uses [`vliw_trace::Stopwatch`] rather than `std::time::Instant`
//! directly: the workspace linter confines the raw clock to the trace
//! crate, the budget module and the bench harness, and per-worker busy
//! time is observability output, not a search input.

use crate::error::BindError;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;
use vliw_trace::Stopwatch;

/// Busy time and item count of one pool worker, for trace counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerReport {
    /// Wall-clock time the worker spent claiming and processing items.
    pub busy: Duration,
    /// Number of items the worker processed.
    pub items: usize,
}

/// Process-global metric handles of the worker pool, resolved per batch
/// only when [`vliw_metrics::enabled`] — strictly observational, never
/// a search input.
struct PoolMetrics {
    /// Per-worker busy time over one batch, in microseconds.
    busy_us: vliw_metrics::Histogram,
    /// Per-worker idle time over one batch (batch wall minus busy).
    idle_us: vliw_metrics::Histogram,
    /// Wall-clock to drain one whole batch through the pool.
    drain_us: vliw_metrics::Histogram,
    /// Worker count of the most recent batch.
    workers: vliw_metrics::Gauge,
}

impl PoolMetrics {
    fn new() -> Self {
        PoolMetrics {
            busy_us: vliw_metrics::histogram(
                "pool_worker_busy_us",
                "Per-worker busy time over one pool batch, in microseconds",
            ),
            idle_us: vliw_metrics::histogram(
                "pool_worker_idle_us",
                "Per-worker idle time over one pool batch (batch wall minus busy), in microseconds",
            ),
            drain_us: vliw_metrics::histogram(
                "pool_queue_drain_us",
                "Wall-clock to drain one whole batch through the pool, in microseconds",
            ),
            workers: vliw_metrics::gauge(
                "pool_workers",
                "Worker count of the most recent pool batch",
            ),
        }
    }

    fn record(&self, wall: Duration, reports: &[WorkerReport]) {
        let wall_us = micros(wall);
        self.drain_us.record(wall_us);
        self.workers.set(reports.len() as i64);
        for r in reports {
            let busy = micros(r.busy);
            self.busy_us.record(busy);
            self.idle_us.record(wall_us.saturating_sub(busy));
        }
    }
}

/// Saturating microseconds of a duration.
fn micros(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// Runs `f` over every item, in parallel across at most `threads`
/// scoped workers, returning the results in input order plus one
/// [`WorkerReport`] per worker (slot order).
///
/// `f` receives the item's index and the item; it must be a pure
/// function of those for the determinism guarantee to mean anything.
/// With `threads <= 1` (or fewer than two items) everything runs on the
/// calling thread and a single report is returned.
pub fn run_indexed<T, R, F>(threads: usize, items: &[T], f: F) -> (Vec<R>, Vec<WorkerReport>)
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let metrics = vliw_metrics::enabled().then(PoolMetrics::new);
    if threads <= 1 || items.len() < 2 {
        let started = Stopwatch::start();
        let results: Vec<R> = items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        let busy = started.elapsed();
        let report = WorkerReport {
            busy,
            items: items.len(),
        };
        if let Some(metrics) = &metrics {
            metrics.record(busy, std::slice::from_ref(&report));
        }
        return (results, vec![report]);
    }
    let batch = Stopwatch::start();
    let next = AtomicUsize::new(0);
    let workers = threads.min(items.len());
    let mut reports: Vec<WorkerReport> = Vec::with_capacity(workers);
    let mut tagged: Vec<(usize, R)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    // Work-stealing by atomic index: each worker owns the
                    // items it claims and tags results with the claimed
                    // index, so the merged output is positionally
                    // identical to a serial loop.
                    let started = Stopwatch::start();
                    let mut out: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else {
                            break;
                        };
                        out.push((i, f(i, item)));
                    }
                    (out, started.elapsed())
                })
            })
            .collect();
        let mut merged: Vec<(usize, R)> = Vec::with_capacity(items.len());
        for handle in handles {
            let (out, busy) = handle.join().expect("pool worker panicked"); // lint:allow(no-panic)
            reports.push(WorkerReport {
                busy,
                items: out.len(),
            });
            merged.extend(out);
        }
        merged
    });
    tagged.sort_by_key(|&(i, _)| i);
    debug_assert_eq!(tagged.len(), items.len());
    if let Some(metrics) = &metrics {
        metrics.record(batch.elapsed(), &reports);
    }
    (tagged.into_iter().map(|(_, r)| r).collect(), reports)
}

/// [`run_indexed`] with per-item panic supervision: each invocation of
/// `f` runs under [`guard_item`], so a panicking item yields
/// `Err(BindError::WorkerPanicked { .. })` in its slot while the worker
/// that caught it keeps claiming and draining the remaining items. One
/// poisoned candidate degrades to a skip instead of aborting the run,
/// and the slot-indexed reduction keeps the output positionally
/// bit-identical to a serial loop.
pub fn run_indexed_fallible<T, R, F>(
    threads: usize,
    items: &[T],
    f: F,
) -> (Vec<Result<R, BindError>>, Vec<WorkerReport>)
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> Result<R, BindError> + Sync,
{
    run_indexed(threads, items, |i, t| guard_item(i, || f(i, t)))
}

/// Runs one work item under a panic supervisor: a panic unwinding out of
/// `f` is caught and converted into [`BindError::WorkerPanicked`],
/// attributed to its [`vliw_fault`] site when the panic was injected.
///
/// `AssertUnwindSafe` is sound here because a failed item's partial
/// state is discarded wholesale — the caller only ever observes the
/// returned `Err`, never data `f` was mutating when it unwound.
pub fn guard_item<R>(
    index: usize,
    f: impl FnOnce() -> Result<R, BindError>,
) -> Result<R, BindError> {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(result) => result,
        Err(payload) => Err(BindError::WorkerPanicked {
            index,
            // The thread-local panic site only annotates the *error*
            // diagnostic; it never flows into a successful binding.
            site: vliw_fault::take_last_panic_site(), // lint:allow(determinism-taint)
            payload: payload_text(payload.as_ref()),
        }),
    }
}

/// Best-effort extraction of a panic payload's message (`panic!` with a
/// literal yields `&str`, with a format string yields `String`).
fn payload_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_order_matches_serial() {
        let items: Vec<u64> = (0..100).collect();
        let square = |i: usize, &x: &u64| (i as u64, x * x);
        let (serial, s_reports) = run_indexed(1, &items, square);
        let (parallel, p_reports) = run_indexed(4, &items, square);
        assert_eq!(serial, parallel);
        for (i, &(tag, sq)) in parallel.iter().enumerate() {
            assert_eq!(tag, i as u64);
            assert_eq!(sq, (i * i) as u64);
        }
        assert_eq!(s_reports.len(), 1);
        assert_eq!(s_reports[0].items, 100);
        assert_eq!(p_reports.len(), 4);
        assert_eq!(p_reports.iter().map(|r| r.items).sum::<usize>(), 100);
    }

    #[test]
    fn tiny_batches_stay_on_the_calling_thread() {
        let one = [7u32];
        let (out, reports) = run_indexed(8, &one, |_, &x| x + 1);
        assert_eq!(out, vec![8]);
        assert_eq!(reports.len(), 1, "a single item never pays for workers");
        let empty: [u32; 0] = [];
        let (out, _) = run_indexed(8, &empty, |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn worker_count_never_exceeds_items() {
        let items: Vec<u32> = (0..3).collect();
        let (_, reports) = run_indexed(16, &items, |_, &x| x);
        assert!(reports.len() <= 3);
    }

    #[test]
    fn empty_slice_yields_empty_results_and_one_idle_report() {
        let empty: [u32; 0] = [];
        for threads in [0, 1, 8] {
            let (out, reports) = run_indexed(threads, &empty, |_, &x| x);
            assert!(out.is_empty());
            assert_eq!(reports.len(), 1, "empty input never spawns workers");
            assert_eq!(reports[0].items, 0);
        }
    }

    #[test]
    fn report_items_always_sum_to_input_length() {
        for (threads, n) in [(1, 0), (1, 5), (3, 5), (8, 5), (4, 100), (16, 3)] {
            let items: Vec<u32> = (0..n).collect();
            let (out, reports) = run_indexed(threads, &items, |_, &x| x);
            assert_eq!(out.len(), items.len());
            assert_eq!(
                reports.iter().map(|r| r.items).sum::<usize>(),
                items.len(),
                "threads={threads} n={n}"
            );
        }
    }

    #[test]
    fn fallible_pool_matches_infallible_when_nothing_fails() {
        let items: Vec<u64> = (0..50).collect();
        let (plain, _) = run_indexed(4, &items, |i, &x| x * i as u64);
        let (fallible, reports) = run_indexed_fallible(4, &items, |i, &x| Ok(x * i as u64));
        let unwrapped: Vec<u64> = fallible
            .into_iter()
            .map(|r| r.expect("no injected faults"))
            .collect();
        assert_eq!(unwrapped, plain);
        assert_eq!(reports.iter().map(|r| r.items).sum::<usize>(), items.len());
    }

    #[test]
    fn panicking_item_degrades_to_typed_error_and_survivors_drain() {
        let items: Vec<u32> = (0..20).collect();
        for threads in [1, 4] {
            let (out, reports) = run_indexed_fallible(threads, &items, |_, &x| {
                if x == 7 {
                    panic!("poisoned item {x}");
                }
                Ok(x + 1)
            });
            assert_eq!(out.len(), items.len(), "threads={threads}");
            assert_eq!(reports.iter().map(|r| r.items).sum::<usize>(), items.len());
            for (i, r) in out.iter().enumerate() {
                if i == 7 {
                    let Err(BindError::WorkerPanicked {
                        index,
                        site,
                        payload,
                    }) = r
                    else {
                        panic!("item 7 must fail typed, got {r:?}");
                    };
                    assert_eq!(*index, 7);
                    assert_eq!(*site, None, "organic panic has no failpoint site");
                    assert!(payload.contains("poisoned item 7"), "{payload}");
                } else {
                    assert_eq!(*r, Ok(i as u32 + 1), "survivors drain, threads={threads}");
                }
            }
        }
    }

    #[test]
    fn metrics_capture_worker_busy_idle_and_drain() {
        let _guard = vliw_metrics::test_guard();
        vliw_metrics::set_enabled(true);
        let items: Vec<u64> = (0..40).collect();
        let (_, reports) = run_indexed(4, &items, |_, &x| x * 2);
        // One-sided assertions: concurrent tests may also record into
        // the process-global registry while the guard is held.
        let snap = vliw_metrics::snapshot();
        let find = |name: &str| {
            snap.histograms
                .iter()
                .find(|h| h.name == name)
                .unwrap_or_else(|| panic!("{name} registered"))
        };
        assert!(find("pool_worker_busy_us").count >= reports.len() as u64);
        assert!(find("pool_worker_idle_us").count >= reports.len() as u64);
        assert!(find("pool_queue_drain_us").count >= 1);
        // The serial path records too (busy == drain, idle == 0).
        let (_, serial) = run_indexed(1, &items, |_, &x| x * 2);
        assert_eq!(serial.len(), 1);
        assert!(find("pool_worker_busy_us").count >= reports.len() as u64);
    }

    #[test]
    fn injected_panic_is_attributed_to_its_site() {
        let _guard = vliw_fault::test_guard();
        vliw_fault::configure_point(
            "pool.test",
            vliw_fault::FaultSchedule::Once,
            vliw_fault::FaultAction::Panic("chaos".into()),
        );
        let result = guard_item(3, || -> Result<(), BindError> {
            vliw_fault::point("pool.test")?;
            Ok(())
        });
        vliw_fault::reset();
        let Err(BindError::WorkerPanicked { index, site, .. }) = result else {
            panic!("expected a supervised panic, got {result:?}");
        };
        assert_eq!(index, 3);
        assert_eq!(site.as_deref(), Some("pool.test"));
    }
}
