//! A scoped worker pool with a deterministic, slot-indexed reduction.
//!
//! Both the evaluation engine ([`crate::eval::Evaluator`]) and the
//! design-space explorer fan independent work items across threads with
//! the same shape: workers claim items by an atomic cursor
//! (work-stealing by index), tag every result with the claimed index,
//! and the caller merges the tagged results back into input order — so
//! the parallel output is positionally bit-identical to a serial loop,
//! whatever the interleaving. This module is that shape, extracted once.
//!
//! Timing uses [`vliw_trace::Stopwatch`] rather than `std::time::Instant`
//! directly: the workspace linter confines the raw clock to the trace
//! crate, the budget module and the bench harness, and per-worker busy
//! time is observability output, not a search input.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;
use vliw_trace::Stopwatch;

/// Busy time and item count of one pool worker, for trace counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerReport {
    /// Wall-clock time the worker spent claiming and processing items.
    pub busy: Duration,
    /// Number of items the worker processed.
    pub items: usize,
}

/// Runs `f` over every item, in parallel across at most `threads`
/// scoped workers, returning the results in input order plus one
/// [`WorkerReport`] per worker (slot order).
///
/// `f` receives the item's index and the item; it must be a pure
/// function of those for the determinism guarantee to mean anything.
/// With `threads <= 1` (or fewer than two items) everything runs on the
/// calling thread and a single report is returned.
pub fn run_indexed<T, R, F>(threads: usize, items: &[T], f: F) -> (Vec<R>, Vec<WorkerReport>)
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if threads <= 1 || items.len() < 2 {
        let started = Stopwatch::start();
        let results: Vec<R> = items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        let report = WorkerReport {
            busy: started.elapsed(),
            items: items.len(),
        };
        return (results, vec![report]);
    }
    let next = AtomicUsize::new(0);
    let workers = threads.min(items.len());
    let mut reports: Vec<WorkerReport> = Vec::with_capacity(workers);
    let mut tagged: Vec<(usize, R)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    // Work-stealing by atomic index: each worker owns the
                    // items it claims and tags results with the claimed
                    // index, so the merged output is positionally
                    // identical to a serial loop.
                    let started = Stopwatch::start();
                    let mut out: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else {
                            break;
                        };
                        out.push((i, f(i, item)));
                    }
                    (out, started.elapsed())
                })
            })
            .collect();
        let mut merged: Vec<(usize, R)> = Vec::with_capacity(items.len());
        for handle in handles {
            let (out, busy) = handle.join().expect("pool worker panicked"); // lint:allow(no-panic)
            reports.push(WorkerReport {
                busy,
                items: out.len(),
            });
            merged.extend(out);
        }
        merged
    });
    tagged.sort_by_key(|&(i, _)| i);
    debug_assert_eq!(tagged.len(), items.len());
    (tagged.into_iter().map(|(_, r)| r).collect(), reports)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_order_matches_serial() {
        let items: Vec<u64> = (0..100).collect();
        let square = |i: usize, &x: &u64| (i as u64, x * x);
        let (serial, s_reports) = run_indexed(1, &items, square);
        let (parallel, p_reports) = run_indexed(4, &items, square);
        assert_eq!(serial, parallel);
        for (i, &(tag, sq)) in parallel.iter().enumerate() {
            assert_eq!(tag, i as u64);
            assert_eq!(sq, (i * i) as u64);
        }
        assert_eq!(s_reports.len(), 1);
        assert_eq!(s_reports[0].items, 100);
        assert_eq!(p_reports.len(), 4);
        assert_eq!(p_reports.iter().map(|r| r.items).sum::<usize>(), 100);
    }

    #[test]
    fn tiny_batches_stay_on_the_calling_thread() {
        let one = [7u32];
        let (out, reports) = run_indexed(8, &one, |_, &x| x + 1);
        assert_eq!(out, vec![8]);
        assert_eq!(reports.len(), 1, "a single item never pays for workers");
        let empty: [u32; 0] = [];
        let (out, _) = run_indexed(8, &empty, |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn worker_count_never_exceeds_items() {
        let items: Vec<u32> = (0..3).collect();
        let (_, reports) = run_indexed(16, &items, |_, &x| x);
        assert!(reports.len() <= 3);
    }
}
