//! Serializable per-phase metrics derived from the trace event stream.
//!
//! [`PhaseStats`] is the bridge between the observability layer
//! ([`vliw_trace`]) and the stable, machine-readable surfaces of the
//! repo (`bind --json`, `BENCH_table1.json`): a [`Binder`] run with
//! [`crate::BinderConfig::trace`] on attaches a
//! [`vliw_trace::PhaseCollector`] to the same tracer that feeds any
//! `--trace-out` JSONL file and snapshots the collector into the
//! returned [`crate::BindStats`] — both views are folds of one event
//! stream and can never disagree.
//!
//! [`Binder`]: crate::Binder

use serde::{Deserialize, Serialize};
use vliw_trace::PhaseTotal;

/// One named counter total inside a phase.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSummary {
    /// Counter name (`tried_single`, `eval_cache_hits`, …).
    pub name: String,
    /// Summed value over the phase.
    pub value: u64,
}

/// Aggregated metrics of one pipeline phase.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseSummary {
    /// Phase name: `run`, `b_init`, `b_iter_qu`, `b_iter_qm`, `verify`.
    pub name: String,
    /// Total elapsed wall-clock over all spans of this phase, in
    /// microseconds.
    pub elapsed_us: u64,
    /// Number of spans (e.g. one `b_iter_qu` span per improvement
    /// start).
    pub spans: u64,
    /// Counters attributed to this phase, sorted by name.
    pub counters: Vec<CounterSummary>,
}

/// Per-phase breakdown of one binding run, in phase-start order.
/// Empty when [`crate::BinderConfig::trace`] is off.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct PhaseStats {
    /// The phases, in the order each was first entered.
    pub phases: Vec<PhaseSummary>,
}

impl PhaseStats {
    /// Whether any phase was recorded (i.e. tracing was on).
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }

    /// The summary of the phase called `name`, if recorded.
    pub fn phase(&self, name: &str) -> Option<&PhaseSummary> {
        self.phases.iter().find(|p| p.name == name)
    }

    /// The value of `counter` inside `phase`, zero if either is absent.
    pub fn counter(&self, phase: &str, counter: &str) -> u64 {
        self.phase(phase)
            .and_then(|p| p.counters.iter().find(|c| c.name == counter))
            .map_or(0, |c| c.value)
    }

    /// The value of `counter` summed over every phase.
    pub fn counter_total(&self, counter: &str) -> u64 {
        self.phases
            .iter()
            .flat_map(|p| &p.counters)
            .filter(|c| c.name == counter)
            .map(|c| c.value)
            .sum()
    }

    /// Total wall-clock of the run (the `run` phase), in microseconds.
    pub fn total_us(&self) -> u64 {
        self.phase("run").map_or(0, |p| p.elapsed_us)
    }

    /// Sum of the elapsed times of every phase except `run` (whose span
    /// *contains* the others), in microseconds. On a traced run this
    /// covers all but the driver's own glue, so it lands within a few
    /// percent of [`PhaseStats::total_us`].
    pub fn phase_sum_us(&self) -> u64 {
        self.phases
            .iter()
            .filter(|p| p.name != "run")
            .map(|p| p.elapsed_us)
            .sum()
    }
}

impl From<Vec<PhaseTotal>> for PhaseStats {
    fn from(totals: Vec<PhaseTotal>) -> Self {
        PhaseStats {
            phases: totals
                .into_iter()
                .map(|t| PhaseSummary {
                    name: t.name,
                    elapsed_us: t.elapsed_us,
                    spans: t.spans,
                    counters: t
                        .counters
                        .into_iter()
                        .map(|(name, value)| CounterSummary { name, value })
                        .collect(),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PhaseStats {
        PhaseStats::from(vec![
            PhaseTotal {
                name: "run".into(),
                elapsed_us: 1000,
                spans: 1,
                counters: vec![("eval_cache_hits".into(), 2)],
            },
            PhaseTotal {
                name: "b_init".into(),
                elapsed_us: 400,
                spans: 1,
                counters: vec![("eval_cache_hits".into(), 7)],
            },
            PhaseTotal {
                name: "b_iter_qu".into(),
                elapsed_us: 550,
                spans: 3,
                counters: vec![("tried_single".into(), 30), ("accepted_single".into(), 4)],
            },
        ])
    }

    #[test]
    fn lookups() {
        let s = sample();
        assert!(!s.is_empty());
        assert_eq!(s.total_us(), 1000);
        assert_eq!(s.phase_sum_us(), 950);
        assert_eq!(s.counter("b_iter_qu", "tried_single"), 30);
        assert_eq!(s.counter("b_iter_qu", "missing"), 0);
        assert_eq!(s.counter("missing", "tried_single"), 0);
        assert_eq!(s.counter_total("eval_cache_hits"), 9);
        assert_eq!(s.phase("b_init").unwrap().spans, 1);
    }

    #[test]
    fn default_is_empty() {
        let s = PhaseStats::default();
        assert!(s.is_empty());
        assert_eq!(s.total_us(), 0);
        assert_eq!(s.phase_sum_us(), 0);
    }

    #[test]
    fn serde_round_trip() {
        let s = sample();
        let text = serde_json::to_string(&s).expect("serializes");
        let back: PhaseStats = serde_json::from_str(&text).expect("round trip");
        assert_eq!(back, s);
    }
}
