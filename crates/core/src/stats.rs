//! Serializable per-phase metrics derived from the trace event stream.
//!
//! [`PhaseStats`] is the bridge between the observability layer
//! ([`vliw_trace`]) and the stable, machine-readable surfaces of the
//! repo (`bind --json`, `BENCH_table1.json`): a [`Binder`] run with
//! [`crate::BinderConfig::trace`] on attaches a
//! [`vliw_trace::PhaseCollector`] to the same tracer that feeds any
//! `--trace-out` JSONL file and snapshots the collector into the
//! returned [`crate::BindStats`] — both views are folds of one event
//! stream and can never disagree.
//!
//! [`Binder`]: crate::Binder

use serde::{Deserialize, Serialize};
use vliw_trace::PhaseTotal;

/// One named counter total inside a phase.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSummary {
    /// Counter name (`tried_single`, `eval_cache_hits`, …).
    pub name: String,
    /// Summed value over the phase.
    pub value: u64,
}

/// Aggregated metrics of one pipeline phase.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseSummary {
    /// Phase name: `run`, `b_init`, `b_iter_qu`, `b_iter_qm`, `verify`.
    pub name: String,
    /// Total elapsed wall-clock over all spans of this phase, in
    /// microseconds.
    pub elapsed_us: u64,
    /// Number of spans (e.g. one `b_iter_qu` span per improvement
    /// start).
    pub spans: u64,
    /// Counters attributed to this phase, sorted by name.
    pub counters: Vec<CounterSummary>,
}

/// Per-phase breakdown of one binding run, in phase-start order.
/// Empty when [`crate::BinderConfig::trace`] is off.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct PhaseStats {
    /// The phases, in the order each was first entered.
    pub phases: Vec<PhaseSummary>,
}

impl PhaseStats {
    /// Whether any phase was recorded (i.e. tracing was on).
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }

    /// The summary of the phase called `name`, if recorded.
    pub fn phase(&self, name: &str) -> Option<&PhaseSummary> {
        self.phases.iter().find(|p| p.name == name)
    }

    /// The value of `counter` inside `phase`, zero if either is absent.
    pub fn counter(&self, phase: &str, counter: &str) -> u64 {
        self.phase(phase)
            .and_then(|p| p.counters.iter().find(|c| c.name == counter))
            .map_or(0, |c| c.value)
    }

    /// The value of `counter` summed over every phase.
    pub fn counter_total(&self, counter: &str) -> u64 {
        self.phases
            .iter()
            .flat_map(|p| &p.counters)
            .filter(|c| c.name == counter)
            .map(|c| c.value)
            .sum()
    }

    /// Total wall-clock of the run (the `run` phase), in microseconds.
    pub fn total_us(&self) -> u64 {
        self.phase("run").map_or(0, |p| p.elapsed_us)
    }

    /// Sum of the elapsed times of every phase except `run` (whose span
    /// *contains* the others), in microseconds. On a traced run this
    /// covers all but the driver's own glue, so it lands within a few
    /// percent of [`PhaseStats::total_us`].
    pub fn phase_sum_us(&self) -> u64 {
        self.phases
            .iter()
            .filter(|p| p.name != "run")
            .map(|p| p.elapsed_us)
            .sum()
    }
}

impl From<Vec<PhaseTotal>> for PhaseStats {
    fn from(totals: Vec<PhaseTotal>) -> Self {
        PhaseStats {
            phases: totals
                .into_iter()
                .map(|t| PhaseSummary {
                    name: t.name,
                    elapsed_us: t.elapsed_us,
                    spans: t.spans,
                    counters: t
                        .counters
                        .into_iter()
                        .map(|(name, value)| CounterSummary { name, value })
                        .collect(),
                })
                .collect(),
        }
    }
}

/// One process-global counter total in a metrics snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricCounter {
    /// Metric name (`eval_cache_hits`, …).
    pub name: String,
    /// Monotone total since the registry was last cleared.
    pub value: u64,
}

/// One gauge value in a metrics snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricGauge {
    /// Metric name (`pool_workers`, …).
    pub name: String,
    /// Last set value.
    pub value: i64,
}

/// One non-empty histogram bucket: `count` observations in `[low, high)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricBucket {
    /// Inclusive lower bound of the bucket.
    pub low: u64,
    /// Exclusive upper bound of the bucket.
    pub high: u64,
    /// Observations in the bucket.
    pub count: u64,
}

/// One latency histogram in a metrics snapshot, with precomputed
/// quantile estimates (each within one log-bucket width, ≤ 12.5%
/// relative error, of the exact value).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricHistogram {
    /// Metric name (`eval_candidate_us`, …).
    pub name: String,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Smallest observed value (0 when empty).
    pub min: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
    /// Estimated median (0 when empty).
    pub p50: u64,
    /// Estimated 95th percentile (0 when empty).
    pub p95: u64,
    /// Estimated 99th percentile (0 when empty).
    pub p99: u64,
    /// The non-empty buckets, in increasing value order.
    pub buckets: Vec<MetricBucket>,
}

/// Serializable mirror of a [`vliw_metrics::Snapshot`], embedded in
/// [`crate::BindStats`] when the process-global metrics registry is
/// enabled.
///
/// The snapshot reflects *process-global* totals accumulated since the
/// registry was last cleared — on a multi-kernel benchmark run the
/// numbers span every binding performed so far, not just the run whose
/// `BindStats` carries them.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct MetricsStats {
    /// All registered counters, sorted by name.
    pub counters: Vec<MetricCounter>,
    /// All registered gauges, sorted by name.
    pub gauges: Vec<MetricGauge>,
    /// All registered histograms, sorted by name.
    pub histograms: Vec<MetricHistogram>,
}

impl MetricsStats {
    /// Whether nothing was registered when the snapshot was taken.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// The value of the counter called `name`, zero if absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map_or(0, |c| c.value)
    }

    /// The histogram called `name`, if registered.
    pub fn histogram(&self, name: &str) -> Option<&MetricHistogram> {
        self.histograms.iter().find(|h| h.name == name)
    }
}

impl From<vliw_metrics::Snapshot> for MetricsStats {
    fn from(snap: vliw_metrics::Snapshot) -> Self {
        MetricsStats {
            counters: snap
                .counters
                .into_iter()
                .map(|c| MetricCounter {
                    name: c.name,
                    value: c.value,
                })
                .collect(),
            gauges: snap
                .gauges
                .into_iter()
                .map(|g| MetricGauge {
                    name: g.name,
                    value: g.value,
                })
                .collect(),
            histograms: snap
                .histograms
                .into_iter()
                .map(|h| MetricHistogram {
                    p50: h.quantile(0.50).unwrap_or(0),
                    p95: h.quantile(0.95).unwrap_or(0),
                    p99: h.quantile(0.99).unwrap_or(0),
                    name: h.name,
                    count: h.count,
                    sum: h.sum,
                    min: h.min,
                    max: h.max,
                    buckets: h
                        .buckets
                        .into_iter()
                        .map(|b| MetricBucket {
                            low: b.low,
                            high: b.high,
                            count: b.count,
                        })
                        .collect(),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PhaseStats {
        PhaseStats::from(vec![
            PhaseTotal {
                name: "run".into(),
                elapsed_us: 1000,
                spans: 1,
                counters: vec![("eval_cache_hits".into(), 2)],
            },
            PhaseTotal {
                name: "b_init".into(),
                elapsed_us: 400,
                spans: 1,
                counters: vec![("eval_cache_hits".into(), 7)],
            },
            PhaseTotal {
                name: "b_iter_qu".into(),
                elapsed_us: 550,
                spans: 3,
                counters: vec![("tried_single".into(), 30), ("accepted_single".into(), 4)],
            },
        ])
    }

    #[test]
    fn lookups() {
        let s = sample();
        assert!(!s.is_empty());
        assert_eq!(s.total_us(), 1000);
        assert_eq!(s.phase_sum_us(), 950);
        assert_eq!(s.counter("b_iter_qu", "tried_single"), 30);
        assert_eq!(s.counter("b_iter_qu", "missing"), 0);
        assert_eq!(s.counter("missing", "tried_single"), 0);
        assert_eq!(s.counter_total("eval_cache_hits"), 9);
        assert_eq!(s.phase("b_init").unwrap().spans, 1);
    }

    #[test]
    fn default_is_empty() {
        let s = PhaseStats::default();
        assert!(s.is_empty());
        assert_eq!(s.total_us(), 0);
        assert_eq!(s.phase_sum_us(), 0);
    }

    #[test]
    fn serde_round_trip() {
        let s = sample();
        let text = serde_json::to_string(&s).expect("serializes");
        let back: PhaseStats = serde_json::from_str(&text).expect("round trip");
        assert_eq!(back, s);
    }

    #[test]
    fn metrics_mirror_round_trips_a_live_snapshot() {
        let _guard = vliw_metrics::test_guard();
        vliw_metrics::set_enabled(true);
        vliw_metrics::counter("mirror_hits", "test counter").add(5);
        vliw_metrics::gauge("mirror_level", "test gauge").set(-3);
        let h = vliw_metrics::histogram("mirror_us", "test histogram");
        for v in [1u64, 10, 100, 1000] {
            h.record(v);
        }
        let stats = MetricsStats::from(vliw_metrics::snapshot());
        assert!(!stats.is_empty());
        assert_eq!(stats.counter("mirror_hits"), 5);
        assert_eq!(stats.counter("missing"), 0);
        let gauge = stats
            .gauges
            .iter()
            .find(|g| g.name == "mirror_level")
            .expect("registered");
        assert_eq!(gauge.value, -3);
        let hist = stats.histogram("mirror_us").expect("registered");
        assert_eq!(hist.count, 4);
        assert_eq!(hist.sum, 1111);
        assert_eq!((hist.min, hist.max), (1, 1000));
        assert!(hist.p50 >= 1 && hist.p50 <= 100);
        assert!(
            hist.p99 >= 896,
            "p99 within one bucket of 1000: {}",
            hist.p99
        );
        let text = serde_json::to_string(&stats).expect("serializes");
        let back: MetricsStats = serde_json::from_str(&text).expect("round trip");
        assert_eq!(back, stats);
    }

    #[test]
    fn metrics_default_is_empty() {
        assert!(MetricsStats::default().is_empty());
        assert!(MetricsStats::default().histogram("x").is_none());
    }
}
