//! Load profiles and serialization penalties (paper Section 3.1.2).
//!
//! B-INIT estimates resource pressure with a relaxation in the spirit of
//! force-directed scheduling: every operation spreads one unit of load
//! uniformly over its time frame `[asap(v), alap(v) + dii(v) − 1]`, with
//! intensity `1/(μ(v)+1)`. Profiles exist at three levels:
//!
//! * the **centralized datapath** profile `load_DP(t,τ)` — what an ideal
//!   unclustered machine with all `N(t)` units would experience; computed
//!   once, it is the yardstick clusters are compared against;
//! * per-**cluster** profiles `load_CL(c,t,τ)` over *bound* operations
//!   only, normalized by `N(c,t)`;
//! * the **bus** profile over the data transfers committed so far, each
//!   placed "on the side" right after its producer completes, normalized
//!   by `N_B`.
//!
//! [`LoadProfiles::fu_cost`] and [`LoadProfiles::bus_cost`] count the
//! cycles by which a tentative binding would push a profile into overload
//! — the `fucost`/`buscost` terms of the paper's Equation 1.

use crate::config::CostModel;
use vliw_datapath::{ClusterId, Machine};
use vliw_dfg::{Dfg, FuType, OpId, Timing};
use vliw_sched::Binding;

/// Tolerance for floating-point profile comparisons: a profile exactly at
/// the threshold is *not* overloaded.
const EPS: f64 = 1e-9;

/// The mutable load-profile state carried through one B-INIT run.
///
/// # Example
///
/// ```
/// use vliw_binding::profile::LoadProfiles;
/// use vliw_binding::CostModel;
/// use vliw_datapath::Machine;
/// use vliw_dfg::{DfgBuilder, OpType, Timing};
/// use vliw_sched::Binding;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = DfgBuilder::new();
/// let v = b.add_op(OpType::Add, &[]);
/// let dfg = b.finish()?;
/// let machine = Machine::parse("[1,1|1,1]")?;
/// let timing = Timing::with_critical_path(&dfg, &[1]);
/// let binding = Binding::unbound(&dfg);
/// let profiles = LoadProfiles::new(&dfg, &machine, &timing);
/// let c0 = machine.cluster_ids().next().unwrap();
/// // An empty cluster can absorb the op without serialization.
/// let model = CostModel::ExcessMass;
/// assert_eq!(profiles.fu_cost(model, v, c0), 0.0);
/// assert_eq!(profiles.bus_cost(model, &binding, v, c0), 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LoadProfiles<'a> {
    dfg: &'a Dfg,
    machine: &'a Machine,
    timing: &'a Timing,
    horizon: usize,
    /// Centralized profile per regular FU type, normalized by `N(t)`.
    dp: [Vec<f64>; 2],
    /// Per-cluster profile per regular FU type, normalized by `N(c,t)`.
    cl: Vec<[Vec<f64>; 2]>,
    /// Bus profile over committed transfers, normalized by `N_B`.
    bus: Vec<f64>,
    /// Transfers already accounted in `bus`, keyed by
    /// (producer, destination cluster) — matching the bound-DFG dedup.
    committed: std::collections::HashSet<(OpId, ClusterId)>,
}

impl<'a> LoadProfiles<'a> {
    /// Builds the centralized profile and empty cluster/bus profiles.
    ///
    /// `timing` must have been computed on `dfg` with `L_TG = L_PR`
    /// (the load-profile latency being explored).
    pub fn new(dfg: &'a Dfg, machine: &'a Machine, timing: &'a Timing) -> Self {
        let max_dii = FuType::ALL
            .iter()
            .map(|&t| machine.dii(t))
            .max()
            .unwrap_or(1);
        let horizon = (2 * timing.target_latency() + max_dii + 2) as usize;
        let mut dp = [vec![0.0; horizon], vec![0.0; horizon]];
        for v in dfg.op_ids() {
            let t = dfg.op_type(v).fu_type();
            if !t.is_regular() {
                continue;
            }
            let n_t = machine.fu_count_total(t) as f64;
            let (lo, hi, w) = op_load(dfg, machine, timing, v);
            for tau in lo..=hi.min(horizon as u32 - 1) {
                dp[t.index()][tau as usize] += w / n_t;
            }
        }
        let cl = machine
            .cluster_ids()
            .map(|_| [vec![0.0; horizon], vec![0.0; horizon]])
            .collect();
        LoadProfiles {
            dfg,
            machine,
            timing,
            horizon,
            dp,
            cl,
            bus: vec![0.0; horizon],
            committed: std::collections::HashSet::new(),
        }
    }

    /// `fucost(v,c)`: the serialization penalty of binding `v` to `c`,
    /// measured against the threshold `max(load_DP(t,τ), 1)` — a cluster
    /// pays nothing while it is no more (normalized-)loaded than the
    /// equivalent centralized datapath (Section 3.1.2).
    ///
    /// Under [`CostModel::BinaryCycles`] this counts overloaded cycles of
    /// the temporarily updated profile (the paper's literal wording); the
    /// mass-based models integrate the overload mass instead, which does
    /// not saturate once a cycle is overloaded (see [`CostModel`] for the
    /// variants and the default).
    pub fn fu_cost(&self, model: CostModel, v: OpId, c: ClusterId) -> f64 {
        let t = self.dfg.op_type(v).fu_type();
        debug_assert!(t.is_regular(), "fu_cost is for regular operations");
        let n_ct = self.machine.fu_count(c, t);
        debug_assert!(n_ct > 0, "candidate cluster must be in TS(v)");
        let (lo, hi, w) = op_load(self.dfg, self.machine, self.timing, v);
        let contribution = w / n_ct as f64;
        let cl = &self.cl[c.index()][t.index()];
        let dp = &self.dp[t.index()];
        let binary = || {
            let mut cost = 0.0;
            for tau in 0..self.horizon {
                let mut load = cl[tau];
                if (tau as u32) >= lo && (tau as u32) <= hi {
                    load += contribution;
                }
                if load > dp[tau].max(1.0) + EPS {
                    cost += 1.0;
                }
            }
            cost
        };
        let mass = |marginal: bool| {
            // Only cycles the candidate touches can change the mass.
            let mut cost = 0.0;
            for tau in lo..=hi.min(self.horizon as u32 - 1) {
                let thr = dp[tau as usize].max(1.0);
                let after = (cl[tau as usize] + contribution - thr).max(0.0);
                let before = if marginal {
                    (cl[tau as usize] - thr).max(0.0)
                } else {
                    0.0
                };
                cost += after - before;
            }
            cost
        };
        match model {
            CostModel::BinaryCycles => binary(),
            CostModel::ExcessMass => mass(true),
            CostModel::TotalExcess => mass(false),
            CostModel::Hybrid => binary() + mass(false),
        }
    }

    /// `buscost(v,c)`: the bus serialization penalty — the overload of
    /// the bus profile including the tentative transfers needed to
    /// deliver `v`'s cross-cluster operands (`load_BUS > 1`,
    /// Section 3.1.2), measured per [`CostModel`] like
    /// [`LoadProfiles::fu_cost`].
    ///
    /// Only operands whose producers are already bound contribute
    /// (the binding order guarantees that is all of them in B-INIT).
    pub fn bus_cost(&self, model: CostModel, binding: &Binding, v: OpId, c: ClusterId) -> f64 {
        let mut tentative = vec![0.0; 0];
        let n_b = self.machine.bus_count() as f64;
        for &u in self.dfg.preds(v) {
            let Some(bu) = binding.get(u) else { continue };
            if bu == c || self.committed.contains(&(u, c)) {
                continue;
            }
            if tentative.is_empty() {
                tentative = vec![0.0; self.horizon];
            }
            let (lo, hi, w) = move_load(self.dfg, self.machine, self.timing, u, v);
            for tau in lo..=hi.min(self.horizon as u32 - 1) {
                tentative[tau as usize] += w / n_b;
            }
        }
        let binary = || {
            let mut cost = 0.0;
            for tau in 0..self.horizon {
                let extra = if tentative.is_empty() {
                    0.0
                } else {
                    tentative[tau]
                };
                if self.bus[tau] + extra > 1.0 + EPS {
                    cost += 1.0;
                }
            }
            cost
        };
        let mass = |marginal: bool| {
            if tentative.is_empty() {
                return 0.0;
            }
            let mut cost = 0.0;
            for (tau, &t) in tentative.iter().enumerate().take(self.horizon) {
                if t == 0.0 {
                    continue;
                }
                let after = (self.bus[tau] + t - 1.0).max(0.0);
                let before = if marginal {
                    (self.bus[tau] - 1.0).max(0.0)
                } else {
                    0.0
                };
                cost += after - before;
            }
            cost
        };
        match model {
            CostModel::BinaryCycles => binary(),
            CostModel::ExcessMass => mass(true),
            CostModel::TotalExcess => mass(false),
            CostModel::Hybrid => binary() + mass(false),
        }
    }

    /// Commits the binding `v → c`: adds `v`'s load to the cluster profile
    /// and the loads of its newly required incoming transfers to the bus
    /// profile (deduplicated per (producer, destination), mirroring the
    /// bound-DFG construction).
    pub fn commit(&mut self, binding: &Binding, v: OpId, c: ClusterId) {
        let t = self.dfg.op_type(v).fu_type();
        let n_ct = self.machine.fu_count(c, t) as f64;
        let (lo, hi, w) = op_load(self.dfg, self.machine, self.timing, v);
        let profile = &mut self.cl[c.index()][t.index()];
        for tau in lo..=hi.min(self.horizon as u32 - 1) {
            profile[tau as usize] += w / n_ct;
        }
        let n_b = self.machine.bus_count() as f64;
        for &u in self.dfg.preds(v) {
            let Some(bu) = binding.get(u) else { continue };
            if bu == c || !self.committed.insert((u, c)) {
                continue;
            }
            let (lo, hi, w) = move_load(self.dfg, self.machine, self.timing, u, v);
            for tau in lo..=hi.min(self.horizon as u32 - 1) {
                self.bus[tau as usize] += w / n_b;
            }
        }
    }

    /// Whether a transfer of `u`'s value to cluster `c` has already been
    /// committed by an earlier binding decision (in which case a further
    /// consumer of `u` in `c` needs no new transfer).
    pub fn has_committed_transfer(&self, u: OpId, c: ClusterId) -> bool {
        self.committed.contains(&(u, c))
    }

    /// The centralized profile value `load_DP(t,τ)` (exposed for tests and
    /// the ablation tooling).
    pub fn dp_load(&self, t: FuType, tau: u32) -> f64 {
        self.dp[t.index()][tau as usize]
    }

    /// The cluster profile value `load_CL(c,t,τ)`.
    pub fn cluster_load(&self, c: ClusterId, t: FuType, tau: u32) -> f64 {
        self.cl[c.index()][t.index()][tau as usize]
    }

    /// The bus profile value `load_BUS(τ)`.
    pub fn bus_load(&self, tau: u32) -> f64 {
        self.bus[tau as usize]
    }

    /// Number of profile steps tracked.
    pub fn horizon(&self) -> usize {
        self.horizon
    }
}

/// Time frame and intensity of a regular operation's load: it occupies
/// `[asap(v), alap(v) + dii(v) − 1]` with weight `1/(μ(v)+1)` — for a
/// fully pipelined unit this spreads exactly one unit of load over the
/// `μ+1` possible start steps; a larger `dii` extends the occupancy beyond
/// the time frame (paper: "the load is extended beyond the operation's
/// time frame").
fn op_load(dfg: &Dfg, machine: &Machine, timing: &Timing, v: OpId) -> (u32, u32, f64) {
    let dii = machine.dii_of_op(dfg.op_type(v));
    let lo = timing.asap(v);
    let hi = timing.alap(v) + dii - 1;
    let w = 1.0 / (timing.mobility(v) as f64 + 1.0);
    (lo, hi, w)
}

/// Time frame and intensity of a tentative transfer for edge `u → v`:
/// placed "on the side" right after the producer completes, with mobility
/// `max(μ(v) − lat(move), 0)` (Section 3.1.2, "Bus serialization
/// penalty").
fn move_load(dfg: &Dfg, machine: &Machine, timing: &Timing, u: OpId, v: OpId) -> (u32, u32, f64) {
    let lo = timing.asap(u) + machine.latency(dfg.op_type(u));
    let mobility = timing.mobility(v).saturating_sub(machine.move_latency());
    let dii = machine.dii(FuType::Bus);
    let hi = lo + mobility + dii - 1;
    let w = 1.0 / (mobility as f64 + 1.0);
    (lo, hi, w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_dfg::{DfgBuilder, OpType};

    fn cl(i: usize) -> ClusterId {
        ClusterId::from_index(i)
    }

    /// Four independent adds, L_PR = 1: every op pinned to step 0 with
    /// weight 1.
    #[test]
    fn centralized_profile_sums_pinned_ops() {
        let mut b = DfgBuilder::new();
        for _ in 0..4 {
            b.add_op(OpType::Add, &[]);
        }
        let dfg = b.finish().expect("acyclic");
        let machine = Machine::parse("[1,1|1,1]").expect("machine");
        let timing = Timing::with_critical_path(&dfg, &[1; 4]);
        let p = LoadProfiles::new(&dfg, &machine, &timing);
        // 4 ops, N(ALU) = 2 -> normalized centralized load 2.0 at step 0.
        assert!((p.dp_load(FuType::Alu, 0) - 2.0).abs() < 1e-12);
        assert!(p.dp_load(FuType::Alu, 1).abs() < 1e-12);
        assert!(p.dp_load(FuType::Mul, 0).abs() < 1e-12);
    }

    #[test]
    fn mobile_op_spreads_load_over_time_frame() {
        // Chain of 3 + 1 independent op, L_PR = 3: the free op has
        // mobility 2, weight 1/3 over steps 0..=2.
        let mut b = DfgBuilder::new();
        let c0 = b.add_op(OpType::Add, &[]);
        let c1 = b.add_op(OpType::Add, &[c0]);
        let _ = b.add_op(OpType::Add, &[c1]);
        let _free = b.add_op(OpType::Add, &[]);
        let dfg = b.finish().expect("acyclic");
        let machine = Machine::parse("[1,1|1,1]").expect("machine");
        let timing = Timing::with_critical_path(&dfg, &[1; 4]);
        let p = LoadProfiles::new(&dfg, &machine, &timing);
        // Chain contributes 1/2 per step (N=2); free op 1/6 per step.
        for tau in 0..3 {
            assert!((p.dp_load(FuType::Alu, tau) - (0.5 + 1.0 / 6.0)).abs() < 1e-12);
        }
    }

    #[test]
    fn fu_cost_zero_until_cluster_saturates() {
        // Three pinned adds onto a 1-ALU cluster, one at a time.
        let mut b = DfgBuilder::new();
        for _ in 0..3 {
            b.add_op(OpType::Add, &[]);
        }
        let dfg = b.finish().expect("acyclic");
        let machine = Machine::parse("[1,1|1,1]").expect("machine");
        let timing = Timing::with_critical_path(&dfg, &[1; 3]);
        let mut p = LoadProfiles::new(&dfg, &machine, &timing);
        let mut bn = Binding::unbound(&dfg);
        let v: Vec<OpId> = dfg.op_ids().collect();

        // First op: cluster profile goes to 1.0 — not overloaded (<=1 is
        // free), and the centralized profile is 1.5 anyway.
        assert_eq!(p.fu_cost(CostModel::BinaryCycles, v[0], cl(0)), 0.0);
        assert_eq!(p.fu_cost(CostModel::ExcessMass, v[0], cl(0)), 0.0);
        p.commit(&bn, v[0], cl(0));
        bn.bind(v[0], cl(0));
        // Second op on the same cluster: load 2.0 > max(1.5, 1). Binary:
        // one overloaded cycle. Mass: 2.0 - 1.5 = 0.5 beyond fair share.
        assert_eq!(p.fu_cost(CostModel::BinaryCycles, v[1], cl(0)), 1.0);
        assert!((p.fu_cost(CostModel::ExcessMass, v[1], cl(0)) - 0.5).abs() < 1e-12);
        assert_eq!(p.fu_cost(CostModel::ExcessMass, v[1], cl(1)), 0.0);
    }

    #[test]
    fn excess_mass_does_not_saturate() {
        // Binary counting says op 3, 4, 5 on the same saturated cycle all
        // cost "1"; excess mass keeps growing — the property that stops
        // the greedy pass from serializing everything on one unit.
        let mut b = DfgBuilder::new();
        for _ in 0..5 {
            b.add_op(OpType::Mul, &[]);
        }
        let dfg = b.finish().expect("acyclic");
        let machine = Machine::parse("[1,1|1,1|1,1]").expect("machine");
        let timing = Timing::with_critical_path(&dfg, &[1; 5]);
        let mut p = LoadProfiles::new(&dfg, &machine, &timing);
        let bn = Binding::unbound(&dfg);
        let v: Vec<OpId> = dfg.op_ids().collect();
        // dp(MUL, 0) = 5/3; stack ops onto cluster 0.
        let mut previous = 0.0;
        for i in 0..4 {
            p.commit(&bn, v[i], cl(0));
            let binary = p.fu_cost(CostModel::BinaryCycles, v[4], cl(0));
            let mass = p.fu_cost(CostModel::ExcessMass, v[4], cl(0));
            if i >= 1 {
                assert_eq!(binary, 1.0, "binary saturates at one cycle");
                assert!(mass >= previous, "mass must not decrease");
            }
            previous = mass;
        }
        // With 4 ops committed, the 5th costs a full unit of excess mass.
        assert!((previous - 1.0).abs() < 1e-12, "got {previous}");
    }

    #[test]
    fn fu_cost_not_incurred_while_under_centralized_load() {
        // Heavily loaded centralized profile: 6 pinned adds, N(ALU) = 2
        // -> load_DP = 3. A 2-ALU cluster absorbing 4 of them (load 2)
        // still pays nothing; the 5th (load 2.5 <= 3) also free.
        let mut b = DfgBuilder::new();
        for _ in 0..6 {
            b.add_op(OpType::Add, &[]);
        }
        let dfg = b.finish().expect("acyclic");
        let machine = Machine::parse("[2,1|0,1]").expect("machine");
        let timing = Timing::with_critical_path(&dfg, &[1; 6]);
        let mut p = LoadProfiles::new(&dfg, &machine, &timing);
        let bn = Binding::unbound(&dfg);
        let v: Vec<OpId> = dfg.op_ids().collect();
        for (i, &op) in v.iter().enumerate().take(5) {
            assert_eq!(
                p.fu_cost(CostModel::ExcessMass, op, cl(0)),
                0.0,
                "op {i} under DP load"
            );
            p.commit(&bn, op, cl(0));
        }
        // Sixth op: cluster load 3.0 == DP load 3.0 -> still no penalty
        // (strict inequality).
        assert_eq!(p.fu_cost(CostModel::ExcessMass, v[5], cl(0)), 0.0);
        assert_eq!(p.fu_cost(CostModel::BinaryCycles, v[5], cl(0)), 0.0);
    }

    #[test]
    fn bus_cost_counts_overloaded_cycles() {
        // Three producers on cluster 0, consumers on cluster 1, N_B = 1,
        // everything pinned (L_PR = L_CP = 2): each transfer wants the
        // same cycle.
        let mut b = DfgBuilder::new();
        let mut prods = Vec::new();
        for _ in 0..3 {
            prods.push(b.add_op(OpType::Add, &[]));
        }
        let mut cons = Vec::new();
        for &u in &prods {
            cons.push(b.add_op(OpType::Add, &[u]));
        }
        let dfg = b.finish().expect("acyclic");
        let machine = Machine::parse("[3,1|3,1]")
            .expect("machine")
            .with_bus_count(1);
        let timing = Timing::with_critical_path(&dfg, &[1; 6]);
        let mut p = LoadProfiles::new(&dfg, &machine, &timing);
        let mut bn = Binding::unbound(&dfg);
        for &u in &prods {
            p.commit(&bn, u, cl(0));
            bn.bind(u, cl(0));
        }
        // First consumer on cluster 1: bus profile empty, its own single
        // transfer fits (load 1.0 at cycle 1, not > 1).
        assert_eq!(p.bus_cost(CostModel::ExcessMass, &bn, cons[0], cl(1)), 0.0);
        p.commit(&bn, cons[0], cl(1));
        bn.bind(cons[0], cl(1));
        // Second consumer cross-cluster: 2.0 > 1 at cycle 1 -> penalty 1.
        assert_eq!(
            p.bus_cost(CostModel::BinaryCycles, &bn, cons[1], cl(1)),
            1.0
        );
        assert_eq!(p.bus_cost(CostModel::ExcessMass, &bn, cons[1], cl(1)), 1.0);
        // Binding it to the producers' cluster avoids the transfer.
        assert_eq!(p.bus_cost(CostModel::ExcessMass, &bn, cons[1], cl(0)), 0.0);
    }

    #[test]
    fn committed_transfers_are_deduplicated() {
        // One producer, two consumers in the destination cluster: the
        // second consumer's transfer is already covered.
        let mut b = DfgBuilder::new();
        let u = b.add_op(OpType::Add, &[]);
        let c1 = b.add_op(OpType::Add, &[u]);
        let c2 = b.add_op(OpType::Add, &[u]);
        let dfg = b.finish().expect("acyclic");
        let machine = Machine::parse("[2,1|2,1]")
            .expect("machine")
            .with_bus_count(1);
        let timing = Timing::with_critical_path(&dfg, &[1; 3]);
        let mut p = LoadProfiles::new(&dfg, &machine, &timing);
        let mut bn = Binding::unbound(&dfg);
        p.commit(&bn, u, cl(0));
        bn.bind(u, cl(0));
        p.commit(&bn, c1, cl(1));
        bn.bind(c1, cl(1));
        let bus_after_first = p.bus_load(1);
        // The second consumer needs no new transfer: no bus cost, and
        // committing it leaves the bus profile unchanged.
        assert_eq!(p.bus_cost(CostModel::ExcessMass, &bn, c2, cl(1)), 0.0);
        p.commit(&bn, c2, cl(1));
        assert_eq!(p.bus_load(1), bus_after_first);
    }

    #[test]
    fn dii_extends_load_beyond_time_frame() {
        use vliw_datapath::{Cluster, MachineBuilder};
        let mut b = DfgBuilder::new();
        let _ = b.add_op(OpType::Mul, &[]);
        let dfg = b.finish().expect("acyclic");
        let machine = MachineBuilder::new()
            .cluster(Cluster::new(1, 1))
            .op_latency(OpType::Mul, 2)
            .fu_dii(FuType::Mul, 2)
            .build()
            .expect("machine");
        let timing = Timing::with_critical_path(&dfg, &[2]);
        let p = LoadProfiles::new(&dfg, &machine, &timing);
        // asap = alap = 0, dii = 2 -> load on steps 0 and 1.
        assert!((p.dp_load(FuType::Mul, 0) - 1.0).abs() < 1e-12);
        assert!((p.dp_load(FuType::Mul, 1) - 1.0).abs() < 1e-12);
        assert!(p.dp_load(FuType::Mul, 2).abs() < 1e-12);
    }

    #[test]
    fn move_mobility_clamped_at_zero() {
        // Consumer with zero mobility: transfer mobility clamps to 0 and
        // the transfer is pinned right after the producer.
        let mut b = DfgBuilder::new();
        let u = b.add_op(OpType::Add, &[]);
        let v = b.add_op(OpType::Add, &[u]);
        let dfg = b.finish().expect("acyclic");
        let machine = Machine::parse("[1,1|1,1]").expect("machine");
        let timing = Timing::with_critical_path(&dfg, &[1; 2]);
        let (lo, hi, w) = move_load(&dfg, &machine, &timing, u, v);
        assert_eq!((lo, hi), (1, 1));
        assert!((w - 1.0).abs() < 1e-12);
    }
}
