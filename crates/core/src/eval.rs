//! The parallel, memoized evaluation engine behind the driver and
//! B-ITER.
//!
//! Every phase of the algorithm reduces to the same hot step: take a
//! candidate [`Binding`], materialize its bound graph, list-schedule it,
//! and read off the quality metrics. The candidates inside one sweep or
//! descent step are completely independent, so an [`Evaluator`] batches
//! them and fans them across a scoped worker pool
//! ([`std::thread::scope`] — no extra dependency), while a memo table
//! keyed by the binding makes sure no binding is ever scheduled twice
//! across the whole run (the `L_PR` sweep, multiple improvement starts
//! and the `Q_U`/`Q_M` descents revisit each other's neighborhoods
//! constantly).
//!
//! The memo stores compact [`EvalOutcome`]s — `(L, N_MV, completion
//! profile)` — rather than whole [`BindingResult`]s: a descent step only
//! needs the quality vector of every candidate to pick a winner, and
//! only the winner is materialized in full. Keeping the cache entries
//! ~100 bytes instead of a cloned graph + schedule is what makes the
//! memo profitable.
//!
//! Determinism is a hard guarantee, not an accident: results are written
//! to slots indexed by the candidate's enumeration order and every
//! reduction in the callers scans those slots in order with a strict
//! `<`, so the parallel output is bit-identical to `threads = 1` and the
//! memoized output is bit-identical to a cold cache (evaluation is a
//! pure function of `(dfg, machine, binding)`).

use crate::config::BinderConfig;
use crate::driver::BindingResult;
use crate::error::BindError;
use crate::iter::{Quality, QualityKind};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use vliw_datapath::Machine;
use vliw_dfg::Dfg;
use vliw_sched::{Binding, SchedArena};
use vliw_trace::{Stopwatch, Tracer};

/// Below this many uncached bindings a batch is evaluated on the calling
/// thread: spawning workers costs tens of microseconds, which dwarfs the
/// evaluation of a handful of small graphs.
const PARALLEL_THRESHOLD: usize = 32;

/// The memoized metrics of one evaluated binding: everything the
/// driver's `(L, N_MV)` ranking and both B-ITER quality vectors need,
/// without holding onto the bound graph or schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalOutcome {
    /// Schedule latency `L` in cycles.
    pub latency: u32,
    /// Number of inserted data transfers `N_MV`.
    pub moves: usize,
    /// The completion-tail profile `(U_0, U_1, …)` backing `Q_U`.
    pub completion: Vec<usize>,
}

impl EvalOutcome {
    /// Compresses a full evaluation into its memoizable metrics.
    pub fn of(result: &BindingResult) -> Self {
        EvalOutcome {
            latency: result.latency(),
            moves: result.moves(),
            completion: result.schedule.completion_profile(&result.bound),
        }
    }

    /// The `(L, N_MV)` pair, as in [`BindingResult::lm`].
    pub fn lm(&self) -> (u32, usize) {
        (self.latency, self.moves)
    }

    /// The quality vector under `kind`, identical to
    /// [`Quality::measure`] on the corresponding full result.
    pub fn quality(&self, kind: QualityKind) -> Quality {
        match kind {
            QualityKind::Qu => Quality::from_parts(self.latency, self.completion.clone()),
            QualityKind::Qm => Quality::from_parts(self.latency, vec![self.moves]),
        }
    }
}

/// Cache-hit counters of an [`Evaluator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct EvalStats {
    /// Evaluation requests served without scheduling: memo lookups plus
    /// duplicates coalesced inside one batch.
    pub hits: usize,
    /// Requests that actually ran the list scheduler.
    pub misses: usize,
}

impl EvalStats {
    /// Fraction of requests served from the memo, in `0.0..=1.0`
    /// (`0.0` when nothing was requested).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One memo slot, keyed by the binding's precomputed fingerprint. The
/// binding itself is retained only in debug builds, where every probe
/// audits that the fingerprint match is a true binding match — a
/// collision in the 64-bit FNV space (~2⁻⁶⁴ per pair) would silently
/// serve the wrong outcome in release builds, so debug runs and the
/// test suite make it loud instead.
#[derive(Debug, Clone)]
struct MemoEntry {
    outcome: EvalOutcome,
    #[cfg(debug_assertions)]
    binding: Binding,
}

impl MemoEntry {
    fn new(outcome: EvalOutcome, binding: &Binding) -> Self {
        #[cfg(not(debug_assertions))]
        let _ = binding;
        MemoEntry {
            outcome,
            #[cfg(debug_assertions)]
            binding: binding.clone(),
        }
    }

    /// Debug-only collision audit: the probing binding must be the one
    /// stored under this fingerprint.
    fn audit(&self, probe: &Binding) {
        #[cfg(not(debug_assertions))]
        let _ = probe;
        #[cfg(debug_assertions)]
        assert_eq!(
            &self.binding, probe,
            "evaluation memo fingerprint collision"
        );
    }
}

/// Process-global metric handles of the evaluation engine, resolved
/// once per evaluator so the hot path pays only relaxed atomic
/// increments. Present only when [`vliw_metrics::enabled`] was true at
/// construction time — strictly observational, never a search input.
#[derive(Debug)]
struct EvalMetrics {
    /// Wall-clock of one candidate evaluation (bound graph + list
    /// schedule), in microseconds.
    candidate_us: vliw_metrics::Histogram,
    /// Requests served from the memo or coalesced in-batch.
    cache_hits: vliw_metrics::Counter,
    /// Requests that actually ran the list scheduler.
    cache_misses: vliw_metrics::Counter,
    /// Evaluations whose pooled arena was reset in place (no scratch
    /// reallocation).
    arena_reuse: vliw_metrics::Counter,
}

impl EvalMetrics {
    fn new() -> Self {
        EvalMetrics {
            candidate_us: vliw_metrics::histogram(
                "eval_candidate_us",
                "Wall-clock of one candidate evaluation (bound graph + list schedule), in microseconds",
            ),
            cache_hits: vliw_metrics::counter(
                "eval_cache_hits",
                "Evaluation requests served from the memo or coalesced within a batch",
            ),
            cache_misses: vliw_metrics::counter(
                "eval_cache_misses",
                "Evaluation requests that ran the list scheduler",
            ),
            arena_reuse: vliw_metrics::counter(
                "eval_arena_reuse_total",
                "Candidate evaluations whose pooled scheduling arena was reset in place without reallocating",
            ),
        }
    }
}

/// A memoizing, optionally parallel evaluator of candidate bindings for
/// one `(dfg, machine)` pair.
///
/// Create one per binding run and pass it to every phase so the memo
/// spans the `L_PR` sweep, all improvement starts and both descent
/// passes. See the [module docs](self) for the determinism contract.
#[derive(Debug)]
pub struct Evaluator<'e> {
    dfg: &'e Dfg,
    machine: &'e Machine,
    threads: usize,
    memo: Option<Mutex<HashMap<u64, MemoEntry>>>,
    /// Pooled scheduling arenas, one checked out per in-flight
    /// evaluation; `None` disables reuse ([`BinderConfig::arena`]).
    arenas: Option<Mutex<Vec<SchedArena>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    arena_reuses: AtomicUsize,
    tracer: Tracer,
    metrics: Option<EvalMetrics>,
}

impl<'e> Evaluator<'e> {
    /// An evaluator configured from [`BinderConfig::threads`],
    /// [`BinderConfig::eval_cache`] and [`BinderConfig::arena`].
    pub fn new(dfg: &'e Dfg, machine: &'e Machine, config: &BinderConfig) -> Self {
        Self::with_settings(dfg, machine, config.threads, config.eval_cache)
            .with_arena(config.arena)
    }

    /// An evaluator with explicit settings; `threads = 0` means one
    /// worker per available CPU. Arena reuse is on; toggle it with
    /// [`Evaluator::with_arena`].
    pub fn with_settings(
        dfg: &'e Dfg,
        machine: &'e Machine,
        threads: usize,
        eval_cache: bool,
    ) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            threads
        };
        Evaluator {
            dfg,
            machine,
            threads,
            memo: eval_cache.then(|| Mutex::new(HashMap::new())),
            arenas: Some(Mutex::new(Vec::new())),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            arena_reuses: AtomicUsize::new(0),
            tracer: Tracer::off(),
            metrics: vliw_metrics::enabled().then(EvalMetrics::new),
        }
    }

    /// Enables or disables the pooled-arena fast path. Purely a memory
    /// optimization: results are bit-identical either way.
    pub fn with_arena(mut self, arena: bool) -> Self {
        self.arenas = arena.then(|| Mutex::new(Vec::new()));
        self
    }

    /// Attaches a tracer: each batch then reports its cache
    /// hits/misses (`eval_cache_hits` / `eval_cache_misses`) and each
    /// evaluation worker its busy time (`eval_worker_us`), attributed to
    /// whichever pipeline phase issued the batch.
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// The tracer events are emitted to (off unless
    /// [`Evaluator::with_tracer`] attached one).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The resolved worker count (never 0).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The DFG this evaluator binds.
    pub fn dfg(&self) -> &'e Dfg {
        self.dfg
    }

    /// The target machine.
    pub fn machine(&self) -> &'e Machine {
        self.machine
    }

    /// Cache counters accumulated so far.
    pub fn stats(&self) -> EvalStats {
        EvalStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// How many evaluations reset a pooled arena in place (no scratch
    /// reallocation) so far. Zero when arena reuse is disabled.
    pub fn arena_reuses(&self) -> usize {
        self.arena_reuses.load(Ordering::Relaxed)
    }

    /// Fully evaluates one binding (bound graph + schedule), warming the
    /// memo as a side effect. Used to materialize winners; batch metric
    /// queries should go through [`Evaluator::outcomes`] instead.
    ///
    /// # Panics
    ///
    /// Panics when an armed [`vliw_fault`] failpoint fires during the
    /// evaluation; use [`Evaluator::try_evaluate`] to contain injected
    /// faults as typed errors instead.
    pub fn evaluate(&self, binding: Binding) -> BindingResult {
        self.try_evaluate(binding)
            .unwrap_or_else(|e| panic!("evaluation failed: {e}"))
    }

    /// [`Evaluator::evaluate`] with fault supervision: a fault injected
    /// at the `eval.candidate` or `sched.list` site (including a worker
    /// panic) is contained and returned as a typed [`BindError`].
    pub fn try_evaluate(&self, binding: Binding) -> Result<BindingResult, BindError> {
        let result = crate::pool::guard_item(0, || {
            vliw_fault::point("eval.candidate")?;
            Ok(self.timed_evaluate(binding))
        })?;
        if let Some(memo) = &self.memo {
            memo.lock().unwrap_or_else(|e| e.into_inner()).insert(
                result.binding.fingerprint(),
                MemoEntry::new(EvalOutcome::of(&result), &result.binding),
            );
        }
        Ok(result)
    }

    /// The memoized metrics of a batch of candidate bindings, in input
    /// order. Memoized and in-batch duplicate bindings are served
    /// without scheduling; the remaining distinct bindings are scheduled,
    /// in parallel when the batch is large enough to pay for the scoped
    /// worker pool.
    ///
    /// # Panics
    ///
    /// Panics when an armed [`vliw_fault`] failpoint fires during the
    /// batch; use [`Evaluator::try_outcomes`] to contain injected faults
    /// as typed errors instead.
    pub fn outcomes(&self, bindings: &[Binding]) -> Vec<EvalOutcome> {
        self.try_outcomes(bindings)
            .unwrap_or_else(|e| panic!("evaluation failed: {e}"))
    }

    /// [`Evaluator::outcomes`] with fault supervision: the first fault
    /// injected while scheduling the batch (including a worker panic,
    /// contained by [`crate::pool::run_indexed_fallible`]) fails the
    /// whole batch with a typed [`BindError`] — in input order, so the
    /// reported fault is deterministic for a deterministic schedule.
    pub fn try_outcomes(&self, bindings: &[Binding]) -> Result<Vec<EvalOutcome>, BindError> {
        let mut slots: Vec<Option<EvalOutcome>> = vec![None; bindings.len()];
        // Fingerprints are precomputed once per candidate: every memo
        // probe, in-batch coalescing and memo write below keys on them
        // instead of re-hashing whole assignment vectors.
        let fps: Vec<u64> = bindings.iter().map(Binding::fingerprint).collect();
        // Distinct bindings that need a real evaluation, in first-seen
        // order (by first input index), with the slots each one fills.
        let mut pending: Vec<(usize, Vec<usize>)> = Vec::new();
        {
            let mut seen: HashMap<u64, usize> = HashMap::new();
            let memo = self.memo.as_ref().map(|m| m.lock().expect("memo lock")); // lint:allow(no-panic)
            for (i, binding) in bindings.iter().enumerate() {
                if let Some(hit) = memo.as_ref().and_then(|m| m.get(&fps[i])) {
                    hit.audit(binding);
                    slots[i] = Some(hit.outcome.clone());
                    self.hits.fetch_add(1, Ordering::Relaxed);
                } else if let Some(&p) = seen.get(&fps[i]) {
                    // Coalesced duplicate within this batch: scheduled
                    // once, so the extra request counts as a hit.
                    pending[p].1.push(i);
                    self.hits.fetch_add(1, Ordering::Relaxed);
                } else {
                    seen.insert(fps[i], pending.len());
                    pending.push((i, vec![i]));
                    self.misses.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        self.trace_cache_counters(bindings.len() - pending.len(), pending.len());

        // Outcomes, not full results: each evaluation dismantles its
        // bound graph back into the arena it checked out before the
        // arena returns to the pool, so the next candidate's
        // construction is allocation-free.
        let fresh =
            self.run_batch_outcomes(pending.iter().map(|&(b, _)| bindings[b].clone()).collect())?;

        if let Some(memo) = &self.memo {
            let mut memo = memo.lock().expect("memo lock"); // lint:allow(no-panic)
            for (&(b, _), outcome) in pending.iter().zip(&fresh) {
                memo.insert(fps[b], MemoEntry::new(outcome.clone(), &bindings[b]));
            }
        }
        for ((_, targets), outcome) in pending.into_iter().zip(fresh) {
            let (last, rest) = targets
                .split_last()
                .expect("every pending entry has a slot"); // lint:allow(no-panic)
            for &i in rest {
                slots[i] = Some(outcome.clone());
            }
            slots[*last] = Some(outcome);
        }
        Ok(slots
            .into_iter()
            .map(|s| s.expect("every slot is filled")) // lint:allow(no-panic)
            .collect())
    }

    /// Fully evaluates a batch of candidate bindings, returning results
    /// in input order (in parallel for large batches). Duplicates within
    /// the batch are scheduled once; the memo is warmed with every
    /// outcome but cannot serve full results, so each distinct binding
    /// is scheduled even when its metrics are cached.
    ///
    /// # Panics
    ///
    /// Panics when an armed [`vliw_fault`] failpoint fires during the
    /// batch; use [`Evaluator::try_evaluate_all`] to contain injected
    /// faults as typed errors instead.
    pub fn evaluate_all(&self, bindings: Vec<Binding>) -> Vec<BindingResult> {
        self.try_evaluate_all(bindings)
            .unwrap_or_else(|e| panic!("evaluation failed: {e}"))
    }

    /// [`Evaluator::evaluate_all`] with fault supervision: the first
    /// fault injected while scheduling the batch fails it with a typed
    /// [`BindError`] instead of unwinding through the pool.
    pub fn try_evaluate_all(
        &self,
        bindings: Vec<Binding>,
    ) -> Result<Vec<BindingResult>, BindError> {
        let mut slots: Vec<Option<BindingResult>> = (0..bindings.len()).map(|_| None).collect();
        let mut pending: Vec<(Binding, Vec<usize>)> = Vec::new();
        {
            let mut seen: HashMap<u64, usize> = HashMap::new();
            for (i, binding) in bindings.iter().enumerate() {
                match seen.entry(binding.fingerprint()) {
                    std::collections::hash_map::Entry::Occupied(e) => {
                        pending[*e.get()].1.push(i);
                        self.hits.fetch_add(1, Ordering::Relaxed);
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(pending.len());
                        pending.push((binding.clone(), vec![i]));
                        self.misses.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
        self.trace_cache_counters(bindings.len() - pending.len(), pending.len());
        let results = self.run_batch(pending.iter().map(|(b, _)| b.clone()).collect())?;
        if let Some(memo) = &self.memo {
            let mut memo = memo.lock().expect("memo lock"); // lint:allow(no-panic)
            for ((binding, _), result) in pending.iter().zip(&results) {
                memo.insert(
                    binding.fingerprint(),
                    MemoEntry::new(EvalOutcome::of(result), binding),
                );
            }
        }
        for ((_, targets), result) in pending.iter().zip(results) {
            let (last, rest) = targets
                .split_last()
                .expect("every pending entry has a slot"); // lint:allow(no-panic)
            for &i in rest {
                slots[i] = Some(result.clone());
            }
            slots[*last] = Some(result);
        }
        Ok(slots
            .into_iter()
            .map(|s| s.expect("every slot is filled")) // lint:allow(no-panic)
            .collect())
    }

    /// Reports one batch's cache classification to the tracer and the
    /// global metrics registry (no-op when both are off or the batch
    /// was empty).
    fn trace_cache_counters(&self, hits: usize, misses: usize) {
        if let Some(metrics) = &self.metrics {
            metrics.cache_hits.add(hits as u64);
            metrics.cache_misses.add(misses as u64);
        }
        if !self.tracer.is_enabled() {
            return;
        }
        if hits > 0 {
            self.tracer.counter("eval_cache_hits", hits as u64, vec![]);
        }
        if misses > 0 {
            self.tracer
                .counter("eval_cache_misses", misses as u64, vec![]);
        }
    }

    /// Schedules each binding, serially or across the worker pool, with
    /// every item supervised by [`crate::pool::guard_item`] so an
    /// injected (or organic) panic degrades to a typed error. The result
    /// order matches the input order either way; when a fault fires, the
    /// first error in input order is returned. The `eval.candidate`
    /// failpoint is checked per item on both paths, so a given fault
    /// schedule behaves identically whatever the thread count.
    fn run_batch(&self, bindings: Vec<Binding>) -> Result<Vec<BindingResult>, BindError> {
        if self.threads <= 1 || bindings.len() < PARALLEL_THRESHOLD {
            let started = self.tracer.is_enabled().then(Stopwatch::start);
            let evals = bindings.len();
            let mut results: Vec<BindingResult> = Vec::with_capacity(evals);
            for (i, b) in bindings.into_iter().enumerate() {
                results.push(crate::pool::guard_item(i, || {
                    vliw_fault::point("eval.candidate")?;
                    Ok(self.timed_evaluate(b))
                })?);
            }
            if let Some(started) = started {
                if evals > 0 {
                    self.trace_worker(0, started.elapsed(), evals);
                }
            }
            return Ok(results);
        }
        let (results, workers) =
            crate::pool::run_indexed_fallible(self.threads, &bindings, |_, b| {
                vliw_fault::point("eval.candidate")?;
                Ok(self.timed_evaluate(b.clone()))
            });
        if self.tracer.is_enabled() {
            // Emitted from the calling thread after the join, so the
            // event order is deterministic per batch.
            for (slot, report) in workers.into_iter().enumerate() {
                self.trace_worker(slot, report.busy, report.items);
            }
        }
        results.into_iter().collect()
    }

    /// [`Evaluator::run_batch`] reduced to [`EvalOutcome`]s: the metric
    /// path for [`Evaluator::try_outcomes`], where the full schedules
    /// are never needed. Each evaluation recycles its bound graph into
    /// the arena before checking it back in, so in steady state every
    /// candidate in the batch — not just the first — is constructed
    /// from pooled storage.
    fn run_batch_outcomes(&self, bindings: Vec<Binding>) -> Result<Vec<EvalOutcome>, BindError> {
        if self.threads <= 1 || bindings.len() < PARALLEL_THRESHOLD {
            let started = self.tracer.is_enabled().then(Stopwatch::start);
            let evals = bindings.len();
            let mut outcomes: Vec<EvalOutcome> = Vec::with_capacity(evals);
            for (i, b) in bindings.into_iter().enumerate() {
                outcomes.push(crate::pool::guard_item(i, || {
                    vliw_fault::point("eval.candidate")?;
                    Ok(self.timed_outcome(b))
                })?);
            }
            if let Some(started) = started {
                if evals > 0 {
                    self.trace_worker(0, started.elapsed(), evals);
                }
            }
            return Ok(outcomes);
        }
        let (outcomes, workers) =
            crate::pool::run_indexed_fallible(self.threads, &bindings, |_, b| {
                vliw_fault::point("eval.candidate")?;
                Ok(self.timed_outcome(b.clone()))
            });
        if self.tracer.is_enabled() {
            for (slot, report) in workers.into_iter().enumerate() {
                self.trace_worker(slot, report.busy, report.items);
            }
        }
        outcomes.into_iter().collect()
    }

    /// [`Evaluator::timed_evaluate`] reduced to its [`EvalOutcome`]:
    /// the full result's storage is dismantled back into the checked-out
    /// arena instead of escaping with the return value, which is what
    /// lets the pool actually serve the next evaluation.
    fn timed_outcome(&self, binding: Binding) -> EvalOutcome {
        let mut arena = match &self.arenas {
            Some(pool) => pool
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop()
                .unwrap_or_default(),
            None => SchedArena::new(),
        };
        let reuses_before = arena.reuses();
        let result = if let Some(metrics) = &self.metrics {
            let started = Stopwatch::start();
            let result = BindingResult::evaluate_with(self.dfg, self.machine, binding, &mut arena);
            metrics
                .candidate_us
                .record(u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX));
            result
        } else {
            BindingResult::evaluate_with(self.dfg, self.machine, binding, &mut arena)
        };
        let outcome = EvalOutcome::of(&result);
        if let Some(pool) = &self.arenas {
            result.recycle_into(&mut arena);
            if arena.reuses() > reuses_before {
                self.arena_reuses.fetch_add(1, Ordering::Relaxed);
                if let Some(metrics) = &self.metrics {
                    metrics.arena_reuse.add(1);
                }
            }
            pool.lock().unwrap_or_else(|e| e.into_inner()).push(arena);
        }
        outcome
    }

    /// Evaluates one candidate against a pooled arena, recording its
    /// wall-clock into the global `eval_candidate_us` histogram when
    /// metrics are on. The recording is lock-free, so parallel workers
    /// time independently; the arena pool is two short lock holds per
    /// evaluation (checkout and checkin).
    fn timed_evaluate(&self, binding: Binding) -> BindingResult {
        let mut arena = match &self.arenas {
            Some(pool) => pool
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop()
                .unwrap_or_default(),
            None => SchedArena::new(),
        };
        let reuses_before = arena.reuses();
        let result = if let Some(metrics) = &self.metrics {
            let started = Stopwatch::start();
            let result = BindingResult::evaluate_with(self.dfg, self.machine, binding, &mut arena);
            metrics
                .candidate_us
                .record(u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX));
            result
        } else {
            BindingResult::evaluate_with(self.dfg, self.machine, binding, &mut arena)
        };
        if let Some(pool) = &self.arenas {
            if arena.reuses() > reuses_before {
                self.arena_reuses.fetch_add(1, Ordering::Relaxed);
                if let Some(metrics) = &self.metrics {
                    metrics.arena_reuse.add(1);
                }
            }
            pool.lock().unwrap_or_else(|e| e.into_inner()).push(arena);
        }
        result
    }

    /// Test hook: plants a memo entry under an arbitrary fingerprint,
    /// bypassing [`Binding::fingerprint`] — used to force the collision
    /// audit down the same-fingerprint/different-binding path that FNV
    /// makes unreachable in practice.
    #[cfg(test)]
    fn memo_insert_raw(&self, fp: u64, binding: &Binding, outcome: EvalOutcome) {
        self.memo
            .as_ref()
            .expect("memo enabled")
            .lock()
            .expect("memo lock")
            .insert(fp, MemoEntry::new(outcome, binding));
    }

    /// Emits one worker's busy time for the batch just evaluated.
    fn trace_worker(&self, slot: usize, busy: std::time::Duration, evals: usize) {
        self.tracer.counter(
            "eval_worker_us",
            u64::try_from(busy.as_micros()).unwrap_or(u64::MAX),
            vec![("worker", slot.into()), ("evals", evals.into())],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::Binder;
    use vliw_datapath::ClusterId;
    use vliw_dfg::{DfgBuilder, OpType};

    fn chain(len: usize) -> Dfg {
        let mut b = DfgBuilder::new();
        let mut prev = b.add_op(OpType::Add, &[]);
        for _ in 1..len {
            prev = b.add_op(OpType::Add, &[prev]);
        }
        b.finish().expect("acyclic")
    }

    fn all_bindings(dfg: &Dfg, machine: &Machine) -> Vec<Binding> {
        // Every assignment of a small DFG to 2 clusters.
        let n = dfg.len();
        (0..(1usize << n))
            .map(|mask| {
                let of = (0..n)
                    .map(|i| ClusterId::from_index((mask >> i) & 1))
                    .collect();
                Binding::new(dfg, machine, of).expect("homogeneous machine")
            })
            .collect()
    }

    #[test]
    fn parallel_matches_serial_on_exhaustive_batch() {
        let dfg = chain(6);
        let machine = Machine::parse("[1,1|1,1]").expect("machine");
        let bindings = all_bindings(&dfg, &machine);
        let serial = Evaluator::with_settings(&dfg, &machine, 1, false);
        let parallel = Evaluator::with_settings(&dfg, &machine, 4, true);
        let a = serial.evaluate_all(bindings.clone());
        let b = parallel.evaluate_all(bindings.clone());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.lm(), y.lm());
            assert_eq!(x.binding, y.binding);
            assert_eq!(x.schedule, y.schedule);
        }
        // Outcomes agree with the full results they compress — whether
        // computed fresh (serial side) or served from the warmed memo.
        for ev in [&serial, &parallel] {
            for (outcome, full) in ev.outcomes(&bindings).iter().zip(&a) {
                assert_eq!(outcome.lm(), full.lm());
                assert_eq!(
                    outcome.completion,
                    full.schedule.completion_profile(&full.bound)
                );
            }
        }
    }

    #[test]
    fn memo_coalesces_duplicates_within_and_across_batches() {
        let dfg = chain(4);
        let machine = Machine::parse("[1,1|1,1]").expect("machine");
        let ev = Evaluator::with_settings(&dfg, &machine, 1, true);
        let b = all_bindings(&dfg, &machine);
        // Three copies of the same binding in one batch …
        let batch = [b[3].clone(), b[5].clone(), b[3].clone(), b[3].clone()];
        let out = ev.outcomes(&batch);
        assert_eq!(out[0], out[2]);
        assert_eq!(ev.stats(), EvalStats { hits: 2, misses: 2 });
        // … and a second batch fully served from the memo.
        let again = ev.outcomes(&[b[5].clone(), b[3].clone()]);
        assert_eq!(again[0], out[1]);
        assert_eq!(ev.stats(), EvalStats { hits: 4, misses: 2 });
    }

    #[test]
    fn cache_disabled_never_memoizes() {
        let dfg = chain(3);
        let machine = Machine::parse("[1,1|1,1]").expect("machine");
        let ev = Evaluator::with_settings(&dfg, &machine, 1, false);
        let b = all_bindings(&dfg, &machine);
        ev.outcomes(&[b[1].clone(), b[1].clone()]);
        // Duplicates inside one batch are structural and always
        // coalesced; only memoization *across* calls is off.
        assert_eq!(ev.stats().hits, 1, "in-batch coalescing still applies");
        ev.outcomes(&[b[1].clone()]);
        assert_eq!(ev.stats().misses, 2, "no memo across calls");
    }

    #[test]
    fn evaluate_warms_the_memo() {
        let dfg = chain(3);
        let machine = Machine::parse("[1,1|1,1]").expect("machine");
        let ev = Evaluator::with_settings(&dfg, &machine, 1, true);
        let b = all_bindings(&dfg, &machine);
        let full = ev.evaluate(b[2].clone());
        let outcome = ev.outcomes(&[b[2].clone()]);
        assert_eq!(outcome[0].lm(), full.lm());
        assert_eq!(ev.stats(), EvalStats { hits: 1, misses: 0 });
    }

    #[test]
    fn auto_thread_count_resolves() {
        let dfg = chain(2);
        let machine = Machine::parse("[1,1|1,1]").expect("machine");
        let ev = Evaluator::with_settings(&dfg, &machine, 0, true);
        assert!(ev.threads() >= 1);
        assert_eq!(ev.dfg().len(), 2);
        assert_eq!(ev.machine().cluster_count(), 2);
    }

    #[test]
    fn hit_rate_is_a_fraction() {
        assert_eq!(EvalStats::default().hit_rate(), 0.0);
        let s = EvalStats { hits: 3, misses: 1 };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn outcome_quality_matches_full_measurement() {
        let dfg = chain(5);
        let machine = Machine::parse("[1,1|1,1]").expect("machine");
        for binding in all_bindings(&dfg, &machine).into_iter().step_by(7) {
            let full = BindingResult::evaluate(&dfg, &machine, binding);
            let outcome = EvalOutcome::of(&full);
            for kind in [QualityKind::Qu, QualityKind::Qm] {
                assert_eq!(
                    outcome.quality(kind),
                    Quality::measure(kind, &full.bound, &full.schedule)
                );
            }
        }
    }

    #[test]
    fn metrics_record_candidate_timings_and_cache_counters() {
        let _guard = vliw_metrics::test_guard();
        vliw_metrics::set_enabled(true);
        let dfg = chain(5);
        let machine = Machine::parse("[1,1|1,1]").expect("machine");
        let ev = Evaluator::with_settings(&dfg, &machine, 1, true);
        let b = all_bindings(&dfg, &machine);
        ev.outcomes(&b);
        ev.outcomes(&[b[0].clone()]);
        // Other tests may race recordings into the global registry while
        // the guard is held, so the assertions are one-sided.
        let snap = vliw_metrics::snapshot();
        let hist = snap
            .histograms
            .iter()
            .find(|h| h.name == "eval_candidate_us")
            .expect("histogram registered");
        assert!(
            hist.count >= b.len() as u64,
            "every distinct candidate is timed: {} < {}",
            hist.count,
            b.len()
        );
        let hits = snap
            .counters
            .iter()
            .find(|c| c.name == "eval_cache_hits")
            .expect("counter registered");
        assert!(hits.value >= 1, "the repeat lookup hits the memo");
    }

    #[test]
    fn metrics_disabled_registers_nothing() {
        let _guard = vliw_metrics::test_guard();
        let dfg = chain(3);
        let machine = Machine::parse("[1,1|1,1]").expect("machine");
        let ev = Evaluator::with_settings(&dfg, &machine, 1, true);
        ev.outcomes(&all_bindings(&dfg, &machine));
        let snap = vliw_metrics::snapshot();
        assert!(
            !snap
                .histograms
                .iter()
                .any(|h| h.name == "eval_candidate_us"),
            "a disabled registry sees no evaluator registrations"
        );
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "the collision audit is debug-only")]
    #[should_panic(expected = "fingerprint collision")]
    fn same_fingerprint_probe_trips_the_collision_audit() {
        let dfg = chain(3);
        let machine = Machine::parse("[1,1|1,1]").expect("machine");
        let ev = Evaluator::with_settings(&dfg, &machine, 1, true);
        let b = all_bindings(&dfg, &machine);
        // Plant one binding's outcome under *another* binding's
        // fingerprint — the collision FNV makes unreachable in practice.
        // The next probe with that other binding must refuse to serve it.
        let outcome = EvalOutcome::of(&BindingResult::evaluate(&dfg, &machine, b[1].clone()));
        ev.memo_insert_raw(b[2].fingerprint(), &b[1], outcome);
        ev.outcomes(&[b[2].clone()]);
    }

    #[test]
    fn arena_pool_reuses_scratch_and_stays_bit_identical() {
        let dfg = chain(6);
        let machine = Machine::parse("[1,1|1,1]").expect("machine");
        let bindings = all_bindings(&dfg, &machine);
        let pooled = Evaluator::with_settings(&dfg, &machine, 1, false);
        let fresh = Evaluator::with_settings(&dfg, &machine, 1, false).with_arena(false);
        let a = pooled.evaluate_all(bindings.clone());
        let b = fresh.evaluate_all(bindings);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.lm(), y.lm());
            assert_eq!(x.binding, y.binding);
            assert_eq!(x.schedule, y.schedule);
        }
        assert!(
            pooled.arena_reuses() > 0,
            "a serial exhaustive batch must recycle its arena"
        );
        assert_eq!(fresh.arena_reuses(), 0, "disabled pool never reuses");
    }

    #[test]
    fn binder_sweep_records_memo_hits() {
        // The driver sweep plus two-phase descent re-evaluates
        // overlapping neighborhoods (at minimum, the Q_M pass rescans
        // the neighborhood the Q_U pass converged in), so the shared
        // memo must see hits on any kernel with cross-cluster traffic.
        let dfg = vliw_kernels::Kernel::Arf.build();
        let machine = Machine::parse("[1,1|1,1]").expect("machine");
        let (result, stats) = Binder::new(&machine).bind_with_stats(&dfg);
        assert!(result.latency() >= 8);
        assert!(
            stats.eval.hits > 0,
            "sweep with duplicates must hit the memo"
        );
    }
}
