//! Golden tests of the observability layer: the trace event stream must
//! be structurally well-formed (spans nest and close), reconcile exactly
//! with the reported [`BindStats`], and cost nothing when disabled.

use std::sync::Arc;
use vliw_binding::{BindStats, Binder, BinderConfig, BindingResult};
use vliw_datapath::Machine;
use vliw_dfg::{Dfg, DfgBuilder, OpType};
use vliw_sched::Binding;
use vliw_trace::{EventKind, MemorySink, SpanCat, TraceEvent};

/// A graph with real cross-cluster pressure so B-ITER has work to do.
fn butterfly() -> Dfg {
    let mut b = DfgBuilder::new();
    let mut layer: Vec<_> = (0..4)
        .map(|i| b.add_op(if i % 2 == 0 { OpType::Mul } else { OpType::Add }, &[]))
        .collect();
    while layer.len() > 1 {
        let x = layer.remove(0);
        let y = layer.remove(0);
        layer.push(b.add_op(OpType::Add, &[x, y]));
        if layer.len() > 1 {
            let z = layer[0];
            layer.push(b.add_op(OpType::Mul, &[z]));
            layer.remove(0);
        }
    }
    b.finish().expect("acyclic")
}

/// Runs a traced bind and returns the events plus the reported stats.
fn traced_bind(config: BinderConfig) -> (Vec<TraceEvent>, BindStats, BindingResult) {
    let dfg = butterfly();
    let machine = Machine::parse("[1,1|1,1]").expect("machine");
    let sink = Arc::new(MemorySink::new());
    let binder = Binder::with_config(
        &machine,
        BinderConfig {
            trace: true,
            verify: true,
            ..config
        },
    )
    .with_trace_sink(sink.clone());
    let (result, stats) = binder.try_bind_with_stats(&dfg).expect("binds");
    (sink.events(), stats, result)
}

#[test]
fn spans_nest_and_close_correctly() {
    let (events, _, _) = traced_bind(BinderConfig::default());
    assert!(!events.is_empty());

    // Replay the stream against a stack: every end matches the innermost
    // open span, every start's parent is the current innermost, and the
    // stack drains to empty.
    let mut stack: Vec<u64> = Vec::new();
    let mut opened = 0usize;
    for e in &events {
        match &e.kind {
            EventKind::SpanStart { span, parent, .. } => {
                assert_eq!(
                    *parent,
                    stack.last().copied(),
                    "span {span} ({}) has wrong parent",
                    e.name
                );
                stack.push(*span);
                opened += 1;
            }
            EventKind::SpanEnd { span, .. } => {
                assert_eq!(
                    stack.pop(),
                    Some(*span),
                    "span {span} ({}) closed out of order",
                    e.name
                );
            }
            EventKind::Counter { .. } => {}
        }
    }
    assert!(stack.is_empty(), "unclosed spans: {stack:?}");
    assert!(opened >= 3, "expected at least run/b_init/verify spans");

    // Sequence numbers are strictly increasing and timestamps monotone.
    for pair in events.windows(2) {
        assert!(pair[0].seq < pair[1].seq);
        assert!(pair[0].t_us <= pair[1].t_us);
    }

    // The phase skeleton of a verified full bind is present, and the
    // root span is the run itself.
    let phase_names: Vec<&str> = events
        .iter()
        .filter(|e| {
            matches!(
                e.kind,
                EventKind::SpanStart {
                    cat: SpanCat::Phase,
                    ..
                }
            )
        })
        .map(|e| e.name.as_str())
        .collect();
    assert_eq!(phase_names[0], "run");
    for required in ["b_init", "b_iter_qu", "b_iter_qm", "verify"] {
        assert!(
            phase_names.contains(&required),
            "missing phase {required} in {phase_names:?}"
        );
    }

    // One detail span per B-INIT sweep point, each carrying its
    // parameters and resulting (L, N_MV).
    let sweep_points: Vec<&TraceEvent> = events
        .iter()
        .filter(|e| {
            e.name == "sweep_point"
                && matches!(
                    e.kind,
                    EventKind::SpanStart {
                        cat: SpanCat::Detail,
                        ..
                    }
                )
        })
        .collect();
    assert!(!sweep_points.is_empty());
    for p in sweep_points {
        for key in ["l_pr", "reverse", "latency", "moves"] {
            assert!(
                p.attrs.iter().any(|(k, _)| k == key),
                "sweep point missing attr {key}: {:?}",
                p.attrs
            );
        }
    }
}

#[test]
fn counters_reconcile_with_bind_stats() {
    let (events, stats, result) = traced_bind(BinderConfig::default());

    let counter_total = |name: &str| -> u64 {
        events
            .iter()
            .filter(|e| e.name == name)
            .filter_map(|e| match e.kind {
                EventKind::Counter { value } => Some(value),
                _ => None,
            })
            .sum()
    };

    // The eval-cache counters in the stream are the same numbers the
    // evaluator reports in BindStats — one stream, two views.
    assert_eq!(counter_total("eval_cache_hits"), stats.eval.hits as u64);
    assert_eq!(counter_total("eval_cache_misses"), stats.eval.misses as u64);
    assert!(stats.eval.misses > 0);

    // Perturbation funnel per kind: tried >= accepted >= improved.
    for kind in ["single", "pair"] {
        let tried = counter_total(&format!("tried_{kind}"));
        let accepted = counter_total(&format!("accepted_{kind}"));
        let improved = counter_total(&format!("improved_{kind}"));
        assert!(
            tried >= accepted && accepted >= improved,
            "{kind}: tried {tried} >= accepted {accepted} >= improved {improved} violated"
        );
    }
    assert!(
        counter_total("tried_single") + counter_total("tried_pair") > 0,
        "B-ITER must have tried perturbations on this graph"
    );

    // PhaseStats is folded from the identical stream: totals must agree.
    assert_eq!(
        stats.phases.counter_total("eval_cache_misses"),
        counter_total("eval_cache_misses"),
    );
    assert_eq!(
        stats.phases.counter_total("tried_single"),
        counter_total("tried_single"),
    );
    for phase in ["run", "b_init", "verify"] {
        assert!(
            stats.phases.phase(phase).is_some(),
            "PhaseStats missing {phase}"
        );
    }

    // The run records the final quality, matching the returned result.
    assert_eq!(counter_total("result_latency"), u64::from(result.latency()));
    assert_eq!(counter_total("result_moves"), result.moves() as u64);

    // Worker busy time was sampled for the evaluation batches.
    assert!(counter_total("eval_worker_us") > 0 || stats.eval.misses == 0);
}

#[test]
fn phase_elapsed_covers_the_run() {
    let (_, stats, _) = traced_bind(BinderConfig::default());
    let total = stats.phases.total_us();
    let covered = stats.phases.phase_sum_us();
    assert!(total > 0);
    // The child phases (B-INIT, descents, verify) account for the run up
    // to driver glue; on micro-runs the glue can be a larger slice, so
    // the hard invariant here is containment, not the 5%-coverage bound
    // (which `vliw trace` checks on real kernels).
    assert!(
        covered <= total,
        "child phases ({covered} us) cannot exceed the run ({total} us)"
    );
}

#[test]
fn disabled_tracing_emits_zero_events() {
    let dfg = butterfly();
    let machine = Machine::parse("[1,1|1,1]").expect("machine");
    let sink = Arc::new(MemorySink::new());
    // Sink attached but `trace` off: the wiring must stay inert.
    let binder = Binder::new(&machine).with_trace_sink(sink.clone());
    assert!(!binder.config().trace);
    let (_, stats) = binder.try_bind_with_stats(&dfg).expect("binds");
    assert_eq!(sink.len(), 0, "disabled tracing must emit nothing");
    assert!(stats.phases.is_empty());
}

#[test]
fn budget_truncation_cause_appears_in_stream() {
    let (events, stats, _) = traced_bind(BinderConfig {
        max_iter_rounds: Some(1),
        ..BinderConfig::default()
    });
    assert!(stats.truncated);
    let trunc: Vec<&TraceEvent> = events
        .iter()
        .filter(|e| e.name == "budget_truncated")
        .collect();
    assert_eq!(trunc.len(), 1, "cause reported exactly once");
    assert!(trunc[0]
        .attrs
        .iter()
        .any(|(k, v)| k == "cause" && *v == vliw_trace::AttrValue::Str("rounds".into())));
    assert_eq!(
        events.iter().filter(|e| e.name == "budget_round").count(),
        1,
        "exactly the granted round is on the timeline"
    );
}

#[test]
fn initial_bind_traces_sweep_only() {
    let dfg = butterfly();
    let machine = Machine::parse("[1,1|1,1]").expect("machine");
    let sink = Arc::new(MemorySink::new());
    let binder = Binder::with_config(
        &machine,
        BinderConfig {
            trace: true,
            verify: true,
            ..BinderConfig::default()
        },
    )
    .with_trace_sink(sink.clone());
    let (result, stats) = binder.try_bind_initial_with_stats(&dfg).expect("binds");
    assert!(result.binding.is_complete());
    assert!(stats.phases.phase("b_init").is_some());
    assert!(stats.phases.phase("b_iter_qu").is_none(), "no descent ran");
    let events = sink.events();
    assert!(events.iter().any(|e| e.name == "sweep_point"));
    assert!(events.iter().all(|e| e.name != "tried_single"));
}

#[test]
fn improve_only_entry_point_is_traced_too() {
    let dfg = butterfly();
    let machine = Machine::parse("[1,1|1,1]").expect("machine");
    // A deliberately scrambled start so the descent has moves to shed.
    let scrambled = Binding::new(
        &dfg,
        &machine,
        dfg.op_ids()
            .map(|v| {
                let ts = machine.target_set(dfg.op_type(v));
                ts[v.index() % ts.len()]
            })
            .collect(),
    )
    .expect("valid");
    let start = BindingResult::evaluate(&dfg, &machine, scrambled);
    let sink = Arc::new(MemorySink::new());
    let binder = Binder::with_config(
        &machine,
        BinderConfig {
            trace: true,
            verify: true,
            ..BinderConfig::default()
        },
    )
    .with_trace_sink(sink.clone());
    let improved = binder.try_improve(&dfg, start).expect("improves");
    assert!(improved.binding.is_complete());
    let events = sink.events();
    let has_phase = |name: &str| {
        events.iter().any(|e| {
            e.name == name
                && matches!(
                    e.kind,
                    EventKind::SpanStart {
                        cat: SpanCat::Phase,
                        ..
                    }
                )
        })
    };
    assert!(has_phase("run"));
    assert!(has_phase("b_iter_qu"));
    assert!(has_phase("b_iter_qm"));
    assert!(has_phase("verify"));
    assert!(!has_phase("b_init"), "improve alone never sweeps");
}
