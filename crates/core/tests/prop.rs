//! Property-based tests of the binding algorithm's invariants on random
//! DFGs and machines.

use proptest::prelude::*;
use vliw_binding::{
    exact, init, iter, Binder, BinderConfig, CostModel, Evaluator, PairMode, QualityKind,
};
use vliw_datapath::Machine;
use vliw_dfg::{critical_path_len, Dfg, DfgBuilder, OpType};
use vliw_sched::Binding;

/// Random DAG: every op draws 0-2 operands from earlier ops.
fn arb_dfg(max_ops: usize) -> impl Strategy<Value = Dfg> {
    (2..=max_ops).prop_flat_map(|n| {
        let kinds = prop::collection::vec(0..3u8, n);
        let picks = prop::collection::vec((0usize..usize::MAX, 0usize..usize::MAX, 0..3u8), n);
        (kinds, picks).prop_map(|(kinds, picks)| {
            let mut b = DfgBuilder::new();
            let mut ids = Vec::new();
            for (i, (&kind, &(p1, p2, arity))) in kinds.iter().zip(&picks).enumerate() {
                let ty = match kind {
                    0 => OpType::Add,
                    1 => OpType::Sub,
                    _ => OpType::Mul,
                };
                let mut operands = Vec::new();
                if i > 0 && arity >= 1 {
                    operands.push(ids[p1 % i]);
                    if arity >= 2 {
                        let second = ids[p2 % i];
                        if !operands.contains(&second) {
                            operands.push(second);
                        }
                    }
                }
                ids.push(b.add_op(ty, &operands));
            }
            b.finish().expect("acyclic by construction")
        })
    })
}

fn arb_machine() -> impl Strategy<Value = Machine> {
    prop::sample::select(vec![
        "[1,1]",
        "[1,1|1,1]",
        "[2,1|1,1]",
        "[2,1|2,1|1,2]",
        "[1,1|1,1|1,1|1,1]",
    ])
    .prop_map(|cfg| Machine::parse(cfg).expect("valid"))
}

/// The Table-1 datapaths (the paper's evaluation matrix).
fn arb_table1_machine() -> impl Strategy<Value = Machine> {
    prop::sample::select(vec![
        "[1,1|1,1]",
        "[2,1|2,1]",
        "[2,1|1,1]",
        "[1,1|1,1|1,1]",
        "[3,1|2,2|1,3]",
        "[1,1|1,1|1,1|1,1]",
        "[2,2|2,1]",
        "[2,1|2,1|1,2]",
        "[3,2|3,1|1,3]",
        "[2,2|2,1|1,1]",
        "[1,2|1,2]",
    ])
    .prop_map(|cfg| Machine::parse(cfg).expect("valid"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every (L_PR, direction, cost model) combination of B-INIT yields
    /// a complete, target-set-respecting binding.
    #[test]
    fn initial_binding_is_always_valid(
        dfg in arb_dfg(28),
        machine in arb_machine(),
        stretch in 0u32..4,
        reverse in any::<bool>(),
        model_idx in 0usize..4,
    ) {
        let model = [
            CostModel::BinaryCycles,
            CostModel::ExcessMass,
            CostModel::TotalExcess,
            CostModel::Hybrid,
        ][model_idx];
        let config = BinderConfig { cost_model: model, ..BinderConfig::default() };
        let lat = machine.op_latencies(&dfg);
        let l_cp = critical_path_len(&dfg, &lat);
        let binding = init::initial_binding(&dfg, &machine, &config, l_cp + stretch, reverse);
        prop_assert!(binding.is_complete());
        prop_assert!(binding.validate(&dfg, &machine).is_ok());
    }

    /// B-ITER never worsens (L, N_MV) regardless of the starting binding
    /// or pair mode.
    #[test]
    fn improvement_is_monotone_from_any_start(
        dfg in arb_dfg(20),
        machine in arb_machine(),
        seeds in prop::collection::vec(0usize..64, 20),
        pair_idx in 0usize..3,
    ) {
        let pair_mode = [PairMode::None, PairMode::Adjacent, PairMode::All][pair_idx];
        let config = BinderConfig { pair_mode, ..BinderConfig::default() };
        let mut start = Binding::unbound(&dfg);
        for v in dfg.op_ids() {
            let ts = machine.target_set(dfg.op_type(v));
            start.bind(v, ts[seeds[v.index() % seeds.len()] % ts.len()]);
        }
        let before = vliw_binding::BindingResult::evaluate(&dfg, &machine, start);
        let before_lm = before.lm();
        let after = iter::improve(&dfg, &machine, &config, before);
        prop_assert!(after.lm() <= before_lm,
            "B-ITER worsened {:?} -> {:?}", before_lm, after.lm());
        prop_assert!(after.binding.validate(&dfg, &machine).is_ok());
    }

    /// The Q_U-then-Q_M sequence never ends with higher latency than a
    /// Q_M-only descent (the paper's argument for Q_U).
    #[test]
    fn qu_first_is_no_worse_than_qm_only(
        dfg in arb_dfg(16),
        machine in arb_machine(),
    ) {
        let config = BinderConfig::default();
        let binder = Binder::with_config(&machine, config.clone());
        let start = binder.bind_initial(&dfg);
        let qm_only = iter::improve_with(&dfg, &machine, &config, start.clone(), QualityKind::Qm);
        let full = iter::improve(&dfg, &machine, &config, start);
        prop_assert!(full.latency() <= qm_only.latency());
    }

    /// The driver's reported result is reproducible: binding twice gives
    /// identical (L, M) and identical bindings (full determinism).
    #[test]
    fn binder_is_deterministic(
        dfg in arb_dfg(20),
        machine in arb_machine(),
    ) {
        let binder = Binder::new(&machine);
        let a = binder.bind(&dfg);
        let b = binder.bind(&dfg);
        prop_assert_eq!(a.lm(), b.lm());
        prop_assert_eq!(a.binding, b.binding);
    }

    /// The parallel, memoized evaluation engine is an observational
    /// no-op: for any thread count and cache setting, the driver returns
    /// the identical (L, N_MV) *and* the identical binding as the serial,
    /// cache-free reference.
    #[test]
    fn parallel_evaluation_is_bit_identical_to_serial(
        dfg in arb_dfg(20),
        machine in arb_machine(),
        threads in 1usize..=8,
        cache in any::<bool>(),
    ) {
        let reference = Binder::with_config(&machine, BinderConfig {
            threads: 1,
            eval_cache: false,
            ..BinderConfig::default()
        }).bind(&dfg);
        let config = BinderConfig { threads, eval_cache: cache, ..BinderConfig::default() };
        let subject = Binder::with_config(&machine, config).bind(&dfg);
        prop_assert_eq!(reference.lm(), subject.lm());
        prop_assert_eq!(reference.binding, subject.binding);
        prop_assert_eq!(reference.schedule, subject.schedule);
    }

    /// Raw evaluator batches agree element-wise with one-at-a-time
    /// serial evaluation, for any thread count and duplicated inputs.
    #[test]
    fn evaluator_batches_match_pointwise_evaluation(
        dfg in arb_dfg(14),
        machine in arb_machine(),
        threads in 1usize..=8,
        cache in any::<bool>(),
        seeds in prop::collection::vec(0usize..64, 24),
    ) {
        // Random bindings, with deliberate repetition to exercise the
        // in-batch coalescing path.
        let mut bindings = Vec::new();
        for chunk in seeds.chunks(2) {
            let mut bn = Binding::unbound(&dfg);
            for v in dfg.op_ids() {
                let ts = machine.target_set(dfg.op_type(v));
                bn.bind(v, ts[chunk[v.index() % chunk.len()] % ts.len()]);
            }
            bindings.push(bn.clone());
            bindings.push(bn);
        }
        let ev = Evaluator::with_settings(&dfg, &machine, threads, cache);
        let batch = ev.evaluate_all(bindings.clone());
        prop_assert_eq!(batch.len(), bindings.len());
        for (bn, got) in bindings.into_iter().zip(batch) {
            let want = vliw_binding::BindingResult::evaluate(&dfg, &machine, bn);
            prop_assert_eq!(want.lm(), got.lm());
            prop_assert_eq!(want.binding, got.binding);
            prop_assert_eq!(want.schedule, got.schedule);
        }
    }

    /// Every result the pipeline emits — B-INIT and B-ITER, across
    /// random DFGs and the full Table-1 datapath matrix — passes the
    /// independent verifier with zero violations, including the
    /// reported (L, N_MV) cross-check.
    #[test]
    fn pipeline_results_verify_clean(
        dfg in arb_dfg(20),
        machine in arb_table1_machine(),
    ) {
        let config = BinderConfig { verify: true, ..BinderConfig::default() };
        let binder = Binder::with_config(&machine, config);
        let init = binder.try_bind_initial(&dfg).expect("B-INIT verifies");
        let iter = binder.try_bind(&dfg).expect("B-ITER verifies");
        for result in [&init, &iter] {
            let violations = vliw_sched::verify_reported(
                &dfg,
                &machine,
                &result.binding,
                &result.bound,
                &result.schedule,
                (result.latency(), result.moves()),
            );
            prop_assert!(violations.is_empty(), "{:?}", violations);
        }
    }

    /// An expired (or immediately-expiring) budget degrades gracefully:
    /// the result is still complete, verified and flagged truncated —
    /// never an error, never an illegal binding.
    #[test]
    fn exhausted_budgets_still_verify(
        dfg in arb_dfg(18),
        machine in arb_machine(),
        deadline_ms in 0u64..=1,
        rounds in 0usize..3,
    ) {
        let config = BinderConfig {
            verify: true,
            deadline_ms: Some(deadline_ms),
            max_iter_rounds: Some(rounds),
            ..BinderConfig::default()
        };
        let binder = Binder::with_config(&machine, config);
        let (result, _stats) = binder.try_bind_with_stats(&dfg).expect("budgeted bind verifies");
        prop_assert!(result.binding.is_complete());
        let violations = vliw_sched::verify(
            &dfg, &machine, &result.binding, &result.bound, &result.schedule,
        );
        prop_assert!(violations.is_empty(), "{:?}", violations);
    }

    /// Tracing is purely observational: a traced run returns the
    /// identical (L, N_MV), binding and schedule as an untraced one, for
    /// any thread count — the event stream only watches the search.
    #[test]
    fn tracing_never_changes_results(
        dfg in arb_dfg(20),
        machine in arb_machine(),
        threads in 1usize..=4,
    ) {
        let plain = Binder::with_config(&machine, BinderConfig {
            threads,
            ..BinderConfig::default()
        }).bind(&dfg);
        let sink = std::sync::Arc::new(vliw_trace::MemorySink::new());
        let traced_binder = Binder::with_config(&machine, BinderConfig {
            threads,
            trace: true,
            ..BinderConfig::default()
        }).with_trace_sink(sink.clone());
        let (traced, stats) = traced_binder
            .try_bind_with_stats(&dfg)
            .expect("traced bind succeeds");
        prop_assert_eq!(plain.lm(), traced.lm());
        prop_assert_eq!(plain.binding, traced.binding);
        prop_assert_eq!(plain.schedule, traced.schedule);
        prop_assert!(!sink.is_empty(), "a traced run must emit events");
        prop_assert!(!stats.phases.is_empty());
        prop_assert_eq!(stats.phases.total_us(), stats.phases.phase("run").unwrap().elapsed_us);
    }

    /// Binding the transposed graph in reverse "mirrors": the reverse
    /// pass on the original equals the forward pass on the transpose
    /// (definitionally), and both produce valid bindings of the original.
    #[test]
    fn reverse_equals_forward_on_transpose(
        dfg in arb_dfg(20),
        machine in arb_machine(),
    ) {
        let config = BinderConfig::default();
        let lat = machine.op_latencies(&dfg);
        let l_pr = critical_path_len(&dfg, &lat) + 1;
        let rev = init::initial_binding(&dfg, &machine, &config, l_pr, true);
        let fwd_on_t = init::initial_binding(&dfg.transposed(), &machine, &config, l_pr, false);
        prop_assert_eq!(rev, fwd_on_t);
    }

    /// The analyzer's certified `(L, N_MV)` floor never exceeds what the
    /// full pipeline actually achieves, and every certificate it emits
    /// survives the independent checker.
    #[test]
    fn certified_bounds_never_exceed_achieved(
        dfg in arb_dfg(24),
        machine in arb_table1_machine(),
    ) {
        let report = vliw_analysis::analyze(&dfg, &machine);
        prop_assert!(vliw_sched::check_report(&dfg, &machine, &report).is_ok());
        let result = Binder::new(&machine).bind(&dfg);
        let (lb_l, lb_m) = report.lm_bound();
        let (l, m) = result.lm();
        prop_assert!(lb_l <= l, "certified L >= {} but pipeline achieved {}", lb_l, l);
        prop_assert!(lb_m <= m, "certified N_MV >= {} but pipeline achieved {}", lb_m, m);
    }

    /// On instances small enough to enumerate every complete binding,
    /// the certified floor also respects the exhaustive optimum — the
    /// bounds are sound against *any* binder, not just ours.
    #[test]
    fn certified_bounds_never_exceed_exhaustive_optimum(
        dfg in arb_dfg(7),
        machine in arb_machine(),
    ) {
        if let Some(opt) = exact::bind_exhaustive(&dfg, &machine, 1 << 15) {
            let (lb_l, lb_m) = vliw_analysis::analyze(&dfg, &machine).lm_bound();
            let (l, m) = opt.lm();
            prop_assert!(lb_l <= l, "certified L >= {} but the optimum is {}", lb_l, l);
            prop_assert!(lb_m <= m, "certified N_MV >= {} but the optimum is {}", lb_m, m);
        }
    }

    /// Inflating a certified bound past what its witness supports must
    /// be caught by the checker: the claimed value has to *equal* the
    /// re-derived one, so a +1 perturbation is always rejected.
    #[test]
    fn inflated_certificates_are_rejected(
        dfg in arb_dfg(20),
        machine in arb_table1_machine(),
    ) {
        let mut report = vliw_analysis::analyze(&dfg, &machine);
        prop_assert!(!report.latency.is_empty(), "non-empty DFGs always have a critical path");
        report.latency[0].cycles += 1;
        prop_assert!(vliw_sched::check_report(&dfg, &machine, &report).is_err());
    }
}
