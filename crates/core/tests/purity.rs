//! Observational-purity sweep: the delta-bound candidate screen and the
//! reusable scheduling arenas are pure speedups. Across every paper
//! kernel, every distinct Table-1 datapath, and both a serial and a
//! parallel evaluator, turning them off must not change a single bit of
//! the result — not the `(L, N_MV)` pair, not the binding, not the
//! schedule. The descent accepts at most one candidate per round and
//! the screen only ever removes candidates that provably cannot be
//! accepted, so identical results here pin down the identical
//! accepted-move sequence as well.

use vliw_binding::{Binder, BinderConfig, BindingResult};
use vliw_datapath::Machine;
use vliw_kernels::Kernel;

/// The 12 distinct datapaths of the paper's Table 1.
const TABLE1_DATAPATHS: [&str; 12] = [
    "[1,1|1,1]",
    "[2,1|2,1]",
    "[2,1|1,1]",
    "[1,1|1,1|1,1]",
    "[2,2|2,1]",
    "[2,1|2,1|1,1]",
    "[3,1|2,2|1,3]",
    "[1,1|1,1|1,1|1,1]",
    "[2,1|2,1|1,2]",
    "[3,2|3,1|1,3]",
    "[2,2|2,1|1,1]",
    "[1,2|1,2]",
];

fn config(screen: bool, arena: bool, threads: usize, verify: bool) -> BinderConfig {
    BinderConfig {
        screen,
        arena,
        threads,
        verify,
        ..BinderConfig::default()
    }
}

fn assert_identical(reference: &BindingResult, subject: &BindingResult, what: &str) {
    assert_eq!(reference.lm(), subject.lm(), "{what}: (L, N_MV) changed");
    assert_eq!(
        reference.binding, subject.binding,
        "{what}: binding changed"
    );
    assert_eq!(
        reference.schedule, subject.schedule,
        "{what}: schedule changed"
    );
}

/// Runs the full kernel × datapath matrix: one screen-off, arena-off
/// reference per cell, compared bit-for-bit against each subject
/// `(screen, arena)` combination at the given thread count.
fn sweep(threads: usize, subjects: &[(bool, bool)]) {
    for kernel in Kernel::ALL {
        let dfg = kernel.build();
        for dp in TABLE1_DATAPATHS {
            let machine = Machine::parse(dp).expect("Table-1 datapath");
            let reference =
                Binder::with_config(&machine, config(false, false, threads, false)).bind(&dfg);
            for &(screen, arena) in subjects {
                let subject =
                    Binder::with_config(&machine, config(screen, arena, threads, false)).bind(&dfg);
                let what = format!(
                    "{} on {dp} (threads {threads}, screen {screen}, arena {arena})",
                    kernel.name()
                );
                assert_identical(&reference, &subject, &what);
            }
        }
    }
}

#[test]
fn screening_and_arenas_are_bit_identical_serial() {
    // Each knob alone and both together, against the same reference.
    sweep(1, &[(true, false), (false, true), (true, true)]);
}

#[test]
fn screening_and_arenas_are_bit_identical_parallel() {
    sweep(4, &[(true, true)]);
}

#[test]
fn screening_audits_every_skip_under_verify() {
    // `verify: true` makes the descent certify every screen decision
    // and run the independent `check_delta_bound` on it before the skip
    // is allowed to stand — a certificate failure falls back to a full
    // evaluation, so an unsound witness would surface as a result diff
    // (and the full-pipeline verifier also re-checks every accepted
    // step). Verification is expensive, so this audit runs on a
    // representative subset of the matrix; the full sweep above covers
    // bit-identity everywhere.
    for kernel in [Kernel::Ewf, Kernel::Fft, Kernel::DctLee] {
        let dfg = kernel.build();
        for dp in ["[1,1|1,1]", "[2,1|2,1|1,2]", "[3,2|3,1|1,3]"] {
            let machine = Machine::parse(dp).expect("datapath");
            let reference =
                Binder::with_config(&machine, config(false, false, 1, false)).bind(&dfg);
            let audited = Binder::with_config(&machine, config(true, true, 1, true)).bind(&dfg);
            let what = format!("{} on {dp} (audited)", kernel.name());
            assert_identical(&reference, &audited, &what);
        }
    }
}
