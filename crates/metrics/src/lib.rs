//! Process-global performance metrics for the binding pipeline:
//! counters, gauges and HDR-style log-bucketed latency histograms.
//!
//! Like `vliw-trace` and `vliw-fault`, this crate is zero-dependency and
//! strictly observational: recording never influences any binding
//! decision, so metrics-on and metrics-off runs are bit-identical in
//! `(L, N_MV)`. The hot path is lock-free — every `record`/`inc` is a
//! handful of relaxed atomic operations on a handle obtained once per
//! batch, and the global on/off switch is a single relaxed load — so
//! instrumented code pays nothing measurable when metrics are off.
//!
//! # Shape
//!
//! - [`Counter`]: a monotone `u64`.
//! - [`Gauge`]: a settable `i64` (last write wins).
//! - [`Histogram`]: base-2 log buckets with 8 linear sub-buckets per
//!   octave (relative error ≤ 12.5%), mergeable across workers.
//! - A process-global [`Registry`] keyed by metric name, exported as a
//!   plain-data [`Snapshot`] and as Prometheus text exposition
//!   ([`prometheus`]).
//!
//! # Global state and tests
//!
//! The registry and its enabled flag are process-global (entry points
//! such as the bench binaries' `--metrics-out` enable them; library code
//! only ever *reads* [`enabled`]). Tests that flip the switch must hold
//! [`test_guard`], which serializes them and restores the disabled,
//! empty state on drop — the same discipline `vliw_fault::test_guard`
//! establishes for the fault registry.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

/// Linear sub-buckets per power-of-two octave (as a bit count).
const SUB_BITS: u32 = 3;
/// Linear sub-buckets per octave.
const SUBS: usize = 1 << SUB_BITS;
/// Total bucket count covering all of `u64` (values `< 8` get exact
/// buckets; above that, 8 sub-buckets per octave up to `2^64`).
const BUCKETS: usize = 62 * SUBS;

/// Index of the bucket containing `v`. Total order preserving: larger
/// values never land in earlier buckets.
fn bucket_index(v: u64) -> usize {
    if v < SUBS as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let octave = (msb - SUB_BITS) as usize;
    let sub = ((v >> (msb - SUB_BITS)) as usize) & (SUBS - 1);
    (octave + 1) * SUBS + sub
}

/// Half-open value range `[low, high)` of bucket `index`; the `high` of
/// the last bucket saturates at `u64::MAX`.
fn bucket_bounds(index: usize) -> (u64, u64) {
    if index < SUBS {
        return (index as u64, index as u64 + 1);
    }
    let octave = index / SUBS - 1;
    let sub = index % SUBS;
    let low = ((SUBS + sub) as u64) << octave;
    (low, low.saturating_add(1u64 << octave))
}

/// A monotonically increasing counter. Cloning shares the underlying
/// cell, so one registered counter can be bumped from many threads.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    inner: Arc<AtomicU64>,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.inner.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.inner.load(Ordering::Relaxed)
    }
}

/// A last-write-wins signed gauge.
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    inner: Arc<AtomicI64>,
}

impl Gauge {
    /// Overwrites the value.
    pub fn set(&self, v: i64) {
        self.inner.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.inner.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.inner.load(Ordering::Relaxed)
    }
}

struct HistogramInner {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for HistogramInner {
    fn default() -> Self {
        HistogramInner {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// A log-bucketed histogram: base-2 octaves split into 8 linear
/// sub-buckets each (values below 8 are exact), covering all of `u64`
/// with at most 12.5% relative bucket width. Recording is lock-free and
/// histograms recorded on separate workers merge exactly
/// ([`Histogram::merge_from`]).
#[derive(Clone, Default)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .finish_non_exhaustive()
    }
}

impl Histogram {
    /// A fresh, unregistered histogram (useful for per-worker local
    /// recording merged into a registered one afterwards).
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one observation.
    pub fn record(&self, v: u64) {
        let i = &self.inner;
        i.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        i.count.fetch_add(1, Ordering::Relaxed);
        i.sum.fetch_add(v, Ordering::Relaxed);
        i.min.fetch_min(v, Ordering::Relaxed);
        i.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Adds every observation of `other` into `self`, bucket by bucket.
    /// After the merge, `self` is indistinguishable from having recorded
    /// both streams directly.
    pub fn merge_from(&self, other: &Histogram) {
        for (dst, src) in self.inner.buckets.iter().zip(&other.inner.buckets) {
            let n = src.load(Ordering::Relaxed);
            if n > 0 {
                dst.fetch_add(n, Ordering::Relaxed);
            }
        }
        let i = &self.inner;
        let o = &other.inner;
        i.count
            .fetch_add(o.count.load(Ordering::Relaxed), Ordering::Relaxed);
        i.sum
            .fetch_add(o.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        i.min
            .fetch_min(o.min.load(Ordering::Relaxed), Ordering::Relaxed);
        i.max
            .fetch_max(o.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// A plain-data copy of the current state (named by the caller).
    fn snapshot(&self, name: &str, help: &str) -> HistogramSnapshot {
        let count = self.inner.count.load(Ordering::Relaxed);
        let buckets = self
            .inner
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                let count = c.load(Ordering::Relaxed);
                (count > 0).then(|| {
                    let (low, high) = bucket_bounds(i);
                    BucketCount { low, high, count }
                })
            })
            .collect();
        HistogramSnapshot {
            name: name.to_owned(),
            help: help.to_owned(),
            count,
            sum: self.inner.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.inner.min.load(Ordering::Relaxed)
            },
            max: self.inner.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// One non-empty histogram bucket: `count` observations fell in the
/// half-open value range `[low, high)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BucketCount {
    /// Inclusive lower bound of the bucket.
    pub low: u64,
    /// Exclusive upper bound of the bucket.
    pub high: u64,
    /// Observations in the bucket.
    pub count: u64,
}

/// Plain-data state of one histogram at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Registered metric name.
    pub name: String,
    /// Registered help text.
    pub help: String,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Smallest observed value (0 when empty).
    pub min: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
    /// The non-empty buckets, in increasing value order.
    pub buckets: Vec<BucketCount>,
}

impl HistogramSnapshot {
    /// Mean observed value; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Estimated `q`-quantile (`0.0 ..= 1.0`): the lower bound of the
    /// bucket holding the `⌈q·count⌉`-th smallest observation, so the
    /// estimate is within one bucket width of the exact quantile.
    /// `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for b in &self.buckets {
            seen += b.count;
            if seen >= rank {
                return Some(b.low);
            }
        }
        self.buckets.last().map(|b| b.low)
    }
}

/// Plain-data counter state at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Registered metric name.
    pub name: String,
    /// Registered help text.
    pub help: String,
    /// Counter value.
    pub value: u64,
}

/// Plain-data gauge state at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GaugeSnapshot {
    /// Registered metric name.
    pub name: String,
    /// Registered help text.
    pub help: String,
    /// Gauge value.
    pub value: i64,
}

/// A consistent-enough copy of every registered metric, sorted by name
/// within each kind. "Consistent enough": each atomic is read once, but
/// concurrent recording may land between reads — fine for the
/// end-of-run reporting this feeds.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Every registered counter.
    pub counters: Vec<CounterSnapshot>,
    /// Every registered gauge.
    pub gauges: Vec<GaugeSnapshot>,
    /// Every registered histogram.
    pub histograms: Vec<HistogramSnapshot>,
}

impl Snapshot {
    /// Renders the snapshot in the Prometheus text exposition format
    /// (`# HELP`/`# TYPE` headers, cumulative `_bucket{le="…"}` series
    /// per histogram). Bucket `le` labels use each bucket's exclusive
    /// upper bound, so they over-approximate by at most one bucket
    /// width — the same error bar as the quantile estimates.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for c in &self.counters {
            let _ = writeln!(out, "# HELP {} {}", c.name, c.help);
            let _ = writeln!(out, "# TYPE {} counter", c.name);
            let _ = writeln!(out, "{} {}", c.name, c.value);
        }
        for g in &self.gauges {
            let _ = writeln!(out, "# HELP {} {}", g.name, g.help);
            let _ = writeln!(out, "# TYPE {} gauge", g.name);
            let _ = writeln!(out, "{} {}", g.name, g.value);
        }
        for h in &self.histograms {
            let _ = writeln!(out, "# HELP {} {}", h.name, h.help);
            let _ = writeln!(out, "# TYPE {} histogram", h.name);
            let mut cumulative = 0u64;
            for b in &h.buckets {
                cumulative += b.count;
                let _ = writeln!(out, "{}_bucket{{le=\"{}\"}} {}", h.name, b.high, cumulative);
            }
            let _ = writeln!(out, "{}_bucket{{le=\"+Inf\"}} {}", h.name, h.count);
            let _ = writeln!(out, "{}_sum {}", h.name, h.sum);
            let _ = writeln!(out, "{}_count {}", h.name, h.count);
        }
        out
    }
}

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

struct Entry {
    help: &'static str,
    metric: Metric,
}

/// A named collection of metrics. Most code uses the process-global one
/// through the free functions ([`counter`], [`histogram`], …); separate
/// instances exist for tests.
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<&'static str, Entry>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn lock(&self) -> MutexGuard<'_, BTreeMap<&'static str, Entry>> {
        // Registration never panics while holding the lock, but recover
        // from poisoning anyway: metrics must not cascade failures.
        self.metrics.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The counter registered under `name`, registering it on first
    /// use. If `name` is already taken by a different metric kind, a
    /// detached (unregistered, invisible to snapshots) handle is
    /// returned rather than panicking.
    pub fn counter(&self, name: &'static str, help: &'static str) -> Counter {
        let mut map = self.lock();
        let entry = map.entry(name).or_insert_with(|| Entry {
            help,
            metric: Metric::Counter(Counter::default()),
        });
        match &entry.metric {
            Metric::Counter(c) => c.clone(),
            _ => Counter::default(),
        }
    }

    /// The gauge registered under `name` (see [`Registry::counter`] for
    /// the first-use and kind-clash rules).
    pub fn gauge(&self, name: &'static str, help: &'static str) -> Gauge {
        let mut map = self.lock();
        let entry = map.entry(name).or_insert_with(|| Entry {
            help,
            metric: Metric::Gauge(Gauge::default()),
        });
        match &entry.metric {
            Metric::Gauge(g) => g.clone(),
            _ => Gauge::default(),
        }
    }

    /// The histogram registered under `name` (see [`Registry::counter`]
    /// for the first-use and kind-clash rules).
    pub fn histogram(&self, name: &'static str, help: &'static str) -> Histogram {
        let mut map = self.lock();
        let entry = map.entry(name).or_insert_with(|| Entry {
            help,
            metric: Metric::Histogram(Histogram::default()),
        });
        match &entry.metric {
            Metric::Histogram(h) => h.clone(),
            _ => Histogram::default(),
        }
    }

    /// A plain-data copy of every registered metric, name-sorted.
    pub fn snapshot(&self) -> Snapshot {
        let map = self.lock();
        let mut snap = Snapshot::default();
        for (name, entry) in map.iter() {
            match &entry.metric {
                Metric::Counter(c) => snap.counters.push(CounterSnapshot {
                    name: (*name).to_owned(),
                    help: entry.help.to_owned(),
                    value: c.get(),
                }),
                Metric::Gauge(g) => snap.gauges.push(GaugeSnapshot {
                    name: (*name).to_owned(),
                    help: entry.help.to_owned(),
                    value: g.get(),
                }),
                Metric::Histogram(h) => snap.histograms.push(h.snapshot(name, entry.help)),
            }
        }
        snap
    }

    /// Drops every registered metric. Live handles keep working but
    /// become invisible to later snapshots.
    pub fn clear(&self) {
        self.lock().clear();
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);

fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Whether metrics collection is on. Instrumented hot paths consult
/// this once per batch and skip the timing work entirely when off, so
/// the disabled cost is one relaxed load.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns collection on or off, process-wide. Only call from process
/// entry points (binaries, test mains under [`test_guard`]) — library
/// code treats the switch as read-only.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// The process-global counter `name` (registering it on first use).
pub fn counter(name: &'static str, help: &'static str) -> Counter {
    global().counter(name, help)
}

/// The process-global gauge `name` (registering it on first use).
pub fn gauge(name: &'static str, help: &'static str) -> Gauge {
    global().gauge(name, help)
}

/// The process-global histogram `name` (registering it on first use).
pub fn histogram(name: &'static str, help: &'static str) -> Histogram {
    global().histogram(name, help)
}

/// A plain-data copy of every process-global metric.
pub fn snapshot() -> Snapshot {
    global().snapshot()
}

/// The process-global registry in Prometheus text exposition format.
pub fn prometheus() -> String {
    global().snapshot().to_prometheus()
}

/// Serializes tests that touch the process-global switch or registry;
/// restores the disabled, empty state on drop.
pub struct TestGuard {
    _lock: MutexGuard<'static, ()>,
}

impl Drop for TestGuard {
    fn drop(&mut self) {
        set_enabled(false);
        global().clear();
    }
}

/// Takes the global-metrics test lock. Hold the guard for the whole
/// test; its drop disables collection and clears the global registry so
/// the next test starts clean.
pub fn test_guard() -> TestGuard {
    static LOCK: Mutex<()> = Mutex::new(());
    TestGuard {
        _lock: LOCK.lock().unwrap_or_else(|e| e.into_inner()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bucket_index_is_monotone_and_bounded() {
        let mut values = vec![0u64, 1, 2, u64::MAX];
        for shift in 0..64u32 {
            for nudge in [0u64, 1, 3] {
                values.push((1u64 << shift).saturating_add(nudge << shift.saturating_sub(3)));
            }
        }
        values.sort_unstable();
        let mut last = 0usize;
        for v in values {
            let i = bucket_index(v);
            assert!(i >= last, "index went backwards at {v}");
            assert!(i < BUCKETS, "index {i} out of range at {v}");
            last = i;
        }
    }

    #[test]
    fn counters_and_gauges_do_arithmetic() {
        let r = Registry::new();
        let c = r.counter("ops", "operations");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name → same cell.
        r.counter("ops", "operations").inc();
        assert_eq!(c.get(), 6);
        let g = r.gauge("depth", "queue depth");
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
        // Kind clash returns a detached handle instead of panicking.
        let clash = r.gauge("ops", "not a counter");
        clash.set(99);
        let snap = r.snapshot();
        assert_eq!(snap.counters.len(), 1);
        assert_eq!(snap.counters[0].value, 6);
        assert_eq!(snap.gauges.len(), 1);
        assert_eq!(snap.gauges[0].value, 4);
    }

    #[test]
    fn histogram_snapshot_carries_exact_aggregates() {
        let h = Histogram::new();
        for v in [3u64, 3, 100, 40_000] {
            h.record(v);
        }
        let s = h.snapshot("lat", "latency");
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 40_106);
        assert_eq!(s.min, 3);
        assert_eq!(s.max, 40_000);
        assert_eq!(s.buckets.iter().map(|b| b.count).sum::<u64>(), 4);
        // The two 3s share one exact bucket.
        assert_eq!(
            s.buckets[0],
            BucketCount {
                low: 3,
                high: 4,
                count: 2
            }
        );
        assert_eq!(s.mean(), Some(40_106.0 / 4.0));
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let s = Histogram::new().snapshot("x", "");
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.mean(), None);
        assert_eq!(s.min, 0);
    }

    #[test]
    fn prometheus_exposition_is_well_formed() {
        let r = Registry::new();
        r.counter("a_total", "as seen").add(3);
        r.gauge("b_now", "current b").set(-2);
        let h = r.histogram("c_us", "c latency");
        h.record(5);
        h.record(300);
        let text = r.snapshot().to_prometheus();
        for needle in [
            "# HELP a_total as seen",
            "# TYPE a_total counter",
            "a_total 3",
            "# TYPE b_now gauge",
            "b_now -2",
            "# TYPE c_us histogram",
            "c_us_bucket{le=\"6\"} 1",
            "c_us_bucket{le=\"+Inf\"} 2",
            "c_us_sum 305",
            "c_us_count 2",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
        // Cumulative bucket counts never decrease.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.contains("c_us_bucket")) {
            let n: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(n >= last, "{line}");
            last = n;
        }
    }

    #[test]
    fn global_registry_round_trips_and_test_guard_resets() {
        let _guard = test_guard();
        assert!(!enabled());
        set_enabled(true);
        assert!(enabled());
        counter("test_global_total", "global test counter").add(2);
        let snap = snapshot();
        assert_eq!(snap.counters.len(), 1);
        assert_eq!(snap.counters[0].value, 2);
        assert!(prometheus().contains("test_global_total 2"));
        drop(_guard);
        assert!(!enabled());
        let _guard = test_guard();
        assert!(snapshot().counters.is_empty());
    }

    /// Exact q-quantile of a sorted sample under the `⌈q·n⌉`-rank
    /// definition the histogram estimator targets.
    fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Every recorded value lands in a bucket whose bounds contain it.
        #[test]
        fn recorded_values_land_in_their_bucket(v in 0u64..u64::MAX) {
            let i = bucket_index(v);
            let (low, high) = bucket_bounds(i);
            prop_assert!(low <= v && (v < high || high == u64::MAX),
                "{v} outside bucket {i} = [{low}, {high})");
            let h = Histogram::new();
            h.record(v);
            let s = h.snapshot("x", "");
            prop_assert_eq!(s.buckets.len(), 1);
            prop_assert!(s.buckets[0].low <= v && v <= s.max);
        }

        /// Quantile estimates are within one bucket width of the exact
        /// quantile of the recorded sample.
        #[test]
        fn quantiles_are_within_one_bucket_width(
            values in proptest::collection::vec(0u64..1_000_000, 1..200),
            qnum in 0u32..=100,
        ) {
            let q = f64::from(qnum) / 100.0;
            let h = Histogram::new();
            for &v in &values {
                h.record(v);
            }
            let mut sorted = values.clone();
            sorted.sort_unstable();
            let exact = exact_quantile(&sorted, q);
            let est = h.snapshot("x", "").quantile(q).expect("non-empty");
            let (low, high) = bucket_bounds(bucket_index(exact));
            let width = high - low;
            let diff = est.abs_diff(exact);
            prop_assert!(diff <= width,
                "estimate {est} vs exact {exact}: off by {diff} > bucket width {width}");
        }

        /// Merging per-worker histograms equals recording everything
        /// into one (the per-worker → global aggregation contract).
        #[test]
        fn merged_histograms_equal_single_recording(
            a in proptest::collection::vec(0u64..1_000_000_000, 0..100),
            b in proptest::collection::vec(0u64..1_000_000_000, 0..100),
        ) {
            let ha = Histogram::new();
            let hb = Histogram::new();
            let hall = Histogram::new();
            for &v in &a {
                ha.record(v);
                hall.record(v);
            }
            for &v in &b {
                hb.record(v);
                hall.record(v);
            }
            ha.merge_from(&hb);
            prop_assert_eq!(ha.snapshot("x", ""), hall.snapshot("x", ""));
        }
    }
}
