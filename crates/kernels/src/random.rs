//! Seeded random layered DAGs for property tests and stress runs.
//!
//! The generator emulates basic-block shapes seen in DSP codes: a fixed
//! number of layers, random in-layer width, operands drawn from the
//! recent layers (locality), and a configurable multiplier fraction.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vliw_dfg::{Dfg, DfgBuilder, OpId, OpType};

/// Configuration for [`generate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomDfgConfig {
    /// Total number of operations.
    pub ops: usize,
    /// Number of layers the operations are spread over (≥ 1); deeper
    /// configurations produce longer critical paths.
    pub layers: usize,
    /// Fraction of multiplier-class operations (0.0 ..= 1.0).
    pub mul_fraction: f64,
    /// Probability that an operation takes a second operand.
    pub second_operand: f64,
}

impl Default for RandomDfgConfig {
    fn default() -> Self {
        RandomDfgConfig {
            ops: 40,
            layers: 8,
            mul_fraction: 0.3,
            second_operand: 0.8,
        }
    }
}

/// Generates a random layered DAG; the same `seed` and config always
/// produce the identical graph.
///
/// Operations in layer 0 are sources; an operation in layer `k > 0` takes
/// its first operand from layer `k−1` (guaranteeing the layer count is
/// the critical-path length when `ops >= layers`) and an optional second
/// operand from any earlier layer.
///
/// # Panics
///
/// Panics if `ops < layers` or `layers == 0`.
///
/// # Example
///
/// ```
/// use vliw_kernels::random::{generate, RandomDfgConfig};
///
/// let dfg = generate(7, RandomDfgConfig::default());
/// assert_eq!(dfg.len(), 40);
/// assert_eq!(dfg, generate(7, RandomDfgConfig::default())); // deterministic
/// ```
pub fn generate(seed: u64, config: RandomDfgConfig) -> Dfg {
    assert!(config.layers > 0, "at least one layer required");
    assert!(
        config.ops >= config.layers,
        "need at least one op per layer ({} ops, {} layers)",
        config.ops,
        config.layers
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = DfgBuilder::with_capacity(config.ops);
    let mut layers: Vec<Vec<OpId>> = Vec::with_capacity(config.layers);

    // Distribute ops over layers: one guaranteed per layer, the rest
    // drawn uniformly.
    let mut layer_sizes = vec![1usize; config.layers];
    for _ in 0..config.ops - config.layers {
        let l = rng.gen_range(0..config.layers);
        layer_sizes[l] += 1;
    }

    for (l, &size) in layer_sizes.iter().enumerate() {
        let mut layer = Vec::with_capacity(size);
        for i in 0..size {
            let kind = if rng.gen_bool(config.mul_fraction) {
                OpType::Mul
            } else if rng.gen_bool(0.5) {
                OpType::Add
            } else {
                OpType::Sub
            };
            let mut operands = Vec::new();
            if l > 0 {
                let prev: &Vec<OpId> = &layers[l - 1];
                operands.push(prev[rng.gen_range(0..prev.len())]);
                if rng.gen_bool(config.second_operand) {
                    let src_layer = rng.gen_range(0..l);
                    let src = &layers[src_layer];
                    let cand = src[rng.gen_range(0..src.len())];
                    if !operands.contains(&cand) {
                        operands.push(cand);
                    }
                }
            }
            layer.push(b.add_named_op(kind, &operands, &format!("l{l}n{i}")));
        }
        layers.push(layer);
    }
    b.finish().expect("layered construction is acyclic")
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_dfg::{critical_path_len, DfgStats};

    #[test]
    fn generation_is_deterministic() {
        let cfg = RandomDfgConfig::default();
        assert_eq!(generate(42, cfg), generate(42, cfg));
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = RandomDfgConfig::default();
        assert_ne!(generate(1, cfg), generate(2, cfg));
    }

    #[test]
    fn critical_path_equals_layer_count() {
        for seed in 0..8 {
            let cfg = RandomDfgConfig {
                ops: 50,
                layers: 10,
                ..RandomDfgConfig::default()
            };
            let dfg = generate(seed, cfg);
            assert_eq!(critical_path_len(&dfg, &vec![1; dfg.len()]), 10);
        }
    }

    #[test]
    fn mul_fraction_zero_yields_alu_only() {
        let cfg = RandomDfgConfig {
            mul_fraction: 0.0,
            ..RandomDfgConfig::default()
        };
        let dfg = generate(3, cfg);
        assert_eq!(dfg.regular_op_mix().1, 0);
    }

    #[test]
    fn graphs_validate() {
        for seed in 0..16 {
            let dfg = generate(seed, RandomDfgConfig::default());
            assert!(dfg.validate().is_ok());
            let stats = DfgStats::unit_latency(&dfg);
            assert_eq!(stats.n_v, 40);
        }
    }

    #[test]
    #[should_panic(expected = "at least one op per layer")]
    fn too_few_ops_panics() {
        let _ = generate(
            0,
            RandomDfgConfig {
                ops: 3,
                layers: 5,
                ..RandomDfgConfig::default()
            },
        );
    }
}
