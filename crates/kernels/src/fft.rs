//! FFT kernel (the main kernel of the RASTA benchmark, MediaBench).
//!
//! Reconstructed as the inner-loop basic block of a radix-2 FFT: two
//! stages of two complex butterflies. Three butterflies carry a general
//! twiddle factor (4 multiplications + 6 additions each), one uses the
//! trivial twiddle `W = −j` (swap + negate), and three magnitude
//! partial-sum taps close the block — 38 operations, single connected
//! component, critical path 6 (paper Table 1 sub-header:
//! `N_V = 38`, `N_CC = 1`, `L_CP = 6`).

use vliw_dfg::{Dfg, DfgBuilder, OpId, OpType};

/// Complex signal: (real, imaginary) node pair; `None` components are
/// primary inputs.
type Complex = (Option<OpId>, Option<OpId>);

fn ops(x: Option<OpId>) -> Vec<OpId> {
    x.into_iter().collect()
}

fn ops2(x: Option<OpId>, y: Option<OpId>) -> Vec<OpId> {
    x.into_iter().chain(y).collect()
}

/// A full radix-2 butterfly with complex twiddle `W = wr + j·wi`:
/// `(a, b) → (a + W·b, a − W·b)`. 4 muls + 6 adds, depth 3.
fn butterfly(b: &mut DfgBuilder, a: Complex, x: Complex, tag: &str) -> (Complex, Complex) {
    let (ar, ai) = a;
    let (br, bi) = x;
    let t1 = b.add_named_op(OpType::Mul, &ops(br), &format!("{tag}.br*wr"));
    let t2 = b.add_named_op(OpType::Mul, &ops(bi), &format!("{tag}.bi*wi"));
    let t3 = b.add_named_op(OpType::Mul, &ops(br), &format!("{tag}.br*wi"));
    let t4 = b.add_named_op(OpType::Mul, &ops(bi), &format!("{tag}.bi*wr"));
    let cr = b.add_named_op(OpType::Sub, &[t1, t2], &format!("{tag}.cr"));
    let ci = b.add_named_op(OpType::Add, &[t3, t4], &format!("{tag}.ci"));
    let xr = b.add_named_op(OpType::Add, &ops2(ar, Some(cr)), &format!("{tag}.xr"));
    let xi = b.add_named_op(OpType::Add, &ops2(ai, Some(ci)), &format!("{tag}.xi"));
    let yr = b.add_named_op(OpType::Sub, &ops2(ar, Some(cr)), &format!("{tag}.yr"));
    let yi = b.add_named_op(OpType::Sub, &ops2(ai, Some(ci)), &format!("{tag}.yi"));
    ((Some(xr), Some(xi)), (Some(yr), Some(yi)))
}

/// A butterfly with the trivial twiddle `W = −j`: `W·b = bi − j·br`, so
/// only a negation and four additions are needed (depth 2).
fn butterfly_neg_j(b: &mut DfgBuilder, a: Complex, x: Complex, tag: &str) -> (Complex, Complex) {
    let (ar, ai) = a;
    let (br, bi) = x;
    let nbr = b.add_named_op(OpType::Neg, &ops(br), &format!("{tag}.-br"));
    let xr = b.add_named_op(OpType::Add, &ops2(ar, bi), &format!("{tag}.xr"));
    let xi = b.add_named_op(OpType::Add, &ops2(ai, Some(nbr)), &format!("{tag}.xi"));
    let yr = b.add_named_op(OpType::Sub, &ops2(ar, bi), &format!("{tag}.yr"));
    let yi = b.add_named_op(OpType::Sub, &ops2(ai, Some(nbr)), &format!("{tag}.yi"));
    ((Some(xr), Some(xi)), (Some(yr), Some(yi)))
}

/// Builds the FFT kernel DFG (38 operations: 26 ALU, 12 MUL; one
/// connected component; critical path 6).
///
/// # Example
///
/// ```
/// let dfg = vliw_kernels::fft();
/// assert_eq!(dfg.len(), 38);
/// assert_eq!(dfg.regular_op_mix(), (26, 12));
/// ```
pub fn fft() -> Dfg {
    let mut b = DfgBuilder::with_capacity(38);
    let input: Complex = (None, None);
    // Stage 1: two full butterflies on primary inputs.
    let (s1a_top, s1a_bot) = butterfly(&mut b, input, input, "bf1");
    let (s1b_top, s1b_bot) = butterfly(&mut b, input, input, "bf2");
    // Stage 2: cross-combine the stage-1 outputs (this is what makes the
    // block a single connected component).
    let (s2a_top, _s2a_bot) = butterfly(&mut b, s1a_top, s1b_top, "bf3");
    let (s2b_top, s2b_bot) = butterfly_neg_j(&mut b, s1a_bot, s1b_bot, "bf4");
    // Magnitude partial sums on the −j butterfly outputs (the RASTA
    // kernel squares/accumulates spectrum terms right in the loop body).
    let p1 = b.add_named_op(
        OpType::Add,
        &[s2b_top.0.expect("real"), s2b_bot.0.expect("real")], // lint:allow(no-panic)
        "mag.re",
    );
    let _p2 = b.add_named_op(
        OpType::Add,
        &[s2b_top.1.expect("imag"), s2b_bot.1.expect("imag")], // lint:allow(no-panic)
        "mag.im",
    );
    let _p3 = b.add_named_op(OpType::Add, &[p1, s2b_top.1.expect("imag")], "mag.mix"); // lint:allow(no-panic)
    let _ = s2a_top;
    b.finish().expect("FFT kernel is acyclic by construction") // lint:allow(no-panic)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_dfg::{DfgStats, Timing};

    #[test]
    fn stats_match_paper_sub_header() {
        let stats = DfgStats::unit_latency(&fft());
        assert_eq!((stats.n_v, stats.n_cc, stats.l_cp), (38, 1, 6));
    }

    #[test]
    fn operation_mix_is_butterfly_heavy() {
        assert_eq!(fft().regular_op_mix(), (26, 12));
    }

    #[test]
    fn stage2_full_butterfly_sets_the_critical_path() {
        let dfg = fft();
        let timing = Timing::with_critical_path(&dfg, &vec![1; dfg.len()]);
        let deepest: Vec<_> = dfg
            .op_ids()
            .filter(|&v| timing.asap(v) == 5)
            .map(|v| dfg.name(v).expect("all ops named").to_owned())
            .collect();
        assert!(
            deepest.iter().any(|n| n.starts_with("bf3")),
            "bf3 outputs should reach depth 6: {deepest:?}"
        );
        assert!(
            deepest
                .iter()
                .all(|n| n.starts_with("bf3") || n.starts_with("mag")),
            "only bf3 outputs and magnitude taps may reach depth 6: {deepest:?}"
        );
    }

    #[test]
    fn butterflies_cross_connect_the_stages() {
        // bf3 consumes outputs of both bf1 and bf2.
        let dfg = fft();
        let find = |name: &str| {
            dfg.op_ids()
                .find(|&v| dfg.name(v) == Some(name))
                .expect("named op exists")
        };
        let bf3_mul = find("bf3.br*wr");
        let bf2_xr = find("bf2.xr");
        assert!(dfg.preds(bf3_mul).contains(&bf2_xr));
        let bf3_xr = find("bf3.xr");
        let bf1_xr = find("bf1.xr");
        assert!(dfg.preds(bf3_xr).contains(&bf1_xr));
    }

    #[test]
    fn neg_j_butterfly_has_no_multiplications() {
        let dfg = fft();
        for v in dfg.op_ids() {
            let name = dfg.name(v).expect("all ops named");
            if name.starts_with("bf4") {
                assert_ne!(dfg.op_type(v), OpType::Mul, "{name} must be mul-free");
            }
        }
    }
}
