//! Benchmark dataflow graphs for the clustered-VLIW binding evaluation.
//!
//! The paper evaluates on seven DSP kernels (Section 5): an elliptic wave
//! filter (EWF), an auto-regression filter (ARF), the FFT kernel of the
//! RASTA benchmark (MediaBench), and four fast-DCT variants (DCT-DIF,
//! DCT-LEE, DCT-DIT and the unrolled DCT-DIT-2). The original DFG
//! captures were never published; the graphs here are **structural
//! reconstructions** from the published algorithms (wave-digital-filter
//! adaptor sections, lattice AR stages, radix-2 FFT butterflies with
//! twiddle factors, fast-DCT butterfly/rotation flow graphs), calibrated
//! so the summary statistics of the paper's table sub-headers match
//! exactly:
//!
//! | kernel | `N_V` | `N_CC` | `L_CP` |
//! |--------|------:|-------:|-------:|
//! | DCT-DIF | 41 | 2 | 7 |
//! | DCT-LEE | 49 | 2 | 9 |
//! | DCT-DIT | 48 | 1 | 7 |
//! | DCT-DIT-2 | 96 | 2 | 7 |
//! | FFT | 38 | 1 | 6 |
//! | EWF | 34 | 1 | 14 |
//! | ARF | 28 | 1 | 8 |
//!
//! (`L_CP` under the Table-1 assumption that all operations take one
//! cycle.) Unit tests pin every row down.
//!
//! A seeded random layered-DAG generator ([`random`]) supports the
//! property-based tests and ablation studies, and [`extra`] provides
//! parametric kernels beyond the paper's seven (FIR, IIR cascades, FFT
//! stages, matrix-vector blocks, lattices, 2D convolution).
//!
//! # Example
//!
//! ```
//! use vliw_dfg::DfgStats;
//! use vliw_kernels::Kernel;
//!
//! let dfg = Kernel::Ewf.build();
//! let stats = DfgStats::unit_latency(&dfg);
//! assert_eq!((stats.n_v, stats.n_cc, stats.l_cp), (34, 1, 14));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arf;
mod dct;
mod ewf;
pub mod extra;
mod fft;
pub mod random;

pub use arf::arf;
pub use dct::{dct_dif, dct_dit, dct_dit2, dct_lee};
pub use ewf::ewf;
pub use fft::fft;

use vliw_dfg::Dfg;

/// The benchmark kernels of the paper's evaluation (Table 1 order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// 8-point fast DCT, decimation in frequency.
    DctDif,
    /// 8-point fast DCT, Lee's algorithm.
    DctLee,
    /// 8-point fast DCT, decimation in time.
    DctDit,
    /// Two unrolled iterations of DCT-DIT.
    DctDit2,
    /// FFT kernel of the RASTA benchmark (two radix-2 stages).
    Fft,
    /// Fifth-order elliptic wave filter.
    Ewf,
    /// Auto-regression (lattice) filter.
    Arf,
}

impl Kernel {
    /// All kernels in the paper's Table-1 order.
    pub const ALL: [Kernel; 7] = [
        Kernel::DctDif,
        Kernel::DctLee,
        Kernel::DctDit,
        Kernel::DctDit2,
        Kernel::Fft,
        Kernel::Ewf,
        Kernel::Arf,
    ];

    /// The name used in the paper's tables.
    pub const fn name(self) -> &'static str {
        match self {
            Kernel::DctDif => "DCT-DIF",
            Kernel::DctLee => "DCT-LEE",
            Kernel::DctDit => "DCT-DIT",
            Kernel::DctDit2 => "DCT-DIT-2",
            Kernel::Fft => "FFT",
            Kernel::Ewf => "EWF",
            Kernel::Arf => "ARF",
        }
    }

    /// Builds the kernel's DFG.
    pub fn build(self) -> Dfg {
        match self {
            Kernel::DctDif => dct_dif(),
            Kernel::DctLee => dct_lee(),
            Kernel::DctDit => dct_dit(),
            Kernel::DctDit2 => dct_dit2(),
            Kernel::Fft => fft(),
            Kernel::Ewf => ewf(),
            Kernel::Arf => arf(),
        }
    }

    /// The `(N_V, N_CC, L_CP)` triple printed in the paper's Table-1
    /// sub-header for this kernel.
    pub const fn paper_stats(self) -> (usize, usize, u32) {
        match self {
            Kernel::DctDif => (41, 2, 7),
            Kernel::DctLee => (49, 2, 9),
            Kernel::DctDit => (48, 1, 7),
            Kernel::DctDit2 => (96, 2, 7),
            Kernel::Fft => (38, 1, 6),
            Kernel::Ewf => (34, 1, 14),
            Kernel::Arf => (28, 1, 8),
        }
    }
}

impl std::fmt::Display for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_dfg::DfgStats;

    #[test]
    fn every_kernel_matches_its_paper_sub_header() {
        for kernel in Kernel::ALL {
            let dfg = kernel.build();
            let stats = DfgStats::unit_latency(&dfg);
            let (n_v, n_cc, l_cp) = kernel.paper_stats();
            assert_eq!(stats.n_v, n_v, "{kernel}: N_V");
            assert_eq!(stats.n_cc, n_cc, "{kernel}: N_CC");
            assert_eq!(stats.l_cp, l_cp, "{kernel}: L_CP");
        }
    }

    #[test]
    fn every_kernel_is_a_valid_original_dfg() {
        for kernel in Kernel::ALL {
            let dfg = kernel.build();
            assert!(dfg.validate().is_ok(), "{kernel} must validate");
            assert!(dfg.moves().is_empty(), "{kernel} must be move-free");
        }
    }

    #[test]
    fn kernels_are_deterministic() {
        for kernel in Kernel::ALL {
            assert_eq!(
                kernel.build(),
                kernel.build(),
                "{kernel} must be reproducible"
            );
        }
    }

    #[test]
    fn names_match_paper_tables() {
        let names: Vec<_> = Kernel::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(
            names,
            vec![
                "DCT-DIF",
                "DCT-LEE",
                "DCT-DIT",
                "DCT-DIT-2",
                "FFT",
                "EWF",
                "ARF"
            ]
        );
    }

    #[test]
    fn dit2_is_two_disjoint_dits() {
        let dit = dct_dit();
        let dit2 = dct_dit2();
        assert_eq!(dit2.len(), 2 * dit.len());
        assert_eq!(dit2.edge_count(), 2 * dit.edge_count());
    }
}
