//! Fifth-order elliptic wave filter (EWF).
//!
//! Reconstructed as a lattice wave digital filter: a first-order and a
//! second-order all-pass section in one branch, two cascaded second-order
//! sections in the other, outputs summed and scaled. Each all-pass
//! section is built from two-port adaptors (one multiplier per adaptor)
//! with an auxiliary reflected-wave addition per section — yielding the
//! classic EWF operation mix of 26 additions and 8 multiplications with a
//! 14-level critical path (paper Table 1: `N_V = 34`, `N_CC = 1`,
//! `L_CP = 14`).
//!
//! Filter states and the sample input are *primary inputs* (not DFG
//! nodes), so adaptor operations reading only states/input appear as DFG
//! sources.

use vliw_dfg::{Dfg, DfgBuilder, OpId, OpType};

/// One first-order all-pass adaptor section.
///
/// `x = None` means the section reads the primary filter input.
/// Returns the section output `y`.
fn first_order(b: &mut DfgBuilder, x: Option<OpId>, tag: &str) -> OpId {
    let x_ops: Vec<OpId> = x.into_iter().collect();
    // t = x - s   (state s is a primary input)
    let t = b.add_named_op(OpType::Sub, &x_ops, &format!("{tag}.t"));
    // u = gamma * t
    let u = b.add_named_op(OpType::Mul, &[t], &format!("{tag}.u"));
    // y = u + s
    let y = b.add_named_op(OpType::Add, &[u], &format!("{tag}.y"));
    // s' = u + x  (next state)
    let sp_ops: Vec<OpId> = std::iter::once(u).chain(x).collect();
    let sp = b.add_named_op(OpType::Add, &sp_ops, &format!("{tag}.s'"));
    // auxiliary reflected wave: r = y + s'
    let _r = b.add_named_op(OpType::Add, &[y, sp], &format!("{tag}.r"));
    y
}

/// One second-order all-pass section: two cascaded two-port adaptors
/// sharing the section states. Returns the section output `y`.
fn second_order(b: &mut DfgBuilder, x: Option<OpId>, tag: &str) -> OpId {
    let x_ops: Vec<OpId> = x.into_iter().collect();
    // First adaptor around state s2.
    let t1 = b.add_named_op(OpType::Sub, &x_ops, &format!("{tag}.t1"));
    let u1 = b.add_named_op(OpType::Mul, &[t1], &format!("{tag}.u1"));
    let w = b.add_named_op(OpType::Add, &[u1], &format!("{tag}.w"));
    let s2p_ops: Vec<OpId> = std::iter::once(u1).chain(x).collect();
    let s2p = b.add_named_op(OpType::Add, &s2p_ops, &format!("{tag}.s2'"));
    // Second adaptor around state s1, fed by the first's through wave.
    let t2 = b.add_named_op(OpType::Sub, &[w], &format!("{tag}.t2"));
    let u2 = b.add_named_op(OpType::Mul, &[t2], &format!("{tag}.u2"));
    let y = b.add_named_op(OpType::Add, &[u2], &format!("{tag}.y"));
    let s1p = b.add_named_op(OpType::Add, &[u2, w], &format!("{tag}.s1'"));
    // Auxiliary reflected wave joining the adaptor next-states.
    let _r = b.add_named_op(OpType::Add, &[s2p, s1p], &format!("{tag}.r"));
    y
}

/// Builds the EWF dataflow graph (34 operations: 26 ALU, 8 MUL;
/// one connected component; critical path 14).
///
/// # Example
///
/// ```
/// let dfg = vliw_kernels::ewf();
/// assert_eq!(dfg.len(), 34);
/// assert_eq!(dfg.regular_op_mix(), (26, 8));
/// ```
pub fn ewf() -> Dfg {
    let mut b = DfgBuilder::with_capacity(34);
    // Branch A: first-order section, then a second-order section.
    let a1 = first_order(&mut b, None, "A1");
    let a2 = second_order(&mut b, Some(a1), "A2");
    // Branch B: two cascaded second-order sections.
    let b1 = second_order(&mut b, None, "B1");
    let b2 = second_order(&mut b, Some(b1), "B2");
    // Output: half-sum of the two all-pass branches.
    let sum = b.add_named_op(OpType::Add, &[a2, b2], "y.sum");
    let _y = b.add_named_op(OpType::Mul, &[sum], "y.scale");
    b.finish().expect("EWF is acyclic by construction") // lint:allow(no-panic)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_dfg::{DfgStats, Timing};

    #[test]
    fn stats_match_paper_sub_header() {
        let dfg = ewf();
        let stats = DfgStats::unit_latency(&dfg);
        assert_eq!(stats.n_v, 34);
        assert_eq!(stats.n_cc, 1);
        assert_eq!(stats.l_cp, 14);
    }

    #[test]
    fn operation_mix_matches_classic_ewf() {
        // The canonical EWF has 26 additions and 8 multiplications.
        let dfg = ewf();
        assert_eq!(dfg.regular_op_mix(), (26, 8));
    }

    #[test]
    fn critical_path_runs_through_branch_b() {
        // Branch B is two cascaded depth-6 sections plus the output sum
        // and scale; the final scale op must be the unique deepest op.
        let dfg = ewf();
        let timing = Timing::with_critical_path(&dfg, &vec![1; dfg.len()]);
        let deepest: Vec<_> = dfg
            .op_ids()
            .filter(|&v| timing.asap(v) == timing.critical_path_len() - 1)
            .collect();
        assert_eq!(deepest.len(), 1);
        assert_eq!(dfg.name(deepest[0]), Some("y.scale"));
    }

    #[test]
    fn every_multiplier_feeds_an_adder() {
        // In a WDF every multiplier output is consumed by adaptor adds.
        let dfg = ewf();
        for v in dfg.op_ids() {
            if dfg.op_type(v) == OpType::Mul && dfg.name(v) != Some("y.scale") {
                assert!(!dfg.succs(v).is_empty(), "{v} should have consumers");
                for &s in dfg.succs(v) {
                    assert_eq!(dfg.op_type(s).fu_type(), vliw_dfg::FuType::Alu);
                }
            }
        }
    }

    #[test]
    fn state_updates_are_outputs() {
        // Next-state ops (named *.s*') must be produced; the auxiliary
        // reflected-wave ops are sinks.
        let dfg = ewf();
        let sinks = dfg.sinks();
        assert!(sinks.len() >= 5, "output, aux waves: got {}", sinks.len());
    }
}
