//! Auto-regression filter (ARF).
//!
//! Reconstructed as a four-stage lattice AR filter: each stage
//! cross-multiplies the two state signals by four reflection coefficients
//! and combines them pairwise, and a running output accumulation chain
//! taps the stage outputs. This matches the classic ARF benchmark mix of
//! 16 multiplications and 12 additions with an 8-level critical path
//! (paper Table 1: `N_V = 28`, `N_CC = 1`, `L_CP = 8`).

use vliw_dfg::{Dfg, DfgBuilder, OpId, OpType};

/// One lattice stage: four coefficient multiplications of the two state
/// signals, combined pairwise. `None` inputs are primary (initial states).
fn stage(b: &mut DfgBuilder, s1: Option<OpId>, s2: Option<OpId>, k: usize) -> (OpId, OpId) {
    let operands = |s: Option<OpId>| -> Vec<OpId> { s.into_iter().collect() };
    let t1 = b.add_named_op(OpType::Mul, &operands(s1), &format!("st{k}.t1"));
    let t2 = b.add_named_op(OpType::Mul, &operands(s2), &format!("st{k}.t2"));
    let t3 = b.add_named_op(OpType::Mul, &operands(s1), &format!("st{k}.t3"));
    let t4 = b.add_named_op(OpType::Mul, &operands(s2), &format!("st{k}.t4"));
    let u1 = b.add_named_op(OpType::Add, &[t1, t2], &format!("st{k}.u1"));
    let u2 = b.add_named_op(OpType::Add, &[t3, t4], &format!("st{k}.u2"));
    (u1, u2)
}

/// Builds the ARF dataflow graph (28 operations: 12 ALU, 16 MUL; one
/// connected component; critical path 8).
///
/// # Example
///
/// ```
/// let dfg = vliw_kernels::arf();
/// assert_eq!(dfg.len(), 28);
/// assert_eq!(dfg.regular_op_mix(), (12, 16));
/// ```
pub fn arf() -> Dfg {
    let mut b = DfgBuilder::with_capacity(28);
    let (u1_1, u2_1) = stage(&mut b, None, None, 1);
    let (u1_2, u2_2) = stage(&mut b, Some(u1_1), Some(u2_1), 2);
    let (u1_3, u2_3) = stage(&mut b, Some(u1_2), Some(u2_2), 3);
    let (_u1_4, _u2_4) = stage(&mut b, Some(u1_3), Some(u2_3), 4);
    // Output accumulation chain tapping successive stage outputs; each
    // tap lands two levels after the previous, tracking the lattice depth
    // so the chain finishes exactly at the critical path.
    let a1 = b.add_named_op(OpType::Add, &[u1_1, u2_1], "acc1");
    let a2 = b.add_named_op(OpType::Add, &[a1, u1_2], "acc2");
    let a3 = b.add_named_op(OpType::Add, &[a2, u1_3], "acc3");
    let _a4 = b.add_named_op(OpType::Add, &[a3, u2_3], "acc4");
    b.finish().expect("ARF is acyclic by construction") // lint:allow(no-panic)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_dfg::{DfgStats, Timing};

    #[test]
    fn stats_match_paper_sub_header() {
        let stats = DfgStats::unit_latency(&arf());
        assert_eq!((stats.n_v, stats.n_cc, stats.l_cp), (28, 1, 8));
    }

    #[test]
    fn operation_mix_matches_classic_arf() {
        assert_eq!(arf().regular_op_mix(), (12, 16));
    }

    #[test]
    fn multiplications_alternate_with_additions() {
        // Lattice structure: every multiplication sits at an odd level,
        // every stage addition at an even level.
        let dfg = arf();
        let timing = Timing::with_critical_path(&dfg, &vec![1; dfg.len()]);
        for v in dfg.op_ids() {
            if dfg.op_type(v) == OpType::Mul {
                assert_eq!(timing.asap(v) % 2, 0, "{v} muls start at even steps");
            }
        }
    }

    #[test]
    fn stage_outputs_feed_next_stage() {
        let dfg = arf();
        // Stage-1 u1 feeds stage-2 muls and the accumulator: 3 consumers.
        let u1_1 = dfg
            .op_ids()
            .find(|&v| dfg.name(v) == Some("st1.u1"))
            .expect("named op exists");
        assert_eq!(dfg.out_degree(u1_1), 3);
    }

    #[test]
    fn accumulator_is_a_sink_on_the_critical_path() {
        let dfg = arf();
        let timing = Timing::with_critical_path(&dfg, &vec![1; dfg.len()]);
        let acc4 = dfg
            .op_ids()
            .find(|&v| dfg.name(v) == Some("acc4"))
            .expect("named op exists");
        assert!(dfg.succs(acc4).is_empty());
        assert_eq!(timing.asap(acc4) + 1, timing.critical_path_len());
    }
}
