//! 8-point fast DCT variants (Ifeachor & Jervis-style flow graphs).
//!
//! All three algorithms start from the eight input samples (primary
//! inputs, so the first butterfly stage appears as DFG sources):
//!
//! * **DCT-DIF** (decimation in frequency): input butterflies split the
//!   samples into a sum half (even coefficients, a 4-point DCT) and a
//!   difference half (odd coefficients, rotations). The two halves share
//!   no DFG node — hence `N_CC = 2`.
//! * **DCT-LEE** (Lee's algorithm): same input split, but the odd half
//!   runs through `1/(2cos)` pre-scalings and ends in Lee's recursive
//!   output post-addition chain, giving the deeper `L_CP = 9`.
//! * **DCT-DIT** (decimation in time): coefficient multiplications come
//!   first and the output butterfly stages last; the final stages combine
//!   both halves, so the graph is a single component.
//! * **DCT-DIT-2**: two independent DCT-DIT instances (the paper's
//!   unrolled variant), `N_CC = 2`.

use vliw_dfg::{Dfg, DfgBuilder, OpId, OpType};

/// Emits the even half shared by DIF and LEE: the sum butterflies and a
/// 4-point DCT (adds for X0/X4, one rotation for X2/X6).
/// 16 operations (12 ALU + 4 MUL), depth 4.
fn emit_even_half(b: &mut DfgBuilder, tag: &str) {
    let n = |s: &str| format!("{tag}.{s}");
    // L1: sum butterflies s_i = x_i + x_{7-i} (inputs are primary).
    let s: Vec<OpId> = (0..4)
        .map(|i| b.add_named_op(OpType::Add, &[], &n(&format!("s{i}"))))
        .collect();
    // L2: second butterfly stage.
    let t0 = b.add_named_op(OpType::Add, &[s[0], s[3]], &n("t0"));
    let t1 = b.add_named_op(OpType::Add, &[s[1], s[2]], &n("t1"));
    let t2 = b.add_named_op(OpType::Sub, &[s[1], s[2]], &n("t2"));
    let t3 = b.add_named_op(OpType::Sub, &[s[0], s[3]], &n("t3"));
    // L3: X0/X4 plus the rotation products for X2/X6.
    let _x0 = b.add_named_op(OpType::Add, &[t0, t1], &n("X0"));
    let _x4 = b.add_named_op(OpType::Sub, &[t0, t1], &n("X4"));
    let m1 = b.add_named_op(OpType::Mul, &[t2], &n("t2*c6"));
    let m2 = b.add_named_op(OpType::Mul, &[t3], &n("t3*s6"));
    let m3 = b.add_named_op(OpType::Mul, &[t2], &n("t2*s6"));
    let m4 = b.add_named_op(OpType::Mul, &[t3], &n("t3*c6"));
    // L4: rotated outputs.
    let _x2 = b.add_named_op(OpType::Add, &[m1, m2], &n("X2"));
    let _x6 = b.add_named_op(OpType::Sub, &[m4, m3], &n("X6"));
}

/// Builds the DCT-DIF dataflow graph (41 operations: 29 ALU, 12 MUL;
/// two connected components; critical path 7).
///
/// # Example
///
/// ```
/// let dfg = vliw_kernels::dct_dif();
/// assert_eq!(dfg.len(), 41);
/// ```
pub fn dct_dif() -> Dfg {
    let mut b = DfgBuilder::with_capacity(41);
    emit_even_half(&mut b, "ev");

    // Odd half: difference butterflies, two rotation layers and the
    // final output butterflies. 25 operations (17 ALU + 8 MUL), depth 7.
    let n = |s: &str| format!("od.{s}");
    let d: Vec<OpId> = (0..4)
        .map(|i| b.add_named_op(OpType::Sub, &[], &n(&format!("d{i}"))))
        .collect();
    // L2: first rotation products on d1/d2, plus the outer sums.
    let m5 = b.add_named_op(OpType::Mul, &[d[1]], &n("d1*c4"));
    let m6 = b.add_named_op(OpType::Mul, &[d[2]], &n("d2*c4"));
    let m7 = b.add_named_op(OpType::Mul, &[d[1]], &n("d1*s4"));
    let m8 = b.add_named_op(OpType::Mul, &[d[2]], &n("d2*s4"));
    let b1 = b.add_named_op(OpType::Add, &[d[0], d[3]], &n("b1"));
    let b2 = b.add_named_op(OpType::Add, &[d[1], d[2]], &n("b2"));
    // L3.
    let a5 = b.add_named_op(OpType::Add, &[m5, m6], &n("a5"));
    let a6 = b.add_named_op(OpType::Sub, &[m7, m8], &n("a6"));
    let a7 = b.add_named_op(OpType::Add, &[b1, b2], &n("a7"));
    let a8 = b.add_named_op(OpType::Sub, &[b1, b2], &n("a8"));
    // L4: second rotation layer.
    let m9 = b.add_named_op(OpType::Mul, &[a7], &n("a7*c2"));
    let m10 = b.add_named_op(OpType::Mul, &[a8], &n("a8*s2"));
    let m11 = b.add_named_op(OpType::Mul, &[a5], &n("a5*c2"));
    let m12 = b.add_named_op(OpType::Mul, &[a6], &n("a6*s2"));
    // L5.
    let a9 = b.add_named_op(OpType::Add, &[m9, m10], &n("a9"));
    let a10 = b.add_named_op(OpType::Sub, &[m11, m12], &n("a10"));
    let a11 = b.add_named_op(OpType::Sub, &[m9, m10], &n("a11"));
    // L6.
    let a12 = b.add_named_op(OpType::Add, &[a9, a10], &n("X1"));
    let a13 = b.add_named_op(OpType::Sub, &[a9, a10], &n("X7"));
    // L7: output butterflies.
    let _x3 = b.add_named_op(OpType::Add, &[a12, a11], &n("X3"));
    let _x5 = b.add_named_op(OpType::Sub, &[a13, a11], &n("X5"));
    b.finish().expect("DCT-DIF is acyclic by construction") // lint:allow(no-panic)
}

/// Builds the DCT-LEE dataflow graph (49 operations: 35 ALU, 14 MUL;
/// two connected components; critical path 9).
///
/// # Example
///
/// ```
/// let dfg = vliw_kernels::dct_lee();
/// assert_eq!(dfg.len(), 49);
/// ```
pub fn dct_lee() -> Dfg {
    let mut b = DfgBuilder::with_capacity(49);
    emit_even_half(&mut b, "ev");

    // Odd half in Lee's style: 1/(2cos) pre-scalings alternate with
    // butterfly adds, finishing with the recursive output post-addition
    // chain. 33 operations (23 ALU + 10 MUL), depth 9.
    let n = |s: &str| format!("od.{s}");
    let d: Vec<OpId> = (0..4)
        .map(|i| b.add_named_op(OpType::Sub, &[], &n(&format!("d{i}"))))
        .collect();
    // L2: pre-scaling by 1/(2cos((2i+1)π/16)).
    let m: Vec<OpId> = (0..4)
        .map(|i| b.add_named_op(OpType::Mul, &[d[i]], &n(&format!("d{i}/2c"))))
        .collect();
    // L3: butterfly adds.
    let a1 = b.add_named_op(OpType::Add, &[m[0], m[1]], &n("a1"));
    let a2 = b.add_named_op(OpType::Add, &[m[1], m[2]], &n("a2"));
    let a3 = b.add_named_op(OpType::Add, &[m[2], m[3]], &n("a3"));
    let a4 = b.add_named_op(OpType::Add, &[m[0], m[3]], &n("a4"));
    // L4: second scaling layer.
    let m5 = b.add_named_op(OpType::Mul, &[a1], &n("a1/2c"));
    let m6 = b.add_named_op(OpType::Mul, &[a2], &n("a2/2c"));
    let m7 = b.add_named_op(OpType::Mul, &[a3], &n("a3/2c"));
    let m8 = b.add_named_op(OpType::Mul, &[a4], &n("a4/2c"));
    // L5.
    let b1 = b.add_named_op(OpType::Add, &[m5, m6], &n("b1"));
    let b2 = b.add_named_op(OpType::Add, &[m6, m7], &n("b2"));
    let b3 = b.add_named_op(OpType::Add, &[m7, m8], &n("b3"));
    let b4 = b.add_named_op(OpType::Add, &[m5, m8], &n("b4"));
    // L6: innermost 2-point scaling.
    let m9 = b.add_named_op(OpType::Mul, &[b1], &n("b1/2c"));
    let m10 = b.add_named_op(OpType::Mul, &[b3], &n("b3/2c"));
    // L7: innermost butterflies.
    let c1 = b.add_named_op(OpType::Add, &[m9, b2], &n("c1"));
    let c2 = b.add_named_op(OpType::Sub, &[m9, b2], &n("c2"));
    let c3 = b.add_named_op(OpType::Add, &[m10, b4], &n("c3"));
    let c4 = b.add_named_op(OpType::Sub, &[m10, b4], &n("c4"));
    // L8: unfold.
    let e1 = b.add_named_op(OpType::Add, &[c1, c3], &n("e1"));
    let e2 = b.add_named_op(OpType::Sub, &[c1, c3], &n("e2"));
    let e3 = b.add_named_op(OpType::Add, &[c2, c4], &n("e3"));
    let e4 = b.add_named_op(OpType::Sub, &[c2, c4], &n("e4"));
    // L9: Lee's output post-addition chain X_{2i+1} = y_i + y_{i+1}.
    let _o1 = b.add_named_op(OpType::Add, &[e1, e2], &n("X1"));
    let _o2 = b.add_named_op(OpType::Add, &[e2, e3], &n("X3"));
    let _o3 = b.add_named_op(OpType::Add, &[e3, e4], &n("X5"));
    b.finish().expect("DCT-LEE is acyclic by construction") // lint:allow(no-panic)
}

/// Emits one DCT-DIT instance: coefficient multiplications first, output
/// butterflies last. 48 operations (36 ALU + 12 MUL), depth 7, single
/// component.
fn emit_dit(b: &mut DfgBuilder, tag: &str) {
    let n = |s: &str| format!("{tag}.{s}");
    // L1: input coefficient products and input sums (all primary-fed).
    let m: Vec<OpId> = (1..=8)
        .map(|i| b.add_named_op(OpType::Mul, &[], &n(&format!("m{i}"))))
        .collect();
    let a: Vec<OpId> = (1..=4)
        .map(|i| b.add_named_op(OpType::Add, &[], &n(&format!("a{i}"))))
        .collect();
    // L2: pairwise combinations; b7/b8 bridge the two input groups.
    let b1 = b.add_named_op(OpType::Add, &[m[0], m[1]], &n("b1"));
    let b2 = b.add_named_op(OpType::Sub, &[m[2], m[3]], &n("b2"));
    let b3 = b.add_named_op(OpType::Add, &[m[4], m[5]], &n("b3"));
    let b4 = b.add_named_op(OpType::Sub, &[m[6], m[7]], &n("b4"));
    let b5 = b.add_named_op(OpType::Add, &[a[0], a[1]], &n("b5"));
    let b6 = b.add_named_op(OpType::Sub, &[a[2], a[3]], &n("b6"));
    let b7 = b.add_named_op(OpType::Add, &[m[1], a[1]], &n("b7"));
    let b8 = b.add_named_op(OpType::Add, &[m[3], a[3]], &n("b8"));
    // L3: mid rotations.
    let c1 = b.add_named_op(OpType::Mul, &[b1], &n("c1"));
    let c2 = b.add_named_op(OpType::Mul, &[b3], &n("c2"));
    let c3 = b.add_named_op(OpType::Mul, &[b5], &n("c3"));
    let c4 = b.add_named_op(OpType::Mul, &[b7], &n("c4"));
    // L4.
    let d1 = b.add_named_op(OpType::Add, &[c1, b2], &n("d1"));
    let d2 = b.add_named_op(OpType::Sub, &[c1, b2], &n("d2"));
    let d3 = b.add_named_op(OpType::Add, &[c2, b4], &n("d3"));
    let d4 = b.add_named_op(OpType::Add, &[c3, b6], &n("d4"));
    let d5 = b.add_named_op(OpType::Sub, &[c3, b6], &n("d5"));
    let d6 = b.add_named_op(OpType::Add, &[c4, b8], &n("d6"));
    // L5.
    let e1 = b.add_named_op(OpType::Add, &[d1, d3], &n("e1"));
    let e2 = b.add_named_op(OpType::Sub, &[d1, d3], &n("e2"));
    let e3 = b.add_named_op(OpType::Add, &[d2, d4], &n("e3"));
    let e4 = b.add_named_op(OpType::Sub, &[d2, d4], &n("e4"));
    let e5 = b.add_named_op(OpType::Add, &[d5, d6], &n("e5"));
    let e6 = b.add_named_op(OpType::Sub, &[d5, d6], &n("e6"));
    // L6.
    let f1 = b.add_named_op(OpType::Add, &[e1, e5], &n("f1"));
    let f2 = b.add_named_op(OpType::Sub, &[e1, e5], &n("f2"));
    let f3 = b.add_named_op(OpType::Add, &[e2, e6], &n("f3"));
    let f4 = b.add_named_op(OpType::Sub, &[e2, e6], &n("f4"));
    let f5 = b.add_named_op(OpType::Add, &[e3, e4], &n("f5"));
    let f6 = b.add_named_op(OpType::Sub, &[e3, e4], &n("f6"));
    // L7: final output butterflies.
    let _x: Vec<OpId> = [
        (f1, f5, OpType::Add, "X0"),
        (f1, f5, OpType::Sub, "X4"),
        (f2, f6, OpType::Add, "X2"),
        (f2, f6, OpType::Sub, "X6"),
        (f3, f5, OpType::Add, "X1"),
        (f4, f6, OpType::Add, "X3"),
    ]
    .into_iter()
    .map(|(u, v, op, name)| b.add_named_op(op, &[u, v], &n(name)))
    .collect();
}

/// Builds the DCT-DIT dataflow graph (48 operations: 36 ALU, 12 MUL;
/// one connected component; critical path 7).
///
/// # Example
///
/// ```
/// let dfg = vliw_kernels::dct_dit();
/// assert_eq!(dfg.len(), 48);
/// ```
pub fn dct_dit() -> Dfg {
    let mut b = DfgBuilder::with_capacity(48);
    emit_dit(&mut b, "dit");
    b.finish().expect("DCT-DIT is acyclic by construction") // lint:allow(no-panic)
}

/// Builds DCT-DIT-2: two unrolled, independent DCT-DIT instances
/// (96 operations; two connected components; critical path 7).
///
/// # Example
///
/// ```
/// let dfg = vliw_kernels::dct_dit2();
/// assert_eq!(dfg.len(), 96);
/// ```
pub fn dct_dit2() -> Dfg {
    let mut b = DfgBuilder::with_capacity(96);
    emit_dit(&mut b, "it0");
    emit_dit(&mut b, "it1");
    b.finish().expect("DCT-DIT-2 is acyclic by construction") // lint:allow(no-panic)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_dfg::{connected_components, DfgStats};

    #[test]
    fn dif_stats() {
        let stats = DfgStats::unit_latency(&dct_dif());
        assert_eq!((stats.n_v, stats.n_cc, stats.l_cp), (41, 2, 7));
        assert_eq!((stats.n_alu, stats.n_mul), (29, 12));
    }

    #[test]
    fn lee_stats() {
        let stats = DfgStats::unit_latency(&dct_lee());
        assert_eq!((stats.n_v, stats.n_cc, stats.l_cp), (49, 2, 9));
        assert_eq!((stats.n_alu, stats.n_mul), (35, 14));
    }

    #[test]
    fn dit_stats() {
        let stats = DfgStats::unit_latency(&dct_dit());
        assert_eq!((stats.n_v, stats.n_cc, stats.l_cp), (48, 1, 7));
        assert_eq!((stats.n_alu, stats.n_mul), (36, 12));
    }

    #[test]
    fn dit2_stats() {
        let stats = DfgStats::unit_latency(&dct_dit2());
        assert_eq!((stats.n_v, stats.n_cc, stats.l_cp), (96, 2, 7));
    }

    #[test]
    fn dif_components_are_even_and_odd_halves() {
        let dfg = dct_dif();
        let (comp, count) = connected_components(&dfg);
        assert_eq!(count, 2);
        for v in dfg.op_ids() {
            let name = dfg.name(v).expect("all ops named");
            let expected = comp[dfg.op_ids().next().expect("nonempty").index()];
            if name.starts_with("ev.") {
                assert_eq!(comp[v.index()], expected, "{name} in even half");
            } else {
                assert_ne!(comp[v.index()], expected, "{name} in odd half");
            }
        }
    }

    #[test]
    fn even_half_mirrors_between_dif_and_lee() {
        let dif = dct_dif();
        let lee = dct_lee();
        let evens = |dfg: &vliw_dfg::Dfg| {
            dfg.op_ids()
                .filter(|&v| dfg.name(v).is_some_and(|n| n.starts_with("ev.")))
                .count()
        };
        assert_eq!(evens(&dif), 16);
        assert_eq!(evens(&lee), 16);
    }

    #[test]
    fn lee_output_chain_is_the_deepest_layer() {
        let dfg = dct_lee();
        let timing = vliw_dfg::Timing::with_critical_path(&dfg, &vec![1; dfg.len()]);
        for v in dfg.op_ids() {
            let name = dfg.name(v).expect("all ops named");
            if matches!(name, "od.X1" | "od.X3" | "od.X5") {
                assert_eq!(timing.asap(v), 8, "{name} sits on level 9");
            }
        }
    }

    #[test]
    fn dit_bridges_input_groups() {
        // b7 connects the multiplier subtree to the adder subtree,
        // making DIT a single component where DIF splits in two.
        let dfg = dct_dit();
        let b7 = dfg
            .op_ids()
            .find(|&v| dfg.name(v) == Some("dit.b7"))
            .expect("named op exists");
        let pred_types: Vec<_> = dfg.preds(b7).iter().map(|&u| dfg.op_type(u)).collect();
        assert!(pred_types.contains(&OpType::Mul));
        assert!(pred_types.contains(&OpType::Add));
    }
}
