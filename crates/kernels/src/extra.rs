//! Parametric DSP kernels beyond the paper's seven benchmarks.
//!
//! The paper's evaluation fixes seven basic blocks; downstream users of
//! a binding library want to feed it *their* kernels. This module
//! provides generators for the standard shapes — FIR, IIR biquad
//! cascades, FFT stages, matrix-vector products, lattice filters and 2D
//! convolution — with documented operation counts and critical paths,
//! useful both as workloads and as scalability stress tests.

use vliw_dfg::{Dfg, DfgBuilder, OpId, OpType};

/// `taps`-tap FIR filter: `y = Σ c_i·x_i` as products into a balanced
/// adder tree.
///
/// Operations: `taps` multiplications + `taps − 1` additions; critical
/// path `1 + ⌈log2 taps⌉`.
///
/// # Panics
///
/// Panics if `taps == 0`.
///
/// # Example
///
/// ```
/// let dfg = vliw_kernels::extra::fir(16);
/// assert_eq!(dfg.len(), 31);
/// assert_eq!(vliw_dfg::critical_path_len(&dfg, &vec![1; 31]), 5);
/// ```
pub fn fir(taps: usize) -> Dfg {
    assert!(taps > 0, "a FIR filter needs at least one tap");
    let mut b = DfgBuilder::with_capacity(2 * taps);
    let products: Vec<OpId> = (0..taps)
        .map(|i| b.add_named_op(OpType::Mul, &[], &format!("x{i}*c{i}")))
        .collect();
    reduce_tree(&mut b, products, "s");
    b.finish().expect("FIR is acyclic by construction")
}

/// Balanced binary adder-tree reduction; returns the root.
fn reduce_tree(b: &mut DfgBuilder, mut frontier: Vec<OpId>, tag: &str) -> OpId {
    let mut level = 0;
    while frontier.len() > 1 {
        level += 1;
        frontier = frontier
            .chunks(2)
            .enumerate()
            .map(|(i, pair)| match pair {
                [x, y] => b.add_named_op(OpType::Add, &[*x, *y], &format!("{tag}{level}_{i}")),
                [x] => *x,
                _ => unreachable!("chunks(2)"), // lint:allow(no-panic)
            })
            .collect();
    }
    frontier[0]
}

/// Cascade of `sections` direct-form-II biquad IIR sections.
///
/// Each section: 5 coefficient multiplications, 4 additions, serially
/// chained through the section output. Operations: `9·sections`;
/// critical path `5·sections + 1` (the through path runs
/// sub, sub, mul, add, add per section, plus the first section's
/// coefficient multiply).
///
/// # Panics
///
/// Panics if `sections == 0`.
///
/// # Example
///
/// ```
/// let dfg = vliw_kernels::extra::iir_biquad_cascade(3);
/// assert_eq!(dfg.len(), 27);
/// assert_eq!(vliw_dfg::critical_path_len(&dfg, &vec![1; 27]), 16);
/// ```
pub fn iir_biquad_cascade(sections: usize) -> Dfg {
    assert!(sections > 0, "a cascade needs at least one section");
    let mut b = DfgBuilder::with_capacity(9 * sections);
    let mut x: Option<OpId> = None; // primary input for the first section
    for s in 0..sections {
        let n = |part: &str| format!("bq{s}.{part}");
        let x_ops: Vec<OpId> = x.into_iter().collect();
        // w = x - a1*w1 - a2*w2 (delays w1, w2 are primary inputs).
        let a1 = b.add_named_op(OpType::Mul, &[], &n("a1*w1"));
        let a2 = b.add_named_op(OpType::Mul, &[], &n("a2*w2"));
        let t = b.add_named_op(
            OpType::Sub,
            &x_ops.iter().copied().chain([a1]).collect::<Vec<_>>(),
            &n("t"),
        );
        let w = b.add_named_op(OpType::Sub, &[t, a2], &n("w"));
        // y = b0*w + b1*w1 + b2*w2.
        let b0 = b.add_named_op(OpType::Mul, &[w], &n("b0*w"));
        let b1 = b.add_named_op(OpType::Mul, &[], &n("b1*w1"));
        let b2 = b.add_named_op(OpType::Mul, &[], &n("b2*w2"));
        let p = b.add_named_op(OpType::Add, &[b0, b1], &n("p"));
        let y = b.add_named_op(OpType::Add, &[p, b2], &n("y"));
        x = Some(y);
    }
    b.finish().expect("IIR cascade is acyclic by construction")
}

/// One radix-2 FFT stage of `butterflies` butterflies with general
/// twiddles: each is 4 multiplications and 6 additions at depth 3, all
/// independent (the shape of a stage-inner loop body after unrolling).
/// The real/imaginary product chains of one butterfly share no DFG node
/// (the `a` operands are primary inputs), so the graph decomposes into
/// `2·butterflies` components.
///
/// Operations: `10·butterflies`; critical path 3.
///
/// # Panics
///
/// Panics if `butterflies == 0`.
///
/// # Example
///
/// ```
/// let dfg = vliw_kernels::extra::fft_stage(4);
/// assert_eq!(dfg.len(), 40);
/// assert_eq!(vliw_dfg::connected_components(&dfg).1, 8);
/// ```
pub fn fft_stage(butterflies: usize) -> Dfg {
    assert!(butterflies > 0, "a stage needs at least one butterfly");
    let mut b = DfgBuilder::with_capacity(10 * butterflies);
    for k in 0..butterflies {
        let n = |part: &str| format!("bf{k}.{part}");
        let t1 = b.add_named_op(OpType::Mul, &[], &n("br*wr"));
        let t2 = b.add_named_op(OpType::Mul, &[], &n("bi*wi"));
        let t3 = b.add_named_op(OpType::Mul, &[], &n("br*wi"));
        let t4 = b.add_named_op(OpType::Mul, &[], &n("bi*wr"));
        let cr = b.add_named_op(OpType::Sub, &[t1, t2], &n("cr"));
        let ci = b.add_named_op(OpType::Add, &[t3, t4], &n("ci"));
        let _ = b.add_named_op(OpType::Add, &[cr], &n("xr"));
        let _ = b.add_named_op(OpType::Add, &[ci], &n("xi"));
        let _ = b.add_named_op(OpType::Sub, &[cr], &n("yr"));
        let _ = b.add_named_op(OpType::Sub, &[ci], &n("yi"));
    }
    b.finish().expect("FFT stage is acyclic by construction")
}

/// Dense matrix-vector product `y = A·x` for an `n×n` block: `n²`
/// multiplications into `n` balanced adder trees.
///
/// Operations: `n² + n·(n−1)`; critical path `1 + ⌈log2 n⌉`; `n`
/// connected components (one per output row).
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Example
///
/// ```
/// let dfg = vliw_kernels::extra::matvec(4);
/// assert_eq!(dfg.len(), 28);
/// assert_eq!(vliw_dfg::connected_components(&dfg).1, 4);
/// ```
pub fn matvec(n: usize) -> Dfg {
    assert!(n > 0, "matrix dimension must be positive");
    let mut b = DfgBuilder::with_capacity(2 * n * n);
    for row in 0..n {
        let products: Vec<OpId> = (0..n)
            .map(|col| b.add_named_op(OpType::Mul, &[], &format!("a{row}{col}*x{col}")))
            .collect();
        reduce_tree(&mut b, products, &format!("y{row}_"));
    }
    b.finish().expect("matvec is acyclic by construction")
}

/// `stages`-stage lattice filter (the ARF generalized): each stage
/// cross-multiplies two running signals by four reflection coefficients.
///
/// Operations: `6·stages`; critical path `2·stages`.
///
/// # Panics
///
/// Panics if `stages == 0`.
///
/// # Example
///
/// ```
/// // Four stages reproduce the ARF's lattice core (without its
/// // output-accumulation chain).
/// let dfg = vliw_kernels::extra::lattice(4);
/// assert_eq!(dfg.len(), 24);
/// assert_eq!(dfg.regular_op_mix(), (8, 16));
/// ```
pub fn lattice(stages: usize) -> Dfg {
    assert!(stages > 0, "a lattice needs at least one stage");
    let mut b = DfgBuilder::with_capacity(6 * stages);
    let mut state: Option<(OpId, OpId)> = None;
    for s in 0..stages {
        let n = |part: &str| format!("st{s}.{part}");
        let ops = |x: Option<OpId>| -> Vec<OpId> { x.into_iter().collect() };
        let (s1, s2) = state.map_or((None, None), |(a, c)| (Some(a), Some(c)));
        let t1 = b.add_named_op(OpType::Mul, &ops(s1), &n("t1"));
        let t2 = b.add_named_op(OpType::Mul, &ops(s2), &n("t2"));
        let t3 = b.add_named_op(OpType::Mul, &ops(s1), &n("t3"));
        let t4 = b.add_named_op(OpType::Mul, &ops(s2), &n("t4"));
        let u1 = b.add_named_op(OpType::Add, &[t1, t2], &n("u1"));
        let u2 = b.add_named_op(OpType::Add, &[t3, t4], &n("u2"));
        state = Some((u1, u2));
    }
    b.finish().expect("lattice is acyclic by construction")
}

/// 3×3 2D convolution at one output pixel: 9 multiplications into a
/// balanced adder tree. 17 operations, critical path 5.
///
/// # Example
///
/// ```
/// let dfg = vliw_kernels::extra::conv3x3();
/// assert_eq!(dfg.len(), 17);
/// ```
pub fn conv3x3() -> Dfg {
    let mut b = DfgBuilder::with_capacity(17);
    let products: Vec<OpId> = (0..9)
        .map(|i| b.add_named_op(OpType::Mul, &[], &format!("p{}{}", i / 3, i % 3)))
        .collect();
    reduce_tree(&mut b, products, "acc");
    b.finish().expect("conv3x3 is acyclic by construction") // lint:allow(no-panic)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_dfg::{connected_components, critical_path_len, DfgStats};

    #[test]
    fn fir_counts_and_depth() {
        for taps in [1usize, 2, 3, 8, 16, 33] {
            let dfg = fir(taps);
            assert_eq!(dfg.len(), 2 * taps - 1, "taps {taps}");
            let expected_cp = 1 + (taps as f64).log2().ceil() as u32;
            assert_eq!(
                critical_path_len(&dfg, &vec![1; dfg.len()]),
                expected_cp,
                "taps {taps}"
            );
            assert!(dfg.validate().is_ok());
        }
    }

    #[test]
    fn iir_cascade_counts_and_depth() {
        for sections in [1usize, 2, 5] {
            let dfg = iir_biquad_cascade(sections);
            assert_eq!(dfg.len(), 9 * sections);
            assert_eq!(
                critical_path_len(&dfg, &vec![1; dfg.len()]) as usize,
                5 * sections + 1
            );
            assert_eq!(connected_components(&dfg).1, 1);
        }
    }

    #[test]
    fn fft_stage_is_flat_and_parallel() {
        let dfg = fft_stage(6);
        assert_eq!(dfg.len(), 60);
        assert_eq!(critical_path_len(&dfg, &vec![1; 60]), 3);
        assert_eq!(connected_components(&dfg).1, 12);
        assert_eq!(dfg.regular_op_mix(), (36, 24));
    }

    #[test]
    fn matvec_structure() {
        for n in [1usize, 2, 4, 5] {
            let dfg = matvec(n);
            assert_eq!(dfg.len(), n * n + n * (n - 1), "n {n}");
            assert_eq!(connected_components(&dfg).1, n, "n {n}");
        }
    }

    #[test]
    fn lattice_generalizes_arf_core() {
        let dfg = lattice(4);
        let stats = DfgStats::unit_latency(&dfg);
        assert_eq!(stats.n_v, 24);
        assert_eq!(stats.l_cp, 8);
        assert_eq!(stats.n_mul, 16);
    }

    #[test]
    fn conv3x3_shape() {
        let dfg = conv3x3();
        let stats = DfgStats::unit_latency(&dfg);
        assert_eq!((stats.n_v, stats.l_cp), (17, 5));
        assert_eq!(stats.n_mul, 9);
    }

    #[test]
    fn all_extra_kernels_bindable_smoke() {
        // They must be valid original DFGs (no moves, acyclic).
        for dfg in [
            fir(12),
            iir_biquad_cascade(3),
            fft_stage(3),
            matvec(3),
            lattice(5),
            conv3x3(),
        ] {
            assert!(dfg.validate().is_ok());
            assert!(dfg.moves().is_empty());
        }
    }
}
