//! Seeded violations for the stale-waiver check: one waiver that
//! suppresses nothing and one naming a rule that does not exist.

#![forbid(unsafe_code)]

pub fn tidy() -> u32 {
    7 // lint:allow(no-panic)
}

pub fn odd() -> u32 {
    9 // lint:allow(not-a-rule)
}
