//! Seeded violations for the atomics/lock-discipline pass: a `SeqCst`
//! ordering, a `Relaxed` compare-exchange guard, and two fns taking
//! the same lock pair in opposite orders.

#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

pub static FLAG: AtomicBool = AtomicBool::new(false);
pub static COUNT: AtomicUsize = AtomicUsize::new(0);
pub static ALPHA: Mutex<u32> = Mutex::new(0);
pub static BETA: Mutex<u32> = Mutex::new(0);

pub fn publish() {
    FLAG.store(true, Ordering::SeqCst);
}

pub fn claim() -> bool {
    COUNT.compare_exchange(0, 1, Ordering::Relaxed, Ordering::Relaxed).is_ok()
}

pub fn forward() -> u32 {
    let a = ALPHA.lock().unwrap_or_else(|e| e.into_inner());
    let b = BETA.lock().unwrap_or_else(|e| e.into_inner());
    *a + *b
}

pub fn backward() -> u32 {
    let b = BETA.lock().unwrap_or_else(|e| e.into_inner());
    let a = ALPHA.lock().unwrap_or_else(|e| e.into_inner());
    *a + *b
}
