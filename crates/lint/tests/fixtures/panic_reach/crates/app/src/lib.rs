//! Seeded violation: a panic site three call hops below a fallible
//! entry point. The panic-reach pass must report the unwrap in
//! `finish` with the witness chain `try_bind` → `resolve` → `finish`.

#![forbid(unsafe_code)]

pub fn try_bind(x: Option<u32>) -> Result<u32, ()> {
    Ok(resolve(x))
}

fn resolve(x: Option<u32>) -> u32 {
    finish(x)
}

fn finish(x: Option<u32>) -> u32 {
    x.unwrap()
}
