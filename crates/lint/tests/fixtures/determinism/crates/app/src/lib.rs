//! Seeded violation: a hash-map iteration (unspecified order) feeding a
//! result sink (`-> Binding`) through one call hop. The determinism
//! pass must report the iteration with the chain `bind` → `tally`.

#![forbid(unsafe_code)]

use std::collections::HashMap;

pub struct Binding {
    pub total: u32,
}

pub fn bind(weights: &HashMap<u32, u32>) -> Binding {
    Binding {
        total: tally(weights),
    }
}

fn tally(weights: &HashMap<u32, u32>) -> u32 {
    let mut total = 0;
    for (_, w) in weights.iter() {
        total += w;
    }
    total
}
