//! Control fixture: panic-free, deterministic, lock-free code that
//! must produce zero findings (gating or advisory).

#![forbid(unsafe_code)]

/// Saturating-free checked addition as a fallible entry point.
pub fn try_add(a: u32, b: u32) -> Result<u32, ()> {
    a.checked_add(b).ok_or(())
}
