//! Fixture suite: each analysis pass must fire on its seeded-violation
//! pseudo-workspace under `tests/fixtures/`, with the correct witness
//! chain, and the clean control fixture must produce nothing.
//!
//! The fixture trees are *not* cargo targets — `Workspace::load` scans
//! them as if they were a workspace root, and the real workspace scan
//! skips everything under `tests/fixtures/`.

use std::path::{Path, PathBuf};
use vliw_lint::{Finding, Rule, Severity, Workspace};

fn fixture_root(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn analyze(name: &str) -> Vec<Finding> {
    Workspace::load(&fixture_root(name))
        .expect("load fixture workspace")
        .analyze()
}

fn chain(f: &Finding) -> Vec<&str> {
    f.witness.iter().map(|fr| fr.qualified.as_str()).collect()
}

#[test]
fn panic_reach_fires_with_full_witness_chain() {
    let findings = analyze("panic_reach");
    let hit = findings
        .iter()
        .find(|f| f.rule == Rule::PanicReach && f.severity == Severity::Error)
        .expect("panic-reach error finding");
    assert_eq!(hit.path, "crates/app/src/lib.rs");
    assert_eq!(
        chain(hit),
        vec!["app::try_bind", "app::resolve", "app::finish"]
    );
    // The last frame pins the panic site itself.
    assert_eq!(hit.line, hit.witness.last().expect("site frame").line);
    assert!(hit.message.contains(".unwrap()"), "{}", hit.message);
}

#[test]
fn determinism_taint_fires_with_sink_to_source_chain() {
    let findings = analyze("determinism");
    let hit = findings
        .iter()
        .find(|f| f.rule == Rule::DeterminismTaint)
        .expect("determinism-taint finding");
    assert_eq!(hit.severity, Severity::Warning);
    assert_eq!(hit.path, "crates/app/src/lib.rs");
    assert_eq!(chain(hit), vec!["app::bind", "app::tally"]);
    assert!(hit.message.contains("hash iteration"), "{}", hit.message);
    assert!(hit.message.contains("app::bind"), "{}", hit.message);
}

#[test]
fn atomics_pass_fires_on_all_three_rules() {
    let findings = analyze("atomics");
    let ordering = findings
        .iter()
        .find(|f| f.rule == Rule::AtomicOrdering)
        .expect("atomic-ordering finding");
    assert!(ordering.message.contains("SeqCst"), "{}", ordering.message);

    let rmw = findings
        .iter()
        .find(|f| f.rule == Rule::RelaxedRmw)
        .expect("relaxed-rmw finding");
    assert!(rmw.message.contains("compare_exchange"), "{}", rmw.message);

    let lock = findings
        .iter()
        .find(|f| f.rule == Rule::LockOrder)
        .expect("lock-order finding");
    assert!(lock.message.contains("ALPHA") && lock.message.contains("BETA"));
    let fns: Vec<&str> = chain(lock);
    assert!(fns.contains(&"app::forward") && fns.contains(&"app::backward"));
}

#[test]
fn stale_and_unknown_waivers_are_errors() {
    let findings = analyze("stale_waiver");
    let stale: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == Rule::StaleWaiver)
        .collect();
    assert_eq!(stale.len(), 2, "{stale:?}");
    assert!(stale.iter().all(|f| f.severity == Severity::Error));
    assert!(stale.iter().any(|f| f.message.contains("not-a-rule")));
    assert!(stale
        .iter()
        .any(|f| f.message.contains("no longer suppresses")));
}

#[test]
fn clean_fixture_produces_no_findings() {
    let findings = analyze("clean");
    assert!(findings.is_empty(), "{findings:?}");
}
