//! `vliw-lint` — run the workspace invariant linter from the repo root.
//!
//! Exits 0 when the workspace is clean, 1 when any finding is reported.

use std::path::Path;

fn main() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let findings = vliw_lint::lint_workspace(&root);
    if findings.is_empty() {
        println!("vliw-lint: clean (no-panic, no-hash-iter, no-instant, unsafe-forbid)");
        return;
    }
    for f in &findings {
        println!("{f}");
    }
    eprintln!("vliw-lint: {} finding(s)", findings.len());
    std::process::exit(1);
}
