//! `vliw-lint` — run the workspace static analysis and exit nonzero on
//! any gating finding. The richer surface (`--json`, baselines) is
//! `vliw lint` in `vliw-tools`.

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let findings = match vliw_lint::lint_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("vliw-lint: failed to scan workspace: {e}");
            return ExitCode::FAILURE;
        }
    };
    let gating = findings.iter().filter(|f| f.gating()).count();
    let advisory = findings.len() - gating;
    for f in &findings {
        if f.gating() {
            println!("{f}");
        }
    }
    println!("vliw-lint: {gating} gating finding(s), {advisory} advisory");
    if gating == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
