//! The analysis passes and their shared context.

pub mod atomics;
pub mod determinism;
pub mod local;
pub mod panic_reach;

use crate::graph::CallGraph;
use crate::parse::{FnItem, SourceFile};
use std::cell::RefCell;
use std::collections::BTreeSet;

/// Shared, read-only view of the loaded workspace plus the mutable
/// waiver-usage ledger (consumed by the stale-waiver check).
pub struct Ctx<'a> {
    /// Every scanned file.
    pub files: &'a [SourceFile],
    /// The workspace fn table.
    pub fns: &'a [FnItem],
    /// The call graph over `fns`.
    pub graph: &'a CallGraph,
    /// `(file idx, line, rule name)` of every waiver that suppressed
    /// (or would have suppressed) a finding.
    pub used_waivers: RefCell<BTreeSet<(usize, usize, String)>>,
    /// `owner[file][line - 1]` — the innermost fn whose body contains
    /// the line, so sites inside nested fns attribute to the right node.
    pub owner: Vec<Vec<Option<usize>>>,
}

impl<'a> Ctx<'a> {
    /// Builds the context, including the per-line fn-ownership map.
    pub fn new(files: &'a [SourceFile], fns: &'a [FnItem], graph: &'a CallGraph) -> Self {
        let mut owner: Vec<Vec<Option<usize>>> = files
            .iter()
            .map(|f| vec![None; f.test_lines.len()])
            .collect();
        // Outer bodies first (larger spans), inner bodies overwrite.
        let mut order: Vec<usize> = (0..fns.len()).collect();
        order.sort_by_key(|&i| {
            std::cmp::Reverse(fns[i].body.map_or(0, |(open, close)| close - open))
        });
        for idx in order {
            let f = &fns[idx];
            let Some((open, close)) = f.body else {
                continue;
            };
            let file = &files[f.file];
            let from = file.line_at(open);
            let to = file.line_at(close.saturating_sub(1));
            for ln in from..=to {
                if let Some(slot) = owner[f.file].get_mut(ln - 1) {
                    *slot = Some(idx);
                }
            }
        }
        Ctx {
            files,
            fns,
            graph,
            used_waivers: RefCell::new(BTreeSet::new()),
            owner,
        }
    }

    /// If line `line` of file `file` carries a `lint:allow(...)` waiver
    /// for any rule in `names`, marks it used and returns `true`.
    pub fn waived(&self, file: usize, line: usize, names: &[&str]) -> bool {
        let mut hit = false;
        for w in &self.files[file].waivers {
            if w.line == line && names.iter().any(|n| *n == w.rule) {
                self.used_waivers
                    .borrow_mut()
                    .insert((file, line, w.rule.clone()));
                hit = true;
            }
        }
        hit
    }

    /// The innermost fn owning a 1-based line of a file, if any.
    pub fn owner_of(&self, file: usize, line: usize) -> Option<usize> {
        self.owner
            .get(file)
            .and_then(|v| v.get(line.saturating_sub(1)))
            .copied()
            .flatten()
    }

    /// 1-based line range of a fn's body (empty range when bodyless).
    pub fn body_lines(&self, fn_idx: usize) -> std::ops::Range<usize> {
        let f = &self.fns[fn_idx];
        match f.body {
            Some((open, close)) => {
                let file = &self.files[f.file];
                file.line_at(open)..file.line_at(close.saturating_sub(1)) + 1
            }
            None => 0..0,
        }
    }
}
