//! The file-local token rules carried over from the original linter:
//! `no-panic`, `no-hash-iter`, `no-instant` and `unsafe-forbid`.
//!
//! These stay deliberately line-oriented — they are the safety net
//! under the interprocedural passes (which depend on call-graph
//! approximations, see [`crate::graph`]). This module also exports the
//! raw *site* extractors the interprocedural passes reuse, so both
//! layers agree on what counts as a panic or hash-iteration site.

use super::Ctx;
use crate::parse::{is_ident, token_positions, Area, SourceFile};
use crate::{Finding, Rule, Severity};

/// Crates whose binding/scheduling output must be reproducible, so hash
/// iteration is banned in their non-test code by the *local* rule. The
/// determinism-taint pass covers the wider set reachable from sinks.
pub const RESULT_AFFECTING: [&str; 4] = ["core", "sched", "pcc", "baselines"];

/// Files allowed to mention `Instant`: the tracing crate, the metrics
/// crate, the bench harness, and the deadline budget.
pub fn instant_allowed(path: &str) -> bool {
    path.starts_with("crates/trace/")
        || path.starts_with("crates/metrics/")
        || path.starts_with("crates/bench/")
        || path == "crates/core/src/budget.rs"
}

/// The panic-family macros.
const PANICKY: [&str; 4] = ["panic!", "unreachable!", "todo!", "unimplemented!"];

/// Every syntactic panic site in a file: `(line, what)` pairs, with no
/// test/waiver/contract filtering (callers apply their own scoping).
pub fn panic_sites(file: &SourceFile) -> Vec<(usize, &'static str)> {
    let mut sites = Vec::new();
    for (idx, mline) in file.masked.lines().enumerate() {
        let ln = idx + 1;
        for pat in PANICKY {
            if !token_positions(mline, pat).is_empty() {
                sites.push((ln, pat));
            }
        }
        for pat in [".unwrap()", ".expect("] {
            if mline.contains(pat) {
                sites.push((ln, pat));
            }
        }
    }
    sites
}

/// Methods on a hash collection whose visit order is unspecified.
const HASH_ITER_METHODS: [&str; 7] = [
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".into_iter()",
    ".drain(",
];

/// Extract identifiers bound to a `HashMap`/`HashSet` in this file:
/// `let [mut] x: HashMap<..>`, `let [mut] x = HashMap::new()`, struct
/// fields and parameters `x: HashSet<..>`.
fn hash_bound_idents(masked_lines: &[&str]) -> Vec<String> {
    let mut idents: Vec<String> = Vec::new();
    for line in masked_lines {
        for ty in ["HashMap", "HashSet"] {
            for at in token_positions(line, ty) {
                // Look backwards over the glue between the binder and the
                // type or constructor: `: `, `= `, `&`, `&mut `.
                let mut head = line[..at].trim_end();
                for prefix in ["&mut", "&"] {
                    if let Some(h) = head.strip_suffix(prefix) {
                        head = h.trim_end();
                        break;
                    }
                }
                let head = head
                    .strip_suffix(':')
                    .or_else(|| head.strip_suffix('='))
                    .unwrap_or(head)
                    .trim_end();
                let ident: String = head
                    .chars()
                    .rev()
                    .take_while(|&c| is_ident(c))
                    .collect::<Vec<_>>()
                    .into_iter()
                    .rev()
                    .collect();
                if !ident.is_empty()
                    && !ident.chars().next().is_some_and(|c| c.is_ascii_digit())
                    && ident != "use"
                    && ident != "mut"
                    && !idents.iter().any(|i| i == &ident)
                {
                    idents.push(ident);
                }
            }
        }
    }
    idents
}

/// Every hash-collection iteration site in a file: `(line, what)`.
pub fn hash_iter_sites(file: &SourceFile) -> Vec<(usize, String)> {
    let masked_lines: Vec<&str> = file.masked.lines().collect();
    let idents = hash_bound_idents(&masked_lines);
    let mut sites = Vec::new();
    for (idx, mline) in masked_lines.iter().enumerate() {
        let ln = idx + 1;
        for ident in &idents {
            let mut hit: Option<String> = None;
            for m in HASH_ITER_METHODS {
                let pat = format!("{ident}{m}");
                let bounded = token_positions(mline, &pat)
                    .iter()
                    .any(|&at| !mline[..at].chars().next_back().is_some_and(is_ident));
                if bounded {
                    hit = Some(format!("{ident}{m}"));
                    break;
                }
            }
            if hit.is_none() && mline.contains("for ") {
                if let Some(pos) = mline.rfind(" in ") {
                    let expr = mline[pos + 4..]
                        .trim()
                        .trim_end_matches('{')
                        .trim()
                        .trim_start_matches('&')
                        .trim_start_matches("mut ")
                        .trim();
                    if expr == ident {
                        hit = Some(format!("for .. in {ident}"));
                    }
                }
            }
            if let Some(what) = hit {
                sites.push((ln, what));
            }
        }
    }
    sites
}

/// Every `Instant` token site in a file (line numbers).
pub fn instant_sites(file: &SourceFile) -> Vec<usize> {
    file.masked
        .lines()
        .enumerate()
        .filter(|(_, mline)| !token_positions(mline, "Instant").is_empty())
        .map(|(idx, _)| idx + 1)
        .collect()
}

/// Runs the four local rules over every file in the context.
pub fn run(ctx: &Ctx<'_>) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (file_idx, file) in ctx.files.iter().enumerate() {
        findings.extend(lint_one(ctx, file_idx, file));
        if file.path.ends_with("/src/lib.rs") || file.path == "src/lib.rs" {
            if let Some(f) = lib_attr_finding(file) {
                findings.push(f);
            }
        }
    }
    findings
}

/// `unsafe-forbid` check on a crate root.
fn lib_attr_finding(file: &SourceFile) -> Option<Finding> {
    let ok = file.masked.contains("#![forbid(unsafe_code)]")
        || file.masked.contains("#![deny(unsafe_code)]");
    if ok {
        None
    } else {
        Some(Finding {
            rule: Rule::UnsafeForbid,
            severity: Severity::Error,
            path: file.path.clone(),
            line: 1,
            message: "crate root is missing `#![forbid(unsafe_code)]`".to_owned(),
            witness: Vec::new(),
        })
    }
}

/// Lines inside the body of a fn documented `/// # Panics` (contract
/// waives its own body for the local rule).
fn contract_lines(ctx: &Ctx<'_>, file_idx: usize, total_lines: usize) -> Vec<bool> {
    let mut waived = vec![false; total_lines];
    for f in ctx.fns.iter().filter(|f| f.file == file_idx) {
        if !f.has_panics_doc {
            continue;
        }
        let Some((open, close)) = f.body else {
            continue;
        };
        let file = &ctx.files[file_idx];
        for ln in file.line_at(open)..=file.line_at(close.saturating_sub(1)) {
            if let Some(slot) = waived.get_mut(ln - 1) {
                *slot = true;
            }
        }
    }
    waived
}

/// The three line rules over one file, area-scoped.
fn lint_one(ctx: &Ctx<'_>, file_idx: usize, file: &SourceFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    let path = &file.path;

    let panic_rule_applies = file.area == Area::Library;
    let hash_rule_applies =
        file.area == Area::Library && RESULT_AFFECTING.contains(&file.crate_name.as_str());
    let instant_rule_applies = matches!(file.area, Area::Library | Area::Binary)
        && !instant_allowed(path)
        && !path.ends_with("build.rs");

    if panic_rule_applies {
        let contract = contract_lines(ctx, file_idx, file.test_lines.len());
        for (ln, pat) in panic_sites(file) {
            if file.is_test_line(ln) {
                continue;
            }
            // The waiver check runs before the contract check so a
            // waiver inside a documented fn still counts as used.
            if ctx.waived(file_idx, ln, &[Rule::NoPanic.name()]) {
                continue;
            }
            if contract.get(ln - 1).copied() == Some(true) {
                continue;
            }
            findings.push(Finding {
                rule: Rule::NoPanic,
                severity: Severity::Error,
                path: path.clone(),
                line: ln,
                message: format!(
                    "`{pat}` in library code; return an error, document `# Panics`, \
                     or waive with `// lint:allow(no-panic)`"
                ),
                witness: Vec::new(),
            });
        }
    }

    if hash_rule_applies {
        for (ln, what) in hash_iter_sites(file) {
            if file.is_test_line(ln) || ctx.waived(file_idx, ln, &[Rule::NoHashIter.name()]) {
                continue;
            }
            findings.push(Finding {
                rule: Rule::NoHashIter,
                severity: Severity::Error,
                path: path.clone(),
                line: ln,
                message: format!(
                    "`{what}` iterates a hash collection in a result-affecting \
                     crate; use a sorted or indexed container, or waive with \
                     `// lint:allow(no-hash-iter)`"
                ),
                witness: Vec::new(),
            });
        }
    }

    if instant_rule_applies {
        for ln in instant_sites(file) {
            if file.is_test_line(ln) || ctx.waived(file_idx, ln, &[Rule::NoInstant.name()]) {
                continue;
            }
            findings.push(Finding {
                rule: Rule::NoInstant,
                severity: Severity::Error,
                path: path.clone(),
                line: ln,
                message: "`Instant` outside trace/bench/budget code; use \
                          `vliw_trace::Stopwatch` or a `Budget` deadline"
                    .to_owned(),
                witness: Vec::new(),
            });
        }
    }

    findings
}
