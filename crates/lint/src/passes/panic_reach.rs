//! Interprocedural panic-reachability.
//!
//! Entry points are the fallible public API surface: every `pub`
//! non-test library fn whose name starts with `try_`, `verify` or
//! `check_`. From those we BFS the call graph and ask: is a
//! `panic!`/`unwrap`/`expect` site transitively reachable? Each finding
//! carries the full witness call chain from the entry to the site.
//!
//! Traversal boundaries (the contract is honored at the *callee*):
//! - a callee documented `/// # Panics` — its panics are part of its
//!   contract; the *call* is reported as an advisory `Info` finding so
//!   `--json` consumers can audit contract propagation;
//! - a `// lint:allow(no-panic)`/`panic-reach` waiver on the site line;
//! - test fns and non-library files (binaries may panic).
//!
//! Indexing sites (`xs[i]`) are reported at `Info` severity: they can
//! panic, but banning them outright would force `get().expect()`
//! churn through hot loops — the advisory tier keeps them visible.

use super::{local, Ctx};
use crate::parse::{is_ident, Area};
use crate::{Finding, Frame, Rule, Severity};
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// Does this fn name mark a fallible entry point?
fn is_entry_name(name: &str) -> bool {
    name.starts_with("try_") || name.starts_with("verify") || name.starts_with("check_")
}

/// Reconstructs the witness chain entry → … → parent of `fn_idx` from
/// BFS parent pointers. Each frame is a *caller*, carrying the line of
/// the call it makes toward `fn_idx`; the caller of this helper appends
/// the final frame (the fn containing the site) itself.
fn chain(ctx: &Ctx<'_>, parents: &[Option<(usize, usize)>], mut fn_idx: usize) -> Vec<Frame> {
    let mut frames = Vec::new();
    while let Some((parent, call_line)) = parents[fn_idx] {
        let p = &ctx.fns[parent];
        frames.push(Frame {
            qualified: p.qualified.clone(),
            path: ctx.files[p.file].path.clone(),
            line: call_line,
        });
        fn_idx = parent;
    }
    frames.reverse();
    frames
}

/// Indexing sites (`expr[`) on a masked line: positions where `[` is
/// preceded by an identifier char, `)` or `]` — i.e. expression
/// indexing, not attributes, slice types or array literals.
fn has_index_site(mline: &str) -> bool {
    let chars: Vec<char> = mline.chars().collect();
    for (i, &c) in chars.iter().enumerate() {
        if c != '[' || i == 0 {
            continue;
        }
        let prev = chars[i - 1];
        // `#[attr]` follows `#`, macro brackets (`vec![..]`) follow
        // `!`, slice types follow `&` or whitespace — none match.
        if is_ident(prev) || prev == ')' || prev == ']' {
            return true;
        }
    }
    false
}

/// Runs the pass.
pub fn run(ctx: &Ctx<'_>) -> Vec<Finding> {
    let mut findings = Vec::new();

    // Per-fn panic sites, attributed to the innermost owning fn.
    let mut sites_of: BTreeMap<usize, Vec<(usize, &'static str)>> = BTreeMap::new();
    let mut index_lines_of: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (file_idx, file) in ctx.files.iter().enumerate() {
        if file.area != Area::Library {
            continue;
        }
        for (ln, what) in local::panic_sites(file) {
            if let Some(owner) = ctx.owner_of(file_idx, ln) {
                sites_of.entry(owner).or_default().push((ln, what));
            }
        }
        for (idx, mline) in file.masked.lines().enumerate() {
            let ln = idx + 1;
            if has_index_site(mline) {
                if let Some(owner) = ctx.owner_of(file_idx, ln) {
                    index_lines_of.entry(owner).or_default().push(ln);
                }
            }
        }
    }

    // Multi-source BFS with parent pointers. Entries with a `# Panics`
    // contract are their own boundary and are skipped entirely.
    let mut parents: Vec<Option<(usize, usize)>> = vec![None; ctx.fns.len()];
    let mut visited = vec![false; ctx.fns.len()];
    let mut queue = VecDeque::new();
    for (idx, f) in ctx.fns.iter().enumerate() {
        if f.is_pub
            && !f.is_test
            && !f.has_panics_doc
            && ctx.files[f.file].area == Area::Library
            && is_entry_name(&f.name)
        {
            visited[idx] = true;
            queue.push_back(idx);
        }
    }

    let mut order: Vec<usize> = Vec::new();
    while let Some(at) = queue.pop_front() {
        order.push(at);
        for site in &ctx.graph.calls[at] {
            let callee = &ctx.fns[site.callee];
            if visited[site.callee] || callee.is_test {
                continue;
            }
            if ctx.files[callee.file].area != Area::Library {
                continue;
            }
            if callee.has_panics_doc {
                // Contract boundary: advisory finding at the call site.
                let caller = &ctx.fns[at];
                if !ctx.waived(caller.file, site.line, &[Rule::PanicReach.name()]) {
                    let mut witness = chain(ctx, &parents, at);
                    witness.push(Frame {
                        qualified: caller.qualified.clone(),
                        path: ctx.files[caller.file].path.clone(),
                        line: site.line,
                    });
                    witness.push(Frame {
                        qualified: callee.qualified.clone(),
                        path: ctx.files[callee.file].path.clone(),
                        line: callee.sig_line,
                    });
                    findings.push(Finding {
                        rule: Rule::PanicReach,
                        severity: Severity::Info,
                        path: ctx.files[caller.file].path.clone(),
                        line: site.line,
                        message: format!(
                            "fallible entry `{}` calls `{}` which documents `# Panics`; \
                             the contract is honored here, listed for audit",
                            ctx.fns[chain_root(&parents, at)].qualified,
                            callee.qualified
                        ),
                        witness,
                    });
                }
                continue;
            }
            visited[site.callee] = true;
            parents[site.callee] = Some((at, site.line));
            queue.push_back(site.callee);
        }
    }

    // Report sites inside every reachable fn.
    for at in order {
        let f = &ctx.fns[at];
        let file_idx = f.file;
        let file = &ctx.files[file_idx];
        for &(ln, what) in sites_of.get(&at).into_iter().flatten() {
            if file.is_test_line(ln) {
                continue;
            }
            if ctx.waived(
                file_idx,
                ln,
                &[Rule::NoPanic.name(), Rule::PanicReach.name()],
            ) {
                continue;
            }
            let mut witness = chain(ctx, &parents, at);
            witness.push(Frame {
                qualified: f.qualified.clone(),
                path: file.path.clone(),
                line: ln,
            });
            findings.push(Finding {
                rule: Rule::PanicReach,
                severity: Severity::Error,
                path: file.path.clone(),
                line: ln,
                message: format!(
                    "`{what}` reachable from fallible entry `{}` \
                     ({} call hops); return an error or document `# Panics`",
                    ctx.fns[chain_root(&parents, at)].qualified,
                    witness.len().saturating_sub(1),
                ),
                witness,
            });
        }
        for &ln in index_lines_of.get(&at).into_iter().flatten() {
            if file.is_test_line(ln) || ctx.waived(file_idx, ln, &[Rule::PanicReach.name()]) {
                continue;
            }
            let mut witness = chain(ctx, &parents, at);
            witness.push(Frame {
                qualified: f.qualified.clone(),
                path: file.path.clone(),
                line: ln,
            });
            findings.push(Finding {
                rule: Rule::PanicReach,
                severity: Severity::Info,
                path: file.path.clone(),
                line: ln,
                message: format!(
                    "indexing expression reachable from fallible entry `{}`; \
                     panics on out-of-bounds",
                    ctx.fns[chain_root(&parents, at)].qualified,
                ),
                witness,
            });
        }
    }

    findings
}

/// Walks parent pointers up to the BFS root (the entry fn).
fn chain_root(parents: &[Option<(usize, usize)>], mut at: usize) -> usize {
    while let Some((parent, _)) = parents[at] {
        at = parent;
    }
    at
}
