//! Atomic-ordering and lock-discipline audit.
//!
//! This workspace's concurrency story is deliberately simple: the
//! atomics in `vliw-metrics`/`vliw-fault`/`vliw-trace` are monotonic
//! counters and on/off flags, all `Relaxed`, and every global lock is
//! leaf-level (never held across another acquisition). Three rules
//! keep it that way:
//!
//! - **atomic-ordering** — a non-`Relaxed` ordering (`SeqCst`,
//!   `AcqRel`, or `Acquire`/`Release` on an atomic-op line) outside a
//!   waiver means someone started using atomics for *synchronization*,
//!   which these crates are not designed for;
//! - **relaxed-rmw** — `compare_exchange*`/`fetch_update` with
//!   `Relaxed`, or a `Relaxed` RMW result steering control flow
//!   (`if`/`while` + `.fetch_*`/`.swap(`), is a guard pattern that
//!   `Relaxed` cannot make correct;
//! - **lock-order** — two fns acquiring the same pair of global
//!   `Mutex`/`RwLock` statics in opposite orders (with one level of
//!   same-crate call inlining) is a deadlock waiting for the right
//!   interleaving.

use super::Ctx;
use crate::parse::{token_positions, Area};
use crate::{Finding, Frame, Rule, Severity};
use std::collections::BTreeMap;

/// Masked-line markers that make `Acquire`/`Release` atomic-relevant.
const ATOMIC_OP_MARKERS: [&str; 6] = [
    ".load(",
    ".store(",
    ".fetch_",
    ".swap(",
    ".compare_exchange",
    "fence(",
];

/// Checks one masked line for a non-Relaxed ordering token.
fn non_relaxed_ordering(mline: &str) -> Option<&'static str> {
    for tok in ["SeqCst", "AcqRel"] {
        if !token_positions(mline, tok).is_empty() {
            return Some(tok);
        }
    }
    let atomicish = ATOMIC_OP_MARKERS.iter().any(|m| mline.contains(m));
    if atomicish {
        for tok in ["Acquire", "Release"] {
            if !token_positions(mline, tok).is_empty() {
                return Some(tok);
            }
        }
    }
    None
}

/// Checks one masked line for a Relaxed read-modify-write guard.
fn relaxed_rmw_guard(mline: &str) -> Option<String> {
    if token_positions(mline, "Relaxed").is_empty() {
        return None;
    }
    for m in ["compare_exchange", "fetch_update"] {
        if mline.contains(m) {
            return Some(format!("`{m}` with `Relaxed` ordering"));
        }
    }
    let steers =
        !token_positions(mline, "if").is_empty() || !token_positions(mline, "while").is_empty();
    if steers && (mline.contains(".fetch_") || mline.contains(".swap(")) {
        return Some("`Relaxed` RMW result steering control flow".to_owned());
    }
    None
}

/// A global (or fn-scoped `static`) lock, identified by name.
#[derive(Debug)]
struct LockStatic {
    name: String,
}

/// Finds every `static NAME: … Mutex<…>`/`RwLock<…>` declaration.
fn find_lock_statics(ctx: &Ctx<'_>) -> Vec<LockStatic> {
    let mut locks: Vec<LockStatic> = Vec::new();
    for file in ctx.files {
        if !matches!(file.area, Area::Library | Area::Binary) {
            continue;
        }
        for mline in file.masked.lines() {
            if mline.contains("Mutex<") || mline.contains("RwLock<") {
                for at in token_positions(mline, "static") {
                    let rest = mline[at + "static".len()..].trim_start();
                    let name: String = rest
                        .chars()
                        .take_while(|c| c.is_alphanumeric() || *c == '_')
                        .collect();
                    if !name.is_empty()
                        && name.chars().all(|c| c.is_uppercase() || c == '_')
                        && !locks.iter().any(|l| l.name == name)
                    {
                        locks.push(LockStatic { name });
                    }
                }
            }
        }
    }
    locks
}

/// The ordered lock-acquisition sequence observed inside one fn body
/// (which global locks it takes, in source order, deduplicated).
fn acquisitions(ctx: &Ctx<'_>, fn_idx: usize, locks: &[LockStatic]) -> Vec<(usize, usize)> {
    let f = &ctx.fns[fn_idx];
    let file = &ctx.files[f.file];
    let mut seq: Vec<(usize, usize)> = Vec::new();
    if f.body.is_none() {
        return seq;
    }
    let masked_lines: Vec<&str> = file.masked.lines().collect();
    for ln in ctx.body_lines(fn_idx) {
        let Some(mline) = masked_lines.get(ln - 1) else {
            continue;
        };
        for (lock_idx, lock) in locks.iter().enumerate() {
            // Locks are matched by name only; same-named statics in
            // different crates would alias, so keep static names unique.
            for op in [".lock()", ".read()", ".write()"] {
                let pat = format!("{}{op}", lock.name);
                if !token_positions(mline, &pat).is_empty()
                    && !seq.iter().any(|&(l, _)| l == lock_idx)
                {
                    seq.push((lock_idx, ln));
                }
            }
        }
    }
    seq
}

/// Runs the pass.
pub fn run(ctx: &Ctx<'_>) -> Vec<Finding> {
    let mut findings = Vec::new();

    // Line rules: orderings and RMW guards.
    for (file_idx, file) in ctx.files.iter().enumerate() {
        if !matches!(file.area, Area::Library | Area::Binary) {
            continue;
        }
        for (idx, mline) in file.masked.lines().enumerate() {
            let ln = idx + 1;
            if file.is_test_line(ln) {
                continue;
            }
            if let Some(tok) = non_relaxed_ordering(mline) {
                if !ctx.waived(file_idx, ln, &[Rule::AtomicOrdering.name()]) {
                    findings.push(Finding {
                        rule: Rule::AtomicOrdering,
                        severity: Severity::Warning,
                        path: file.path.clone(),
                        line: ln,
                        message: format!(
                            "`{tok}` ordering: this workspace's atomics are \
                             counters/flags and must stay `Relaxed`; waive with \
                             `// lint:allow(atomic-ordering)` if synchronization \
                             is really intended"
                        ),
                        witness: Vec::new(),
                    });
                }
            }
            if let Some(what) = relaxed_rmw_guard(mline) {
                if !ctx.waived(file_idx, ln, &[Rule::RelaxedRmw.name()]) {
                    findings.push(Finding {
                        rule: Rule::RelaxedRmw,
                        severity: Severity::Warning,
                        path: file.path.clone(),
                        line: ln,
                        message: format!(
                            "{what}: a guard needs `Acquire`/`Release` (and a \
                             design note), not `Relaxed`"
                        ),
                        witness: Vec::new(),
                    });
                }
            }
        }
    }

    // Lock discipline: per-fn acquisition sequences with one level of
    // same-crate call inlining, then pairwise AB/BA conflict check.
    let locks = find_lock_statics(ctx);
    if locks.len() >= 2 {
        let own: Vec<Vec<(usize, usize)>> = (0..ctx.fns.len())
            .map(|i| acquisitions(ctx, i, &locks))
            .collect();
        // pair_order[(a, b)] = first fn observed acquiring a before b.
        let mut pair_order: BTreeMap<(usize, usize), (usize, usize, usize)> = BTreeMap::new();
        for fn_idx in 0..ctx.fns.len() {
            let f = &ctx.fns[fn_idx];
            if f.is_test {
                continue;
            }
            let mut seq = own[fn_idx].clone();
            for site in &ctx.graph.calls[fn_idx] {
                let callee = &ctx.fns[site.callee];
                if callee.is_test
                    || ctx.files[callee.file].crate_name != ctx.files[f.file].crate_name
                {
                    continue;
                }
                for &(lock, _) in &own[site.callee] {
                    if !seq.iter().any(|&(l, _)| l == lock) {
                        seq.push((lock, site.line));
                    }
                }
            }
            for i in 0..seq.len() {
                for j in (i + 1)..seq.len() {
                    let (a, la) = seq[i];
                    let (b, lb) = seq[j];
                    pair_order.entry((a, b)).or_insert((fn_idx, la, lb));
                }
            }
        }
        let mut reported: Vec<(usize, usize)> = Vec::new();
        for (&(a, b), &(fn_ab, la, lb)) in &pair_order {
            if a >= b {
                continue;
            }
            let Some(&(fn_ba, ba_la, ba_lb)) = pair_order.get(&(b, a)) else {
                continue;
            };
            if reported.contains(&(a, b)) {
                continue;
            }
            reported.push((a, b));
            let f_ab = &ctx.fns[fn_ab];
            let f_ba = &ctx.fns[fn_ba];
            let line = la.min(lb);
            if ctx.waived(f_ab.file, line, &[Rule::LockOrder.name()])
                || ctx.waived(f_ba.file, ba_la.min(ba_lb), &[Rule::LockOrder.name()])
            {
                continue;
            }
            findings.push(Finding {
                rule: Rule::LockOrder,
                severity: Severity::Warning,
                path: ctx.files[f_ab.file].path.clone(),
                line,
                message: format!(
                    "lock order conflict: `{}` acquires `{}` then `{}`, but `{}` \
                     acquires them in the opposite order — potential deadlock",
                    f_ab.qualified, locks[a].name, locks[b].name, f_ba.qualified,
                ),
                witness: vec![
                    Frame {
                        qualified: f_ab.qualified.clone(),
                        path: ctx.files[f_ab.file].path.clone(),
                        line: la,
                    },
                    Frame {
                        qualified: f_ba.qualified.clone(),
                        path: ctx.files[f_ba.file].path.clone(),
                        line: ba_la,
                    },
                ],
            });
        }
    }

    findings
}
