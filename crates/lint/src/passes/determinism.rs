//! Determinism source→sink taint along the call graph.
//!
//! **Sinks** are the result-producing fns: any non-test library fn
//! whose return type names a binding/scheduling result (`Binding`,
//! `BindingResult`, `Schedule`, `BindStats`, `Exploration`,
//! `BoundDfg`, `EvalOutcome`). Their output must be bit-reproducible —
//! it is what the determinism suites pin and what `--json` serializes.
//!
//! **Sources** are the syntactic nondeterminism sites: hash-collection
//! iteration, `Instant`/`SystemTime`, thread identity, and the
//! `vliw-fault` panic-site thread-local (`take_last_panic_site`).
//!
//! A sink is *tainted* when a source site is reachable from it along
//! the call graph. Laundering points where taint legitimately stops:
//!
//! - edges into the observational crates (`trace`, `metrics`, `fault`,
//!   `lint`) — they observe the computation but their values must not
//!   flow back into results (their own APIs return `()` or are
//!   consumed only by reporting paths);
//! - `crates/core/src/budget.rs` — the deadline budget deliberately
//!   makes *truncation* time-dependent; the determinism suites pin
//!   results under `Budget::unlimited()`, and budget-truncated runs
//!   are documented as best-effort;
//! - a `// lint:allow(determinism-taint)` waiver on the callee's
//!   signature line (e.g. a fn that sorts before reducing), or on the
//!   source site line itself.

use super::{local, Ctx};
use crate::parse::{token_positions, Area, FnItem};
use crate::{Finding, Frame, Rule, Severity};
use std::collections::{BTreeMap, VecDeque};

/// Return-type names that mark a fn as a determinism sink.
const SINK_TYPES: [&str; 7] = [
    "Binding",
    "BindingResult",
    "Schedule",
    "BindStats",
    "Exploration",
    "BoundDfg",
    "EvalOutcome",
];

/// Crates that observe rather than produce results; taint stops at
/// their boundary.
const LAUNDERING_CRATES: [&str; 4] = ["trace", "metrics", "fault", "lint"];

/// One nondeterminism source site.
struct Source {
    line: usize,
    what: String,
}

/// Does this fn's signature return one of the sink types?
fn is_sink(ctx: &Ctx<'_>, f: &FnItem) -> bool {
    if f.is_test || f.body.is_none() || ctx.files[f.file].area != Area::Library {
        return false;
    }
    let sig: String = ctx.files[f.file].chars[f.sig_span.0..f.sig_span.1]
        .iter()
        .collect();
    let Some(arrow) = sig.find("->") else {
        return false;
    };
    let ret = &sig[arrow + 2..];
    SINK_TYPES
        .iter()
        .any(|ty| !token_positions(ret, ty).is_empty())
}

/// Collects every source site in a file, keyed by owning fn.
fn collect_sources(ctx: &Ctx<'_>) -> BTreeMap<usize, Vec<Source>> {
    let mut out: BTreeMap<usize, Vec<Source>> = BTreeMap::new();
    let mut add = |file_idx: usize, line: usize, what: String| {
        let file = &ctx.files[file_idx];
        if file.is_test_line(line) {
            return;
        }
        if ctx.waived(file_idx, line, &[Rule::DeterminismTaint.name()]) {
            return;
        }
        if let Some(owner) = ctx.owner_of(file_idx, line) {
            out.entry(owner).or_default().push(Source { line, what });
        }
    };
    for (file_idx, file) in ctx.files.iter().enumerate() {
        if file.area != Area::Library {
            continue;
        }
        for (line, what) in local::hash_iter_sites(file) {
            add(file_idx, line, format!("hash iteration `{what}`"));
        }
        for line in local::instant_sites(file) {
            add(file_idx, line, "`Instant` timing".to_owned());
        }
        for (idx, mline) in file.masked.lines().enumerate() {
            if !token_positions(mline, "SystemTime").is_empty() {
                add(file_idx, idx + 1, "`SystemTime` timing".to_owned());
            }
            if !token_positions(mline, "ThreadId").is_empty() || mline.contains("thread::current()")
            {
                add(file_idx, idx + 1, "thread identity".to_owned());
            }
        }
    }
    // Foreign source calls seen in raw (unresolved) call lists.
    for (fn_idx, raws) in ctx.graph.raw.iter().enumerate() {
        let f = &ctx.fns[fn_idx];
        if f.is_test || ctx.files[f.file].area != Area::Library {
            continue;
        }
        for call in raws {
            let hit = match call.name.as_str() {
                "take_last_panic_site" => Some("`vliw-fault` panic-site thread-local"),
                "current" if call.path.ends_with("thread::current") => Some("thread identity"),
                _ => None,
            };
            if let Some(what) = hit {
                let file = &ctx.files[f.file];
                if file.is_test_line(call.line)
                    || ctx.waived(f.file, call.line, &[Rule::DeterminismTaint.name()])
                {
                    continue;
                }
                out.entry(fn_idx).or_default().push(Source {
                    line: call.line,
                    what: what.to_owned(),
                });
            }
        }
    }
    out
}

/// Reconstructs the witness chain sink → … → parent of `fn_idx`; the
/// caller appends the final frame (the fn containing the source site).
fn chain(ctx: &Ctx<'_>, parents: &[Option<(usize, usize)>], mut fn_idx: usize) -> Vec<Frame> {
    let mut frames = Vec::new();
    while let Some((parent, call_line)) = parents[fn_idx] {
        let p = &ctx.fns[parent];
        frames.push(Frame {
            qualified: p.qualified.clone(),
            path: ctx.files[p.file].path.clone(),
            line: call_line,
        });
        fn_idx = parent;
    }
    frames.reverse();
    frames
}

/// Walks parent pointers up to the BFS root (the sink fn).
fn root_of(parents: &[Option<(usize, usize)>], mut at: usize) -> usize {
    while let Some((parent, _)) = parents[at] {
        at = parent;
    }
    at
}

/// Runs the pass.
pub fn run(ctx: &Ctx<'_>) -> Vec<Finding> {
    let sources = collect_sources(ctx);

    // Multi-source BFS from every sink fn, stopping at laundering
    // boundaries. A sink with a sig-line waiver is itself exempt.
    let mut parents: Vec<Option<(usize, usize)>> = vec![None; ctx.fns.len()];
    let mut visited = vec![false; ctx.fns.len()];
    let mut queue = VecDeque::new();
    for (idx, f) in ctx.fns.iter().enumerate() {
        if is_sink(ctx, f) && !ctx.waived(f.file, f.sig_line, &[Rule::DeterminismTaint.name()]) {
            visited[idx] = true;
            queue.push_back(idx);
        }
    }

    let mut order = Vec::new();
    while let Some(at) = queue.pop_front() {
        order.push(at);
        for site in &ctx.graph.calls[at] {
            let callee = &ctx.fns[site.callee];
            if visited[site.callee] || callee.is_test {
                continue;
            }
            let cfile = &ctx.files[callee.file];
            if cfile.area != Area::Library {
                continue;
            }
            if LAUNDERING_CRATES.contains(&cfile.crate_name.as_str())
                || cfile.path == "crates/core/src/budget.rs"
            {
                continue;
            }
            if ctx.waived(
                callee.file,
                callee.sig_line,
                &[Rule::DeterminismTaint.name()],
            ) {
                continue;
            }
            visited[site.callee] = true;
            parents[site.callee] = Some((at, site.line));
            queue.push_back(site.callee);
        }
    }

    let mut findings = Vec::new();
    let mut seen: std::collections::BTreeSet<(String, usize)> = std::collections::BTreeSet::new();
    for at in order {
        let Some(srcs) = sources.get(&at) else {
            continue;
        };
        let f = &ctx.fns[at];
        let file = &ctx.files[f.file];
        for src in srcs {
            if !seen.insert((file.path.clone(), src.line)) {
                continue;
            }
            let mut witness = chain(ctx, &parents, at);
            witness.push(Frame {
                qualified: f.qualified.clone(),
                path: file.path.clone(),
                line: src.line,
            });
            findings.push(Finding {
                rule: Rule::DeterminismTaint,
                severity: Severity::Warning,
                path: file.path.clone(),
                line: src.line,
                message: format!(
                    "{} reaches result sink `{}`; sort/index instead, or waive with \
                     `// lint:allow(determinism-taint)` and a justification",
                    src.what,
                    ctx.fns[root_of(&parents, at)].qualified,
                ),
                witness,
            });
        }
    }
    findings
}
