//! Name-resolution-lite call graph over the workspace item table.
//!
//! Call sites are extracted from masked function bodies and resolved by
//! name against the [`FnItem`] table:
//!
//! - `name(...)` resolves to every *free* function named `name` in the
//!   workspace;
//! - `.name(...)` (method syntax) resolves to every `impl`/`trait`
//!   function named `name` — the receiver's type is unknown, so this
//!   **over-approximates** (any same-named method anywhere is a
//!   potential callee);
//! - `Type::name(...)` resolves to `impl` functions of `Type` when the
//!   workspace defines such a type, to free functions when the
//!   qualifier looks like a module path we know, and to nothing when
//!   the qualifier is foreign (`Vec::new`) — an **under-approximation**
//!   that keeps std calls out of the graph;
//! - `Self::name(...)` resolves within the enclosing `impl` type;
//! - calls through function pointers, closures passed by name, and
//!   macro-generated calls are not seen (under-approximation).
//!
//! The passes that consume the graph are designed so both
//! approximations fail safe: over-approximated edges can only *add*
//! candidate witness chains (each reported site is still a real
//! syntactic panic/taint site), and under-approximated edges are
//! covered by the file-local token rules that never went away.

use crate::parse::{is_ident, FnItem, SourceFile};
use std::collections::BTreeMap;

/// One resolved call site inside a function body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallSite {
    /// Index of the callee in the workspace fn table.
    pub callee: usize,
    /// 1-based line of the call.
    pub line: usize,
}

/// An unresolved call observed in a body — kept so passes can treat
/// specific foreign functions (e.g. `vliw_fault::take_last_panic_site`)
/// as sources even though they resolve outside the local crate graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawCall {
    /// Path as written, `::`-joined (`vliw_fault::point`, `m.keys`).
    pub path: String,
    /// Bare callee name (last segment).
    pub name: String,
    /// Whether the call used method syntax (`.name(...)`).
    pub is_method: bool,
    /// 1-based line of the call.
    pub line: usize,
}

/// The workspace call graph: per-function resolved call sites plus the
/// raw (pre-resolution) call list.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// `calls[f]` — resolved call sites inside fn `f`, in source order.
    pub calls: Vec<Vec<CallSite>>,
    /// `raw[f]` — every syntactic call inside fn `f`, resolved or not.
    pub raw: Vec<Vec<RawCall>>,
}

/// Keywords that look like `word(...)` in expression position but are
/// not calls.
const KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "in", "as", "fn", "let", "else", "move",
    "break", "continue", "where", "impl", "dyn", "ref", "mut", "pub", "use", "mod", "struct",
    "enum", "const", "static", "type", "trait", "unsafe", "async", "await", "crate", "super",
];

/// Extracts every syntactic call from one masked body span.
fn extract_calls(file: &SourceFile, body: (usize, usize)) -> Vec<RawCall> {
    let chars = &file.chars;
    let mut out = Vec::new();
    let mut i = body.0;
    let end = body.1.min(chars.len());
    while i < end {
        let c = chars[i];
        if !is_ident(c) || c.is_ascii_digit() || (i > 0 && is_ident(chars[i - 1])) {
            i += 1;
            continue;
        }
        // A lifetime tick immediately before an ident is not a call.
        if i > 0 && chars[i - 1] == '\'' {
            i += 1;
            continue;
        }
        // Method syntax? Look at the previous non-space char.
        let mut p = i;
        while p > body.0 && chars[p - 1].is_whitespace() {
            p -= 1;
        }
        let is_method = p > body.0 && chars[p - 1] == '.';
        // Read the `seg(::seg)*` path.
        let mut segments: Vec<String> = Vec::new();
        let mut j = i;
        loop {
            let mut seg = String::new();
            while j < end && is_ident(chars[j]) {
                seg.push(chars[j]);
                j += 1;
            }
            if seg.is_empty() {
                break;
            }
            segments.push(seg);
            // `::` continues the path; `::<...>` is a turbofish to skip.
            if j + 1 < end && chars[j] == ':' && chars[j + 1] == ':' {
                j += 2;
                if j < end && chars[j] == '<' {
                    let mut depth = 0usize;
                    while j < end {
                        match chars[j] {
                            '<' => depth += 1,
                            '>' => {
                                depth -= 1;
                                if depth == 0 {
                                    j += 1;
                                    break;
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                }
                if j < end && is_ident(chars[j]) && !chars[j].is_ascii_digit() {
                    continue;
                }
            }
            break;
        }
        if segments.is_empty() {
            i += 1;
            continue;
        }
        let after_path = j;
        // Macros (`name!(...)`) are not call-graph edges; the panic
        // macros are handled as direct sites by the passes.
        if after_path < end && chars[after_path] == '!' {
            i = after_path + 1;
            continue;
        }
        let k = {
            let mut k = after_path;
            while k < end && chars[k].is_whitespace() && chars[k] != '\n' {
                k += 1;
            }
            k
        };
        let is_call = k < end && chars[k] == '(';
        if is_call {
            let name = segments.last().cloned().unwrap_or_default();
            if !(segments.len() == 1 && KEYWORDS.contains(&name.as_str())) {
                out.push(RawCall {
                    path: segments.join("::"),
                    name,
                    is_method,
                    line: file.line_at(i),
                });
            }
        }
        i = after_path.max(i + 1);
    }
    out
}

/// Builds the call graph for the whole workspace.
pub fn build(files: &[SourceFile], fns: &[FnItem]) -> CallGraph {
    // Name indices. BTreeMap keeps resolution order deterministic.
    let mut free_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut method_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut by_type_and_name: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
    for (idx, f) in fns.iter().enumerate() {
        if f.is_test {
            continue;
        }
        match &f.self_ty {
            None => free_by_name.entry(&f.name).or_default().push(idx),
            Some(ty) => {
                method_by_name.entry(&f.name).or_default().push(idx);
                by_type_and_name
                    .entry((ty.as_str(), &f.name))
                    .or_default()
                    .push(idx);
            }
        }
    }

    let mut graph = CallGraph {
        calls: vec![Vec::new(); fns.len()],
        raw: vec![Vec::new(); fns.len()],
    };
    for (idx, f) in fns.iter().enumerate() {
        let Some(body) = f.body else {
            continue;
        };
        let file = &files[f.file];
        let raw_calls = extract_calls(file, body);
        let mut sites: Vec<CallSite> = Vec::new();
        for call in &raw_calls {
            let segments: Vec<&str> = call.path.split("::").collect();
            let targets: Vec<usize> = if call.is_method {
                method_by_name
                    .get(call.name.as_str())
                    .cloned()
                    .unwrap_or_default()
            } else if segments.len() == 1 {
                free_by_name
                    .get(call.name.as_str())
                    .cloned()
                    .unwrap_or_default()
            } else {
                let qualifier = segments[segments.len() - 2];
                let qualifier = if qualifier == "Self" {
                    f.self_ty.as_deref().unwrap_or(qualifier)
                } else {
                    qualifier
                };
                match by_type_and_name.get(&(qualifier, call.name.as_str())) {
                    Some(t) => t.clone(),
                    // A module-looking qualifier (snake_case) may name a
                    // workspace module: fall back to free fns by name.
                    // Type-looking foreign qualifiers (`Vec::new`)
                    // resolve to nothing.
                    None if qualifier.chars().next().is_some_and(char::is_lowercase) => {
                        free_by_name
                            .get(call.name.as_str())
                            .cloned()
                            .unwrap_or_default()
                    }
                    None => Vec::new(),
                }
            };
            for callee in targets {
                // Self-recursion adds nothing to reachability.
                if callee == idx {
                    continue;
                }
                if !sites.iter().any(|s| s.callee == callee) {
                    sites.push(CallSite {
                        callee,
                        line: call.line,
                    });
                }
            }
        }
        graph.calls[idx] = sites;
        graph.raw[idx] = raw_calls;
    }
    graph
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::{parse_items, Area, SourceFile};

    fn ws(src: &str) -> (Vec<SourceFile>, Vec<FnItem>, CallGraph) {
        let file = SourceFile::new(
            "crates/core/src/x.rs".into(),
            Area::Library,
            "core".into(),
            src.into(),
        );
        let files = vec![file];
        let fns = parse_items(0, &files[0]);
        let graph = build(&files, &fns);
        (files, fns, graph)
    }

    fn edge(fns: &[FnItem], graph: &CallGraph, from: &str, to: &str) -> bool {
        let f = fns.iter().position(|i| i.name == from).expect("from");
        let t = fns.iter().position(|i| i.name == to).expect("to");
        graph.calls[f].iter().any(|s| s.callee == t)
    }

    #[test]
    fn free_method_and_qualified_calls_resolve() {
        let src = "struct W;\n\
                   impl W {\n\
                       fn step(&self) -> u32 { helper() }\n\
                       fn spawn() -> W { W }\n\
                   }\n\
                   fn helper() -> u32 { 3 }\n\
                   fn dot(w: &W) -> u32 { w.step() }\n\
                   fn turbo() -> W { W::spawn() }\n";
        let (_files, fns, graph) = ws(src);
        assert!(edge(&fns, &graph, "step", "helper"));
        assert!(edge(&fns, &graph, "dot", "step"));
        assert!(edge(&fns, &graph, "turbo", "spawn"));
    }

    #[test]
    fn foreign_qualified_calls_resolve_to_nothing() {
        let src = "fn new() -> u32 { 1 }\n\
                   fn user() -> Vec<u32> { Vec::new() }\n";
        let (_files, fns, graph) = ws(src);
        // `Vec::new` must NOT edge to the workspace free fn `new`.
        assert!(!edge(&fns, &graph, "user", "new"));
    }

    #[test]
    fn macros_and_keywords_are_not_calls() {
        let src = "fn assert_eq() {}\n\
                   fn user(x: u32) -> u32 {\n\
                       if x > 0 { println!(\"hi\"); }\n\
                       while x > 9 { break; }\n\
                       x\n\
                   }\n";
        let (_files, fns, graph) = ws(src);
        let user = fns.iter().position(|i| i.name == "user").expect("user");
        assert!(graph.calls[user].is_empty(), "{:?}", graph.calls[user]);
    }

    #[test]
    fn raw_calls_keep_foreign_paths() {
        let src = "fn user() { vliw_fault::take_last_panic_site(); }\n";
        let (_files, fns, graph) = ws(src);
        let user = fns.iter().position(|i| i.name == "user").expect("user");
        assert_eq!(graph.raw[user].len(), 1);
        assert_eq!(graph.raw[user][0].path, "vliw_fault::take_last_panic_site");
        assert!(!graph.raw[user][0].is_method);
    }

    #[test]
    fn test_fns_are_not_call_targets() {
        let src = "pub fn lib() { shared(); }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       pub fn shared() { Some(1).unwrap(); }\n\
                   }\n";
        let (_files, fns, graph) = ws(src);
        let lib = fns.iter().position(|i| i.name == "lib").expect("lib");
        assert!(graph.calls[lib].is_empty());
    }
}
