//! Workspace invariant linter for the clustered-VLIW workspace.
//!
//! A zero-dependency, token-level source scanner (no `syn`, no parsing of
//! the full grammar) that enforces four invariants the test suite cannot
//! see but reviewers rely on:
//!
//! 1. **no-panic** — library code (anything under `crates/*/src/` except
//!    `main.rs`, `src/bin/` and `#[cfg(test)]` regions) must not call
//!    `panic!`, `unreachable!`, `todo!`, `unimplemented!`, `.unwrap()` or
//!    `.expect(`. A function documented with a `/// # Panics` section is
//!    waived for its body, and a single line can be waived with a
//!    `// lint:allow(no-panic)` comment.
//! 2. **no-hash-iter** — the result-affecting crates (`core`, `sched`,
//!    `pcc`, `baselines`) must not iterate over a `HashMap`/`HashSet`
//!    outside tests: iteration order is unspecified, and a binding result
//!    that depends on it is not reproducible. Lookups (`get`, `insert`,
//!    `contains`, `entry`, `len`) are fine.
//! 3. **no-instant** — `std::time::Instant` may appear only in
//!    `crates/trace`, `crates/bench` and `crates/core/src/budget.rs`
//!    (the code whose *job* is timing). Everything else must go through
//!    `vliw_trace::Stopwatch` or a `Budget`, so result-affecting code has
//!    no hidden wall-clock dependence.
//! 4. **unsafe-forbid** — every `crates/*/src/lib.rs` must carry
//!    `#![forbid(unsafe_code)]` (or `#![deny(unsafe_code)]`).
//!
//! The scanner masks comments, string literals and char literals before
//! matching tokens, so a `panic!` inside a doc comment or an error
//! message does not trip the rules. It is deliberately conservative and
//! line-oriented; the waiver comments exist precisely because a
//! token-level tool cannot judge intent.
//!
//! Run it as `cargo run -p vliw-lint` (exits nonzero on any finding).

#![forbid(unsafe_code)]

use std::fmt;
use std::fs;
use std::path::Path;

/// The invariant a [`Finding`] violates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// Panic-family call in non-test library code.
    NoPanic,
    /// `HashMap`/`HashSet` iteration in a result-affecting crate.
    NoHashIter,
    /// `std::time::Instant` outside the timing-owning files.
    NoInstant,
    /// A crate's `lib.rs` is missing `#![forbid(unsafe_code)]`.
    UnsafeForbid,
}

impl Rule {
    /// The name used in reports and in `lint:allow(...)` waivers.
    pub fn name(self) -> &'static str {
        match self {
            Rule::NoPanic => "no-panic",
            Rule::NoHashIter => "no-hash-iter",
            Rule::NoInstant => "no-instant",
            Rule::UnsafeForbid => "unsafe-forbid",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One rule violation at a specific source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Which invariant was violated.
    pub rule: Rule,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Crates whose binding/scheduling output must be reproducible, so hash
/// iteration is banned in their non-test code.
const RESULT_AFFECTING: [&str; 4] = ["core", "sched", "pcc", "baselines"];

/// Files allowed to mention `Instant`: the tracing crate, the metrics
/// crate, the bench harness, and the deadline budget.
fn instant_allowed(path: &str) -> bool {
    path.starts_with("crates/trace/")
        || path.starts_with("crates/metrics/")
        || path.starts_with("crates/bench/")
        || path == "crates/core/src/budget.rs"
}

/// Replace the contents of comments, string literals and char literals
/// with spaces, preserving length and newlines so byte offsets and line
/// numbers still line up with the original text.
fn mask_source(text: &str) -> String {
    let b: Vec<char> = text.chars().collect();
    let n = b.len();
    let mut out = String::with_capacity(n);
    let mut i = 0;
    let blank = |c: char| if c == '\n' { '\n' } else { ' ' };
    while i < n {
        let c = b[i];
        // Line comment (also covers /// and //! doc comments).
        if c == '/' && b.get(i + 1) == Some(&'/') {
            while i < n && b[i] != '\n' {
                out.push(' ');
                i += 1;
            }
            continue;
        }
        // Block comment, nested.
        if c == '/' && b.get(i + 1) == Some(&'*') {
            let mut depth = 0usize;
            while i < n {
                if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                    depth += 1;
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                    depth = depth.saturating_sub(1);
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    out.push(blank(b[i]));
                    i += 1;
                }
            }
            continue;
        }
        // Raw (and raw byte) string literal: r"..", r#".."#, br#".."#.
        let ident_before = i > 0 && (b[i - 1].is_alphanumeric() || b[i - 1] == '_');
        if (c == 'r' || c == 'b') && !ident_before {
            let mut j = i;
            if b[j] == 'b' {
                j += 1;
            }
            if j < n && b[j] == 'r' {
                let mut k = j + 1;
                let mut hashes = 0usize;
                while k < n && b[k] == '#' {
                    hashes += 1;
                    k += 1;
                }
                if k < n && b[k] == '"' {
                    // Mask from i through the matching closing quote.
                    while i <= k {
                        out.push(' ');
                        i += 1;
                    }
                    'raw: while i < n {
                        if b[i] == '"' {
                            let mut m = 0usize;
                            while m < hashes && b.get(i + 1 + m) == Some(&'#') {
                                m += 1;
                            }
                            if m == hashes {
                                for _ in 0..=hashes {
                                    out.push(' ');
                                    i += 1;
                                }
                                break 'raw;
                            }
                        }
                        out.push(blank(b[i]));
                        i += 1;
                    }
                    continue;
                }
            }
        }
        // Ordinary (or byte) string literal with escapes.
        if c == '"' {
            out.push(' ');
            i += 1;
            while i < n {
                if b[i] == '\\' && i + 1 < n {
                    out.push(' ');
                    out.push(blank(b[i + 1]));
                    i += 2;
                } else if b[i] == '"' {
                    out.push(' ');
                    i += 1;
                    break;
                } else {
                    out.push(blank(b[i]));
                    i += 1;
                }
            }
            continue;
        }
        // Char literal vs lifetime. A quote starts a char literal when it
        // is 'x' or an escape like '\n'; otherwise it is a lifetime.
        if c == '\'' {
            if b.get(i + 1) == Some(&'\\') {
                out.push(' ');
                out.push(' ');
                i += 2;
                while i < n && b[i] != '\'' {
                    out.push(blank(b[i]));
                    i += 1;
                }
                if i < n {
                    out.push(' ');
                    i += 1;
                }
                continue;
            }
            if b.get(i + 2) == Some(&'\'') && b.get(i + 1) != Some(&'\'') {
                out.push(' ');
                out.push(blank(b[i + 1]));
                out.push(' ');
                i += 3;
                continue;
            }
            // Lifetime: fall through as plain code.
        }
        out.push(c);
        i += 1;
    }
    out
}

/// True when the char is part of an identifier.
fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Find occurrences of `needle` in `hay` that are not preceded or
/// followed by an identifier character (so `.unwrap()` does not match
/// inside `.unwrap_or()` and `Instant` does not match `InstantLike`).
fn token_positions(hay: &str, needle: &str) -> Vec<usize> {
    let mut found = Vec::new();
    let mut from = 0;
    while let Some(off) = hay[from..].find(needle) {
        let at = from + off;
        let before_ok = at == 0 || !hay[..at].chars().next_back().is_some_and(is_ident);
        let after_ok = !hay[at + needle.len()..]
            .chars()
            .next()
            .is_some_and(is_ident);
        if before_ok && after_ok {
            found.push(at);
        }
        from = at + needle.len().max(1);
    }
    found
}

/// Given a masked source and a char offset, return the char offset just
/// past the `}` matching the first `{` at or after `start`. Returns
/// `None` if a `;` ends the item before any `{` opens (e.g. a trait
/// method signature or `mod tests;`), or if braces never balance.
fn body_span(masked: &[char], start: usize) -> Option<(usize, usize)> {
    let mut i = start;
    while i < masked.len() {
        match masked[i] {
            '{' => break,
            ';' => return None,
            _ => i += 1,
        }
    }
    if i >= masked.len() {
        return None;
    }
    let open = i;
    let mut depth = 0usize;
    while i < masked.len() {
        match masked[i] {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some((open, i + 1));
                }
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// Per-line flags computed once per file.
struct LineMap {
    /// `flag[line - 1]` marks lines inside `#[cfg(test)]` bodies.
    test: Vec<bool>,
    /// Lines inside the body of a function documented `/// # Panics`.
    panics_waived: Vec<bool>,
}

fn line_map(original: &str, masked: &str) -> LineMap {
    let chars: Vec<char> = masked.chars().collect();
    let mut line_of = Vec::with_capacity(chars.len());
    let mut line = 1usize;
    for &c in &chars {
        line_of.push(line);
        if c == '\n' {
            line += 1;
        }
    }
    let total_lines = line;
    let mut test = vec![false; total_lines];
    let mut panics_waived = vec![false; total_lines];

    let mark = |flags: &mut Vec<bool>, span: (usize, usize), line_of: &Vec<usize>| {
        for idx in span.0..span.1.min(line_of.len()) {
            flags[line_of[idx] - 1] = true;
        }
    };

    // #[cfg(test)] regions: the body of the annotated item.
    for at in token_positions(masked, "#[cfg(test)]") {
        // Char offset of the match (token_positions returns byte offsets,
        // but the masked text is ASCII-masked in the regions we matched;
        // convert defensively).
        let char_at = masked[..at].chars().count();
        if let Some(span) = body_span(&chars, char_at) {
            mark(&mut test, span, &line_of);
        }
    }

    // `/// # Panics` waives the body of the next function.
    let mut offset = 0usize; // char offset of the current line start
    for raw in original.lines() {
        let line_chars = raw.chars().count() + 1;
        let trimmed = raw.trim_start();
        if (trimmed.starts_with("///") || trimmed.starts_with("//!"))
            && trimmed.contains("# Panics")
        {
            // Find the next `fn` token after this doc line, then its body.
            let after = offset + line_chars;
            let tail: String = chars.iter().skip(after).collect();
            if let Some(fn_off) = token_positions(&tail, "fn").first() {
                let fn_char = after + tail[..*fn_off].chars().count();
                if let Some(span) = body_span(&chars, fn_char) {
                    mark(&mut panics_waived, span, &line_of);
                }
            }
        }
        offset += line_chars;
    }

    LineMap {
        test,
        panics_waived,
    }
}

/// True if the original line carries a `lint:allow(<rule>)` waiver.
fn line_allows(original_line: &str, rule: Rule) -> bool {
    original_line.contains(&format!("lint:allow({})", rule.name()))
}

/// Extract identifiers bound to a `HashMap`/`HashSet` in this file:
/// `let [mut] x: HashMap<..>`, `let [mut] x = HashMap::new()`, struct
/// fields and parameters `x: HashSet<..>`.
fn hash_bound_idents(masked_lines: &[&str]) -> Vec<String> {
    let mut idents: Vec<String> = Vec::new();
    for line in masked_lines {
        for ty in ["HashMap", "HashSet"] {
            for at in token_positions(line, ty) {
                // Look backwards over the glue between the binder and the
                // type or constructor: `: `, `= `, `&`, `&mut `.
                let mut head = line[..at].trim_end();
                for prefix in ["&mut", "&"] {
                    if let Some(h) = head.strip_suffix(prefix) {
                        head = h.trim_end();
                        break;
                    }
                }
                let head = head
                    .strip_suffix(':')
                    .or_else(|| head.strip_suffix('='))
                    .unwrap_or(head)
                    .trim_end();
                let ident: String = head
                    .chars()
                    .rev()
                    .take_while(|&c| is_ident(c))
                    .collect::<Vec<_>>()
                    .into_iter()
                    .rev()
                    .collect();
                if !ident.is_empty()
                    && !ident.chars().next().is_some_and(|c| c.is_ascii_digit())
                    && ident != "use"
                    && ident != "mut"
                    && !idents.iter().any(|i| i == &ident)
                {
                    idents.push(ident);
                }
            }
        }
    }
    idents
}

/// Methods on a hash collection whose visit order is unspecified.
const HASH_ITER_METHODS: [&str; 7] = [
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".into_iter()",
    ".drain(",
];

/// Lint a single source file. `rel_path` is workspace-relative with `/`
/// separators (e.g. `crates/core/src/driver.rs`); `text` is the file
/// contents. Returns all findings, sorted by line.
pub fn lint_file(rel_path: &str, text: &str) -> Vec<Finding> {
    let path = rel_path.replace('\\', "/");
    let masked = mask_source(text);
    let map = line_map(text, &masked);
    let orig_lines: Vec<&str> = text.lines().collect();
    let masked_lines: Vec<&str> = masked.lines().collect();
    let mut findings = Vec::new();

    let in_crates_src = path.starts_with("crates/") && path.contains("/src/");
    let is_library = in_crates_src
        && !path.ends_with("/main.rs")
        && !path.contains("/src/bin/")
        && !path.ends_with("build.rs");
    let crate_name = path
        .strip_prefix("crates/")
        .and_then(|p| p.split('/').next())
        .unwrap_or("");
    let hash_rule_applies = is_library && RESULT_AFFECTING.contains(&crate_name);
    let instant_rule_applies = in_crates_src && !instant_allowed(&path);

    let is_test_line = |ln: usize| map.test.get(ln - 1).copied().unwrap_or(false);
    let is_waived_line = |ln: usize| map.panics_waived.get(ln - 1).copied().unwrap_or(false);
    let orig = |ln: usize| orig_lines.get(ln - 1).copied().unwrap_or("");

    // Rule 1: no-panic.
    if is_library {
        const PANICKY: [&str; 4] = ["panic!", "unreachable!", "todo!", "unimplemented!"];
        for (idx, mline) in masked_lines.iter().enumerate() {
            let ln = idx + 1;
            if is_test_line(ln) || is_waived_line(ln) || line_allows(orig(ln), Rule::NoPanic) {
                continue;
            }
            let mut hits: Vec<&str> = Vec::new();
            for pat in PANICKY {
                if !token_positions(mline, pat).is_empty() {
                    hits.push(pat);
                }
            }
            for pat in [".unwrap()", ".expect("] {
                if mline.contains(pat) {
                    hits.push(pat);
                }
            }
            for pat in hits {
                findings.push(Finding {
                    path: path.clone(),
                    line: ln,
                    rule: Rule::NoPanic,
                    message: format!(
                        "`{pat}` in library code; return an error, document `# Panics`, \
                         or waive with `// lint:allow(no-panic)`"
                    ),
                });
            }
        }
    }

    // Rule 2: no-hash-iter.
    if hash_rule_applies {
        let idents = hash_bound_idents(&masked_lines);
        for (idx, mline) in masked_lines.iter().enumerate() {
            let ln = idx + 1;
            if is_test_line(ln) || line_allows(orig(ln), Rule::NoHashIter) {
                continue;
            }
            for ident in &idents {
                let mut hit: Option<String> = None;
                for m in HASH_ITER_METHODS {
                    let pat = format!("{ident}{m}");
                    let bounded = token_positions(mline, &pat)
                        .iter()
                        .any(|&at| !mline[..at].chars().next_back().is_some_and(is_ident));
                    if bounded {
                        hit = Some(format!("{ident}{m}"));
                        break;
                    }
                }
                if hit.is_none() && mline.contains("for ") {
                    if let Some(pos) = mline.rfind(" in ") {
                        let expr = mline[pos + 4..]
                            .trim()
                            .trim_end_matches('{')
                            .trim()
                            .trim_start_matches('&')
                            .trim_start_matches("mut ")
                            .trim();
                        if expr == ident {
                            hit = Some(format!("for .. in {ident}"));
                        }
                    }
                }
                if let Some(what) = hit {
                    findings.push(Finding {
                        path: path.clone(),
                        line: ln,
                        rule: Rule::NoHashIter,
                        message: format!(
                            "`{what}` iterates a hash collection in a result-affecting \
                             crate; use a sorted or indexed container, or waive with \
                             `// lint:allow(no-hash-iter)`"
                        ),
                    });
                }
            }
        }
    }

    // Rule 3: no-instant.
    if instant_rule_applies {
        for (idx, mline) in masked_lines.iter().enumerate() {
            let ln = idx + 1;
            if is_test_line(ln) || line_allows(orig(ln), Rule::NoInstant) {
                continue;
            }
            if !token_positions(mline, "Instant").is_empty() {
                findings.push(Finding {
                    path: path.clone(),
                    line: ln,
                    rule: Rule::NoInstant,
                    message: "`Instant` outside trace/bench/budget code; use \
                              `vliw_trace::Stopwatch` or a `Budget` deadline"
                        .to_string(),
                });
            }
        }
    }

    findings.sort_by_key(|f| f.line);
    findings
}

/// Check the crate-level `unsafe_code` lint on a `lib.rs` body.
fn lint_lib_attr(rel_path: &str, text: &str) -> Option<Finding> {
    let masked = mask_source(text);
    let ok = masked.contains("#![forbid(unsafe_code)]") || masked.contains("#![deny(unsafe_code)]");
    if ok {
        None
    } else {
        Some(Finding {
            path: rel_path.to_string(),
            line: 1,
            rule: Rule::UnsafeForbid,
            message: "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        })
    }
}

/// Collect every `.rs` file under `dir` (recursively), sorted for
/// deterministic report order.
fn rust_files(dir: &Path, out: &mut Vec<std::path::PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            // Skip build artifacts.
            if p.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            rust_files(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

/// Lint every `.rs` file under `<root>/crates`, plus the per-crate
/// `lib.rs` attribute check. Returns all findings, sorted by path then
/// line. Unreadable files are skipped.
pub fn lint_workspace(root: &Path) -> Vec<Finding> {
    let crates_dir = root.join("crates");
    let mut files = Vec::new();
    rust_files(&crates_dir, &mut files);
    let mut findings = Vec::new();
    for file in &files {
        let Ok(text) = fs::read_to_string(file) else {
            continue;
        };
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        findings.extend(lint_file(&rel, &text));
        if rel.ends_with("/src/lib.rs") {
            findings.extend(lint_lib_attr(&rel, &text));
        }
    }
    findings.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules(findings: &[Finding]) -> Vec<Rule> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn masks_comments_strings_and_chars() {
        let src = r##"
// panic! in a line comment
/* .unwrap() in /* a nested */ block */
let s = "panic! inside a string";
let r = r#"Instant in a raw string"#;
let c = 'x';
let esc = '\n';
fn f<'a>(x: &'a str) {}
"##;
        let masked = mask_source(src);
        assert!(!masked.contains("panic!"));
        assert!(!masked.contains(".unwrap()"));
        assert!(!masked.contains("Instant"));
        // Lifetimes survive masking as code.
        assert!(masked.contains("fn f<'a>"));
        // Line structure is preserved.
        assert_eq!(masked.lines().count(), src.lines().count());
    }

    #[test]
    fn flags_panics_in_library_code_only() {
        let src = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let f = lint_file("crates/core/src/driver.rs", src);
        assert_eq!(rules(&f), vec![Rule::NoPanic]);
        // Binaries are exempt.
        assert!(lint_file("crates/tools/src/main.rs", src).is_empty());
        assert!(lint_file("crates/tools/src/bin/extra.rs", src).is_empty());
    }

    #[test]
    fn cfg_test_region_is_exempt() {
        let src = "pub fn f() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       #[test]\n\
                       fn t() { Some(1).unwrap(); panic!(); }\n\
                   }\n";
        assert!(lint_file("crates/core/src/lib_part.rs", src).is_empty());
    }

    #[test]
    fn panics_doc_section_waives_next_fn_body() {
        let src = "/// Does a thing.\n\
                   ///\n\
                   /// # Panics\n\
                   /// Panics when empty.\n\
                   pub fn f(v: &[u32]) -> u32 { v.first().copied().expect(\"nonempty\") }\n\
                   pub fn g(v: &[u32]) -> u32 { v.first().copied().expect(\"nonempty\") }\n";
        let f = lint_file("crates/core/src/x.rs", src);
        assert_eq!(f.len(), 1, "only the undocumented fn is flagged: {f:?}");
        assert_eq!(f[0].line, 6);
    }

    #[test]
    fn lint_allow_waives_a_single_line() {
        let src = "pub fn f() { opt().unwrap(); } // lint:allow(no-panic)\n\
                   pub fn g() { opt().unwrap(); }\n";
        let f = lint_file("crates/sched/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn unwrap_or_and_expect_err_do_not_match() {
        let src = "pub fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }\n\
                   pub fn g(x: Result<u32, u32>) -> u32 { x.expect_err; 0 }\n";
        assert!(lint_file("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn hash_iteration_flagged_in_result_affecting_crates() {
        let src = "use std::collections::HashMap;\n\
                   pub fn f(m: &HashMap<u32, u32>) -> Vec<u32> {\n\
                       m.keys().copied().collect()\n\
                   }\n";
        let f = lint_file("crates/core/src/x.rs", src);
        assert_eq!(rules(&f), vec![Rule::NoHashIter]);
        // Same code in a non-result-affecting crate is fine.
        assert!(lint_file("crates/trace/src/x.rs", src).is_empty());
        // Lookups never trip the rule.
        let lookups = "use std::collections::HashMap;\n\
                       pub fn f(m: &mut HashMap<u32, u32>) -> u32 {\n\
                           m.insert(1, 2); *m.entry(3).or_insert(4) + m.len() as u32\n\
                       }\n";
        assert!(lint_file("crates/core/src/x.rs", lookups).is_empty());
    }

    #[test]
    fn hash_for_loop_flagged() {
        let src = "use std::collections::HashSet;\n\
                   pub fn f(s: &HashSet<u32>) -> u32 {\n\
                       let mut acc = 0;\n\
                       for v in s {\n\
                           acc += v;\n\
                       }\n\
                       acc\n\
                   }\n";
        let f = lint_file("crates/pcc/src/x.rs", src);
        assert_eq!(rules(&f), vec![Rule::NoHashIter]);
    }

    #[test]
    fn instant_confined_to_timing_files() {
        let src = "use std::time::Instant;\npub fn f() { let _ = Instant::now(); }\n";
        let f = lint_file("crates/core/src/eval.rs", src);
        assert_eq!(rules(&f), vec![Rule::NoInstant, Rule::NoInstant]);
        assert!(lint_file("crates/trace/src/lib_part.rs", src).is_empty());
        assert!(lint_file("crates/metrics/src/lib.rs", src).is_empty());
        assert!(lint_file("crates/bench/src/runner.rs", src).is_empty());
        assert!(lint_file("crates/core/src/budget.rs", src).is_empty());
    }

    #[test]
    fn lib_attr_check() {
        assert!(lint_lib_attr("crates/x/src/lib.rs", "#![forbid(unsafe_code)]\n").is_none());
        assert!(lint_lib_attr("crates/x/src/lib.rs", "#![deny(unsafe_code)]\n").is_none());
        let miss = lint_lib_attr("crates/x/src/lib.rs", "pub fn f() {}\n");
        assert_eq!(miss.map(|f| f.rule), Some(Rule::UnsafeForbid));
        // The attribute must be real code, not a comment.
        let fake = lint_lib_attr("crates/x/src/lib.rs", "// #![forbid(unsafe_code)]\n");
        assert!(fake.is_some());
    }

    #[test]
    fn workspace_lint_is_clean_on_this_repo() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let findings = lint_workspace(&root);
        assert!(
            findings.is_empty(),
            "workspace has lint findings:\n{}",
            findings
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
