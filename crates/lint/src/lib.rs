//! Workspace-aware static analysis for the clustered-VLIW workspace.
//!
//! Grown from the original file-local token linter into a multi-pass
//! engine (see DESIGN.md §7):
//!
//! 1. [`parse`] masks each source file (comments/strings blanked,
//!    layout preserved) and scans it into a function item table —
//!    qualified names, visibility, `#[cfg(test)]` status, `/// #
//!    Panics` contracts, body spans;
//! 2. [`graph`] resolves syntactic calls against that table into a
//!    name-resolution-lite call graph across the whole workspace;
//! 3. [`passes`] run over the shared context:
//!    - `local` — the original per-file rules (`no-panic`,
//!      `no-hash-iter`, `no-instant`, `unsafe-forbid`), now scoped per
//!      [`parse::Area`] so tests/examples/binaries keep their
//!      allowances;
//!    - `panic_reach` — interprocedural panic reachability from the
//!      fallible `try_*`/`verify*`/`check_*` entry points, with full
//!      witness call chains;
//!    - `determinism` — source→sink taint from nondeterminism sources
//!      (hash iteration, timing, thread identity, fault thread-locals)
//!      to result-producing fns;
//!    - `atomics` — atomic-ordering, `Relaxed`-RMW-guard and
//!      lock-acquisition-order audit;
//! 4. the stale-waiver check: every `// lint:allow(rule)` must still
//!    suppress something, or it is itself an error.
//!
//! Zero dependencies by design (the offline/vendored constraint); the
//! JSON/baseline surface lives in `vliw-tools` (`vliw lint`).

#![forbid(unsafe_code)]

pub mod graph;
pub mod parse;
pub mod passes;

use parse::{Area, SourceFile};
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// Every rule the engine can report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Panic-family macro / `unwrap` / `expect` in library code.
    NoPanic,
    /// Hash-collection iteration in a result-affecting crate.
    NoHashIter,
    /// `Instant` outside trace/bench/budget code.
    NoInstant,
    /// Crate root missing `#![forbid(unsafe_code)]`.
    UnsafeForbid,
    /// Panic site transitively reachable from a fallible entry point.
    PanicReach,
    /// Nondeterminism source reaching a result sink.
    DeterminismTaint,
    /// Non-`Relaxed` atomic ordering.
    AtomicOrdering,
    /// `Relaxed` atomic in a read-modify-write guard pattern.
    RelaxedRmw,
    /// Inconsistent global lock-acquisition order.
    LockOrder,
    /// A `lint:allow(...)` waiver that suppresses nothing.
    StaleWaiver,
}

impl Rule {
    /// Stable machine-readable rule id (also the `lint:allow` name).
    pub fn name(self) -> &'static str {
        match self {
            Rule::NoPanic => "no-panic",
            Rule::NoHashIter => "no-hash-iter",
            Rule::NoInstant => "no-instant",
            Rule::UnsafeForbid => "unsafe-forbid",
            Rule::PanicReach => "panic-reach",
            Rule::DeterminismTaint => "determinism-taint",
            Rule::AtomicOrdering => "atomic-ordering",
            Rule::RelaxedRmw => "relaxed-rmw",
            Rule::LockOrder => "lock-order",
            Rule::StaleWaiver => "stale-waiver",
        }
    }

    /// Rules a `// lint:allow(...)` comment may name. `unsafe-forbid`
    /// and `stale-waiver` are deliberately unwaivable.
    pub fn waivable() -> &'static [&'static str] {
        &[
            "no-panic",
            "no-hash-iter",
            "no-instant",
            "panic-reach",
            "determinism-taint",
            "atomic-ordering",
            "relaxed-rmw",
            "lock-order",
        ]
    }
}

/// Finding severity. Only `Warning` and above gate CI; `Info` findings
/// are advisory and surface in `--json` output for audit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory; never gates.
    Info,
    /// Gates against the baseline.
    Warning,
    /// Gates against the baseline.
    Error,
}

impl Severity {
    /// Stable machine-readable severity name.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One hop of a witness call chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Qualified fn name (`core::eval::Evaluator::run`).
    pub qualified: String,
    /// Workspace-relative file path.
    pub path: String,
    /// 1-based line: the call line inside this frame's fn (or the site
    /// line for the last frame, or the signature line for the first).
    pub line: usize,
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which rule fired.
    pub rule: Rule,
    /// How severe.
    pub severity: Severity,
    /// Workspace-relative file path.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
    /// Witness call chain (empty for file-local rules).
    pub witness: Vec<Frame>,
}

impl Finding {
    /// Whether this finding gates (fails the lint) when not baselined.
    pub fn gating(&self) -> bool {
        self.severity >= Severity::Warning
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}:{}: {}",
            self.severity.name(),
            self.rule.name(),
            self.path,
            self.line,
            self.message
        )?;
        for frame in &self.witness {
            write!(
                f,
                "\n    via {} ({}:{})",
                frame.qualified, frame.path, frame.line
            )?;
        }
        Ok(())
    }
}

/// The loaded workspace: files, item table, call graph.
pub struct Workspace {
    /// Every scanned source file.
    pub files: Vec<SourceFile>,
    /// The workspace fn table.
    pub fns: Vec<parse::FnItem>,
    /// The call graph over `fns`.
    pub graph: graph::CallGraph,
}

impl Workspace {
    /// Builds the item table and call graph from already-loaded files.
    pub fn from_files(files: Vec<SourceFile>) -> Workspace {
        let mut fns = Vec::new();
        for (idx, file) in files.iter().enumerate() {
            fns.extend(parse::parse_items(idx, file));
        }
        let graph = graph::build(&files, &fns);
        Workspace { files, fns, graph }
    }

    /// Loads every Rust source under `root`: `crates/*/{src,tests,
    /// examples,benches}` plus each crate's `build.rs`, and root
    /// `src/`, `tests/`, `examples/`, `benches/`. Skips `target/`,
    /// `vendor/` and the linter's own seeded-violation fixtures under
    /// `tests/fixtures/`.
    pub fn load(root: &Path) -> io::Result<Workspace> {
        let mut files = Vec::new();
        let mut paths = Vec::new();
        let crates_dir = root.join("crates");
        if crates_dir.is_dir() {
            let mut crate_dirs: Vec<_> = fs::read_dir(&crates_dir)?
                .filter_map(Result::ok)
                .map(|e| e.path())
                .filter(|p| p.is_dir())
                .collect();
            crate_dirs.sort();
            for dir in crate_dirs {
                for sub in ["src", "tests", "examples", "benches"] {
                    collect_rust_files(&dir.join(sub), &mut paths)?;
                }
                let build = dir.join("build.rs");
                if build.is_file() {
                    paths.push(build);
                }
            }
        }
        for sub in ["src", "tests", "examples", "benches"] {
            collect_rust_files(&root.join(sub), &mut paths)?;
        }
        paths.sort();
        for path in paths {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            if rel.contains("tests/fixtures/") {
                continue;
            }
            let text = fs::read_to_string(&path)?;
            files.push(SourceFile::new(
                rel.clone(),
                classify_area(&rel),
                crate_of(&rel),
                text,
            ));
        }
        Ok(Workspace::from_files(files))
    }

    /// Runs every pass plus the stale-waiver check; findings are sorted
    /// by `(path, line, rule)` for stable output.
    pub fn analyze(&self) -> Vec<Finding> {
        let ctx = passes::Ctx::new(&self.files, &self.fns, &self.graph);
        let mut findings = passes::local::run(&ctx);
        findings.extend(passes::panic_reach::run(&ctx));
        findings.extend(passes::determinism::run(&ctx));
        findings.extend(passes::atomics::run(&ctx));
        findings.extend(stale_waivers(&ctx));
        findings.sort_by(|a, b| {
            (a.path.as_str(), a.line, a.rule.name()).cmp(&(b.path.as_str(), b.line, b.rule.name()))
        });
        findings.dedup();
        findings
    }
}

/// The stale-waiver check: a waiver naming an unknown rule, or one that
/// suppressed nothing this run, is itself an error so waivers can't rot.
fn stale_waivers(ctx: &passes::Ctx<'_>) -> Vec<Finding> {
    let used = ctx.used_waivers.borrow();
    let mut findings = Vec::new();
    for (file_idx, file) in ctx.files.iter().enumerate() {
        for w in &file.waivers {
            if !Rule::waivable().contains(&w.rule.as_str()) {
                findings.push(Finding {
                    rule: Rule::StaleWaiver,
                    severity: Severity::Error,
                    path: file.path.clone(),
                    line: w.line,
                    message: format!(
                        "`lint:allow({})` names an unknown or unwaivable rule",
                        w.rule
                    ),
                    witness: Vec::new(),
                });
            } else if !used.contains(&(file_idx, w.line, w.rule.clone())) {
                findings.push(Finding {
                    rule: Rule::StaleWaiver,
                    severity: Severity::Error,
                    path: file.path.clone(),
                    line: w.line,
                    message: format!(
                        "`lint:allow({})` no longer suppresses any finding; remove it",
                        w.rule
                    ),
                    witness: Vec::new(),
                });
            }
        }
    }
    findings
}

/// Classifies a workspace-relative path into its rule-scoping area.
pub fn classify_area(rel: &str) -> Area {
    let in_dir = |d: &str| rel.contains(&format!("/{d}/")) || rel.starts_with(&format!("{d}/"));
    if in_dir("tests") {
        Area::Test
    } else if in_dir("examples") {
        Area::Example
    } else if in_dir("benches") {
        Area::Bench
    } else if rel.ends_with("/main.rs") || rel.ends_with("build.rs") || rel.contains("/src/bin/") {
        Area::Binary
    } else {
        Area::Library
    }
}

/// Crate directory name of a workspace-relative path (empty for root
/// `src/`/`tests/`/`examples/` files).
pub fn crate_of(rel: &str) -> String {
    rel.strip_prefix("crates/")
        .and_then(|p| p.split('/').next())
        .unwrap_or("")
        .to_owned()
}

/// Recursively collects `.rs` files under `dir` (sorted for
/// determinism); silently skips missing directories.
fn collect_rust_files(dir: &Path, out: &mut Vec<std::path::PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<_> = fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name == "target" || name == "vendor" {
                continue;
            }
            collect_rust_files(&path, out)?;
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints one file in isolation with the file-local rules only (the
/// interprocedural passes need the whole workspace). Kept as the
/// simple entry point for editor/tooling integration.
pub fn lint_file(rel_path: &str, text: &str) -> Vec<Finding> {
    let file = SourceFile::new(
        rel_path.to_owned(),
        classify_area(rel_path),
        crate_of(rel_path),
        text.to_owned(),
    );
    let files = vec![file];
    let mut fns = Vec::new();
    for (idx, f) in files.iter().enumerate() {
        fns.extend(parse::parse_items(idx, f));
    }
    let graph = graph::build(&files, &fns);
    let ctx = passes::Ctx::new(&files, &fns, &graph);
    let mut findings = passes::local::run(&ctx);
    findings.sort_by(|a, b| (a.line, a.rule.name()).cmp(&(b.line, b.rule.name())));
    findings
}

/// Loads and analyzes the workspace rooted at `root`.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    Ok(Workspace::load(root)?.analyze())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib_file(src: &str) -> String {
        format!("#![forbid(unsafe_code)]\n{src}")
    }

    #[test]
    fn local_rules_fire_per_area() {
        let src = lib_file("pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n");
        let lib = lint_file("crates/core/src/a.rs", &src);
        assert!(lib.iter().any(|f| f.rule == Rule::NoPanic));
        // Same code in a test file or binary: allowed.
        assert!(lint_file("crates/core/tests/a.rs", &src).is_empty());
        assert!(!lint_file("crates/core/src/main.rs", &src)
            .iter()
            .any(|f| f.rule == Rule::NoPanic));
        assert!(lint_file("examples/demo.rs", &src).is_empty());
    }

    #[test]
    fn hash_iteration_is_scoped_to_result_affecting_crates() {
        let src = lib_file(
            "use std::collections::HashMap;\n\
             pub fn f(m: &HashMap<u32, u32>) -> u32 {\n\
                 let mut s = 0;\n\
                 for (_, v) in m.iter() { s += v; }\n\
                 s\n\
             }\n",
        );
        assert!(lint_file("crates/core/src/a.rs", &src)
            .iter()
            .any(|f| f.rule == Rule::NoHashIter));
        assert!(!lint_file("crates/trace/src/a.rs", &src)
            .iter()
            .any(|f| f.rule == Rule::NoHashIter));
    }

    #[test]
    fn panics_doc_waives_the_local_rule() {
        let src = lib_file(
            "/// Get.\n\
             ///\n\
             /// # Panics\n\
             /// When empty.\n\
             pub fn get(x: Option<u32>) -> u32 { x.unwrap() }\n",
        );
        assert!(lint_file("crates/core/src/a.rs", &src).is_empty());
    }

    #[test]
    fn missing_forbid_attr_is_reported() {
        let found = lint_file("crates/core/src/lib.rs", "pub fn f() {}\n");
        assert!(found.iter().any(|f| f.rule == Rule::UnsafeForbid));
    }

    #[test]
    fn analyze_reports_panic_reachability_with_witness_chain() {
        let src = lib_file(
            "pub fn try_bind(x: Option<u32>) -> Result<u32, ()> { Ok(step(x)) }\n\
             fn step(x: Option<u32>) -> u32 { deep(x) }\n\
             fn deep(x: Option<u32>) -> u32 { x.unwrap() }\n",
        );
        let ws = Workspace::from_files(vec![SourceFile::new(
            "crates/core/src/lib.rs".into(),
            Area::Library,
            "core".into(),
            src,
        )]);
        let findings = ws.analyze();
        let hit = findings
            .iter()
            .find(|f| f.rule == Rule::PanicReach && f.severity == Severity::Error)
            .expect("panic-reach finding");
        let chain: Vec<&str> = hit.witness.iter().map(|fr| fr.qualified.as_str()).collect();
        assert_eq!(chain, vec!["core::try_bind", "core::step", "core::deep"]);
    }

    #[test]
    fn analyze_flags_stale_and_unknown_waivers() {
        let src = lib_file(
            "pub fn clean() {} // lint:allow(no-panic)\n\
             pub fn odd() {} // lint:allow(no-such-rule)\n",
        );
        let ws = Workspace::from_files(vec![SourceFile::new(
            "crates/core/src/lib.rs".into(),
            Area::Library,
            "core".into(),
            src,
        )]);
        let findings = ws.analyze();
        let stale: Vec<_> = findings
            .iter()
            .filter(|f| f.rule == Rule::StaleWaiver)
            .collect();
        assert_eq!(stale.len(), 2, "{stale:?}");
    }

    #[test]
    fn used_waiver_is_not_stale() {
        let src =
            lib_file("pub fn f(x: Option<u32>) -> u32 { x.unwrap() } // lint:allow(no-panic)\n");
        let ws = Workspace::from_files(vec![SourceFile::new(
            "crates/core/src/lib.rs".into(),
            Area::Library,
            "core".into(),
            src,
        )]);
        let findings = ws.analyze();
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn workspace_lint_is_clean_on_this_repo() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let findings = lint_workspace(&root).expect("lint");
        let gating: Vec<_> = findings.iter().filter(|f| f.gating()).collect();
        assert!(
            gating.is_empty(),
            "workspace has gating lint findings:\n{}",
            gating
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    #[test]
    fn display_format_is_stable() {
        let f = Finding {
            rule: Rule::PanicReach,
            severity: Severity::Error,
            path: "crates/core/src/a.rs".into(),
            line: 7,
            message: "boom".into(),
            witness: vec![Frame {
                qualified: "core::a::f".into(),
                path: "crates/core/src/a.rs".into(),
                line: 3,
            }],
        };
        assert_eq!(
            f.to_string(),
            "error[panic-reach] crates/core/src/a.rs:7: boom\n    via core::a::f (crates/core/src/a.rs:3)"
        );
    }
}
