//! Ablation studies over the design choices the paper calls out.
//!
//! * `gamma` — the transfer-penalty coefficient (Section 3.1.2 fixes
//!   `γ = 1.1`, "just a slightly larger priority" than `α = β = 1`);
//! * `lpr` — stretching the load-profile latency (Section 3.1.3);
//! * `reverse` — binding from the outputs (Section 3.1.4);
//! * `quality` — `Q_U`-then-`Q_M` versus `Q_M`-only in B-ITER
//!   (Section 3.2, Figure 6 discussion);
//! * `pairs` — boundary perturbations on singles / adjacent pairs / all
//!   pairs (Section 3.2);
//! * `optimal` — heuristic versus exhaustive binding on small random
//!   DFGs (the paper's optimality spot-check).

use vliw_binding::{exact, Binder, BinderConfig, PairMode, QualityKind};
use vliw_datapath::Machine;
use vliw_kernels::Kernel;

/// Kernels × datapaths used by the ablations: a representative slice of
/// Table 1 (kept small enough that every ablation variant reruns it).
pub fn ablation_workloads() -> Vec<(Kernel, Machine)> {
    [
        (Kernel::DctDif, "[2,1|1,1]"),
        (Kernel::DctDit, "[2,1|2,1]"),
        (Kernel::Fft, "[1,1|1,1|1,1]"),
        (Kernel::Ewf, "[1,1|1,1]"),
        (Kernel::Arf, "[1,1|1,1]"),
    ]
    .into_iter()
    .map(|(k, d)| (k, Machine::parse(d).expect("datapath parses"))) // lint:allow(no-panic)
    .collect()
}

/// Sum of B-INIT latencies over the ablation workloads for one `γ`.
pub fn total_init_latency_for_gamma(gamma: f64) -> u32 {
    let config = BinderConfig {
        gamma,
        ..BinderConfig::default()
    };
    ablation_workloads()
        .iter()
        .map(|(kernel, machine)| {
            Binder::with_config(machine, config.clone())
                .bind_initial(&kernel.build())
                .latency()
        })
        .sum()
}

/// Sum of B-INIT latencies with a given driver configuration.
pub fn total_init_latency(config: &BinderConfig) -> u32 {
    ablation_workloads()
        .iter()
        .map(|(kernel, machine)| {
            Binder::with_config(machine, config.clone())
                .bind_initial(&kernel.build())
                .latency()
        })
        .sum()
}

/// Sum of B-ITER latencies with a given configuration, optionally
/// restricting the improvement to a single quality vector.
pub fn total_iter_latency(config: &BinderConfig, quality: Option<QualityKind>) -> u32 {
    ablation_workloads()
        .iter()
        .map(|(kernel, machine)| {
            let dfg = kernel.build();
            let binder = Binder::with_config(machine, config.clone());
            let start = binder.bind_initial(&dfg);
            let improved = match quality {
                None => binder.improve(&dfg, start),
                Some(kind) => vliw_binding::iter::improve_with(&dfg, machine, config, start, kind),
            };
            improved.latency()
        })
        .sum()
}

/// Heuristic-vs-exact comparison on small random DFGs: returns
/// `(instances, exact_latency_hits, total_heuristic_excess_cycles)`.
pub fn optimality_check(instances: usize) -> (usize, usize, u32) {
    use vliw_kernels::random::{generate, RandomDfgConfig};
    let machine = Machine::parse("[1,1|1,1]").expect("machine"); // lint:allow(no-panic)
    let mut hits = 0;
    let mut excess = 0;
    let mut done = 0;
    for seed in 0..instances as u64 * 4 {
        if done == instances {
            break;
        }
        let dfg = generate(
            seed,
            RandomDfgConfig {
                ops: 10,
                layers: 4,
                ..RandomDfgConfig::default()
            },
        );
        let Some(best) = exact::bind_exhaustive(&dfg, &machine, 1 << 22) else {
            continue;
        };
        let heuristic = Binder::new(&machine).bind(&dfg);
        done += 1;
        if heuristic.latency() == best.latency() {
            hits += 1;
        }
        excess += heuristic.latency() - best.latency();
    }
    (done, hits, excess)
}

/// Cost-model comparison: total B-INIT and B-ITER latency per
/// [`vliw_binding::CostModel`] variant.
pub fn cost_model_latencies() -> Vec<(vliw_binding::CostModel, u32, u32)> {
    use vliw_binding::CostModel;
    [
        CostModel::BinaryCycles,
        CostModel::ExcessMass,
        CostModel::TotalExcess,
        CostModel::Hybrid,
    ]
    .into_iter()
    .map(|model| {
        let config = BinderConfig {
            cost_model: model,
            ..BinderConfig::default()
        };
        (
            model,
            total_init_latency(&config),
            total_iter_latency(&config, None),
        )
    })
    .collect()
}

/// Scheduler-priority comparison: total B-INIT latency when the
/// evaluating list scheduler uses each ready-list priority.
pub fn scheduler_priority_latencies() -> Vec<(vliw_sched::SchedulePriority, u32)> {
    use vliw_sched::{BoundDfg, ListScheduler, SchedulePriority};
    [
        SchedulePriority::AlapMobility,
        SchedulePriority::Height,
        SchedulePriority::Mobility,
    ]
    .into_iter()
    .map(|priority| {
        let total = ablation_workloads()
            .iter()
            .map(|(kernel, machine)| {
                let dfg = kernel.build();
                let binding = Binder::new(machine).bind_initial(&dfg).binding;
                let bound = BoundDfg::new(&dfg, machine, &binding);
                ListScheduler::with_priority(machine, priority)
                    .schedule(&bound)
                    .latency()
            })
            .sum();
        (priority, total)
    })
    .collect()
}

/// `PairMode` comparison: total B-ITER latency per mode.
pub fn pair_mode_latencies() -> Vec<(PairMode, u32)> {
    [PairMode::None, PairMode::Adjacent, PairMode::All]
        .into_iter()
        .map(|mode| {
            let config = BinderConfig {
                pair_mode: mode,
                ..BinderConfig::default()
            };
            (mode, total_iter_latency(&config, None))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_build() {
        assert_eq!(ablation_workloads().len(), 5);
    }

    #[test]
    fn optimality_check_runs() {
        let (done, hits, _excess) = optimality_check(3);
        assert_eq!(done, 3);
        assert!(hits <= 3);
    }
}
