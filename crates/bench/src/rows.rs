//! The experiment matrix of the paper's Tables 1 and 2, with the
//! published `L/M` values embedded for side-by-side comparison.

use vliw_kernels::Kernel;

/// `(L, M)` triple-set of one published row: PCC, B-INIT, B-ITER.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PaperRow {
    /// PCC schedule latency / transfers.
    pub pcc: (u32, usize),
    /// B-INIT schedule latency / transfers.
    pub init: (u32, usize),
    /// B-ITER schedule latency / transfers.
    pub iter: (u32, usize),
}

/// One row of Table 1: a kernel on a datapath (`N_B = 2`,
/// `lat(move) = 1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table1Row {
    /// The benchmark kernel.
    pub kernel: Kernel,
    /// Datapath in the paper's `[alus,muls|…]` notation.
    pub datapath: &'static str,
    /// The values the paper reports for this row.
    pub paper: PaperRow,
}

const fn row(kernel: Kernel, datapath: &'static str, paper: PaperRow) -> Table1Row {
    Table1Row {
        kernel,
        datapath,
        paper,
    }
}

const fn p(pcc: (u32, usize), init: (u32, usize), iter: (u32, usize)) -> PaperRow {
    PaperRow { pcc, init, iter }
}

/// All 33 rows of the paper's Table 1.
pub const TABLE1: &[Table1Row] = &[
    // DCT-DIF: N_V = 41, N_CC = 2, L_CP = 7.
    row(Kernel::DctDif, "[1,1|1,1]", p((16, 15), (15, 2), (15, 2))),
    row(Kernel::DctDif, "[2,1|2,1]", p((11, 0), (11, 10), (10, 6))),
    row(Kernel::DctDif, "[2,1|1,1]", p((11, 12), (11, 6), (10, 6))),
    row(
        Kernel::DctDif,
        "[1,1|1,1|1,1]",
        p((12, 8), (12, 9), (11, 8)),
    ),
    // DCT-LEE: N_V = 49, N_CC = 2, L_CP = 9.
    row(Kernel::DctLee, "[1,1|1,1]", p((16, 11), (16, 7), (16, 6))),
    row(Kernel::DctLee, "[2,1|2,1]", p((12, 8), (12, 2), (12, 2))),
    row(Kernel::DctLee, "[2,1|1,1]", p((13, 9), (13, 5), (13, 3))),
    row(Kernel::DctLee, "[2,2|2,1]", p((11, 0), (10, 2), (10, 1))),
    row(
        Kernel::DctLee,
        "[1,1|1,1|1,1]",
        p((14, 8), (12, 14), (12, 10)),
    ),
    // DCT-DIT: N_V = 48, N_CC = 1, L_CP = 7.
    row(Kernel::DctDit, "[1,1|1,1]", p((19, 18), (19, 7), (19, 7))),
    row(Kernel::DctDit, "[2,1|2,1]", p((13, 18), (13, 7), (12, 7))),
    row(
        Kernel::DctDit,
        "[1,1|1,1|1,1]",
        p((15, 18), (15, 19), (13, 15)),
    ),
    row(
        Kernel::DctDit,
        "[2,1|2,1|1,1]",
        p((12, 6), (11, 13), (11, 9)),
    ),
    row(
        Kernel::DctDit,
        "[3,1|2,2|1,3]",
        p((11, 12), (11, 12), (9, 9)),
    ),
    row(
        Kernel::DctDit,
        "[1,1|1,1|1,1|1,1]",
        p((14, 17), (13, 17), (11, 14)),
    ),
    // DCT-DIT-2: N_V = 96, N_CC = 2, L_CP = 7.
    row(
        Kernel::DctDit2,
        "[1,1|1,1]",
        p((37, 32), (37, 14), (37, 13)),
    ),
    row(
        Kernel::DctDit2,
        "[2,1|2,1]",
        p((23, 28), (23, 17), (22, 23)),
    ),
    row(
        Kernel::DctDit2,
        "[1,1|1,1|1,1]",
        p((25, 28), (27, 15), (25, 13)),
    ),
    row(
        Kernel::DctDit2,
        "[3,1|2,2|1,3]",
        p((17, 18), (17, 20), (14, 20)),
    ),
    row(
        Kernel::DctDit2,
        "[1,1|1,1|1,1|1,1]",
        p((22, 30), (20, 21), (19, 18)),
    ),
    // FFT: N_V = 38, N_CC = 1, L_CP = 6.
    row(Kernel::Fft, "[1,1|1,1]", p((14, 6), (14, 4), (14, 4))),
    row(Kernel::Fft, "[2,1|2,1]", p((10, 6), (10, 4), (10, 4))),
    row(Kernel::Fft, "[1,1|1,1|1,1]", p((12, 8), (10, 12), (10, 9))),
    row(Kernel::Fft, "[2,1|2,1|1,2]", p((10, 4), (8, 10), (8, 5))),
    row(Kernel::Fft, "[3,2|3,1|1,3]", p((7, 4), (7, 6), (6, 5))),
    row(
        Kernel::Fft,
        "[1,1|1,1|1,1|1,1]",
        p((11, 10), (10, 12), (9, 6)),
    ),
    // EWF: N_V = 34, N_CC = 1, L_CP = 14.
    row(Kernel::Ewf, "[1,1|1,1]", p((18, 5), (17, 3), (17, 3))),
    row(Kernel::Ewf, "[2,1|2,1]", p((15, 2), (16, 3), (15, 1))),
    row(Kernel::Ewf, "[2,1|1,1]", p((15, 2), (16, 5), (15, 3))),
    row(Kernel::Ewf, "[1,1|1,1|1,1]", p((18, 5), (17, 7), (16, 5))),
    row(Kernel::Ewf, "[2,2|2,1|1,1]", p((15, 2), (15, 5), (14, 5))),
    // ARF: N_V = 28, N_CC = 1, L_CP = 8.
    row(Kernel::Arf, "[1,1|1,1]", p((13, 5), (11, 4), (11, 4))),
    row(Kernel::Arf, "[1,2|1,2]", p((10, 5), (10, 5), (10, 4))),
];

/// One row of Table 2: the FFT kernel on `[2,2|2,1|2,2|3,1|1,1]` with
/// varying bus parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table2Row {
    /// Number of buses `N_B`.
    pub buses: u32,
    /// Transfer latency `lat(move)`.
    pub move_latency: u32,
    /// The values the paper reports for this row.
    pub paper: PaperRow,
}

/// The datapath used throughout Table 2.
pub const TABLE2_DATAPATH: &str = "[2,2|2,1|2,2|3,1|1,1]";

/// All four rows of the paper's Table 2.
pub const TABLE2: &[Table2Row] = &[
    Table2Row {
        buses: 1,
        move_latency: 1,
        paper: p((9, 5), (8, 4), (7, 4)),
    },
    Table2Row {
        buses: 2,
        move_latency: 1,
        paper: p((8, 4), (8, 4), (7, 5)),
    },
    Table2Row {
        buses: 1,
        move_latency: 2,
        paper: p((10, 5), (8, 4), (8, 2)),
    },
    Table2Row {
        buses: 2,
        move_latency: 2,
        paper: p((8, 4), (8, 4), (7, 4)),
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_all_33_rows() {
        assert_eq!(TABLE1.len(), 33);
    }

    #[test]
    fn table1_datapaths_parse() {
        for row in TABLE1 {
            assert!(
                vliw_datapath::Machine::parse(row.datapath).is_ok(),
                "{}",
                row.datapath
            );
        }
    }

    #[test]
    fn table2_has_four_rows_and_parses() {
        assert_eq!(TABLE2.len(), 4);
        assert!(vliw_datapath::Machine::parse(TABLE2_DATAPATH).is_ok());
    }

    #[test]
    fn paper_improvements_match_reported_percentages() {
        // Spot-check the paper's headline claims with its own ΔL%
        // convention, (L_PCC − L_X) / L_X: up to 25% for B-INIT and up to
        // 29% for B-ITER (both maxima occur in Table 2).
        let gain = |pcc: u32, x: u32| (pcc as f64 - x as f64) / x as f64;
        let max_init = TABLE1
            .iter()
            .map(|r| gain(r.paper.pcc.0, r.paper.init.0))
            .chain(TABLE2.iter().map(|r| gain(r.paper.pcc.0, r.paper.init.0)))
            .fold(0.0f64, f64::max);
        assert!((max_init - 0.25).abs() < 0.01, "max B-INIT gain {max_init}");
        let max_iter = TABLE1
            .iter()
            .map(|r| gain(r.paper.pcc.0, r.paper.iter.0))
            .chain(TABLE2.iter().map(|r| gain(r.paper.pcc.0, r.paper.iter.0)))
            .fold(0.0f64, f64::max);
        assert!((max_iter - 0.29).abs() < 0.01, "max B-ITER gain {max_iter}");
    }

    #[test]
    fn every_kernel_appears_in_table1() {
        for kernel in Kernel::ALL {
            assert!(TABLE1.iter().any(|r| r.kernel == kernel), "{kernel}");
        }
    }
}
