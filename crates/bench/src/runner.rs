//! Shared row runner: binds one kernel on one machine with all three
//! algorithms, timing each.

use serde::Serialize;
use std::time::Instant;
use vliw_binding::{Binder, BinderConfig};
use vliw_datapath::Machine;
use vliw_dfg::Dfg;
use vliw_pcc::Pcc;

/// Wall-clock timings of one row, in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct RowTimings {
    /// PCC total time.
    pub pcc_ms: f64,
    /// B-INIT sweep time.
    pub init_ms: f64,
    /// B-ITER time (on top of B-INIT).
    pub iter_ms: f64,
}

/// Measured `L/M` values of one row. The transfer counts are `usize`
/// exactly as the algorithms report them ([`vliw_binding::BindingResult::moves`]
/// returns `usize`; an earlier version narrowed it with `as u32`, which
/// would silently truncate on a pathological row).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct MeasuredRow {
    /// PCC latency / transfers.
    pub pcc: (u32, usize),
    /// B-INIT latency / transfers.
    pub init: (u32, usize),
    /// B-ITER latency / transfers.
    pub iter: (u32, usize),
    /// Wall-clock timings.
    pub timings: RowTimings,
    /// Fraction of B-ITER candidate evaluations served from the
    /// binding-evaluation memo (`0.0` when the cache is disabled).
    pub iter_hit_rate: f64,
}

impl MeasuredRow {
    /// Latency improvement of B-INIT over PCC in percent (negative when
    /// B-INIT is worse). The paper's `ΔL%` columns are relative to the
    /// *new* algorithm's latency — e.g. PCC 16 vs B-INIT 15 prints 6.7%
    /// (= 1/15) and the headline "up to 25%" is Table 2's 10-vs-8 row —
    /// so the same convention is used here.
    pub fn init_gain_pct(&self) -> f64 {
        100.0 * (self.pcc.0 as f64 - self.init.0 as f64) / self.init.0 as f64
    }

    /// Latency improvement of B-ITER over PCC in percent (same
    /// convention as [`MeasuredRow::init_gain_pct`]).
    pub fn iter_gain_pct(&self) -> f64 {
        100.0 * (self.pcc.0 as f64 - self.iter.0 as f64) / self.iter.0 as f64
    }
}

/// Runs PCC, B-INIT and B-ITER on one (kernel, machine) pair.
pub fn run_row(dfg: &Dfg, machine: &Machine, config: &BinderConfig) -> MeasuredRow {
    let t0 = Instant::now();
    let pcc = Pcc::new(machine).bind(dfg);
    let pcc_ms = t0.elapsed().as_secs_f64() * 1e3;

    let binder = Binder::with_config(machine, config.clone());
    let t1 = Instant::now();
    let init = binder.bind_initial(dfg);
    let init_ms = t1.elapsed().as_secs_f64() * 1e3;

    let t2 = Instant::now();
    let (iter, stats) = binder.bind_with_stats(dfg);
    let iter_ms = t2.elapsed().as_secs_f64() * 1e3;

    MeasuredRow {
        pcc: (pcc.latency(), pcc.moves()),
        init: (init.latency(), init.moves()),
        iter: (iter.latency(), iter.moves()),
        timings: RowTimings {
            pcc_ms,
            init_ms,
            iter_ms,
        },
        iter_hit_rate: stats.hit_rate(),
    }
}

/// Formats one `(L, M)` pair the way the paper prints it.
pub fn lm(pair: (u32, usize)) -> String {
    format!("{}/{}", pair.0, pair.1)
}

/// Applies the common CLI overrides of the table binaries to a config:
/// `--pairs none|adjacent|all`, `--starts N`, `--threads N` (0 = one
/// evaluation worker per CPU) and `--no-eval-cache`.
pub fn config_from_args(mut config: BinderConfig) -> BinderConfig {
    use vliw_binding::PairMode;
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--no-eval-cache") {
        config.eval_cache = false;
    }
    for window in args.windows(2) {
        match (window[0].as_str(), window[1].as_str()) {
            ("--pairs", "none") => config.pair_mode = PairMode::None,
            ("--pairs", "adjacent") => config.pair_mode = PairMode::Adjacent,
            ("--pairs", "all") => config.pair_mode = PairMode::All,
            ("--starts", n) => config.improve_starts = n.parse().expect("--starts takes a number"),
            ("--threads", n) => config.threads = n.parse().expect("--threads takes a number"),
            _ => {}
        }
    }
    config
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_kernels::Kernel;

    #[test]
    fn runner_produces_consistent_row() {
        let dfg = Kernel::Arf.build();
        let machine = Machine::parse("[1,1|1,1]").expect("machine");
        let row = run_row(&dfg, &machine, &BinderConfig::default());
        // B-ITER never loses to B-INIT on (L, M).
        assert!(row.iter <= row.init);
        // Nobody beats the critical path.
        assert!(row.pcc.0 >= 8 && row.init.0 >= 8 && row.iter.0 >= 8);
        assert!(row.timings.pcc_ms >= 0.0);
    }

    #[test]
    fn gain_percentages() {
        let row = MeasuredRow {
            pcc: (14, 6),
            init: (12, 4),
            iter: (10, 4),
            timings: RowTimings {
                pcc_ms: 1.0,
                init_ms: 1.0,
                iter_ms: 1.0,
            },
            iter_hit_rate: 0.0,
        };
        assert!((row.init_gain_pct() - 100.0 * 2.0 / 12.0).abs() < 0.01);
        assert!((row.iter_gain_pct() - 40.0).abs() < 0.01);
    }

    #[test]
    fn lm_formats_like_the_paper() {
        assert_eq!(lm((16, 15)), "16/15");
    }
}
