//! Shared row runner: binds one kernel on one machine with all three
//! algorithms, timing each.

use serde::Serialize;
use std::time::Instant;
use vliw_binding::{Binder, BinderConfig, PhaseStats};
use vliw_datapath::Machine;
use vliw_dfg::Dfg;
use vliw_kernels::Kernel;
use vliw_pcc::Pcc;

/// Wall-clock timings of one row, in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct RowTimings {
    /// PCC total time.
    pub pcc_ms: f64,
    /// B-INIT sweep time.
    pub init_ms: f64,
    /// B-ITER time (on top of B-INIT).
    pub iter_ms: f64,
}

/// Measured `L/M` values of one row. The transfer counts are `usize`
/// exactly as the algorithms report them ([`vliw_binding::BindingResult::moves`]
/// returns `usize`; an earlier version narrowed it with `as u32`, which
/// would silently truncate on a pathological row).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MeasuredRow {
    /// PCC latency / transfers.
    pub pcc: (u32, usize),
    /// B-INIT latency / transfers.
    pub init: (u32, usize),
    /// B-ITER latency / transfers.
    pub iter: (u32, usize),
    /// Wall-clock timings.
    pub timings: RowTimings,
    /// Fraction of B-ITER candidate evaluations served from the
    /// binding-evaluation memo (`0.0` when the cache is disabled).
    pub iter_hit_rate: f64,
    /// Per-phase breakdown of the B-ITER run, folded from its trace
    /// events. Empty unless [`BinderConfig::trace`] is on (e.g. via the
    /// binaries' `--trace-out`).
    pub phases: PhaseStats,
    /// Certified latency lower bound of the instance
    /// ([`vliw_binding::BindStats::lower_bound`]).
    pub lower_bound: u32,
    /// Relative gap of the B-ITER latency to that bound
    /// ([`vliw_binding::BindStats::optimality_gap`]).
    pub optimality_gap: f64,
    /// Whether the B-ITER result is provably lexicographically optimal
    /// ([`vliw_binding::BindStats::proved_optimal`]).
    pub proved_optimal: bool,
}

impl MeasuredRow {
    /// Latency improvement of B-INIT over PCC in percent (negative when
    /// B-INIT is worse). The paper's `ΔL%` columns are relative to the
    /// *new* algorithm's latency — e.g. PCC 16 vs B-INIT 15 prints 6.7%
    /// (= 1/15) and the headline "up to 25%" is Table 2's 10-vs-8 row —
    /// so the same convention is used here.
    pub fn init_gain_pct(&self) -> f64 {
        100.0 * (self.pcc.0 as f64 - self.init.0 as f64) / self.init.0 as f64
    }

    /// Latency improvement of B-ITER over PCC in percent (same
    /// convention as [`MeasuredRow::init_gain_pct`]).
    pub fn iter_gain_pct(&self) -> f64 {
        100.0 * (self.pcc.0 as f64 - self.iter.0 as f64) / self.iter.0 as f64
    }
}

/// Runs PCC, B-INIT and B-ITER on one (kernel, machine) pair.
pub fn run_row(dfg: &Dfg, machine: &Machine, config: &BinderConfig) -> MeasuredRow {
    let t0 = Instant::now();
    let pcc = Pcc::new(machine).bind(dfg);
    let pcc_ms = t0.elapsed().as_secs_f64() * 1e3;

    let binder = Binder::with_config(machine, config.clone());
    let t1 = Instant::now();
    let init = binder.bind_initial(dfg);
    let init_ms = t1.elapsed().as_secs_f64() * 1e3;

    let t2 = Instant::now();
    let (iter, stats) = binder.bind_with_stats(dfg);
    let iter_ms = t2.elapsed().as_secs_f64() * 1e3;

    MeasuredRow {
        pcc: (pcc.latency(), pcc.moves()),
        init: (init.latency(), init.moves()),
        iter: (iter.latency(), iter.moves()),
        timings: RowTimings {
            pcc_ms,
            init_ms,
            iter_ms,
        },
        iter_hit_rate: stats.hit_rate(),
        phases: stats.phases,
        lower_bound: stats.lower_bound,
        optimality_gap: stats.optimality_gap,
        proved_optimal: stats.proved_optimal,
    }
}

/// One row of the machine-readable perf trajectory (`BENCH_table1.json`
/// / `BENCH_table2.json`): the B-ITER result and per-phase timings of
/// one kernel × datapath point.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TrajectoryRow {
    /// Kernel name as printed in the paper's tables.
    pub kernel: String,
    /// Datapath in `[alus,muls|…]` notation (Table 2 rows append the
    /// bus configuration).
    pub datapath: String,
    /// B-ITER schedule latency `L`.
    pub latency: u32,
    /// B-ITER transfer count `N_MV`.
    pub moves: usize,
    /// Wall-clock of the traced B-ITER bind, in milliseconds — the
    /// median over `--repeat` runs (a single run is its own median).
    pub wall_ms: f64,
    /// Fastest wall-clock over the `--repeat` runs (equals `wall_ms`
    /// for a single run).
    pub wall_min_ms: f64,
    /// Slowest wall-clock over the `--repeat` runs.
    pub wall_max_ms: f64,
    /// Per-phase elapsed times and counters of that bind.
    pub phases: PhaseStats,
    /// Certified latency lower bound of the instance.
    pub lower_bound: u32,
    /// Relative gap of `latency` to `lower_bound`, `(L − LB) / LB`.
    pub optimality_gap: f64,
    /// Whether `(latency, moves)` provably equals the certified optimum.
    pub proved_optimal: bool,
}

/// Provenance block stamped into every perf-trajectory envelope, so a
/// committed baseline and a fresh candidate can be told apart by more
/// than their mtime. Older envelopes without a `meta` block still parse
/// (`vliw bench-diff` reports them as an unknown baseline).
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct RunMeta {
    /// `git rev-parse HEAD` of the working tree, `"unknown"` outside a
    /// repository.
    pub git_rev: String,
    /// Configured evaluation thread count (0 = one worker per CPU).
    pub threads: usize,
    /// UTC wall-clock of the run in ISO-8601 (`2026-08-08T12:34:56Z`).
    pub timestamp: String,
    /// CPUs available to the benchmarking host.
    pub cpus: usize,
}

impl RunMeta {
    /// Captures the provenance of the current process.
    pub fn capture(threads: usize) -> Self {
        RunMeta {
            git_rev: git_rev(),
            threads,
            timestamp: iso8601_utc_now(),
            cpus: std::thread::available_parallelism().map_or(1, |n| n.get()),
        }
    }
}

/// Best-effort `git rev-parse HEAD`, `"unknown"` when git or the
/// repository is unavailable.
fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_owned())
}

/// The current UTC time in ISO-8601, derived from the system clock
/// without a date-time dependency.
pub fn iso8601_utc_now() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    iso8601_from_epoch(secs)
}

/// Formats seconds since the Unix epoch as `YYYY-MM-DDThh:mm:ssZ`,
/// using the standard civil-from-days calendar conversion.
fn iso8601_from_epoch(secs: u64) -> String {
    let days = (secs / 86_400) as i64;
    let rem = secs % 86_400;
    let (h, m, s) = (rem / 3600, (rem % 3600) / 60, rem % 60);
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let mo = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = yoe + era * 400 + i64::from(mo <= 2);
    format!("{y:04}-{mo:02}-{d:02}T{h:02}:{m:02}:{s:02}Z")
}

/// The distinct datapaths of the paper's Table 1, in first-use order.
pub fn table1_datapaths() -> Vec<&'static str> {
    let mut out = Vec::new();
    for row in crate::TABLE1 {
        if !out.contains(&row.datapath) {
            out.push(row.datapath);
        }
    }
    out
}

/// Runs one traced B-ITER bind and folds it into a [`TrajectoryRow`].
/// Tracing is forced on so the phase breakdown is populated; results
/// are bit-identical to an untraced bind (tracing only observes the
/// search).
pub fn trajectory_row(
    kernel: &str,
    datapath: &str,
    dfg: &Dfg,
    machine: &Machine,
    config: &BinderConfig,
) -> TrajectoryRow {
    trajectory_row_repeated(kernel, datapath, dfg, machine, config, 1)
}

/// [`trajectory_row`] measured `repeat` times: `wall_ms` is the median
/// wall-clock over the runs, `wall_min_ms`/`wall_max_ms` record the
/// spread. The binder is deterministic, so quality and phase stats are
/// taken from the last run.
pub fn trajectory_row_repeated(
    kernel: &str,
    datapath: &str,
    dfg: &Dfg,
    machine: &Machine,
    config: &BinderConfig,
    repeat: usize,
) -> TrajectoryRow {
    let repeat = repeat.max(1);
    let traced = BinderConfig {
        trace: true,
        ..config.clone()
    };
    let binder = Binder::with_config(machine, traced);
    let mut walls = Vec::with_capacity(repeat);
    let mut measured = None;
    for _ in 0..repeat {
        let t = Instant::now();
        let out = binder.bind_with_stats(dfg);
        walls.push(t.elapsed().as_secs_f64() * 1e3);
        measured = Some(out);
    }
    let (result, stats) = measured.expect("repeat >= 1"); // lint:allow(no-panic)
    walls.sort_by(f64::total_cmp);
    TrajectoryRow {
        kernel: kernel.to_owned(),
        datapath: datapath.to_owned(),
        latency: result.latency(),
        moves: result.moves(),
        wall_ms: walls[walls.len() / 2],
        wall_min_ms: walls[0],
        wall_max_ms: walls[walls.len() - 1],
        phases: stats.phases,
        lower_bound: stats.lower_bound,
        optimality_gap: stats.optimality_gap,
        proved_optimal: stats.proved_optimal,
    }
}

/// The full Table-1 perf-trajectory matrix: every kernel on every
/// distinct Table-1 datapath (a superset of the paper's 33 published
/// rows), each bound `repeat` times with tracing on.
pub fn table1_trajectory(config: &BinderConfig, repeat: usize) -> Vec<TrajectoryRow> {
    let datapaths = table1_datapaths();
    let mut rows = Vec::with_capacity(Kernel::ALL.len() * datapaths.len());
    for kernel in Kernel::ALL {
        let dfg = kernel.build();
        for datapath in &datapaths {
            let machine = Machine::parse(datapath).expect("datapath parses"); // lint:allow(no-panic)
            rows.push(trajectory_row_repeated(
                kernel.name(),
                datapath,
                &dfg,
                &machine,
                config,
                repeat,
            ));
        }
    }
    rows
}

/// Serializes a trajectory file: a versioned envelope around the rows,
/// stamped with run provenance, so downstream tooling can detect schema
/// changes and tell baselines apart.
pub fn trajectory_json(table: &str, rows: &[TrajectoryRow], meta: &RunMeta) -> String {
    let mut text = serde_json::to_string_pretty(&serde_json::json!({
        "schema": "vliw-perf-trajectory-v1",
        "table": table,
        "meta": meta,
        "rows": rows,
    }))
    .expect("serializable"); // lint:allow(no-panic)
    text.push('\n');
    text
}

/// Formats one `(L, M)` pair the way the paper prints it.
pub fn lm(pair: (u32, usize)) -> String {
    format!("{}/{}", pair.0, pair.1)
}

/// Applies the common CLI overrides of the table binaries to a config:
/// `--pairs none|adjacent|all`, `--starts N`, `--threads N` (0 = one
/// evaluation worker per CPU), `--no-eval-cache`, `--no-screen`,
/// `--no-arena`, `--deadline-ms N`,
/// `--max-rounds N` and `--verify` / `--no-verify`. Flags the runner
/// does not know (each binary has its own, e.g. `--json FILE`) pass
/// through untouched.
///
/// # Errors
///
/// A one-line message when a known flag carries a bad or missing value.
pub fn try_config_from_args<I>(mut config: BinderConfig, args: I) -> Result<BinderConfig, String>
where
    I: IntoIterator<Item = String>,
{
    use vliw_binding::PairMode;
    let args: Vec<String> = args.into_iter().collect();
    let value = |i: usize, flag: &str| -> Result<&str, String> {
        args.get(i + 1)
            .map(String::as_str)
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    fn number<T: std::str::FromStr>(text: &str, flag: &str) -> Result<T, String> {
        text.parse()
            .map_err(|_| format!("{flag} takes a number, got {text:?}"))
    }
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--no-eval-cache" => config.eval_cache = false,
            "--no-screen" => config.screen = false,
            "--no-arena" => config.arena = false,
            "--verify" => config.verify = true,
            "--no-verify" => config.verify = false,
            "--pairs" => {
                config.pair_mode = match value(i, "--pairs")? {
                    "none" => PairMode::None,
                    "adjacent" => PairMode::Adjacent,
                    "all" => PairMode::All,
                    other => return Err(format!("--pairs takes none|adjacent|all, got {other:?}")),
                };
                i += 1;
            }
            "--starts" => {
                config.improve_starts = number(value(i, "--starts")?, "--starts")?;
                i += 1;
            }
            "--threads" => {
                config.threads = number(value(i, "--threads")?, "--threads")?;
                i += 1;
            }
            "--deadline-ms" => {
                config.deadline_ms = Some(number(value(i, "--deadline-ms")?, "--deadline-ms")?);
                i += 1;
            }
            "--max-rounds" => {
                config.max_iter_rounds = Some(number(value(i, "--max-rounds")?, "--max-rounds")?);
                i += 1;
            }
            _ => {}
        }
        i += 1;
    }
    Ok(config)
}

/// [`try_config_from_args`] over the process arguments, printing a
/// one-line error and exiting with status 2 on a bad flag.
pub fn config_from_args(config: BinderConfig) -> BinderConfig {
    match try_config_from_args(config, std::env::args().skip(1)) {
        Ok(config) => config,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    }
}

/// Pre-flight check that an output path is writable (creating it if
/// absent), printing a one-line error and exiting with status 2 when it
/// is not — so a long benchmark run fails before the work, not after.
pub fn ensure_writable_or_exit(path: &str) {
    let probe = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path);
    if let Err(e) = probe {
        eprintln!("error: cannot write {path}: {e}");
        std::process::exit(2);
    }
}

/// Writes an output file atomically — the contents land in a temporary
/// sibling first and are renamed into place, so a crash or `ENOSPC`
/// mid-write can never leave a truncated `BENCH_*.json` that downstream
/// trajectory tooling would misparse as a regression. Prints a one-line
/// error and exits with status 2 on failure.
pub fn write_or_exit(path: &str, contents: &str) {
    if let Err(e) = write_atomically(path, contents) {
        eprintln!("error: cannot write {path}: {e}");
        std::process::exit(2);
    }
}

/// Temp-file-plus-rename write; the temp name is derived from the target
/// so concurrent writers of *different* outputs never collide.
fn write_atomically(path: &str, contents: &str) -> std::io::Result<()> {
    let tmp = format!("{path}.tmp");
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path).inspect_err(|_| {
        // Leave no orphaned temp file behind a failed rename.
        let _ = std::fs::remove_file(&tmp);
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_kernels::Kernel;

    #[test]
    fn atomic_write_leaves_no_temp_file() {
        let path = std::env::temp_dir().join("vliw_bench_atomic_write_test.json");
        let path = path.to_str().expect("utf8 path");
        write_atomically(path, "{\"ok\":true}\n").expect("writes");
        assert_eq!(
            std::fs::read_to_string(path).expect("reads"),
            "{\"ok\":true}\n"
        );
        assert!(!std::path::Path::new(&format!("{path}.tmp")).exists());
        // Overwrite goes through the same rename, replacing the old
        // contents wholesale.
        write_atomically(path, "{}\n").expect("overwrites");
        assert_eq!(std::fs::read_to_string(path).expect("reads"), "{}\n");
        let _ = std::fs::remove_file(path);
        // A doomed target directory fails cleanly instead of exiting.
        assert!(write_atomically("/nonexistent-dir/out.json", "x").is_err());
    }

    #[test]
    fn runner_produces_consistent_row() {
        let dfg = Kernel::Arf.build();
        let machine = Machine::parse("[1,1|1,1]").expect("machine");
        let row = run_row(&dfg, &machine, &BinderConfig::default());
        // B-ITER never loses to B-INIT on (L, M).
        assert!(row.iter <= row.init);
        // Nobody beats the critical path.
        assert!(row.pcc.0 >= 8 && row.init.0 >= 8 && row.iter.0 >= 8);
        assert!(row.timings.pcc_ms >= 0.0);
    }

    #[test]
    fn gain_percentages() {
        let row = MeasuredRow {
            pcc: (14, 6),
            init: (12, 4),
            iter: (10, 4),
            timings: RowTimings {
                pcc_ms: 1.0,
                init_ms: 1.0,
                iter_ms: 1.0,
            },
            iter_hit_rate: 0.0,
            phases: PhaseStats::default(),
            lower_bound: 8,
            optimality_gap: 0.25,
            proved_optimal: false,
        };
        assert!((row.init_gain_pct() - 100.0 * 2.0 / 12.0).abs() < 0.01);
        assert!((row.iter_gain_pct() - 40.0).abs() < 0.01);
    }

    #[test]
    fn lm_formats_like_the_paper() {
        assert_eq!(lm((16, 15)), "16/15");
    }

    #[test]
    fn untraced_rows_have_no_phase_breakdown() {
        let dfg = Kernel::Arf.build();
        let machine = Machine::parse("[1,1|1,1]").expect("machine");
        let row = run_row(&dfg, &machine, &BinderConfig::default());
        assert!(row.phases.is_empty());
        let traced = BinderConfig {
            trace: true,
            ..BinderConfig::default()
        };
        let row = run_row(&dfg, &machine, &traced);
        assert!(row.phases.phase("b_init").is_some());
    }

    #[test]
    fn table1_has_twelve_distinct_datapaths() {
        let dps = table1_datapaths();
        assert_eq!(dps.len(), 12);
        assert!(dps.contains(&"[1,1|1,1]") && dps.contains(&"[1,2|1,2]"));
    }

    #[test]
    fn trajectory_rows_carry_phases_and_match_untraced_results() {
        let dfg = Kernel::Arf.build();
        let machine = Machine::parse("[1,1|1,1]").expect("machine");
        let config = BinderConfig::default();
        let row = trajectory_row("ARF", "[1,1|1,1]", &dfg, &machine, &config);
        let plain = Binder::with_config(&machine, config).bind(&dfg);
        assert_eq!((row.latency, row.moves), plain.lm());
        assert!(!row.phases.is_empty());
        for phase in ["run", "b_init", "b_iter_qu", "b_iter_qm"] {
            assert!(row.phases.phase(phase).is_some(), "missing {phase}");
        }
        let text = trajectory_json("table1", &[row], &RunMeta::capture(2));
        assert!(text.contains("vliw-perf-trajectory-v1"), "{text}");
        let blob: serde_json::Value = serde_json::from_str(&text).expect("valid json");
        assert_eq!(blob["table"], "table1");
        assert_eq!(blob["meta"]["threads"], 2);
        assert!(blob["meta"]["git_rev"].as_str().is_some());
        assert!(blob["meta"]["cpus"].as_u64().is_some_and(|n| n >= 1));
        assert_eq!(blob["rows"][0]["kernel"], "ARF");
        assert!(blob["rows"][0]["phases"]["phases"].as_array().is_some());
        // Every trajectory row carries the certified-bound triple.
        let lb = blob["rows"][0]["lower_bound"].as_u64().expect("bound");
        let latency = blob["rows"][0]["latency"].as_u64().expect("latency");
        assert!(lb > 0 && lb <= latency, "{text}");
        assert!(blob["rows"][0]["optimality_gap"].as_f64().is_some());
        assert!(matches!(
            blob["rows"][0]["proved_optimal"],
            serde_json::Value::Bool(_)
        ));
    }

    #[test]
    fn repeated_rows_report_median_and_spread() {
        let dfg = Kernel::Arf.build();
        let machine = Machine::parse("[1,1|1,1]").expect("machine");
        let config = BinderConfig::default();
        let row = trajectory_row_repeated("ARF", "[1,1|1,1]", &dfg, &machine, &config, 3);
        assert!(row.wall_min_ms <= row.wall_ms && row.wall_ms <= row.wall_max_ms);
        let once = trajectory_row("ARF", "[1,1|1,1]", &dfg, &machine, &config);
        assert_eq!(once.wall_ms, once.wall_min_ms);
        assert_eq!(once.wall_ms, once.wall_max_ms);
        // Repeating only re-measures: quality is unchanged.
        assert_eq!((row.latency, row.moves), (once.latency, once.moves));
    }

    #[test]
    fn iso8601_timestamps_follow_the_calendar() {
        // Spot checks against `date -u -d @N +%FT%TZ`.
        assert_eq!(iso8601_from_epoch(0), "1970-01-01T00:00:00Z");
        assert_eq!(iso8601_from_epoch(951_782_400), "2000-02-29T00:00:00Z");
        assert_eq!(iso8601_from_epoch(1_754_611_200), "2025-08-08T00:00:00Z");
        assert_eq!(iso8601_from_epoch(4_102_444_799), "2099-12-31T23:59:59Z");
        let now = iso8601_utc_now();
        assert_eq!(now.len(), 20, "{now}");
        assert!(now.ends_with('Z') && now.contains('T'));
    }

    #[test]
    fn run_meta_captures_host_facts() {
        let meta = RunMeta::capture(4);
        assert_eq!(meta.threads, 4);
        assert!(meta.cpus >= 1);
        assert!(!meta.git_rev.is_empty());
    }

    #[test]
    fn measured_rows_carry_sound_bounds() {
        let dfg = Kernel::Arf.build();
        let machine = Machine::parse("[1,1|1,1]").expect("machine");
        let row = run_row(&dfg, &machine, &BinderConfig::default());
        assert!(row.lower_bound > 0 && row.lower_bound <= row.iter.0);
        assert!(row.optimality_gap >= 0.0);
        if row.proved_optimal {
            assert_eq!(row.iter.0, row.lower_bound);
        }
    }

    fn parse_flags(line: &str) -> Result<BinderConfig, String> {
        try_config_from_args(
            BinderConfig::default(),
            line.split_whitespace().map(str::to_owned),
        )
    }

    #[test]
    fn config_overrides_parse() {
        let c = parse_flags(
            "--pairs all --starts 3 --threads 2 --no-eval-cache \
             --no-screen --no-arena --deadline-ms 500 --max-rounds 7 --verify",
        )
        .expect("valid flags");
        assert_eq!(c.pair_mode, vliw_binding::PairMode::All);
        assert_eq!(c.improve_starts, 3);
        assert_eq!(c.threads, 2);
        assert!(!c.eval_cache);
        assert!(!c.screen);
        assert!(!c.arena);
        assert_eq!(c.deadline_ms, Some(500));
        assert_eq!(c.max_iter_rounds, Some(7));
        assert!(c.verify);
        assert!(!parse_flags("--no-verify").expect("valid").verify);
    }

    #[test]
    fn unrelated_binary_flags_pass_through() {
        let c = parse_flags("--json out.json --quick --starts 2").expect("valid");
        assert_eq!(c.improve_starts, 2);
    }

    #[test]
    fn bad_flag_values_are_one_line_errors() {
        for (line, needle) in [
            ("--pairs sideways", "--pairs takes"),
            ("--starts many", "--starts takes a number"),
            ("--threads", "--threads needs a value"),
            ("--deadline-ms soon", "--deadline-ms takes a number"),
            ("--max-rounds --verify", "--max-rounds takes a number"),
        ] {
            let e = parse_flags(line).expect_err(line);
            assert!(e.contains(needle), "{line}: {e}");
            assert!(!e.contains('\n'), "{line}: multi-line error {e:?}");
        }
    }
}
