//! Shared command-line handling for the five bench binaries.
//!
//! Every binary accepts the same surface: the [`BinderConfig`] override
//! flags (`--threads`, `--pairs`, `--starts`, `--no-eval-cache`,
//! `--no-screen`, `--no-arena`, `--deadline-ms`, `--max-rounds`,
//! `--verify`/`--no-verify`), the
//! side-output flags (`--json FILE`, `--bench-out FILE`), `--quick`, a
//! single optional positional (the ablation study name),
//! `--trace-out FILE` — which forces [`BinderConfig::trace`] on and
//! installs a process-global JSONL sink so every traced bind of the run
//! streams its events to the file — `--fail-spec SPEC` (fallback: the
//! `VLIW_FAIL` environment variable), which arms deterministic fault
//! injection for chaos runs — `--metrics-out FILE`, which enables the
//! process-global metrics registry and dumps it in Prometheus text
//! format at the end of the run — and `--repeat N`, which re-measures
//! each perf-trajectory row `N` times and reports the median
//! wall-clock with its min/max spread.

use std::fs::File;
use std::io::BufWriter;
use std::sync::Arc;
use vliw_binding::BinderConfig;
use vliw_trace::JsonlSink;

use crate::runner::try_config_from_args;

/// Flags that consume the following argument, used to tell positionals
/// apart from flag values.
const VALUE_FLAGS: &[&str] = &[
    "--json",
    "--bench-out",
    "--trace-out",
    "--fail-spec",
    "--metrics-out",
    "--repeat",
    "--pairs",
    "--starts",
    "--threads",
    "--deadline-ms",
    "--max-rounds",
];

/// The parsed command line of a bench binary.
pub struct BenchCli {
    /// Binder configuration after the override flags; `trace` is forced
    /// on when `--trace-out` was given.
    pub config: BinderConfig,
    /// `--json FILE`: machine-readable row dump.
    pub json_path: Option<String>,
    /// `--bench-out FILE`: where to write the perf-trajectory file
    /// (each binary has its own default, e.g. `BENCH_table1.json`).
    pub bench_out: Option<String>,
    /// `--trace-out FILE`: where the JSONL event stream goes.
    pub trace_path: Option<String>,
    /// `--fail-spec SPEC`: deterministic fault-injection spec, armed by
    /// [`BenchCli::from_env`] (grammar in the `vliw_fault` crate docs).
    pub fail_spec: Option<String>,
    /// `--metrics-out FILE`: where the Prometheus text dump of the
    /// metrics registry goes; its presence enables the registry.
    pub metrics_path: Option<String>,
    /// `--repeat N`: wall-clock measurements per perf-trajectory row
    /// (default 1); the median is reported.
    pub repeat: usize,
    /// `--quick`: subsample the experiment matrix.
    pub quick: bool,
    /// The first non-flag argument (the ablation study name).
    pub positional: Option<String>,
    /// The live `--trace-out` sink, kept for the final flush.
    sink: Option<Arc<JsonlSink<BufWriter<File>>>>,
}

impl std::fmt::Debug for BenchCli {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BenchCli")
            .field("config", &self.config)
            .field("json_path", &self.json_path)
            .field("bench_out", &self.bench_out)
            .field("trace_path", &self.trace_path)
            .field("fail_spec", &self.fail_spec)
            .field("metrics_path", &self.metrics_path)
            .field("repeat", &self.repeat)
            .field("quick", &self.quick)
            .field("positional", &self.positional)
            .finish_non_exhaustive()
    }
}

impl BenchCli {
    /// Parses an argument list (no binary name) on top of `base`. Pure:
    /// opens no files and installs no sinks — that happens in
    /// [`BenchCli::from_env`].
    ///
    /// # Errors
    ///
    /// A one-line message when a known flag carries a bad or missing
    /// value.
    pub fn try_parse<I>(base: BinderConfig, args: I) -> Result<Self, String>
    where
        I: IntoIterator<Item = String>,
    {
        let args: Vec<String> = args.into_iter().collect();
        let mut config = try_config_from_args(base, args.iter().cloned())?;
        let value_of = |flag: &str| -> Result<Option<String>, String> {
            match args.iter().position(|a| a == flag) {
                None => Ok(None),
                Some(i) => args
                    .get(i + 1)
                    .filter(|v| !v.starts_with("--"))
                    .cloned()
                    .map(Some)
                    .ok_or_else(|| format!("{flag} needs a value")),
            }
        };
        let json_path = value_of("--json")?;
        let bench_out = value_of("--bench-out")?;
        let trace_path = value_of("--trace-out")?;
        let fail_spec = value_of("--fail-spec")?;
        let metrics_path = value_of("--metrics-out")?;
        let repeat = match value_of("--repeat")? {
            None => 1,
            Some(v) => v
                .parse::<usize>()
                .ok()
                .filter(|&n| n >= 1)
                .ok_or_else(|| format!("--repeat takes a number >= 1, got {v:?}"))?,
        };
        if trace_path.is_some() {
            // The stream is only fed by traced binds.
            config.trace = true;
        }
        let mut positional = None;
        let mut i = 0;
        while i < args.len() {
            let arg = args[i].as_str();
            if VALUE_FLAGS.contains(&arg) {
                i += 2;
                continue;
            }
            if arg.starts_with("--") {
                i += 1;
                continue;
            }
            positional = Some(args[i].clone());
            break;
        }
        Ok(BenchCli {
            config,
            json_path,
            bench_out,
            trace_path,
            fail_spec,
            metrics_path,
            repeat,
            quick: args.iter().any(|a| a == "--quick"),
            positional,
            sink: None,
        })
    }

    /// Parses the process arguments, printing a one-line error and
    /// exiting with status 2 on a bad flag; pre-flights `--json` /
    /// `--bench-out` for writability and opens + globally installs the
    /// `--trace-out` sink.
    pub fn from_env(base: BinderConfig) -> Self {
        let mut cli = match Self::try_parse(base, std::env::args().skip(1)) {
            Ok(cli) => cli,
            Err(msg) => {
                eprintln!("error: {msg}");
                std::process::exit(2);
            }
        };
        // Arm fault injection before any work: `--fail-spec` wins,
        // otherwise the `VLIW_FAIL` environment variable is consulted.
        let armed = match &cli.fail_spec {
            Some(spec) => vliw_fault::configure(spec).map_err(|e| format!("bad --fail-spec: {e}")),
            None => vliw_fault::init_from_env()
                .map(|_| ())
                .map_err(|e| format!("bad VLIW_FAIL spec: {e}")),
        };
        if let Err(msg) = armed {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
        for path in [&cli.json_path, &cli.bench_out, &cli.metrics_path]
            .into_iter()
            .flatten()
        {
            crate::runner::ensure_writable_or_exit(path);
        }
        if cli.metrics_path.is_some() {
            vliw_metrics::set_enabled(true);
        }
        if let Some(path) = &cli.trace_path {
            match File::create(path) {
                Ok(file) => {
                    let sink = Arc::new(JsonlSink::new(BufWriter::new(file)));
                    vliw_trace::install_global(sink.clone());
                    cli.sink = Some(sink);
                }
                Err(e) => {
                    eprintln!("error: cannot write {path}: {e}");
                    std::process::exit(2);
                }
            }
        }
        cli
    }

    /// Flushes the `--trace-out` sink and writes the `--metrics-out`
    /// Prometheus dump (if any), reporting where each went. Call once
    /// at the end of `main`.
    pub fn finish(&self) {
        if let Some(path) = &self.metrics_path {
            crate::runner::write_or_exit(path, &vliw_metrics::prometheus());
            println!("wrote metrics to {path}");
        }
        let (Some(sink), Some(path)) = (&self.sink, &self.trace_path) else {
            return;
        };
        match sink.finish() {
            Ok(()) => println!("wrote trace events to {path}"),
            Err(e) => {
                eprintln!("error: trace stream to {path} failed: {e}");
                std::process::exit(2);
            }
        }
    }

    /// The perf-trajectory output path: `--bench-out` or the binary's
    /// default.
    pub fn bench_out_or(&self, default: &str) -> String {
        self.bench_out.clone().unwrap_or_else(|| default.to_owned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(line: &str) -> Result<BenchCli, String> {
        BenchCli::try_parse(
            BinderConfig::default(),
            line.split_whitespace().map(str::to_owned),
        )
    }

    #[test]
    fn shared_flags_parse_once_for_every_binary() {
        let cli = parse(
            "--json out.json --threads 2 --no-eval-cache --quick \
             --trace-out t.jsonl --bench-out BENCH.json",
        )
        .expect("valid");
        assert_eq!(cli.json_path.as_deref(), Some("out.json"));
        assert_eq!(cli.bench_out.as_deref(), Some("BENCH.json"));
        assert_eq!(cli.trace_path.as_deref(), Some("t.jsonl"));
        assert!(cli.quick);
        assert_eq!(cli.config.threads, 2);
        assert!(!cli.config.eval_cache);
        assert_eq!(cli.positional, None);
        assert_eq!(cli.bench_out_or("X.json"), "BENCH.json");
    }

    #[test]
    fn fail_spec_parses_without_arming() {
        // try_parse is pure: the spec is carried, not installed (that
        // happens in from_env), so parsing here cannot perturb other
        // tests through the process-global registry.
        let cli = parse("--fail-spec eval.candidate=on3:panic gamma").expect("valid");
        assert_eq!(cli.fail_spec.as_deref(), Some("eval.candidate=on3:panic"));
        assert_eq!(cli.positional.as_deref(), Some("gamma"));
        assert!(!vliw_fault::is_armed());
        let e = parse("--fail-spec").expect_err("missing value");
        assert!(e.contains("needs a value"), "{e}");
    }

    #[test]
    fn metrics_and_repeat_flags_parse() {
        let cli = parse("--metrics-out m.prom --repeat 5").expect("valid");
        assert_eq!(cli.metrics_path.as_deref(), Some("m.prom"));
        assert_eq!(cli.repeat, 5);
        // try_parse is pure: the registry is only enabled in from_env.
        let cli = parse("").expect("valid");
        assert_eq!(cli.metrics_path, None);
        assert_eq!(cli.repeat, 1);
        // Their values are not positionals.
        let cli = parse("--metrics-out m.prom --repeat 3 gamma").expect("valid");
        assert_eq!(cli.positional.as_deref(), Some("gamma"));
    }

    #[test]
    fn bad_repeat_values_are_one_line_errors() {
        for line in ["--repeat 0", "--repeat often", "--repeat", "--metrics-out"] {
            let e = parse(line).expect_err(line);
            assert!(
                e.contains("needs a value") || e.contains("--repeat takes"),
                "{line}: {e}"
            );
            assert!(!e.contains('\n'), "{line}: {e:?}");
        }
    }

    #[test]
    fn trace_out_forces_tracing_on() {
        assert!(!parse("").expect("valid").config.trace);
        assert!(parse("--trace-out t.jsonl").expect("valid").config.trace);
    }

    #[test]
    fn positional_skips_flag_values() {
        // The ablation binary: `ablation gamma --threads 2`.
        assert_eq!(
            parse("gamma --threads 2")
                .expect("ok")
                .positional
                .as_deref(),
            Some("gamma")
        );
        // A flag value is not a positional.
        assert_eq!(
            parse("--threads 2 gamma")
                .expect("ok")
                .positional
                .as_deref(),
            Some("gamma")
        );
        assert_eq!(parse("--json out.json").expect("ok").positional, None);
        assert_eq!(parse("").expect("ok").positional, None);
    }

    #[test]
    fn missing_values_are_one_line_errors() {
        for line in ["--json", "--trace-out", "--bench-out --quick"] {
            let e = parse(line).expect_err(line);
            assert!(e.contains("needs a value"), "{line}: {e}");
            assert!(!e.contains('\n'), "{line}: {e:?}");
        }
    }

    #[test]
    fn defaults_fall_back() {
        let cli = parse("").expect("valid");
        assert_eq!(cli.bench_out_or("BENCH_table1.json"), "BENCH_table1.json");
        assert!(cli.json_path.is_none() && cli.trace_path.is_none());
    }
}
