//! Benchmark harness regenerating the paper's evaluation (Section 5).
//!
//! The paper reports two tables:
//!
//! * **Table 1** — 33 (kernel × datapath) rows with `N_B = 2` and
//!   `lat(move) = 1`: `L/M` for PCC, B-INIT (+ΔL%), B-ITER (+ΔL%), plus
//!   CPU times;
//! * **Table 2** — the FFT kernel on the five-cluster datapath
//!   `[2,2|2,1|2,2|3,1|1,1]` with `N_B ∈ {1,2}` × `lat(move) ∈ {1,2}`.
//!
//! This crate embeds the paper's reported numbers next to each
//! experiment so the binaries print paper-vs-measured side by side, and
//! exposes the shared row runner used by `table1`, `table2`, `ablation`
//! and the Criterion benches. The `table1`/`table2` binaries also write
//! the machine-readable perf trajectory (`BENCH_table1.json` /
//! `BENCH_table2.json`: wall-clock, per-phase timings and `(L, N_MV)`
//! per experiment point), and every binary takes `--trace-out FILE` to
//! stream the structured trace events of its binds as JSONL (see
//! [`cli::BenchCli`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod cli;
pub mod rows;
pub mod runner;

pub use cli::BenchCli;
pub use rows::{PaperRow, Table1Row, Table2Row, TABLE1, TABLE2};
pub use runner::{run_row, MeasuredRow, RowTimings, TrajectoryRow};
