//! Five-way algorithm comparison across the Table-1 experiment matrix:
//! PCC and the two related-work baselines (UAS, simulated annealing)
//! against B-INIT and B-ITER. Extends the paper's two-baseline
//! evaluation with the other algorithms its Section 4 discusses.
//!
//! Usage: `cargo run -p vliw-bench --release --bin baselines [--quick]
//! [--trace-out FILE] [--threads N] [--no-eval-cache] [--no-screen]
//! [--no-arena] [--pairs MODE]
//! [--starts N] [--deadline-ms N] [--max-rounds N]
//! [--verify | --no-verify]`

use std::time::Instant;
use vliw_baselines::{Annealer, Uas};
use vliw_bench::{BenchCli, TABLE1};
use vliw_binding::{Binder, BinderConfig};
use vliw_datapath::Machine;
use vliw_pcc::Pcc;

fn main() {
    let cli = BenchCli::from_env(BinderConfig::default());
    let quick = cli.quick;
    let config = cli.config.clone();
    let mut totals = [0u64; 5];
    let mut times = [0f64; 5];
    let mut rows = 0u32;

    println!(
        "{:<11} {:<18} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "KERNEL", "DATAPATH", "UAS", "SA", "PCC", "B-INIT", "B-ITER"
    );
    for row in TABLE1 {
        if quick && !rows.is_multiple_of(3) {
            rows += 1;
            continue;
        }
        let dfg = row.kernel.build();
        let machine = Machine::parse(row.datapath).expect("datapath parses");
        let binder = Binder::with_config(&machine, config.clone());

        let mut cell = |idx: usize, f: &mut dyn FnMut() -> (u32, usize)| -> String {
            let t = Instant::now();
            let (l, m) = f();
            times[idx] += t.elapsed().as_secs_f64();
            totals[idx] += l as u64;
            format!("{l}/{m}")
        };
        let uas = cell(0, &mut || {
            let r = Uas::new(&machine).bind(&dfg);
            (r.latency(), r.moves())
        });
        let sa = cell(1, &mut || {
            let r = Annealer::new(&machine).bind(&dfg);
            (r.latency(), r.moves())
        });
        let pcc = cell(2, &mut || {
            let r = Pcc::new(&machine).bind(&dfg);
            (r.latency(), r.moves())
        });
        let init = cell(3, &mut || {
            let r = binder.bind_initial(&dfg);
            (r.latency(), r.moves())
        });
        let iter = cell(4, &mut || {
            let r = binder.bind(&dfg);
            (r.latency(), r.moves())
        });
        println!(
            "{:<11} {:<18} {:>8} {:>8} {:>8} {:>8} {:>8}",
            row.kernel.name(),
            row.datapath,
            uas,
            sa,
            pcc,
            init,
            iter
        );
        rows += 1;
    }
    println!("\ntotal latency over the matrix:");
    for (name, (total, time)) in ["UAS", "SA", "PCC", "B-INIT", "B-ITER"]
        .iter()
        .zip(totals.iter().zip(times.iter()))
    {
        println!("  {name:<8} {total:>5} cycles   {:>8.2}s", time);
    }
    cli.finish();
}
