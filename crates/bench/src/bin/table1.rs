//! Regenerates the paper's Table 1: all 33 (kernel × datapath) rows with
//! `N_B = 2`, `lat(move) = 1`, printing paper-vs-measured side by side.
//!
//! Usage: `cargo run -p vliw-bench --release --bin table1 [--json FILE]
//! [--bench-out FILE] [--trace-out FILE] [--threads N] [--no-eval-cache]
//! [--no-screen] [--no-arena]
//! [--pairs MODE] [--starts N] [--deadline-ms N] [--max-rounds N]
//! [--verify | --no-verify]`
//!
//! Besides the printed table, always writes the machine-readable perf
//! trajectory `BENCH_table1.json` (override with `--bench-out`): every
//! kernel × distinct Table-1 datapath, with wall-clock, per-phase
//! timings and the `(L, N_MV)` result.

use std::collections::BTreeMap;
use vliw_bench::runner::lm;
use vliw_bench::{run_row, BenchCli, TABLE1};
use vliw_binding::BinderConfig;
use vliw_datapath::Machine;
use vliw_dfg::DfgStats;

fn main() {
    let cli = BenchCli::from_env(BinderConfig::default());
    let json_path = cli.json_path.clone();
    let config = cli.config.clone();
    let mut json_rows: Vec<serde_json::Value> = Vec::new();
    let mut current_kernel = None;
    let mut wins = BTreeMap::from([("init", 0i32), ("iter", 0i32)]);
    let mut rows_done = 0;

    println!("Table 1 reproduction: N_B = 2, lat(move) = 1");
    println!(
        "evaluation threads: {} ({} eval cache)",
        if config.threads == 0 {
            "auto".to_owned()
        } else {
            config.threads.to_string()
        },
        if config.eval_cache { "with" } else { "without" },
    );
    println!("paper values in parentheses; ΔL% is improvement over measured PCC\n");
    let mut iter_ms_total = 0.0;
    let mut hit_rate_total = 0.0;

    for row in TABLE1 {
        if current_kernel != Some(row.kernel) {
            current_kernel = Some(row.kernel);
            let stats = DfgStats::unit_latency(&row.kernel.build());
            println!(
                "--- {}: N_V = {}, N_CC = {}, L_CP = {} ---",
                row.kernel, stats.n_v, stats.n_cc, stats.l_cp
            );
            println!(
                "{:<18} {:>12} {:>8} {:>12} {:>7} {:>8} {:>12} {:>7} {:>9}",
                "DATAPATH", "PCC L/M", "ms", "B-INIT L/M", "dL%", "ms", "B-ITER L/M", "dL%", "ms"
            );
        }
        let dfg = row.kernel.build();
        let machine = Machine::parse(row.datapath).expect("datapath parses");
        let m = run_row(&dfg, &machine, &config);
        println!(
            "{:<18} {:>6} {:>5} {:>8.1} {:>6} {:>5} {:>7.1} {:>8.1} {:>6} {:>5} {:>7.1} {:>9.2}",
            row.datapath,
            lm(m.pcc),
            format!("({})", lm(row.paper.pcc)),
            m.timings.pcc_ms,
            lm(m.init),
            format!("({})", lm(row.paper.init)),
            m.init_gain_pct(),
            m.timings.init_ms,
            lm(m.iter),
            format!("({})", lm(row.paper.iter)),
            m.iter_gain_pct(),
            m.timings.iter_ms,
        );
        if m.init.0 <= m.pcc.0 {
            *wins.get_mut("init").expect("key") += 1;
        }
        if m.iter.0 <= m.pcc.0 {
            *wins.get_mut("iter").expect("key") += 1;
        }
        rows_done += 1;
        iter_ms_total += m.timings.iter_ms;
        hit_rate_total += m.iter_hit_rate;
        json_rows.push(serde_json::json!({
            "kernel": row.kernel.name(),
            "datapath": row.datapath,
            "paper": {
                "pcc": row.paper.pcc, "init": row.paper.init, "iter": row.paper.iter,
            },
            "measured": {
                "pcc": m.pcc, "init": m.init, "iter": m.iter,
                "init_gain_pct": m.init_gain_pct(),
                "iter_gain_pct": m.iter_gain_pct(),
                "timings_ms": m.timings,
                "iter_cache_hit_rate": m.iter_hit_rate,
            },
        }));
    }

    println!("\nsummary over {rows_done} rows:");
    println!(
        "  B-INIT no worse than PCC on {} rows; B-ITER no worse on {} rows",
        wins["init"], wins["iter"]
    );
    println!(
        "  B-ITER wall-clock total {:.1} ms; mean eval-cache hit rate {:.1}%",
        iter_ms_total,
        100.0 * hit_rate_total / rows_done as f64
    );

    if let Some(path) = json_path {
        let blob = serde_json::to_string_pretty(&json_rows).expect("serializable");
        vliw_bench::runner::write_or_exit(&path, &blob);
        println!("  wrote {path}");
    }

    // The perf trajectory: every kernel on every distinct Table-1
    // datapath, re-bound with tracing on for the phase breakdown.
    let trajectory = vliw_bench::runner::table1_trajectory(&config, cli.repeat);
    let bench_path = cli.bench_out_or("BENCH_table1.json");
    let meta = vliw_bench::runner::RunMeta::capture(config.threads);
    vliw_bench::runner::write_or_exit(
        &bench_path,
        &vliw_bench::runner::trajectory_json("table1", &trajectory, &meta),
    );
    println!("  wrote {bench_path} ({} rows)", trajectory.len());
    cli.finish();
}
