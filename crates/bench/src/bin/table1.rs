//! Regenerates the paper's Table 1: all 33 (kernel × datapath) rows with
//! `N_B = 2`, `lat(move) = 1`, printing paper-vs-measured side by side.
//!
//! Usage: `cargo run -p vliw-bench --release --bin table1 [--json FILE]`

use std::collections::BTreeMap;
use vliw_bench::runner::lm;
use vliw_bench::{run_row, TABLE1};
use vliw_binding::BinderConfig;
use vliw_datapath::Machine;
use vliw_dfg::DfgStats;

fn main() {
    let json_path = std::env::args()
        .skip_while(|a| a != "--json")
        .nth(1);
    let config = vliw_bench::runner::config_from_args(BinderConfig::default());
    let mut json_rows: Vec<serde_json::Value> = Vec::new();
    let mut current_kernel = None;
    let mut wins = BTreeMap::from([("init", 0i32), ("iter", 0i32)]);
    let mut rows_done = 0;

    println!("Table 1 reproduction: N_B = 2, lat(move) = 1");
    println!("paper values in parentheses; ΔL% is improvement over measured PCC\n");

    for row in TABLE1 {
        if current_kernel != Some(row.kernel) {
            current_kernel = Some(row.kernel);
            let stats = DfgStats::unit_latency(&row.kernel.build());
            println!(
                "--- {}: N_V = {}, N_CC = {}, L_CP = {} ---",
                row.kernel, stats.n_v, stats.n_cc, stats.l_cp
            );
            println!(
                "{:<18} {:>12} {:>8} {:>12} {:>7} {:>8} {:>12} {:>7} {:>9}",
                "DATAPATH", "PCC L/M", "ms", "B-INIT L/M", "dL%", "ms", "B-ITER L/M", "dL%", "ms"
            );
        }
        let dfg = row.kernel.build();
        let machine = Machine::parse(row.datapath).expect("datapath parses");
        let m = run_row(&dfg, &machine, &config);
        println!(
            "{:<18} {:>6} {:>5} {:>8.1} {:>6} {:>5} {:>7.1} {:>8.1} {:>6} {:>5} {:>7.1} {:>9.2}",
            row.datapath,
            lm(m.pcc),
            format!("({})", lm(row.paper.pcc)),
            m.timings.pcc_ms,
            lm(m.init),
            format!("({})", lm(row.paper.init)),
            m.init_gain_pct(),
            m.timings.init_ms,
            lm(m.iter),
            format!("({})", lm(row.paper.iter)),
            m.iter_gain_pct(),
            m.timings.iter_ms,
        );
        if m.init.0 <= m.pcc.0 {
            *wins.get_mut("init").expect("key") += 1;
        }
        if m.iter.0 <= m.pcc.0 {
            *wins.get_mut("iter").expect("key") += 1;
        }
        rows_done += 1;
        json_rows.push(serde_json::json!({
            "kernel": row.kernel.name(),
            "datapath": row.datapath,
            "paper": {
                "pcc": row.paper.pcc, "init": row.paper.init, "iter": row.paper.iter,
            },
            "measured": {
                "pcc": m.pcc, "init": m.init, "iter": m.iter,
                "init_gain_pct": m.init_gain_pct(),
                "iter_gain_pct": m.iter_gain_pct(),
                "timings_ms": m.timings,
            },
        }));
    }

    println!("\nsummary over {rows_done} rows:");
    println!(
        "  B-INIT no worse than PCC on {} rows; B-ITER no worse on {} rows",
        wins["init"], wins["iter"]
    );

    if let Some(path) = json_path {
        let blob = serde_json::to_string_pretty(&json_rows).expect("serializable");
        std::fs::write(&path, blob).expect("write json output");
        println!("  wrote {path}");
    }
}
