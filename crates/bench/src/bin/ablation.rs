//! Ablation studies over the paper's design choices.
//!
//! Usage: `cargo run -p vliw-bench --release --bin ablation -- <study>
//! [--threads N] [--no-eval-cache] [--no-screen] [--no-arena]
//! [--trace-out FILE]`
//! where `<study>` is one of `gamma`, `lpr`, `reverse`, `quality`,
//! `pairs`, `fucost`, `priority`, `optimal`, or `all`.

use vliw_bench::ablation;
use vliw_binding::{BinderConfig, QualityKind};

fn main() {
    let cli = vliw_bench::BenchCli::from_env(BinderConfig::default());
    let study = cli.positional.clone().unwrap_or_else(|| "all".to_owned());
    let base = cli.config.clone();
    let all = study == "all";
    let mut ran = false;

    if all || study == "gamma" {
        ran = true;
        println!("# gamma sweep (paper Section 3.1.2: gamma = 1.1 works best)");
        println!("total B-INIT latency over the ablation workloads:");
        for gamma in [0.0, 0.5, 1.0, 1.1, 1.5, 2.0, 4.0] {
            println!(
                "  gamma = {gamma:<4} -> {}",
                ablation::total_init_latency_for_gamma(gamma)
            );
        }
    }
    if all || study == "lpr" {
        ran = true;
        println!("# L_PR stretching (paper Section 3.1.3)");
        let with = ablation::total_init_latency(&base.clone());
        let without = ablation::total_init_latency(&base.clone().without_lpr_sweep());
        println!("  with sweep:    {with}");
        println!("  L_PR = L_CP:   {without}");
    }
    if all || study == "reverse" {
        ran = true;
        println!("# reverse-order binding (paper Section 3.1.4)");
        let with = ablation::total_init_latency(&base.clone());
        let without = ablation::total_init_latency(&base.clone().without_reverse());
        println!("  forward+reverse: {with}");
        println!("  forward only:    {without}");
    }
    if all || study == "quality" {
        ran = true;
        println!("# B-ITER quality vector (paper Section 3.2, Figure 6)");
        let cfg = base.clone();
        let qu_then_qm = ablation::total_iter_latency(&cfg, None);
        let qm_only = ablation::total_iter_latency(&cfg, Some(QualityKind::Qm));
        let qu_only = ablation::total_iter_latency(&cfg, Some(QualityKind::Qu));
        println!("  Q_U then Q_M (paper): {qu_then_qm}");
        println!("  Q_U only:             {qu_only}");
        println!("  Q_M only:             {qm_only}");
    }
    if all || study == "pairs" {
        ran = true;
        println!("# pair perturbations (paper Section 3.2)");
        for (mode, total) in ablation::pair_mode_latencies() {
            println!("  {mode:?}: {total}");
        }
    }
    if all || study == "fucost" {
        ran = true;
        println!("# serialization cost model (Section 3.1.2 interpretation)");
        println!("total B-INIT / B-ITER latency over the ablation workloads:");
        for (model, init, iter) in ablation::cost_model_latencies() {
            println!("  {model:?}: {init} / {iter}");
        }
    }
    if all || study == "priority" {
        ran = true;
        println!("# list-scheduler ready-list priority");
        println!("total latency of fixed B-INIT bindings re-scheduled per priority:");
        for (priority, total) in ablation::scheduler_priority_latencies() {
            println!("  {priority:?}: {total}");
        }
    }
    if all || study == "optimal" {
        ran = true;
        println!("# optimality spot-check (paper Section 3.2)");
        let (done, hits, excess) = ablation::optimality_check(20);
        println!(
            "  {hits}/{done} random 10-op DFGs bound to the exact optimum \
             (total excess: {excess} cycles)"
        );
    }
    if !ran {
        eprintln!("unknown study {study:?}; try gamma|lpr|reverse|quality|pairs|fucost|priority|optimal|all");
        std::process::exit(2);
    }
    cli.finish();
}
