//! Software-pipelining table: initiation intervals for loop kernels
//! across datapaths — the modulo-scheduling extension's counterpart of
//! Table 1. For each (loop, datapath): MII bounds, the II achieved from
//! a block-latency binding, and the II achieved by the II-driven binder.
//!
//! Usage: `cargo run -p vliw-bench --release --bin pipeline
//! [--threads N] [--no-eval-cache] [--no-screen] [--no-arena]
//! [--trace-out FILE]`

use vliw_binding::{Binder, BinderConfig};
use vliw_datapath::Machine;
use vliw_dfg::{DfgBuilder, LoopCarry, OpType};
use vliw_kernels::Kernel;
use vliw_modulo::{bind_loop, mii, LoopDfg, ModuloBinder, ModuloScheduler};

/// The loop workloads: kernels with natural recurrences.
fn loops() -> Vec<(&'static str, LoopDfg)> {
    let mut out = Vec::new();

    // EWF per-sample loop (filter states carried).
    let ewf = Kernel::Ewf.build();
    let find = |dfg: &vliw_dfg::Dfg, name: &str| {
        dfg.op_ids()
            .find(|&v| dfg.name(v) == Some(name))
            .unwrap_or_else(|| panic!("{name} exists"))
    };
    let carries = [
        ("A1.s'", "A1.t"),
        ("A2.s2'", "A2.t1"),
        ("A2.s1'", "A2.t2"),
        ("B1.s2'", "B1.t1"),
        ("B1.s1'", "B1.t2"),
        ("B2.s2'", "B2.t1"),
        ("B2.s1'", "B2.t2"),
    ]
    .map(|(from, to)| LoopCarry::next_iteration(find(&ewf, from), find(&ewf, to)))
    .to_vec();
    out.push(("EWF-loop", LoopDfg::new(ewf, carries).expect("valid")));

    // ARF per-sample loop: lattice state feeds back into stage 1.
    let arf = Kernel::Arf.build();
    let u1_4 = find(&arf, "st4.u1");
    let u2_4 = find(&arf, "st4.u2");
    let t1_1 = find(&arf, "st1.t1");
    let t2_1 = find(&arf, "st1.t2");
    let carries = vec![
        LoopCarry::next_iteration(u1_4, t1_1),
        LoopCarry::next_iteration(u2_4, t2_1),
    ];
    out.push(("ARF-loop", LoopDfg::new(arf, carries).expect("valid")));

    // Complex MAC (adaptive-filter inner loop).
    let mut b = DfgBuilder::new();
    let m1 = b.add_op(OpType::Mul, &[]);
    let m2 = b.add_op(OpType::Mul, &[]);
    let m3 = b.add_op(OpType::Mul, &[]);
    let m4 = b.add_op(OpType::Mul, &[]);
    let pr = b.add_op(OpType::Sub, &[m1, m2]);
    let pi = b.add_op(OpType::Add, &[m3, m4]);
    let ar = b.add_op(OpType::Add, &[pr]);
    let ai = b.add_op(OpType::Add, &[pi]);
    let cmac = b.finish().expect("acyclic");
    let carries = vec![
        LoopCarry::next_iteration(ar, ar),
        LoopCarry::next_iteration(ai, ai),
    ];
    out.push(("CMAC", LoopDfg::new(cmac, carries).expect("valid")));

    // FIR-16: no recurrence at all (fully parallel across iterations).
    out.push((
        "FIR-16",
        LoopDfg::new(vliw_kernels::extra::fir(16), vec![]).expect("valid"),
    ));

    out
}

fn main() {
    let cli = vliw_bench::BenchCli::from_env(BinderConfig::default());
    let config = cli.config.clone();
    let machines = ["[1,1]", "[2,1]", "[1,1|1,1]", "[2,1|2,1]", "[3,1|3,1]"];
    println!(
        "{:<10} {:<12} {:>7} {:>7} {:>9} {:>9} {:>8} {:>12}",
        "LOOP", "DATAPATH", "ResMII", "RecMII", "II-block", "II-driven", "stages", "block L"
    );
    for (name, looped) in loops() {
        for text in machines {
            let machine = Machine::parse(text).expect("machine parses");
            let block_bound = bind_loop(&looped, &machine, &config);
            let block_ii = ModuloScheduler::new(&machine)
                .schedule(&block_bound)
                .expect("schedulable")
                .ii();
            let (bound, schedule) = ModuloBinder::new(&machine).bind(&looped);
            schedule.validate(&bound, &machine).expect("valid");
            let block_latency = Binder::with_config(&machine, config.clone())
                .bind(looped.body())
                .latency();
            println!(
                "{:<10} {:<12} {:>7} {:>7} {:>9} {:>9} {:>8} {:>12}",
                name,
                text,
                mii::res_mii(&bound, &machine),
                mii::rec_mii(&bound, &machine),
                block_ii,
                schedule.ii(),
                schedule.stage_count(&bound, &machine),
                block_latency
            );
        }
        println!();
    }
    cli.finish();
}
