//! Regenerates the paper's Table 2: the FFT kernel on the five-cluster
//! datapath `[2,2|2,1|2,2|3,1|1,1]` with `N_B ∈ {1,2}` and
//! `lat(move) ∈ {1,2}`.
//!
//! Usage: `cargo run -p vliw-bench --release --bin table2 [--json FILE]
//! [--bench-out FILE] [--trace-out FILE] [--threads N] [--no-eval-cache]
//! [--no-screen] [--no-arena]
//! [--pairs MODE] [--starts N] [--deadline-ms N] [--max-rounds N]
//! [--verify | --no-verify]`
//!
//! Besides the printed table, always writes the perf trajectory
//! `BENCH_table2.json` (override with `--bench-out`): the four bus
//! configurations with wall-clock, per-phase timings and `(L, N_MV)`.

use vliw_bench::rows::TABLE2_DATAPATH;
use vliw_bench::runner::lm;
use vliw_bench::{run_row, BenchCli, TABLE2};
use vliw_binding::BinderConfig;
use vliw_datapath::Machine;
use vliw_kernels::Kernel;

fn main() {
    let cli = BenchCli::from_env(BinderConfig::default());
    let json_path = cli.json_path.clone();
    let config = cli.config.clone();
    let dfg = Kernel::Fft.build();
    let mut json_rows: Vec<serde_json::Value> = Vec::new();
    let mut trajectory = Vec::new();

    println!("Table 2 reproduction: FFT on {TABLE2_DATAPATH}");
    println!("paper values in parentheses\n");
    println!(
        "{:>4} {:>10} {:>14} {:>14} {:>7} {:>14} {:>7}",
        "N_B", "lat(move)", "PCC L/M", "B-INIT L/M", "dL%", "B-ITER L/M", "dL%"
    );

    for row in TABLE2 {
        let machine = Machine::parse(TABLE2_DATAPATH)
            .expect("datapath parses")
            .with_bus_count(row.buses)
            .with_move_latency(row.move_latency);
        let m = run_row(&dfg, &machine, &config);
        println!(
            "{:>4} {:>10} {:>7} {:>6} {:>7} {:>6} {:>7.1} {:>7} {:>6} {:>7.1}",
            row.buses,
            row.move_latency,
            lm(m.pcc),
            format!("({})", lm(row.paper.pcc)),
            lm(m.init),
            format!("({})", lm(row.paper.init)),
            m.init_gain_pct(),
            lm(m.iter),
            format!("({})", lm(row.paper.iter)),
            m.iter_gain_pct(),
        );
        json_rows.push(serde_json::json!({
            "buses": row.buses,
            "move_latency": row.move_latency,
            "paper": { "pcc": row.paper.pcc, "init": row.paper.init, "iter": row.paper.iter },
            "measured": {
                "pcc": m.pcc, "init": m.init, "iter": m.iter,
                "timings_ms": m.timings,
            },
        }));
        trajectory.push(vliw_bench::runner::trajectory_row_repeated(
            "FFT",
            &format!(
                "{TABLE2_DATAPATH} N_B={} lat(move)={}",
                row.buses, row.move_latency
            ),
            &dfg,
            &machine,
            &config,
            cli.repeat,
        ));
    }

    if let Some(path) = json_path {
        let blob = serde_json::to_string_pretty(&json_rows).expect("serializable");
        vliw_bench::runner::write_or_exit(&path, &blob);
        println!("\nwrote {path}");
    }

    let bench_path = cli.bench_out_or("BENCH_table2.json");
    let meta = vliw_bench::runner::RunMeta::capture(config.threads);
    vliw_bench::runner::write_or_exit(
        &bench_path,
        &vliw_bench::runner::trajectory_json("table2", &trajectory, &meta),
    );
    println!("\nwrote {bench_path} ({} rows)", trajectory.len());
    cli.finish();
}
