//! Design-space exploration benchmark: sweeps the candidate space for
//! three paper kernels serially and sharded, reports the frontier, the
//! lower-bound pruning hit-rate, and cross-checks that neither sharding
//! nor pruning changes the result.
//!
//! Usage: `cargo run -p vliw-bench --release --bin explore
//! [--threads N] [--quick] [--bench-out FILE] [--json FILE]`
//!
//! Always writes the machine-readable perf trajectory
//! `BENCH_explore.json` (override with `--bench-out`).

use std::time::Instant;
use vliw_bench::BenchCli;
use vliw_binding::BinderConfig;
use vliw_explore::{Exploration, Explorer, ExplorerConfig};
use vliw_kernels::Kernel;

const KERNELS: [Kernel; 3] = [Kernel::Arf, Kernel::Ewf, Kernel::DctDit];

fn frontier_key(e: &Exploration) -> Vec<(String, u32, usize)> {
    e.pareto()
        .iter()
        .map(|p| (p.machine.to_string(), p.latency(), p.moves()))
        .collect()
}

fn main() {
    let cli = BenchCli::from_env(BinderConfig::default());
    // `--threads N` picks the sharded worker count; the default (0 =
    // auto) is replaced by an explicit 4 so the determinism check
    // exercises real sharding even on single-CPU boxes.
    let sharded_threads = if cli.config.threads > 1 {
        cli.config.threads
    } else {
        4
    };
    let bounds = if cli.quick {
        ExplorerConfig {
            max_clusters: 2,
            max_alus_per_cluster: 2,
            max_muls_per_cluster: 1,
            max_total_fus: 5,
            ..ExplorerConfig::default()
        }
    } else {
        ExplorerConfig::default()
    };

    println!(
        "design-space exploration: {} candidates bounds, sharded at {} threads",
        if cli.quick { "quick" } else { "default" },
        if sharded_threads == 0 {
            "auto".to_owned()
        } else {
            sharded_threads.to_string()
        },
    );
    println!(
        "{:<10} {:>6} {:>6} {:>6} {:>7} {:>10} {:>11} {:>9}",
        "kernel", "cands", "eval", "prune", "hit%", "serial ms", "sharded ms", "frontier"
    );

    let mut rows: Vec<serde_json::Value> = Vec::new();
    for kernel in KERNELS {
        let dfg = kernel.build();

        let serial_cfg = Explorer::new(ExplorerConfig {
            threads: 1,
            ..bounds.clone()
        });
        let start = Instant::now();
        let serial = serial_cfg.try_explore(&dfg).expect("kernel DFGs are valid");
        let serial_ms = start.elapsed().as_secs_f64() * 1e3;

        let start = Instant::now();
        let sharded = Explorer::new(ExplorerConfig {
            threads: sharded_threads,
            ..bounds.clone()
        })
        .try_explore(&dfg)
        .expect("kernel DFGs are valid");
        let sharded_ms = start.elapsed().as_secs_f64() * 1e3;

        let unpruned = Explorer::new(ExplorerConfig {
            prune: false,
            threads: 1,
            ..bounds.clone()
        })
        .try_explore(&dfg)
        .expect("kernel DFGs are valid");

        // The determinism and pruning contracts, checked on every run.
        assert_eq!(
            frontier_key(&serial),
            frontier_key(&sharded),
            "{kernel}: sharded sweep diverged from serial"
        );
        assert_eq!(
            frontier_key(&serial),
            frontier_key(&unpruned),
            "{kernel}: pruning changed the frontier"
        );

        let stats = serial.stats;
        let considered = stats.evaluated + stats.pruned;
        let hit = if considered == 0 {
            0.0
        } else {
            100.0 * stats.pruned as f64 / considered as f64
        };
        println!(
            "{:<10} {:>6} {:>6} {:>6} {:>6.1}% {:>10.1} {:>11.1} {:>9}",
            kernel.name(),
            stats.enumerated,
            stats.evaluated,
            stats.pruned,
            hit,
            serial_ms,
            sharded_ms,
            serial.pareto().len(),
        );

        rows.push(serde_json::json!({
            "kernel": kernel.name(),
            "enumerated": stats.enumerated,
            "evaluated": stats.evaluated,
            "skipped": stats.skipped,
            "pruned": stats.pruned,
            "prune_hit_rate": hit / 100.0,
            "serial_ms": serial_ms,
            "sharded_ms": sharded_ms,
            "sharded_threads": sharded_threads,
            "frontier": serial.pareto().iter().map(|p| serde_json::json!({
                "machine": p.machine.to_string(),
                "area": p.area,
                "latency": p.latency(),
                "moves": p.moves(),
                "rf_ports": p.worst_rf_ports,
            })).collect::<Vec<_>>(),
        }));
    }

    let mut text = serde_json::to_string_pretty(&serde_json::json!({
        "schema": "vliw-perf-trajectory-v1",
        "table": "explore",
        "meta": vliw_bench::runner::RunMeta::capture(sharded_threads),
        "rows": rows,
    }))
    .expect("serializable");
    text.push('\n');
    let out = cli.bench_out_or("BENCH_explore.json");
    vliw_bench::runner::write_or_exit(&out, &text);
    println!("\nwrote perf trajectory to {out}");
    if let Some(path) = &cli.json_path {
        vliw_bench::runner::write_or_exit(path, &text);
        println!("wrote rows to {path}");
    }
    cli.finish();
}
