//! Criterion benchmarks for the substrate layers: bound-DFG
//! construction, list scheduling, timing analysis and the simulator —
//! the per-evaluation costs that dominate B-ITER's and PCC's inner
//! loops.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vliw_binding::Binder;
use vliw_datapath::Machine;
use vliw_dfg::Timing;
use vliw_kernels::Kernel;
use vliw_sched::{BoundDfg, ListScheduler};
use vliw_sim::Simulator;

fn bench_bound_construction(c: &mut Criterion) {
    let machine = Machine::parse("[2,1|1,1]").expect("datapath parses");
    let mut group = c.benchmark_group("bound_dfg");
    for kernel in [Kernel::Arf, Kernel::DctDit, Kernel::DctDit2] {
        let dfg = kernel.build();
        let binding = Binder::new(&machine).bind_initial(&dfg).binding;
        group.bench_with_input(BenchmarkId::from_parameter(kernel), &dfg, |b, dfg| {
            b.iter(|| BoundDfg::new(dfg, &machine, &binding).move_count())
        });
    }
    group.finish();
}

fn bench_list_scheduler(c: &mut Criterion) {
    let machine = Machine::parse("[2,1|1,1]").expect("datapath parses");
    let mut group = c.benchmark_group("list_schedule");
    for kernel in [Kernel::Arf, Kernel::DctDit, Kernel::DctDit2] {
        let dfg = kernel.build();
        let result = Binder::new(&machine).bind_initial(&dfg);
        group.bench_with_input(
            BenchmarkId::from_parameter(kernel),
            &result.bound,
            |b, bound| b.iter(|| ListScheduler::new(&machine).schedule(bound).latency()),
        );
    }
    group.finish();
}

fn bench_timing_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("timing");
    for kernel in [Kernel::Arf, Kernel::DctDit2] {
        let dfg = kernel.build();
        let lat = vec![1u32; dfg.len()];
        group.bench_with_input(BenchmarkId::from_parameter(kernel), &dfg, |b, dfg| {
            b.iter(|| Timing::with_critical_path(dfg, &lat).critical_path_len())
        });
    }
    group.finish();
}

fn bench_simulator(c: &mut Criterion) {
    let machine = Machine::parse("[2,1|1,1]").expect("datapath parses");
    let mut group = c.benchmark_group("simulate");
    for kernel in [Kernel::Arf, Kernel::DctDit2] {
        let dfg = kernel.build();
        let result = Binder::new(&machine).bind_initial(&dfg);
        group.bench_function(BenchmarkId::from_parameter(kernel), |b| {
            b.iter(|| {
                Simulator::new(&machine)
                    .run(&result.bound, &result.schedule)
                    .expect("valid")
                    .cycles
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_bound_construction,
    bench_list_scheduler,
    bench_timing_analysis,
    bench_simulator
);
criterion_main!(benches);
