//! Criterion benchmarks for the CPU-time columns of the paper's tables:
//! B-INIT (the `msec` columns), PCC (`msec`), and the full B-ITER driver
//! (the `sec` column), one group per benchmark kernel on a representative
//! datapath.
//!
//! The paper measured an IBM RS6000; only the *relative* ordering
//! (B-INIT ≪ PCC ≪ B-ITER) is expected to transfer.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vliw_binding::{Binder, BinderConfig};
use vliw_datapath::Machine;
use vliw_kernels::Kernel;
use vliw_pcc::Pcc;

/// (kernel, datapath) pairs mirroring Table 1's two-cluster rows.
fn workloads() -> Vec<(Kernel, Machine)> {
    Kernel::ALL
        .into_iter()
        .map(|k| (k, Machine::parse("[2,1|1,1]").expect("datapath parses")))
        .collect()
}

fn bench_b_init(c: &mut Criterion) {
    let mut group = c.benchmark_group("b_init");
    for (kernel, machine) in workloads() {
        let dfg = kernel.build();
        let binder = Binder::new(&machine);
        group.bench_with_input(BenchmarkId::from_parameter(kernel), &dfg, |b, dfg| {
            b.iter(|| binder.bind_initial(dfg).latency())
        });
    }
    group.finish();
}

fn bench_pcc(c: &mut Criterion) {
    let mut group = c.benchmark_group("pcc");
    group.sample_size(20);
    for (kernel, machine) in workloads() {
        let dfg = kernel.build();
        let pcc = Pcc::new(&machine);
        group.bench_with_input(BenchmarkId::from_parameter(kernel), &dfg, |b, dfg| {
            b.iter(|| pcc.bind(dfg).latency())
        });
    }
    group.finish();
}

fn bench_b_iter(c: &mut Criterion) {
    let mut group = c.benchmark_group("b_iter");
    group.sample_size(10);
    for (kernel, machine) in workloads() {
        let dfg = kernel.build();
        let binder = Binder::new(&machine);
        group.bench_with_input(BenchmarkId::from_parameter(kernel), &dfg, |b, dfg| {
            b.iter(|| binder.bind(dfg).latency())
        });
    }
    group.finish();
}

fn bench_table2_parameters(c: &mut Criterion) {
    // Table 2: the FFT kernel on the 5-cluster machine over the bus
    // parameter grid.
    let mut group = c.benchmark_group("table2_fft");
    group.sample_size(10);
    let dfg = Kernel::Fft.build();
    for (buses, move_lat) in [(1u32, 1u32), (2, 1), (1, 2), (2, 2)] {
        let machine = Machine::parse("[2,2|2,1|2,2|3,1|1,1]")
            .expect("datapath parses")
            .with_bus_count(buses)
            .with_move_latency(move_lat);
        let config = BinderConfig::default();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("nb{buses}_lat{move_lat}")),
            &dfg,
            |b, dfg| {
                b.iter(|| {
                    Binder::with_config(&machine, config.clone())
                        .bind(dfg)
                        .latency()
                })
            },
        );
    }
    group.finish();
}

fn bench_parallel_eval(c: &mut Criterion) {
    // Serial vs. parallel candidate evaluation on the full B-ITER driver
    // (the tentpole hot path), plus the cache-off ablation. The outputs
    // are bit-identical across rows; only wall-clock may differ. The
    // eval-cache hit rate of each configuration is printed alongside so
    // a speedup can be attributed to threads vs. memoization.
    let mut group = c.benchmark_group("parallel_eval");
    group.sample_size(10);
    let machine = Machine::parse("[2,1|1,1]").expect("datapath parses");
    let dfg = Kernel::DctLee.build();
    for (label, threads, cache) in [
        ("serial_nocache", 1usize, false),
        ("serial_cached", 1, true),
        ("threads4_cached", 4, true),
    ] {
        let config = BinderConfig {
            threads,
            eval_cache: cache,
            ..BinderConfig::default()
        };
        let binder = Binder::with_config(&machine, config);
        let (result, stats) = binder.bind_with_stats(&dfg);
        println!(
            "parallel_eval/{label}: (L, N_MV) = {:?}, eval-cache hit rate {:.1}%",
            result.lm(),
            100.0 * stats.hit_rate()
        );
        group.bench_with_input(BenchmarkId::from_parameter(label), &dfg, |b, dfg| {
            b.iter(|| binder.bind(dfg).latency())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_b_init,
    bench_pcc,
    bench_b_iter,
    bench_table2_parameters,
    bench_parallel_eval
);
criterion_main!(benches);
