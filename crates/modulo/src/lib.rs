//! Modulo scheduling (software pipelining) with cluster binding.
//!
//! The paper's Section 4 discusses binding in the context of modulo
//! scheduling (Nystrom & Eichenberger; Fernandes, Llosa & Topham;
//! Sánchez & González), whose objective is to minimize a loop's
//! *initiation interval* (II) — the number of cycles between starting
//! successive iterations — rather than a single block's latency. The
//! authors argue their binder applies there too: pick the transformation
//! (retiming, unrolling), then produce "a final, high quality binding
//! and scheduling solution" for the transformed body. This crate closes
//! that loop:
//!
//! * [`LoopDfg`] — a loop body: an acyclic DFG plus its loop-carried
//!   dependences ([`vliw_dfg::LoopCarry`]);
//! * [`mii`] — the classical lower bounds: resource MII and recurrence
//!   MII (positive-cycle test via Bellman-Ford under a binary search);
//! * [`bind_loop`] — binds the body with the paper's algorithm and
//!   materializes intra-iteration *and* loop-carried inter-cluster
//!   transfers;
//! * [`ModuloBinder`] — the II-driven driver: the paper's
//!   starts-plus-perturbation architecture steered by `(II, moves)`
//!   instead of block latency;
//! * [`ModuloScheduler`] — restart-based iterative modulo scheduling
//!   over per-cluster modulo reservation tables and the bus, searching
//!   upward from MII;
//! * [`ModuloSchedule::validate`] — independent re-check of every
//!   dependence inequality `start(v) + II·dist ≥ start(u) + lat(u)` and
//!   every reservation-table bound;
//! * [`expand()`](expand()) — overlap `k` iterations into a flat schedule and
//!   re-verify it with the *block-level* rules (an independent oracle
//!   for the modulo scheduler, and the shape of the generated
//!   prologue/kernel/epilogue code).
//!
//! # Example
//!
//! A complex multiply-accumulate loop software-pipelined onto two
//! clusters:
//!
//! ```
//! use vliw_datapath::Machine;
//! use vliw_dfg::{DfgBuilder, LoopCarry, OpType};
//! use vliw_modulo::{bind_loop, LoopDfg, ModuloScheduler};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = DfgBuilder::new();
//! let m = b.add_op(OpType::Mul, &[]);
//! let acc = b.add_op(OpType::Add, &[m]);
//! let body = b.finish()?;
//! let looped = LoopDfg::new(body, vec![LoopCarry::next_iteration(acc, acc)])?;
//!
//! let machine = Machine::parse("[1,1|1,1]")?;
//! let bound = bind_loop(&looped, &machine, &Default::default());
//! let schedule = ModuloScheduler::new(&machine).schedule(&bound)
//!     .expect("schedulable");
//! // The accumulator recurrence forces II >= 1; one mul + one add fit.
//! assert_eq!(schedule.ii(), 1);
//! schedule.validate(&bound, &machine)?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bound_loop;
mod driver;
pub mod expand;
pub mod listing;
pub mod mii;
mod sched;

pub use bound_loop::{bind_loop, bound_loop_with, BoundLoop, LoopDfg, LoopDfgError};
pub use driver::ModuloBinder;
pub use expand::{expand, ExpandedSchedule};
pub use sched::{ModuloSchedule, ModuloScheduleError, ModuloScheduler};
