//! Restart-based iterative modulo scheduling.
//!
//! For a candidate initiation interval `II`, every resource is a modulo
//! reservation table (MRT) of `II` slots: an operation starting at cycle
//! `s` occupies slots `(s+k) mod II` for `k < dii`, once per `k` — so a
//! non-pipelined unit whose `dii` exceeds `II` correctly demands several
//! units. Operations are placed in decreasing-height order with both
//! forward (scheduled producers) and backward (scheduled consumers)
//! dependence bounds; a failure restarts at `II + 1` (Rau's IMS with
//! eviction would retry in place — the restart variant is simpler and
//! adequate at these kernel sizes).

use crate::bound_loop::BoundLoop;
use crate::mii;
use std::error::Error;
use std::fmt;
use vliw_datapath::Machine;
use vliw_dfg::{FuType, OpId};

/// Error reported by [`ModuloSchedule::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModuloScheduleError {
    /// A dependence inequality `start(v) + II·dist ≥ start(u) + lat(u)`
    /// is violated.
    Precedence {
        /// Producer operation.
        producer: OpId,
        /// Consumer operation.
        consumer: OpId,
        /// Dependence distance in iterations (0 = intra-iteration).
        distance: u32,
    },
    /// A modulo-reservation-table slot exceeds its resource capacity.
    Overload {
        /// Cluster index (`usize::MAX` for the bus).
        cluster: usize,
        /// The overloaded slot.
        slot: u32,
    },
    /// The schedule does not cover the bound loop body.
    WrongLength {
        /// Entries provided.
        got: usize,
        /// Operations in the body.
        expected: usize,
    },
}

impl fmt::Display for ModuloScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModuloScheduleError::Precedence {
                producer,
                consumer,
                distance,
            } => write!(
                f,
                "{consumer} violates its dependence on {producer} (distance {distance})"
            ),
            ModuloScheduleError::Overload { cluster, slot } => {
                if *cluster == usize::MAX {
                    write!(f, "bus reservation table overloaded at slot {slot}")
                } else {
                    write!(
                        f,
                        "cluster cl{cluster} reservation table overloaded at slot {slot}"
                    )
                }
            }
            ModuloScheduleError::WrongLength { got, expected } => {
                write!(f, "schedule covers {got} ops, body has {expected}")
            }
        }
    }
}

impl Error for ModuloScheduleError {}

/// A modulo schedule: per-operation start cycles at a fixed initiation
/// interval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModuloSchedule {
    start: Vec<u32>,
    ii: u32,
}

impl ModuloSchedule {
    /// The achieved initiation interval (cycles per iteration in steady
    /// state — the figure of merit of modulo scheduling).
    pub fn ii(&self) -> u32 {
        self.ii
    }

    /// Start cycle of a bound operation within its iteration's frame.
    pub fn start(&self, v: OpId) -> u32 {
        self.start[v.index()]
    }

    /// Number of scheduled operations.
    pub fn len(&self) -> usize {
        self.start.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.start.is_empty()
    }

    /// Number of pipeline stages (`⌈span / II⌉`): how many iterations
    /// are in flight in steady state, which sizes the prologue/epilogue.
    pub fn stage_count(&self, bound: &BoundLoop, machine: &Machine) -> u32 {
        let lat = bound.latencies(machine);
        let span = bound
            .dfg()
            .op_ids()
            .map(|v| self.start(v) + lat[v.index()])
            .max()
            .unwrap_or(0);
        span.div_ceil(self.ii.max(1))
    }

    /// Independently re-checks every dependence inequality and every
    /// reservation-table bound.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(
        &self,
        bound: &BoundLoop,
        machine: &Machine,
    ) -> Result<(), ModuloScheduleError> {
        let dfg = bound.dfg();
        if self.start.len() != dfg.len() {
            return Err(ModuloScheduleError::WrongLength {
                got: self.start.len(),
                expected: dfg.len(),
            });
        }
        let lat = bound.latencies(machine);
        for (u, v) in dfg.edges() {
            if self.start(v) < self.start(u) + lat[u.index()] {
                return Err(ModuloScheduleError::Precedence {
                    producer: u,
                    consumer: v,
                    distance: 0,
                });
            }
        }
        for &(u, v, d) in bound.carried() {
            if (self.start(v) as u64) + (self.ii as u64) * (d as u64)
                < (self.start(u) + lat[u.index()]) as u64
            {
                return Err(ModuloScheduleError::Precedence {
                    producer: u,
                    consumer: v,
                    distance: d,
                });
            }
        }
        // Reservation tables.
        let ii = self.ii as usize;
        let mut mrt = vec![[0u32; 2].map(|_| vec![0u32; ii]); machine.cluster_count()];
        let mut bus = vec![0u32; ii];
        for v in dfg.op_ids() {
            let t = dfg.op_type(v).fu_type();
            let dii = machine.dii(t);
            for k in 0..dii {
                let slot = ((self.start(v) + k) as usize) % ii;
                match t {
                    FuType::Bus => bus[slot] += 1,
                    _ => mrt[bound.cluster_of(v).index()][t.index()][slot] += 1,
                }
            }
        }
        for (ci, per_type) in mrt.iter().enumerate() {
            for t in FuType::REGULAR {
                let cap = machine.fu_count(vliw_datapath::ClusterId::from_index(ci), t);
                for (slot, &used) in per_type[t.index()].iter().enumerate() {
                    if used > cap {
                        return Err(ModuloScheduleError::Overload {
                            cluster: ci,
                            slot: slot as u32,
                        });
                    }
                }
            }
        }
        for (slot, &used) in bus.iter().enumerate() {
            if used > machine.bus_count() {
                return Err(ModuloScheduleError::Overload {
                    cluster: usize::MAX,
                    slot: slot as u32,
                });
            }
        }
        Ok(())
    }
}

/// The modulo scheduler.
#[derive(Debug, Clone, Copy)]
pub struct ModuloScheduler<'m> {
    machine: &'m Machine,
    max_ii: u32,
}

impl<'m> ModuloScheduler<'m> {
    /// A scheduler with the default II cap (the fully serial iteration —
    /// always sufficient).
    pub fn new(machine: &'m Machine) -> Self {
        ModuloScheduler {
            machine,
            max_ii: u32::MAX,
        }
    }

    /// Restricts the II search to `max_ii` (useful to bound work when
    /// only near-MII schedules are interesting).
    pub fn with_max_ii(machine: &'m Machine, max_ii: u32) -> Self {
        ModuloScheduler { machine, max_ii }
    }

    /// Searches upward from `MII` for the smallest II the restart-based
    /// placement achieves. Returns `None` only if the cap cut the search
    /// short.
    pub fn schedule(&self, bound: &BoundLoop) -> Option<ModuloSchedule> {
        if bound.dfg().is_empty() {
            return Some(ModuloSchedule {
                start: Vec::new(),
                ii: 1,
            });
        }
        let lat = bound.latencies(self.machine);
        let serial: u32 = lat.iter().sum();
        let cap = self.max_ii.min(serial.max(1) + 1);
        let start_ii = mii::mii(bound, self.machine);
        (start_ii..=cap).find_map(|ii| self.schedule_at(bound, ii))
    }

    /// Attempts a schedule at exactly `ii`.
    pub fn schedule_at(&self, bound: &BoundLoop, ii: u32) -> Option<ModuloSchedule> {
        let machine = self.machine;
        let dfg = bound.dfg();
        let n = dfg.len();
        let lat = bound.latencies(machine);

        // Height-based priority over intra-iteration edges.
        let order = vliw_dfg::topo_order(dfg).expect("body is acyclic"); // lint:allow(no-panic)
        let mut height = vec![0u32; n];
        for &v in order.iter().rev() {
            let below = dfg
                .succs(v)
                .iter()
                .map(|&s| height[s.index()])
                .max()
                .unwrap_or(0);
            height[v.index()] = lat[v.index()] + below;
        }
        let mut place_order: Vec<OpId> = dfg.op_ids().collect();
        place_order.sort_by_key(|&v| (std::cmp::Reverse(height[v.index()]), v));

        let ii_us = ii as usize;
        let mut mrt = vec![[0u32; 2].map(|_| vec![0u32; ii_us]); machine.cluster_count()];
        let mut bus = vec![0u32; ii_us];
        let mut start: Vec<Option<u32>> = vec![None; n];

        // Edge lists per op for bound computation (intra dist 0 +
        // carried with distance).
        let mut in_edges: Vec<Vec<(OpId, u32)>> = vec![Vec::new(); n];
        let mut out_edges: Vec<Vec<(OpId, u32)>> = vec![Vec::new(); n];
        for (u, v) in dfg.edges() {
            in_edges[v.index()].push((u, 0));
            out_edges[u.index()].push((v, 0));
        }
        for &(u, v, d) in bound.carried() {
            in_edges[v.index()].push((u, d));
            out_edges[u.index()].push((v, d));
        }

        for v in place_order {
            let mut earliest: i64 = 0;
            for &(u, d) in &in_edges[v.index()] {
                if let Some(su) = start[u.index()] {
                    earliest =
                        earliest.max(su as i64 + lat[u.index()] as i64 - ii as i64 * d as i64);
                }
            }
            let mut latest: i64 = i64::MAX;
            for &(w, d) in &out_edges[v.index()] {
                if let Some(sw) = start[w.index()] {
                    latest = latest.min(sw as i64 - lat[v.index()] as i64 + ii as i64 * d as i64);
                }
            }
            let earliest = earliest.max(0) as u32;
            if latest < earliest as i64 {
                return None;
            }
            let window_end = (earliest as i64 + ii as i64 - 1).min(latest) as u32;
            let t = dfg.op_type(v).fu_type();
            let dii = machine.dii(t);
            let cap = match t {
                FuType::Bus => machine.bus_count(),
                _ => machine.fu_count(bound.cluster_of(v), t),
            };
            let table: &mut Vec<u32> = match t {
                FuType::Bus => &mut bus,
                _ => &mut mrt[bound.cluster_of(v).index()][t.index()],
            };
            let mut placed = false;
            's: for s in earliest..=window_end {
                for k in 0..dii {
                    if table[((s + k) as usize) % ii_us] + 1 > cap {
                        continue 's;
                    }
                }
                for k in 0..dii {
                    table[((s + k) as usize) % ii_us] += 1;
                }
                start[v.index()] = Some(s);
                placed = true;
                break;
            }
            if !placed {
                return None;
            }
        }
        let start: Vec<u32> = start.into_iter().map(|s| s.expect("all placed")).collect(); // lint:allow(no-panic)
        let schedule = ModuloSchedule { start, ii };
        debug_assert_eq!(schedule.validate(bound, machine), Ok(()));
        Some(schedule)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bound_loop::{bind_loop, LoopDfg};
    use vliw_binding::BinderConfig;
    use vliw_dfg::{DfgBuilder, LoopCarry, OpType};

    fn schedule_loop(
        body_build: impl FnOnce(&mut DfgBuilder) -> Vec<LoopCarry>,
        machine_text: &str,
    ) -> (BoundLoop, ModuloSchedule, Machine) {
        let mut b = DfgBuilder::new();
        let carries = body_build(&mut b);
        let body = b.finish().expect("acyclic");
        let looped = LoopDfg::new(body, carries).expect("valid");
        let machine = Machine::parse(machine_text).expect("machine");
        let bound = bind_loop(&looped, &machine, &BinderConfig::default());
        let schedule = ModuloScheduler::new(&machine)
            .schedule(&bound)
            .expect("schedulable");
        schedule.validate(&bound, &machine).expect("valid");
        (bound, schedule, machine)
    }

    #[test]
    fn mac_pipelines_to_ii_one() {
        let (_, schedule, _) = schedule_loop(
            |b| {
                let m = b.add_op(OpType::Mul, &[]);
                let acc = b.add_op(OpType::Add, &[m]);
                vec![LoopCarry::next_iteration(acc, acc)]
            },
            "[1,1]",
        );
        assert_eq!(schedule.ii(), 1);
    }

    #[test]
    fn resource_pressure_raises_ii() {
        // Three independent adds per iteration on one ALU: II = 3.
        let (_, schedule, _) = schedule_loop(
            |b| {
                for _ in 0..3 {
                    b.add_op(OpType::Add, &[]);
                }
                vec![]
            },
            "[1,1]",
        );
        assert_eq!(schedule.ii(), 3);
    }

    #[test]
    fn recurrence_dominates_when_serial() {
        use vliw_datapath::{Cluster, MachineBuilder};
        // acc = acc + x with a 2-cycle non-pipelined adder: II = 2 even
        // though resources are plentiful.
        let mut b = DfgBuilder::new();
        let acc = b.add_op(OpType::Add, &[]);
        let body = b.finish().expect("acyclic");
        let looped = LoopDfg::new(body, vec![LoopCarry::next_iteration(acc, acc)]).expect("valid");
        let machine = MachineBuilder::new()
            .cluster(Cluster::new(4, 1))
            .op_latency(OpType::Add, 2)
            .fu_dii(vliw_dfg::FuType::Alu, 2)
            .build()
            .expect("machine");
        let bound = bind_loop(&looped, &machine, &BinderConfig::default());
        let schedule = ModuloScheduler::new(&machine)
            .schedule(&bound)
            .expect("schedulable");
        assert_eq!(schedule.ii(), 2);
    }

    #[test]
    fn clustering_halves_ii_of_wide_loops() {
        // Eight independent adds: one [1,1] cluster -> II 8; two clusters
        // -> II 4 (binder splits the work).
        let build = |b: &mut DfgBuilder| {
            for _ in 0..8 {
                b.add_op(OpType::Add, &[]);
            }
            Vec::new()
        };
        let (_, narrow, _) = schedule_loop(build, "[1,1]");
        assert_eq!(narrow.ii(), 8);
        let (_, wide, _) = schedule_loop(build, "[1,1|1,1]");
        assert_eq!(wide.ii(), 4);
    }

    #[test]
    fn carried_cross_cluster_value_costs_bus_slots() {
        // Producer on cluster 1 (only multiplier), carried consumer on
        // cluster 0: the carried move occupies the bus each iteration and
        // the dependence chain mul -> move -> add spans iterations.
        let (bound, schedule, machine) = schedule_loop(
            |b| {
                let m = b.add_op(OpType::Mul, &[]);
                let a = b.add_op(OpType::Add, &[]);
                let s = b.add_op(OpType::Add, &[a]);
                vec![LoopCarry::next_iteration(m, s)]
            },
            "[2,0|0,1]",
        );
        assert_eq!(bound.move_count(), 1);
        assert!(schedule.ii() >= 1);
        assert!(schedule.stage_count(&bound, &machine) >= 1);
    }

    #[test]
    fn deep_recurrence_chain_sets_ii() {
        // Recurrence: three chained adds feeding back with distance 1:
        // RecMII = 3 and the scheduler achieves it.
        let (_, schedule, _) = schedule_loop(
            |b| {
                let a1 = b.add_op(OpType::Add, &[]);
                let a2 = b.add_op(OpType::Add, &[a1]);
                let a3 = b.add_op(OpType::Add, &[a2]);
                vec![LoopCarry::next_iteration(a3, a1)]
            },
            "[2,1]",
        );
        assert_eq!(schedule.ii(), 3);
    }

    #[test]
    fn kernels_can_be_software_pipelined_back_to_back() {
        // The EWF body with its filter states wired as carried deps:
        // the canonical "can we pipeline a real kernel" smoke test.
        let dfg = vliw_kernels::ewf();
        let find = |name: &str| {
            dfg.op_ids()
                .find(|&v| dfg.name(v) == Some(name))
                .unwrap_or_else(|| panic!("{name} exists"))
        };
        let carries = vec![
            LoopCarry::next_iteration(find("A1.s'"), find("A1.t")),
            LoopCarry::next_iteration(find("A2.s2'"), find("A2.t1")),
            LoopCarry::next_iteration(find("A2.s1'"), find("A2.t2")),
            LoopCarry::next_iteration(find("B1.s2'"), find("B1.t1")),
            LoopCarry::next_iteration(find("B1.s1'"), find("B1.t2")),
            LoopCarry::next_iteration(find("B2.s2'"), find("B2.t1")),
            LoopCarry::next_iteration(find("B2.s1'"), find("B2.t2")),
        ];
        let looped = LoopDfg::new(dfg, carries).expect("valid");
        let machine = Machine::parse("[2,1|2,1]").expect("machine");
        let bound = bind_loop(&looped, &machine, &BinderConfig::default());
        let schedule = ModuloScheduler::new(&machine)
            .schedule(&bound)
            .expect("schedulable");
        schedule.validate(&bound, &machine).expect("valid");
        // The adaptor recurrences (t -> u -> s' feeding back) bound II
        // from below; block latency 14 from Table 1 is the non-pipelined
        // reference, so II must land well under it.
        assert!(schedule.ii() >= crate::mii::rec_mii(&bound, &machine));
        assert!(schedule.ii() < 14, "got II = {}", schedule.ii());
    }

    #[test]
    fn schedule_at_rejects_sub_mii() {
        let (bound, schedule, machine) = schedule_loop(
            |b| {
                for _ in 0..3 {
                    b.add_op(OpType::Add, &[]);
                }
                vec![]
            },
            "[1,1]",
        );
        assert_eq!(schedule.ii(), 3);
        assert!(ModuloScheduler::new(&machine)
            .schedule_at(&bound, 2)
            .is_none());
    }

    #[test]
    fn validate_catches_corruption() {
        let (bound, schedule, machine) = schedule_loop(
            |b| {
                let m = b.add_op(OpType::Mul, &[]);
                let acc = b.add_op(OpType::Add, &[m]);
                vec![LoopCarry::next_iteration(acc, acc)]
            },
            "[1,1]",
        );
        let mut bad = schedule.clone();
        // Swap the chain order: consumer before producer.
        bad.start.swap(0, 1);
        assert!(bad.validate(&bound, &machine).is_err());
    }
}
