//! Minimum initiation interval bounds.
//!
//! `MII = max(ResMII, RecMII)`:
//!
//! * **ResMII** — resource bound: some resource must execute its share
//!   of every iteration, so `II ≥ ⌈work / capacity⌉` for every
//!   (cluster, FU type) and for the bus;
//! * **RecMII** — recurrence bound: every dependence cycle through
//!   loop-carried edges must satisfy `II ≥ ⌈Σ lat / Σ dist⌉`; computed
//!   by binary search over `II` with a positive-cycle (Bellman-Ford)
//!   feasibility test on edge weights `lat(u) − II·dist`.

use crate::bound_loop::BoundLoop;
use vliw_datapath::Machine;
use vliw_dfg::FuType;

/// Resource-constrained lower bound on the initiation interval for a
/// *bound* loop body: the busiest (cluster, FU type) pair or the bus.
pub fn res_mii(bound: &BoundLoop, machine: &Machine) -> u32 {
    let dfg = bound.dfg();
    let mut work = vec![[0u32; 2]; machine.cluster_count()];
    let mut bus_work = 0u32;
    for v in dfg.op_ids() {
        let t = dfg.op_type(v).fu_type();
        match t {
            FuType::Bus => bus_work += machine.dii(t),
            _ => work[bound.cluster_of(v).index()][t.index()] += machine.dii(t),
        }
    }
    let mut mii = 1;
    for (ci, per_type) in work.iter().enumerate() {
        for t in FuType::REGULAR {
            let w = per_type[t.index()];
            if w == 0 {
                continue;
            }
            let n = machine.fu_count(vliw_datapath::ClusterId::from_index(ci), t);
            assert!(n > 0, "work bound to a cluster without the FU type");
            mii = mii.max(w.div_ceil(n));
        }
    }
    if bus_work > 0 {
        mii = mii.max(bus_work.div_ceil(machine.bus_count()));
    }
    mii
}

/// Recurrence-constrained lower bound on the initiation interval.
///
/// Returns 1 when the loop has no carried dependences (no recurrences).
pub fn rec_mii(bound: &BoundLoop, machine: &Machine) -> u32 {
    if bound.carried().is_empty() {
        return 1;
    }
    let lat = bound.latencies(machine);
    let hi: u32 = lat.iter().sum::<u32>().max(1);
    // Feasibility is monotone in II: search the smallest feasible value.
    let mut lo = 1u32;
    let mut hi = hi;
    debug_assert!(ii_feasible(bound, &lat, hi));
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if ii_feasible(bound, &lat, mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    lo
}

/// Whether the dependence inequalities admit *some* assignment of start
/// times at initiation interval `ii` (ignoring resources): true iff the
/// constraint graph with weights `lat(u) − ii·dist` has no positive
/// cycle.
fn ii_feasible(bound: &BoundLoop, lat: &[u32], ii: u32) -> bool {
    let dfg = bound.dfg();
    let n = dfg.len();
    // Bellman-Ford longest-path relaxation from a virtual source at 0.
    let mut dist = vec![0i64; n];
    let edges: Vec<(usize, usize, i64)> = dfg
        .edges()
        .map(|(u, v)| (u.index(), v.index(), lat[u.index()] as i64))
        .chain(bound.carried().iter().map(|&(u, v, d)| {
            (
                u.index(),
                v.index(),
                lat[u.index()] as i64 - (ii as i64) * d as i64,
            )
        }))
        .collect();
    for _ in 0..n {
        let mut changed = false;
        for &(u, v, w) in &edges {
            if dist[u] + w > dist[v] {
                dist[v] = dist[u] + w;
                changed = true;
            }
        }
        if !changed {
            return true;
        }
    }
    // Still relaxing after n rounds: positive cycle.
    false
}

/// `MII = max(ResMII, RecMII)`.
pub fn mii(bound: &BoundLoop, machine: &Machine) -> u32 {
    res_mii(bound, machine).max(rec_mii(bound, machine))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bound_loop::{bind_loop, LoopDfg};
    use vliw_binding::BinderConfig;
    use vliw_dfg::{DfgBuilder, LoopCarry, OpType};

    fn bound_mac(machine: &Machine, distance: u32) -> BoundLoop {
        let mut b = DfgBuilder::new();
        let m = b.add_op(OpType::Mul, &[]);
        let acc = b.add_op(OpType::Add, &[m]);
        let body = b.finish().expect("acyclic");
        let looped = LoopDfg::new(
            body,
            vec![LoopCarry {
                from: acc,
                to: acc,
                distance,
            }],
        )
        .expect("valid");
        bind_loop(&looped, machine, &BinderConfig::default())
    }

    #[test]
    fn rec_mii_of_unit_accumulator_is_one() {
        let machine = Machine::parse("[1,1]").expect("machine");
        let bound = bound_mac(&machine, 1);
        assert_eq!(rec_mii(&bound, &machine), 1);
    }

    #[test]
    fn rec_mii_scales_with_latency_over_distance() {
        use vliw_datapath::{Cluster, MachineBuilder};
        // Make the accumulator a 3-cycle operation: Σlat/Σdist = 3.
        let machine = MachineBuilder::new()
            .cluster(Cluster::new(1, 1))
            .op_latency(OpType::Add, 3)
            .build()
            .expect("machine");
        let bound = bound_mac(&machine, 1);
        assert_eq!(rec_mii(&bound, &machine), 3);
        // Distance 2 halves it (rounded up).
        let bound2 = bound_mac(&machine, 2);
        assert_eq!(rec_mii(&bound2, &machine), 2);
    }

    #[test]
    fn res_mii_tracks_the_busiest_unit() {
        // Four adds + one mul on [1,1]: the ALU needs 4 slots.
        let mut b = DfgBuilder::new();
        let m = b.add_op(OpType::Mul, &[]);
        let mut prev = b.add_op(OpType::Add, &[m]);
        for _ in 0..3 {
            prev = b.add_op(OpType::Add, &[prev]);
        }
        let body = b.finish().expect("acyclic");
        let looped = LoopDfg::new(body, vec![]).expect("valid");
        let machine = Machine::parse("[1,1]").expect("machine");
        let bound = bind_loop(&looped, &machine, &BinderConfig::default());
        assert_eq!(res_mii(&bound, &machine), 4);
        // With two ALUs the bound halves.
        let machine2 = Machine::parse("[2,1]").expect("machine");
        let bound2 = bind_loop(&looped, &machine2, &BinderConfig::default());
        assert_eq!(res_mii(&bound2, &machine2), 2);
    }

    #[test]
    fn bus_work_bounds_res_mii() {
        // Three values crossing clusters every iteration on one bus.
        let mut b = DfgBuilder::new();
        let mut muls = Vec::new();
        for _ in 0..3 {
            muls.push(b.add_op(OpType::Mul, &[]));
        }
        for &m in &muls {
            b.add_op(OpType::Add, &[m]);
        }
        let body = b.finish().expect("acyclic");
        let looped = LoopDfg::new(body, vec![]).expect("valid");
        let machine = Machine::parse("[3,0|0,3]")
            .expect("machine")
            .with_bus_count(1);
        let bound = bind_loop(&looped, &machine, &BinderConfig::default());
        assert_eq!(bound.move_count(), 3);
        assert!(res_mii(&bound, &machine) >= 3);
    }

    #[test]
    fn no_carries_means_rec_mii_one() {
        let mut b = DfgBuilder::new();
        let x = b.add_op(OpType::Add, &[]);
        let _ = b.add_op(OpType::Add, &[x]);
        let body = b.finish().expect("acyclic");
        let looped = LoopDfg::new(body, vec![]).expect("valid");
        let machine = Machine::parse("[1,1]").expect("machine");
        let bound = bind_loop(&looped, &machine, &BinderConfig::default());
        assert_eq!(rec_mii(&bound, &machine), 1);
    }

    #[test]
    fn mii_is_the_max_of_both_bounds() {
        let machine = Machine::parse("[1,1]").expect("machine");
        let bound = bound_mac(&machine, 1);
        assert_eq!(
            mii(&bound, &machine),
            res_mii(&bound, &machine).max(rec_mii(&bound, &machine))
        );
    }
}
