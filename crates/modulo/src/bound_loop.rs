//! Loop bodies, and their bound form with carried transfers.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use vliw_binding::{Binder, BinderConfig};
use vliw_datapath::{ClusterId, Machine};
use vliw_dfg::{Dfg, DfgBuilder, LoopCarry, OpId, OpType};

/// Error constructing a [`LoopDfg`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoopDfgError {
    /// A carry references an operation outside the body.
    UnknownOp(OpId),
    /// A carry has distance zero (that is an ordinary edge).
    ZeroDistance {
        /// Producer of the offending carry.
        from: OpId,
        /// Consumer of the offending carry.
        to: OpId,
    },
    /// The body contains `move` operations (binding inserts those).
    BodyHasMoves(OpId),
}

impl fmt::Display for LoopDfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoopDfgError::UnknownOp(v) => write!(f, "carry references unknown operation {v}"),
            LoopDfgError::ZeroDistance { from, to } => {
                write!(
                    f,
                    "carry {from} -> {to} has distance 0 (use an ordinary edge)"
                )
            }
            LoopDfgError::BodyHasMoves(v) => {
                write!(f, "loop body already contains a move operation ({v})")
            }
        }
    }
}

impl Error for LoopDfgError {}

/// A loop body: an acyclic intra-iteration DFG plus the loop-carried
/// dependences closing the recurrences.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopDfg {
    body: Dfg,
    carries: Vec<LoopCarry>,
}

impl LoopDfg {
    /// Wraps a body and its carried dependences. Duplicate carries (the
    /// same producer, consumer and distance listed twice — e.g. a
    /// consumer reading the carried value as both operands) are folded
    /// into one: the dependence constraint is idempotent.
    ///
    /// # Errors
    ///
    /// Returns a [`LoopDfgError`] if a carry references a missing
    /// operation or has distance zero, or if the body contains `move`s.
    pub fn new(body: Dfg, mut carries: Vec<LoopCarry>) -> Result<Self, LoopDfgError> {
        for v in body.op_ids() {
            if body.op_type(v) == OpType::Move {
                return Err(LoopDfgError::BodyHasMoves(v));
            }
        }
        for c in &carries {
            for id in [c.from, c.to] {
                if id.index() >= body.len() {
                    return Err(LoopDfgError::UnknownOp(id));
                }
            }
            if c.distance == 0 {
                return Err(LoopDfgError::ZeroDistance {
                    from: c.from,
                    to: c.to,
                });
            }
        }
        carries.sort_by_key(|c| (c.from, c.to, c.distance));
        carries.dedup();
        Ok(LoopDfg { body, carries })
    }

    /// The intra-iteration DFG.
    pub fn body(&self) -> &Dfg {
        &self.body
    }

    /// The loop-carried dependences.
    pub fn carries(&self) -> &[LoopCarry] {
        &self.carries
    }
}

/// A bound loop body: binding applied, intra-iteration transfers
/// materialized as `move` operations in the (acyclic) graph, and
/// loop-carried dependences — including those routed through carried
/// transfers — kept as an explicit distance-annotated edge list.
#[derive(Debug, Clone)]
pub struct BoundLoop {
    dfg: Dfg,
    cluster: Vec<ClusterId>,
    carried: Vec<(OpId, OpId, u32)>,
    move_count: usize,
}

impl BoundLoop {
    /// The acyclic part of the bound body (regular operations plus all
    /// inserted transfers; carried dependences are *not* edges here).
    pub fn dfg(&self) -> &Dfg {
        &self.dfg
    }

    /// Cluster of a bound operation (destination cluster for moves).
    pub fn cluster_of(&self, v: OpId) -> ClusterId {
        self.cluster[v.index()]
    }

    /// Loop-carried dependences `(producer, consumer, distance)` in the
    /// bound id space.
    pub fn carried(&self) -> &[(OpId, OpId, u32)] {
        &self.carried
    }

    /// Total inserted transfers per iteration (intra + carried).
    pub fn move_count(&self) -> usize {
        self.move_count
    }

    /// Per-operation latency vector under `machine`.
    pub fn latencies(&self, machine: &Machine) -> Vec<u32> {
        machine.op_latencies(&self.dfg)
    }
}

/// Binds a loop body with the paper's (block-latency-driven) B-INIT and
/// materializes every inter-cluster transfer. For an II-driven binding
/// use [`crate::ModuloBinder`], which refines this result under the
/// initiation-interval objective.
///
/// The binder sees the acyclic body (recurrences influence scheduling,
/// not target sets); intra-iteration cross-cluster values get moves via
/// the standard bound-DFG construction, and each *carried* value crossing
/// clusters gets a carried move: the transfer executes in the consumer's
/// iteration (`carry.distance` iterations after the producer) and feeds
/// the consumer through an ordinary edge.
///
/// # Panics
///
/// Panics if the machine cannot execute some operation of the body.
pub fn bind_loop(looped: &LoopDfg, machine: &Machine, config: &BinderConfig) -> BoundLoop {
    let body = looped.body();
    let result = Binder::with_config(machine, config.clone()).bind_initial(body);
    bound_loop_with(looped, machine, &result.binding)
}

/// Materializes the bound loop for an explicit binding of the body
/// (the evaluation step of [`crate::ModuloBinder`]).
///
/// # Panics
///
/// Panics if the binding is incomplete or mismatched with the body.
pub fn bound_loop_with(
    looped: &LoopDfg,
    machine: &Machine,
    binding: &vliw_sched::Binding,
) -> BoundLoop {
    let body = looped.body();
    let bound = &vliw_sched::BoundDfg::new(body, machine, binding);

    // Re-emit the bound graph so we can append carried moves.
    let mut b = DfgBuilder::with_capacity(bound.dfg().len() + looped.carries().len());
    let mut cluster: Vec<ClusterId> = Vec::new();
    for v in bound.dfg().op_ids() {
        let preds = bound.dfg().preds(v).to_vec();
        let id = match bound.dfg().name(v) {
            Some(name) => b.add_named_op(bound.dfg().op_type(v), &preds, name),
            None => b.add_op(bound.dfg().op_type(v), &preds),
        };
        debug_assert_eq!(id, v);
        cluster.push(bound.cluster_of(v));
    }

    let mut carried: Vec<(OpId, OpId, u32)> = Vec::new();
    // One carried move per (producer, destination cluster, distance).
    let mut carried_moves: HashMap<(OpId, ClusterId, u32), OpId> = HashMap::new();
    let mut extra_moves = 0usize;
    for carry in looped.carries() {
        let from = bound.bound_of(carry.from);
        let to = bound.bound_of(carry.to);
        let src = bound.cluster_of(from);
        let dst = bound.cluster_of(to);
        if src == dst {
            carried.push((from, to, carry.distance));
            continue;
        }
        let mv = *carried_moves
            .entry((from, dst, carry.distance))
            .or_insert_with(|| {
                let name = format!("{from}=>{dst}@{}", carry.distance);
                let id = b.add_named_op(OpType::Move, &[], &name);
                cluster.push(dst);
                extra_moves += 1;
                // The transfer reads the value produced `distance`
                // iterations earlier...
                carried.push((from, id, carry.distance));
                id
            });
        // ...and feeds the consumer within its own iteration.
        b.add_edge(mv, to).expect("move precedes consumer");
        carried.push((mv, to, 0));
    }
    // Distance-0 entries introduced above are ordinary edges; fold them
    // into the graph instead of the carried list.
    let carried: Vec<(OpId, OpId, u32)> = carried.into_iter().filter(|&(_, _, d)| d > 0).collect();

    let dfg = b.finish().expect("bound loop body is acyclic");
    BoundLoop {
        dfg,
        cluster,
        carried,
        move_count: bound.move_count() + extra_moves,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_dfg::DfgBuilder;

    fn mac() -> LoopDfg {
        let mut b = DfgBuilder::new();
        let m = b.add_op(OpType::Mul, &[]);
        let acc = b.add_op(OpType::Add, &[m]);
        let body = b.finish().expect("acyclic");
        LoopDfg::new(body, vec![LoopCarry::next_iteration(acc, acc)]).expect("valid")
    }

    #[test]
    fn loop_dfg_rejects_bad_carries() {
        let mut b = DfgBuilder::new();
        let v = b.add_op(OpType::Add, &[]);
        let body = b.finish().expect("acyclic");
        assert!(matches!(
            LoopDfg::new(
                body.clone(),
                vec![LoopCarry::next_iteration(OpId::from_index(5), v)]
            ),
            Err(LoopDfgError::UnknownOp(_))
        ));
        assert!(matches!(
            LoopDfg::new(
                body,
                vec![LoopCarry {
                    from: v,
                    to: v,
                    distance: 0
                }]
            ),
            Err(LoopDfgError::ZeroDistance { .. })
        ));
    }

    #[test]
    fn same_cluster_carry_needs_no_transfer() {
        let looped = mac();
        let machine = Machine::parse("[1,1]").expect("machine");
        let bound = bind_loop(&looped, &machine, &BinderConfig::default());
        assert_eq!(bound.move_count(), 0);
        assert_eq!(bound.carried().len(), 1);
        let (from, to, d) = bound.carried()[0];
        assert_eq!(d, 1);
        assert_eq!(bound.cluster_of(from), bound.cluster_of(to));
    }

    #[test]
    fn cross_cluster_carry_gets_a_carried_move() {
        // Force the accumulator's producer and consumer apart: a body
        // where the carry crosses clusters because the consumer's FU type
        // exists on only one cluster.
        let mut b = DfgBuilder::new();
        let m = b.add_op(OpType::Mul, &[]); // cluster 1 (only mul there)
        let a = b.add_op(OpType::Add, &[]); // cheap on cluster 0
        let s = b.add_op(OpType::Add, &[a]);
        let body = b.finish().expect("acyclic");
        // m's value is carried into next iteration's s.
        let looped = LoopDfg::new(body, vec![LoopCarry::next_iteration(m, s)]).expect("valid");
        let machine = Machine::parse("[2,0|0,1]").expect("machine");
        let bound = bind_loop(&looped, &machine, &BinderConfig::default());
        // m is forced to cluster 1, s to cluster 0: the carry must route
        // through a carried move.
        assert_eq!(bound.move_count(), 1);
        assert_eq!(bound.carried().len(), 1);
        let (from, mv, d) = bound.carried()[0];
        assert_eq!(d, 1);
        assert_eq!(bound.dfg().op_type(mv), OpType::Move);
        assert_eq!(bound.cluster_of(from).index(), 1);
        assert_eq!(bound.cluster_of(mv).index(), 0);
    }

    #[test]
    fn carried_moves_are_deduplicated() {
        // One carried value consumed twice in the destination cluster:
        // a single carried move.
        let mut b = DfgBuilder::new();
        let m = b.add_op(OpType::Mul, &[]);
        let c1 = b.add_op(OpType::Add, &[]);
        let c2 = b.add_op(OpType::Add, &[c1]);
        let body = b.finish().expect("acyclic");
        let looped = LoopDfg::new(
            body,
            vec![
                LoopCarry::next_iteration(m, c1),
                LoopCarry::next_iteration(m, c2),
            ],
        )
        .expect("valid");
        let machine = Machine::parse("[2,0|0,1]").expect("machine");
        let bound = bind_loop(&looped, &machine, &BinderConfig::default());
        assert_eq!(bound.move_count(), 1, "shared carried transfer");
    }
}
