//! Steady-state kernel listings for modulo schedules.
//!
//! In steady state a software-pipelined loop executes one `II`-cycle
//! kernel: slot `s` runs every operation with `start ≡ s (mod II)`, each
//! belonging to iteration `i − stage(v)` when iteration `i` is the one
//! entering the pipeline. The listing renders that kernel with stage
//! annotations — the exact shape the loop body takes in generated code:
//!
//! ```text
//! ;; II = 2, 3 stages, [1,1]
//! { cl0: add acc[-1], mul p[0] | bus: nop }   ;; slot 0
//! { cl0: nop                   | bus: nop }   ;; slot 1
//! ```

use crate::bound_loop::BoundLoop;
use crate::sched::ModuloSchedule;
use std::fmt::Write as _;
use vliw_datapath::Machine;
use vliw_dfg::{OpId, OpType};

/// Renders the steady-state kernel, one instruction word per modulo
/// slot, with `[−stage]` iteration annotations.
///
/// # Panics
///
/// Panics if the schedule does not cover the bound loop body.
pub fn emit_kernel(bound: &BoundLoop, schedule: &ModuloSchedule, machine: &Machine) -> String {
    let dfg = bound.dfg();
    assert_eq!(schedule.len(), dfg.len(), "schedule must cover the body");
    let ii = schedule.ii();
    let n_clusters = machine.cluster_count();

    let mut slots: Vec<Vec<Vec<OpId>>> = vec![vec![Vec::new(); n_clusters + 1]; ii as usize];
    for v in dfg.op_ids() {
        let group = if dfg.op_type(v) == OpType::Move {
            n_clusters
        } else {
            bound.cluster_of(v).index()
        };
        slots[(schedule.start(v) % ii) as usize][group].push(v);
    }
    let label = |v: OpId| -> String {
        let stage = schedule.start(v) / ii;
        let name = dfg
            .name(v)
            .map(str::to_owned)
            .unwrap_or_else(|| v.to_string());
        format!("{} {name}[-{stage}]", dfg.op_type(v).mnemonic())
    };
    let rendered: Vec<Vec<String>> = slots
        .iter()
        .map(|word| {
            word.iter()
                .map(|ops| {
                    if ops.is_empty() {
                        "nop".to_owned()
                    } else {
                        ops.iter().map(|&v| label(v)).collect::<Vec<_>>().join(", ")
                    }
                })
                .collect()
        })
        .collect();
    let widths: Vec<usize> = (0..=n_clusters)
        .map(|g| rendered.iter().map(|w| w[g].len()).max().unwrap_or(3))
        .collect();

    let mut out = String::new();
    let _ = writeln!(
        out,
        ";; II = {ii}, {} stages, {machine}, {} transfers/iteration",
        schedule.stage_count(bound, machine),
        bound.move_count()
    );
    for (slot, word) in rendered.iter().enumerate() {
        let _ = write!(out, "{{ ");
        for (g, cell) in word.iter().enumerate() {
            if g > 0 {
                let _ = write!(out, " | ");
            }
            let name = if g == n_clusters {
                "bus".to_owned()
            } else {
                format!("cl{g}")
            };
            let _ = write!(out, "{name}: {cell:<width$}", width = widths[g]);
        }
        let _ = writeln!(out, " }}   ;; slot {slot}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bound_loop::{bind_loop, LoopDfg};
    use crate::sched::ModuloScheduler;
    use vliw_binding::BinderConfig;
    use vliw_dfg::{DfgBuilder, LoopCarry};

    fn mac_kernel() -> (BoundLoop, ModuloSchedule, Machine) {
        let mut b = DfgBuilder::new();
        let m = b.add_named_op(OpType::Mul, &[], "p");
        let acc = b.add_named_op(OpType::Add, &[m], "acc");
        let looped = LoopDfg::new(
            b.finish().expect("acyclic"),
            vec![LoopCarry::next_iteration(acc, acc)],
        )
        .expect("valid");
        let machine = Machine::parse("[1,1]").expect("machine");
        let bound = bind_loop(&looped, &machine, &BinderConfig::default());
        let schedule = ModuloScheduler::new(&machine).schedule(&bound).expect("ok");
        (bound, schedule, machine)
    }

    #[test]
    fn kernel_has_one_word_per_slot() {
        let (bound, schedule, machine) = mac_kernel();
        let listing = emit_kernel(&bound, &schedule, &machine);
        let words = listing.lines().filter(|l| l.starts_with('{')).count() as u32;
        assert_eq!(words, schedule.ii());
    }

    #[test]
    fn stage_annotations_are_present() {
        let (bound, schedule, machine) = mac_kernel();
        let listing = emit_kernel(&bound, &schedule, &machine);
        assert!(
            listing.contains("p[-0]") || listing.contains("p[-1]"),
            "{listing}"
        );
        assert!(listing.contains("acc[-"), "{listing}");
    }

    #[test]
    fn header_reports_ii_and_stages() {
        let (bound, schedule, machine) = mac_kernel();
        let listing = emit_kernel(&bound, &schedule, &machine);
        assert!(
            listing.starts_with(&format!(";; II = {}", schedule.ii())),
            "{listing}"
        );
    }

    #[test]
    fn every_body_op_appears() {
        let (bound, schedule, machine) = mac_kernel();
        let listing = emit_kernel(&bound, &schedule, &machine);
        for v in bound.dfg().op_ids() {
            let name = bound.dfg().name(v).expect("named");
            assert!(listing.contains(name), "{name} missing:\n{listing}");
        }
    }
}
