//! The II-driven binding driver: the paper's two-phase structure
//! re-targeted at modulo scheduling.
//!
//! The block-level binder minimizes schedule latency, which for a loop
//! body happily parks everything on one cluster (zero transfers, minimal
//! *latency* — but the busiest cluster then bounds the initiation
//! interval from below). [`ModuloBinder`] keeps the paper's architecture
//! — greedy starts, then boundary-style perturbation — but evaluates
//! every candidate with an actual modulo schedule and steers by the
//! lexicographic `(II, moves per iteration)` objective, the modulo
//! analog of `Q_M`. This is precisely the adaptation the paper's
//! Section 4 sketches when discussing the modulo-scheduling binders of
//! Nystrom & Eichenberger, Fernandes et al. and Sánchez & González.

use crate::bound_loop::{bound_loop_with, BoundLoop, LoopDfg};
use crate::sched::{ModuloSchedule, ModuloScheduler};
use vliw_binding::{validate_inputs, BindError, Binder, BinderConfig};
use vliw_datapath::Machine;
use vliw_sched::Binding;

/// The II-driven loop binder.
///
/// # Example
///
/// Eight independent adds per iteration on two 1-ALU clusters: the
/// block binder clumps them (II = 8); the modulo binder splits them
/// (II = 4).
///
/// ```
/// use vliw_datapath::Machine;
/// use vliw_dfg::{DfgBuilder, OpType};
/// use vliw_modulo::{LoopDfg, ModuloBinder};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = DfgBuilder::new();
/// for _ in 0..8 {
///     b.add_op(OpType::Add, &[]);
/// }
/// let looped = LoopDfg::new(b.finish()?, vec![])?;
/// let machine = Machine::parse("[1,1|1,1]")?;
/// let (bound, schedule) = ModuloBinder::new(&machine).bind(&looped);
/// assert_eq!(schedule.ii(), 4);
/// schedule.validate(&bound, &machine)?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ModuloBinder<'m> {
    machine: &'m Machine,
    config: BinderConfig,
}

impl<'m> ModuloBinder<'m> {
    /// A modulo binder with the default block-binder configuration for
    /// its starting points.
    pub fn new(machine: &'m Machine) -> Self {
        ModuloBinder {
            machine,
            config: BinderConfig::default(),
        }
    }

    /// A modulo binder with an explicit configuration.
    pub fn with_config(machine: &'m Machine, config: BinderConfig) -> Self {
        ModuloBinder { machine, config }
    }

    /// Binds and modulo-schedules the loop, minimizing
    /// `(II, moves per iteration)`.
    ///
    /// # Panics
    ///
    /// Panics on the [`ModuloBinder::try_bind`] error conditions.
    pub fn bind(&self, looped: &LoopDfg) -> (BoundLoop, ModuloSchedule) {
        self.try_bind(looped)
            .unwrap_or_else(|e| panic!("modulo binding failed: {e}"))
    }

    /// Fallible [`ModuloBinder::bind`]: validates the loop body up
    /// front and re-validates the winning modulo schedule
    /// ([`ModuloSchedule::validate`]) before returning it.
    ///
    /// # Errors
    ///
    /// A [`BindError`] for malformed inputs or a schedule failing its
    /// re-validation.
    pub fn try_bind(&self, looped: &LoopDfg) -> Result<(BoundLoop, ModuloSchedule), BindError> {
        validate_inputs(looped.body(), self.machine)?;
        let (bound, schedule) = self.bind_inner(looped);
        schedule
            .validate(&bound, self.machine)
            .map_err(|e| BindError::InvalidSchedule(e.to_string()))?;
        Ok((bound, schedule))
    }

    fn bind_inner(&self, looped: &LoopDfg) -> (BoundLoop, ModuloSchedule) {
        let machine = self.machine;
        let scheduler = ModuloScheduler::new(machine);
        let evaluate = |binding: &Binding| -> (BoundLoop, ModuloSchedule) {
            let bound = bound_loop_with(looped, machine, binding);
            let schedule = scheduler
                .schedule(&bound)
                .expect("serial II always schedules"); // lint:allow(no-panic)
            (bound, schedule)
        };
        let key =
            |bound: &BoundLoop, schedule: &ModuloSchedule| (schedule.ii(), bound.move_count());

        // Starts: the block driver's candidate sweep, judged by II.
        let binder = Binder::with_config(machine, self.config.clone());
        let starts = self.config.improve_starts.max(1);
        let mut best: Option<(Binding, BoundLoop, ModuloSchedule)> = None;
        for candidate in binder
            .initial_candidates(looped.body())
            .into_iter()
            .take(starts)
        {
            let (bound, schedule) = evaluate(&candidate.binding);
            if best
                .as_ref()
                .is_none_or(|(_, b, s)| key(&bound, &schedule) < key(b, s))
            {
                best = Some((candidate.binding, bound, schedule));
            }
        }
        let (mut binding, mut bound, mut schedule) = best.expect("the driver sweep is never empty"); // lint:allow(no-panic)

        // Steepest descent: re-bind single operations anywhere in their
        // target set (the overloaded-cluster case needs non-neighbor
        // moves, unlike block-level B-ITER).
        for _ in 0..self.config.max_iterations {
            let mut improved: Option<(Binding, BoundLoop, ModuloSchedule)> = None;
            for v in looped.body().op_ids() {
                for c in machine.target_set(looped.body().op_type(v)) {
                    if c == binding.cluster_of(v) {
                        continue;
                    }
                    let mut candidate = binding.clone();
                    candidate.bind(v, c);
                    let (b, s) = evaluate(&candidate);
                    let better_than_current = key(&b, &s) < key(&bound, &schedule);
                    let better_than_best = improved
                        .as_ref()
                        .is_none_or(|(_, ib, is)| key(&b, &s) < key(ib, is));
                    if better_than_current && better_than_best {
                        improved = Some((candidate, b, s));
                    }
                }
            }
            match improved {
                Some((nb, nbound, nsched)) => {
                    binding = nb;
                    bound = nbound;
                    schedule = nsched;
                }
                None => break,
            }
        }
        (bound, schedule)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mii;
    use vliw_dfg::{DfgBuilder, LoopCarry, OpType};

    #[test]
    fn modulo_binder_spreads_wide_loops() {
        let mut b = DfgBuilder::new();
        for _ in 0..8 {
            b.add_op(OpType::Add, &[]);
        }
        let looped = LoopDfg::new(b.finish().expect("acyclic"), vec![]).expect("valid");
        let machine = Machine::parse("[1,1|1,1]").expect("machine");
        let (bound, schedule) = ModuloBinder::new(&machine).bind(&looped);
        assert_eq!(schedule.ii(), 4);
        schedule.validate(&bound, &machine).expect("valid");
    }

    #[test]
    fn modulo_binder_never_loses_to_block_binding() {
        use crate::bound_loop::bind_loop;
        let mut b = DfgBuilder::new();
        let m1 = b.add_op(OpType::Mul, &[]);
        let a1 = b.add_op(OpType::Add, &[m1]);
        let m2 = b.add_op(OpType::Mul, &[a1]);
        let a2 = b.add_op(OpType::Add, &[m2]);
        let _ = b.add_op(OpType::Add, &[a1, a2]);
        let looped = LoopDfg::new(
            b.finish().expect("acyclic"),
            vec![LoopCarry::next_iteration(vliw_dfg::OpId::from_index(4), m1)],
        )
        .expect("valid");
        for text in ["[1,1]", "[1,1|1,1]", "[2,1|1,1]"] {
            let machine = Machine::parse(text).expect("machine");
            let block = bind_loop(&looped, &machine, &BinderConfig::default());
            let block_ii = crate::ModuloScheduler::new(&machine)
                .schedule(&block)
                .expect("schedulable")
                .ii();
            let (_, schedule) = ModuloBinder::new(&machine).bind(&looped);
            assert!(
                schedule.ii() <= block_ii,
                "{text}: modulo binder {} vs block {}",
                schedule.ii(),
                block_ii
            );
        }
    }

    #[test]
    fn achieves_recurrence_bound_when_resources_allow() {
        // acc1/acc2 recurrences of depth 2 plus parallel work: with two
        // clusters the II should reach RecMII.
        let mut b = DfgBuilder::new();
        let x1 = b.add_op(OpType::Add, &[]);
        let y1 = b.add_op(OpType::Add, &[x1]);
        let x2 = b.add_op(OpType::Add, &[]);
        let y2 = b.add_op(OpType::Add, &[x2]);
        let looped = LoopDfg::new(
            b.finish().expect("acyclic"),
            vec![
                LoopCarry::next_iteration(y1, x1),
                LoopCarry::next_iteration(y2, x2),
            ],
        )
        .expect("valid");
        let machine = Machine::parse("[1,1|1,1]").expect("machine");
        let (bound, schedule) = ModuloBinder::new(&machine).bind(&looped);
        assert_eq!(mii::rec_mii(&bound, &machine), 2);
        assert_eq!(schedule.ii(), 2);
    }
}
