//! Expansion of modulo schedules into flat block schedules.
//!
//! A modulo schedule is correct iff overlapping `k` iterations (each
//! shifted by `II`) never violates a dependence or oversubscribes a
//! resource. [`expand`] performs that overlap literally: it unrolls the
//! bound body `k` times (carried dependences becoming ordinary edges via
//! [`vliw_dfg::unroll()`]) and emits the flat start times
//! `start(v) + i·II`. The result can be checked with the *block-level*
//! machinery — [`vliw_sched::Schedule::validate`] — giving an
//! independent, already-tested oracle for the modulo scheduler's
//! reservation tables and dependence handling.
//!
//! The prologue (`i < stages − 1`), steady-state kernel and epilogue of
//! software-pipelined code are exactly slices of this expansion.

use crate::bound_loop::BoundLoop;
use crate::sched::ModuloSchedule;
use vliw_datapath::{ClusterId, Machine};
use vliw_dfg::{unroll, Dfg, LoopCarry};
use vliw_sched::Schedule;

/// A flattened window of `iterations` overlapped loop iterations.
#[derive(Debug, Clone)]
pub struct ExpandedSchedule {
    /// The unrolled bound body (carried dependences materialized as
    /// edges between copies).
    pub dfg: Dfg,
    /// Cluster of every unrolled operation.
    pub cluster: Vec<ClusterId>,
    /// The flat schedule (`start(v) + i·II` per copy `i`).
    pub schedule: Schedule,
}

impl ExpandedSchedule {
    /// Validates the flat schedule against the block-level rules:
    /// every dependence and every FU/bus capacity, using
    /// [`vliw_sched::Schedule::validate`]'s logic re-expressed over the
    /// expanded graph.
    ///
    /// # Errors
    ///
    /// Returns the block-level validator's error on the first violated
    /// constraint.
    pub fn validate(&self, machine: &Machine) -> Result<(), vliw_sched::ScheduleError> {
        // Reuse the block validator by round-tripping through a Binding
        // on the expanded graph: moves in the body are regular nodes of
        // `dfg` here, so we validate resources directly instead.
        validate_flat(&self.dfg, &self.cluster, &self.schedule, machine)
    }
}

/// Block-level validation of an arbitrary (graph, cluster, schedule)
/// triple — the body of [`vliw_sched::Schedule::validate`] generalized
/// to cluster vectors (the expanded graph has no `BoundDfg`).
fn validate_flat(
    dfg: &Dfg,
    cluster: &[ClusterId],
    schedule: &Schedule,
    machine: &Machine,
) -> Result<(), vliw_sched::ScheduleError> {
    use vliw_dfg::FuType;
    use vliw_sched::ScheduleError;
    if schedule.len() != dfg.len() {
        return Err(ScheduleError::WrongLength {
            got: schedule.len(),
            expected: dfg.len(),
        });
    }
    for (u, v) in dfg.edges() {
        if schedule.start(v) < schedule.finish(u) {
            return Err(ScheduleError::PrecedenceViolation {
                producer: u,
                consumer: v,
            });
        }
    }
    let horizon = schedule.latency() as usize + 1;
    let mut fu_starts = vec![[0u32; 2].map(|_| vec![0u32; horizon]); machine.cluster_count()];
    let mut bus_starts = vec![0u32; horizon];
    for v in dfg.op_ids() {
        let t = dfg.op_type(v).fu_type();
        let s = schedule.start(v) as usize;
        match t {
            FuType::Bus => bus_starts[s] += 1,
            _ => fu_starts[cluster[v.index()].index()][t.index()][s] += 1,
        }
    }
    for (ci, per_fu) in fu_starts.iter().enumerate() {
        for t in FuType::REGULAR {
            let dii = machine.dii(t) as usize;
            let cap = machine.fu_count(ClusterId::from_index(ci), t);
            let mut window = 0u32;
            for tau in 0..horizon {
                window += per_fu[t.index()][tau];
                if tau >= dii {
                    window -= per_fu[t.index()][tau - dii];
                }
                if window > cap {
                    return Err(ScheduleError::FuOverload {
                        cluster: ci,
                        fu: t,
                        cycle: tau as u32,
                    });
                }
            }
        }
    }
    let bus_dii = machine.dii(FuType::Bus) as usize;
    let mut window = 0u32;
    for tau in 0..horizon {
        window += bus_starts[tau];
        if tau >= bus_dii {
            window -= bus_starts[tau - bus_dii];
        }
        if window > machine.bus_count() {
            return Err(ScheduleError::BusOverload { cycle: tau as u32 });
        }
    }
    Ok(())
}

/// Expands `iterations` overlapped copies of a modulo-scheduled loop.
///
/// # Panics
///
/// Panics if `iterations` is zero or the schedule does not cover the
/// bound body.
pub fn expand(
    bound: &BoundLoop,
    schedule: &ModuloSchedule,
    machine: &Machine,
    iterations: usize,
) -> ExpandedSchedule {
    assert!(iterations > 0, "expand at least one iteration");
    assert_eq!(schedule.len(), bound.dfg().len(), "schedule/body mismatch");
    let n = bound.dfg().len();
    let carries: Vec<LoopCarry> = bound
        .carried()
        .iter()
        .map(|&(from, to, distance)| LoopCarry { from, to, distance })
        .collect();
    let dfg = unroll(bound.dfg(), &carries, iterations).expect("bound body unrolls");

    let mut starts = Vec::with_capacity(n * iterations);
    let mut cluster = Vec::with_capacity(n * iterations);
    let lat = bound.latencies(machine);
    let mut flat_lat = Vec::with_capacity(n * iterations);
    for i in 0..iterations {
        for v in bound.dfg().op_ids() {
            starts.push(schedule.start(v) + i as u32 * schedule.ii());
            cluster.push(bound.cluster_of(v));
            flat_lat.push(lat[v.index()]);
        }
    }
    ExpandedSchedule {
        dfg,
        cluster,
        schedule: Schedule::from_starts(starts, &flat_lat),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bound_loop::{bind_loop, LoopDfg};
    use crate::driver::ModuloBinder;
    use crate::sched::ModuloScheduler;
    use vliw_binding::BinderConfig;
    use vliw_dfg::{DfgBuilder, OpType};

    #[test]
    fn expanded_mac_validates_block_level() {
        let mut b = DfgBuilder::new();
        let m = b.add_op(OpType::Mul, &[]);
        let acc = b.add_op(OpType::Add, &[m]);
        let looped = LoopDfg::new(
            b.finish().expect("acyclic"),
            vec![LoopCarry::next_iteration(acc, acc)],
        )
        .expect("valid");
        let machine = Machine::parse("[1,1]").expect("machine");
        let bound = bind_loop(&looped, &machine, &BinderConfig::default());
        let schedule = ModuloScheduler::new(&machine).schedule(&bound).expect("ok");
        for iterations in [1usize, 2, 5, 9] {
            let flat = expand(&bound, &schedule, &machine, iterations);
            flat.validate(&machine)
                .unwrap_or_else(|e| panic!("{iterations} iterations: {e}"));
            assert_eq!(flat.dfg.len(), 2 * iterations);
        }
    }

    #[test]
    fn expanded_ewf_loop_validates_block_level() {
        // The strongest cross-check in the workspace: the II-driven
        // binder's EWF schedule, overlapped 6 deep, re-checked by the
        // block-level resource/dependence rules.
        let dfg = vliw_kernels::ewf();
        let find = |name: &str| {
            dfg.op_ids()
                .find(|&v| dfg.name(v) == Some(name))
                .unwrap_or_else(|| panic!("{name} exists"))
        };
        let carries = vec![
            LoopCarry::next_iteration(find("A1.s'"), find("A1.t")),
            LoopCarry::next_iteration(find("A2.s2'"), find("A2.t1")),
            LoopCarry::next_iteration(find("A2.s1'"), find("A2.t2")),
            LoopCarry::next_iteration(find("B1.s2'"), find("B1.t1")),
            LoopCarry::next_iteration(find("B1.s1'"), find("B1.t2")),
            LoopCarry::next_iteration(find("B2.s2'"), find("B2.t1")),
            LoopCarry::next_iteration(find("B2.s1'"), find("B2.t2")),
        ];
        let looped = LoopDfg::new(dfg, carries).expect("valid");
        let machine = Machine::parse("[2,1|2,1]").expect("machine");
        let (bound, schedule) = ModuloBinder::new(&machine).bind(&looped);
        let flat = expand(&bound, &schedule, &machine, 6);
        flat.validate(&machine).expect("overlapped EWF is legal");
        // Steady state really overlaps: the expansion is shorter than
        // running 6 iterations back to back.
        let serial_per_iter = vliw_binding::Binder::new(&machine)
            .bind(looped.body())
            .latency();
        assert!(flat.schedule.latency() < 6 * serial_per_iter);
    }

    #[test]
    fn corrupted_expansion_fails_block_validation() {
        let mut b = DfgBuilder::new();
        let x = b.add_op(OpType::Add, &[]);
        let y = b.add_op(OpType::Add, &[x]);
        let looped = LoopDfg::new(
            b.finish().expect("acyclic"),
            vec![LoopCarry::next_iteration(y, x)],
        )
        .expect("valid");
        let machine = Machine::parse("[1,1]").expect("machine");
        let bound = bind_loop(&looped, &machine, &BinderConfig::default());
        let schedule = ModuloScheduler::new(&machine).schedule(&bound).expect("ok");
        let mut flat = expand(&bound, &schedule, &machine, 3);
        // Sabotage: pull the last copy one cycle early.
        let lat = vec![1u32; flat.dfg.len()];
        let mut starts: Vec<u32> = flat.dfg.op_ids().map(|v| flat.schedule.start(v)).collect();
        let last = starts.len() - 1;
        starts[last] = starts[last].saturating_sub(schedule.ii());
        flat.schedule = Schedule::from_starts(starts, &lat);
        assert!(flat.validate(&machine).is_err());
    }
}
