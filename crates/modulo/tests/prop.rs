//! Property tests for the modulo-scheduling extension: on random loop
//! bodies with random carried dependences, the scheduler's output must
//! always validate, respect the MII bounds, and survive the block-level
//! expansion oracle.

use proptest::prelude::*;
use vliw_binding::BinderConfig;
use vliw_datapath::Machine;
use vliw_dfg::{Dfg, DfgBuilder, LoopCarry, OpType};
use vliw_modulo::{bind_loop, expand, mii, LoopDfg, ModuloBinder, ModuloScheduler};

/// Random acyclic body plus random backward carries.
fn arb_loop(max_ops: usize) -> impl Strategy<Value = LoopDfg> {
    (2..=max_ops).prop_flat_map(|n| {
        let kinds = prop::collection::vec(0..2u8, n);
        let picks = prop::collection::vec((0usize..usize::MAX, 0..2u8), n);
        let carries =
            prop::collection::vec((0usize..usize::MAX, 0usize..usize::MAX, 1..3u32), 0..3);
        (kinds, picks, carries).prop_map(move |(kinds, picks, raw_carries)| {
            let mut b = DfgBuilder::new();
            let mut ids = Vec::new();
            for (i, (&kind, &(p1, arity))) in kinds.iter().zip(&picks).enumerate() {
                let ty = if kind == 0 { OpType::Add } else { OpType::Mul };
                let mut operands = Vec::new();
                if i > 0 && arity >= 1 {
                    operands.push(ids[p1 % i]);
                }
                ids.push(b.add_op(ty, &operands));
            }
            let body: Dfg = b.finish().expect("acyclic");
            let carries: Vec<LoopCarry> = raw_carries
                .into_iter()
                .map(|(f, t, d)| LoopCarry {
                    from: ids[f % ids.len()],
                    to: ids[t % ids.len()],
                    distance: d,
                })
                .collect();
            LoopDfg::new(body, carries).expect("carries are in range")
        })
    })
}

fn arb_machine() -> impl Strategy<Value = Machine> {
    prop::sample::select(vec!["[1,1]", "[2,1]", "[1,1|1,1]", "[2,1|1,1]"])
        .prop_map(|cfg| Machine::parse(cfg).expect("valid"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The scheduler always finds a schedule, it validates, and II never
    /// undercuts MII.
    #[test]
    fn modulo_schedule_is_sound(looped in arb_loop(16), machine in arb_machine()) {
        let bound = bind_loop(&looped, &machine, &BinderConfig::default());
        let schedule = ModuloScheduler::new(&machine)
            .schedule(&bound)
            .expect("restart search reaches the serial II");
        prop_assert_eq!(schedule.validate(&bound, &machine), Ok(()));
        prop_assert!(schedule.ii() >= mii::mii(&bound, &machine));
    }

    /// Overlapping iterations never breaks block-level rules.
    #[test]
    fn expansion_passes_block_rules(looped in arb_loop(12), machine in arb_machine()) {
        let bound = bind_loop(&looped, &machine, &BinderConfig::default());
        let schedule = ModuloScheduler::new(&machine)
            .schedule(&bound)
            .expect("schedulable");
        let flat = expand(&bound, &schedule, &machine, 4);
        prop_assert_eq!(flat.validate(&machine), Ok(()));
    }

    /// The II-driven binder never does worse than the block-latency
    /// binding it starts from.
    #[test]
    fn ii_driver_is_monotone(looped in arb_loop(12), machine in arb_machine()) {
        let block = bind_loop(&looped, &machine, &BinderConfig::default());
        let block_ii = ModuloScheduler::new(&machine)
            .schedule(&block)
            .expect("schedulable")
            .ii();
        let (_, schedule) = ModuloBinder::new(&machine).bind(&looped);
        prop_assert!(schedule.ii() <= block_ii);
    }

    /// Determinism: identical inputs, identical schedules.
    #[test]
    fn modulo_pipeline_is_deterministic(looped in arb_loop(12)) {
        let machine = Machine::parse("[1,1|1,1]").expect("valid");
        let (b1, s1) = ModuloBinder::new(&machine).bind(&looped);
        let (b2, s2) = ModuloBinder::new(&machine).bind(&looped);
        prop_assert_eq!(s1.ii(), s2.ii());
        prop_assert_eq!(b1.move_count(), b2.move_count());
    }
}
