//! Parser for the paper's compact datapath notation.
//!
//! Tables 1 and 2 describe datapaths as `[i,j|i,j|…]` where each
//! `i,j` pair is one cluster with `i` ALUs and `j` multipliers. Table 2
//! writes the outer brackets as bars (`|2,2|2,1|…|`); both spellings are
//! accepted, as is the bare body without brackets.

use crate::machine::{Cluster, Machine, MachineBuilder, MachineError};
use std::error::Error;
use std::fmt;

/// Error from [`Machine::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseMachineError {
    /// The description was empty after trimming brackets.
    Empty,
    /// A cluster segment was not of the form `i,j`.
    BadCluster(String),
    /// A FU count failed to parse as an integer.
    BadCount(String),
    /// The parsed structure is not a valid machine (e.g. empty cluster).
    Invalid(MachineError),
}

impl fmt::Display for ParseMachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseMachineError::Empty => write!(f, "empty datapath description"),
            ParseMachineError::BadCluster(s) => {
                write!(f, "cluster segment {s:?} is not of the form \"alus,muls\"")
            }
            ParseMachineError::BadCount(s) => write!(f, "invalid FU count {s:?}"),
            ParseMachineError::Invalid(e) => write!(f, "invalid machine: {e}"),
        }
    }
}

impl Error for ParseMachineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseMachineError::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MachineError> for ParseMachineError {
    fn from(e: MachineError) -> Self {
        ParseMachineError::Invalid(e)
    }
}

impl Machine {
    /// Parses the paper's datapath notation, e.g. `"[2,1|1,1]"` — two
    /// clusters, the first with 2 ALUs and 1 multiplier, the second with
    /// one of each. Whitespace is ignored; outer `[`/`]` or `|` delimiters
    /// are optional.
    ///
    /// The result uses the Table-1 defaults (two buses, unit latencies,
    /// fully pipelined); adjust with [`Machine::with_bus_count`] /
    /// [`Machine::with_move_latency`] or rebuild via [`MachineBuilder`].
    ///
    /// # Errors
    ///
    /// Returns a [`ParseMachineError`] describing the first malformed
    /// segment.
    ///
    /// # Example
    ///
    /// ```
    /// use vliw_datapath::Machine;
    /// # fn main() -> Result<(), vliw_datapath::ParseMachineError> {
    /// let a = Machine::parse("[3,1|2,2|1,3]")?;
    /// let b = Machine::parse("|3,1|2,2|1,3|")?; // Table-2 spelling
    /// let c = Machine::parse("3,1 | 2,2 | 1,3")?;
    /// assert_eq!(a, b);
    /// assert_eq!(b, c);
    /// # Ok(())
    /// # }
    /// ```
    pub fn parse(s: &str) -> Result<Self, ParseMachineError> {
        let trimmed = s.trim();
        let body = trimmed
            .strip_prefix('[')
            .and_then(|t| t.strip_suffix(']'))
            .unwrap_or(trimmed);
        let body = body.trim_matches('|');
        if body.trim().is_empty() {
            return Err(ParseMachineError::Empty);
        }
        let mut builder = MachineBuilder::new();
        for seg in body.split('|') {
            let seg = seg.trim();
            let (alus, muls) = seg
                .split_once(',')
                .ok_or_else(|| ParseMachineError::BadCluster(seg.to_owned()))?;
            let alus: u32 = alus
                .trim()
                .parse()
                .map_err(|_| ParseMachineError::BadCount(alus.trim().to_owned()))?;
            let muls: u32 = muls
                .trim()
                .parse()
                .map_err(|_| ParseMachineError::BadCount(muls.trim().to_owned()))?;
            builder = builder.cluster(Cluster::new(alus, muls));
        }
        Ok(builder.build()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_dfg::FuType;

    #[test]
    fn parses_table1_configs() {
        for (text, clusters, alus, muls) in [
            ("[1,1|1,1]", 2, 2, 2),
            ("[2,1|2,1]", 2, 4, 2),
            ("[2,1|1,1]", 2, 3, 2),
            ("[1,1|1,1|1,1]", 3, 3, 3),
            ("[3,1|2,2|1,3]", 3, 6, 6),
            ("[1,1|1,1|1,1|1,1]", 4, 4, 4),
            ("[2,2|2,1]", 2, 4, 3),
            ("[2,1|2,1|1,2]", 3, 5, 4),
            ("[3,2|3,1|1,3]", 3, 7, 6),
            ("[2,2|2,1|1,1]", 3, 5, 4),
            ("[1,2|1,2]", 2, 2, 4),
        ] {
            let m = Machine::parse(text).expect(text);
            assert_eq!(m.cluster_count(), clusters, "{text}");
            assert_eq!(m.fu_count_total(FuType::Alu), alus, "{text}");
            assert_eq!(m.fu_count_total(FuType::Mul), muls, "{text}");
        }
    }

    #[test]
    fn parses_table2_spelling() {
        let m = Machine::parse("|2,2|2,1|2,2|3,1|1,1|").expect("table 2 datapath");
        assert_eq!(m.cluster_count(), 5);
        assert_eq!(m.fu_count_total(FuType::Alu), 10);
        assert_eq!(m.fu_count_total(FuType::Mul), 7);
    }

    #[test]
    fn whitespace_is_ignored() {
        let a = Machine::parse(" [ 2,1 | 1,1 ] ").expect("spaces ok");
        let b = Machine::parse("[2,1|1,1]").expect("canonical");
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_malformed_input() {
        assert_eq!(Machine::parse(""), Err(ParseMachineError::Empty));
        assert_eq!(Machine::parse("[]"), Err(ParseMachineError::Empty));
        assert!(matches!(
            Machine::parse("[2|1,1]"),
            Err(ParseMachineError::BadCluster(_))
        ));
        assert!(matches!(
            Machine::parse("[a,1]"),
            Err(ParseMachineError::BadCount(_))
        ));
        assert!(matches!(
            Machine::parse("[0,0|1,1]"),
            Err(ParseMachineError::Invalid(_))
        ));
    }

    #[test]
    fn error_display_names_the_problem() {
        let err = Machine::parse("[x,1]").unwrap_err();
        assert!(err.to_string().contains('x'));
    }

    #[test]
    fn parse_display_round_trip_all_eval_configs() {
        for text in [
            "[1,1|1,1]",
            "[2,1|2,1]",
            "[2,2|2,1]",
            "[1,1|1,1|1,1]",
            "[2,1|2,1|1,1]",
            "[3,1|2,2|1,3]",
            "[1,1|1,1|1,1|1,1]",
            "[2,2|2,1|2,2|3,1|1,1]",
        ] {
            let m = Machine::parse(text).expect(text);
            assert_eq!(m.to_string(), text);
        }
    }
}
