//! Machine presets modeled after real clustered VLIW processors.
//!
//! The literature the paper builds on is anchored by two machine
//! families: Texas Instruments' TMS320C6x (the two-cluster DSP Leupers'
//! baseline targets) and the HP/ST Lx / ST200 family (Faraboschi et al.,
//! reference [4] — scalable 1-4 cluster embedded cores, and Desoli's PCC
//! target). These constructors map their datapaths onto this crate's
//! ALU/MUL model; memory and branch units are outside the model (the
//! paper's too), so only the arithmetic complement is represented.

use crate::machine::{Cluster, Machine, MachineBuilder};

impl Machine {
    /// A TMS320C62x-style datapath: two clusters (register files A and
    /// B), each with one multiplier (`.M`) and three ALU-class units
    /// (`.L`, `.S`, `.D`), connected by the two cross-path buses —
    /// `[3,1|3,1]`, `N_B = 2`, single-cycle transfers.
    ///
    /// # Example
    ///
    /// ```
    /// use vliw_datapath::Machine;
    /// let c6x = Machine::tms320c6x();
    /// assert_eq!(c6x.to_string(), "[3,1|3,1]");
    /// assert_eq!(c6x.bus_count(), 2);
    /// ```
    pub fn tms320c6x() -> Machine {
        MachineBuilder::new()
            .cluster(Cluster::new(3, 1))
            .cluster(Cluster::new(3, 1))
            .bus_count(2)
            .build()
            .expect("preset is valid") // lint:allow(no-panic)
    }

    /// An HP/ST Lx-style datapath: `clusters` identical clusters of four
    /// issue slots (modeled as 3 ALUs + 1 multiplier each), one
    /// inter-cluster path per cluster pair boundary approximated as
    /// `clusters − 1` buses (minimum 1), single-cycle transfers.
    ///
    /// # Panics
    ///
    /// Panics if `clusters == 0` or `clusters > 4` (the Lx scales 1-4).
    ///
    /// # Example
    ///
    /// ```
    /// use vliw_datapath::Machine;
    /// let lx = Machine::lx(4);
    /// assert_eq!(lx.cluster_count(), 4);
    /// assert_eq!(lx.bus_count(), 3);
    /// ```
    pub fn lx(clusters: usize) -> Machine {
        assert!(
            (1..=4).contains(&clusters),
            "the Lx family scales from 1 to 4 clusters"
        );
        let mut b = MachineBuilder::new().bus_count(1.max(clusters as u32 - 1));
        for _ in 0..clusters {
            b = b.cluster(Cluster::new(3, 1));
        }
        b.build().expect("preset is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_dfg::FuType;

    #[test]
    fn c6x_shape() {
        let m = Machine::tms320c6x();
        assert_eq!(m.cluster_count(), 2);
        assert_eq!(m.fu_count_total(FuType::Alu), 6);
        assert_eq!(m.fu_count_total(FuType::Mul), 2);
        assert!(m.is_homogeneous());
    }

    #[test]
    fn lx_scales() {
        for n in 1..=4usize {
            let m = Machine::lx(n);
            assert_eq!(m.cluster_count(), n);
            assert_eq!(m.fu_count_total(FuType::Alu) as usize, 3 * n);
            assert_eq!(m.bus_count() as usize, 1.max(n - 1));
        }
    }

    #[test]
    #[should_panic(expected = "1 to 4")]
    fn lx_rejects_oversize() {
        let _ = Machine::lx(5);
    }

    #[test]
    fn presets_support_the_benchmark_ops() {
        use vliw_dfg::{DfgBuilder, OpType};
        let mut b = DfgBuilder::new();
        let m = b.add_op(OpType::Mul, &[]);
        let _ = b.add_op(OpType::Add, &[m]);
        let dfg = b.finish().expect("acyclic");
        assert!(Machine::tms320c6x().check_supports_dfg(&dfg).is_ok());
        assert!(Machine::lx(2).check_supports_dfg(&dfg).is_ok());
    }
}
