//! The machine description: clusters, bus, latencies, pipelining.

use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;
use vliw_dfg::{Dfg, FuType, OpId, OpType};

/// Identifier of a cluster (`c ∈ CL` in the paper). Dense indices
/// `0..machine.cluster_count()`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ClusterId(pub(crate) u32);

impl ClusterId {
    /// Creates a `ClusterId` from a raw dense index.
    ///
    /// # Panics
    ///
    /// Panics when `index` does not fit in `u32`.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        ClusterId(u32::try_from(index).expect("more than u32::MAX clusters"))
    }

    /// The dense index of this cluster, usable for table lookup.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ClusterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cl{}", self.0)
    }
}

/// One cluster: the number of functional units of each regular FU type
/// (`N(c,t)` in the paper). The paper's `[i,j]` notation means
/// `i` ALUs and `j` multipliers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Cluster {
    /// FU counts indexed by [`FuType::index`] over the regular types
    /// (`[n_alu, n_mul]`).
    fus: [u32; 2],
}

impl Cluster {
    /// A cluster with `alus` ALUs and `muls` multipliers.
    pub fn new(alus: u32, muls: u32) -> Self {
        Cluster { fus: [alus, muls] }
    }

    /// Number of FUs of regular type `t` in this cluster.
    ///
    /// # Panics
    ///
    /// Panics if `t` is [`FuType::Bus`]; the bus is a machine-level
    /// resource, not a cluster-level one.
    #[inline]
    pub fn fu_count(&self, t: FuType) -> u32 {
        assert!(t.is_regular(), "the bus is not a cluster resource");
        self.fus[t.index()]
    }

    /// Total FUs in this cluster (saturating, so adversarial counts
    /// near `u32::MAX` cannot overflow the emptiness check).
    pub fn total_fus(&self) -> u32 {
        self.fus.iter().fold(0u32, |a, &b| a.saturating_add(b))
    }
}

impl fmt::Display for Cluster {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{},{}", self.fus[0], self.fus[1])
    }
}

/// Error produced when assembling an invalid [`Machine`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachineError {
    /// A machine must contain at least one cluster.
    NoClusters,
    /// A cluster with zero functional units can execute nothing.
    EmptyCluster(ClusterId),
    /// The bus must be able to perform at least one transfer at a time.
    NoBus,
    /// Latencies must be at least one cycle.
    ZeroLatency(OpType),
    /// Data-introduction intervals must be at least one cycle.
    ZeroDii(FuType),
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::NoClusters => write!(f, "machine has no clusters"),
            MachineError::EmptyCluster(c) => write!(f, "cluster {c} has no functional units"),
            MachineError::NoBus => write!(f, "bus count must be at least 1"),
            MachineError::ZeroLatency(p) => write!(f, "operation type {p} has zero latency"),
            MachineError::ZeroDii(t) => {
                write!(f, "FU type {t} has zero data-introduction interval")
            }
        }
    }
}

impl Error for MachineError {}

/// A clustered VLIW datapath description (paper Section 2).
///
/// Combines the cluster structure `CL`, the bus (`N_B` simultaneous
/// transfers, `lat(move)` cycles each), the operation-latency function
/// `lat(p)` and the per-FU-type data-introduction interval `dii(t)`
/// (footnote 3: a non-pipelined resource has `dii = lat`).
///
/// Construct with [`Machine::parse`] for the paper's notation or
/// [`MachineBuilder`] for full control; the free-standing `with_*` methods
/// tweak a parsed machine.
///
/// # Example
///
/// ```
/// use vliw_datapath::Machine;
/// use vliw_dfg::{FuType, OpType};
///
/// # fn main() -> Result<(), vliw_datapath::ParseMachineError> {
/// let m = Machine::parse("[2,1|1,1]")?;
/// assert_eq!(m.fu_count_total(FuType::Alu), 3);
/// assert_eq!(m.fu_count_total(FuType::Mul), 2);
/// assert_eq!(m.latency(OpType::Add), 1);
/// assert_eq!(m.target_set(OpType::Mul).len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Machine {
    clusters: Vec<Cluster>,
    bus_count: u32,
    /// `lat(p)` for every regular op type, indexed by position in
    /// [`OpType::REGULAR`]; moves are stored separately.
    op_latency: Vec<u32>,
    move_latency: u32,
    /// `dii(t)` per FU type (ALU, MUL, BUS) indexed by [`FuType::index`].
    dii: [u32; 3],
}

impl Machine {
    /// Default-latency machine from a list of clusters: all operations
    /// take one cycle, two buses, one-cycle moves, fully pipelined — the
    /// exact assumptions of the paper's Table 1.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::NoClusters`] for an empty list or
    /// [`MachineError::EmptyCluster`] if any cluster has no FUs.
    pub fn new(clusters: Vec<Cluster>) -> Result<Self, MachineError> {
        MachineBuilder::new().clusters(clusters).build()
    }

    /// Number of clusters `|CL|`.
    #[inline]
    pub fn cluster_count(&self) -> usize {
        self.clusters.len()
    }

    /// Iterator over all cluster ids in dense order.
    pub fn cluster_ids(&self) -> impl ExactSizeIterator<Item = ClusterId> + Clone {
        (0..self.clusters.len() as u32).map(ClusterId)
    }

    /// The cluster with id `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    #[inline]
    pub fn cluster(&self, c: ClusterId) -> &Cluster {
        &self.clusters[c.index()]
    }

    /// `N(c,t)`: number of FUs of regular type `t` in cluster `c`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is [`FuType::Bus`] or `c` is out of range.
    #[inline]
    pub fn fu_count(&self, c: ClusterId, t: FuType) -> u32 {
        self.clusters[c.index()].fu_count(t)
    }

    /// `N(t)`: total number of FUs of regular type `t` across clusters.
    ///
    /// # Panics
    ///
    /// Panics if `t` is [`FuType::Bus`] (use [`Machine::bus_count`]).
    pub fn fu_count_total(&self, t: FuType) -> u32 {
        self.clusters.iter().map(|cl| cl.fu_count(t)).sum()
    }

    /// `N_B = N(BUS)`: number of simultaneous inter-cluster transfers.
    #[inline]
    pub fn bus_count(&self) -> u32 {
        self.bus_count
    }

    /// `lat(p)` for any operation type, including `move`.
    #[inline]
    pub fn latency(&self, p: OpType) -> u32 {
        match p {
            OpType::Move => self.move_latency,
            _ => {
                let idx = OpType::REGULAR
                    .iter()
                    .position(|&q| q == p)
                    .expect("regular op type"); // lint:allow(no-panic)
                self.op_latency[idx]
            }
        }
    }

    /// `lat(move)`: latency of an inter-cluster data transfer.
    #[inline]
    pub fn move_latency(&self) -> u32 {
        self.move_latency
    }

    /// `dii(t)`: data-introduction interval of FU type `t` — the number of
    /// cycles after which a unit of that type can start a new operation.
    #[inline]
    pub fn dii(&self, t: FuType) -> u32 {
        self.dii[t.index()]
    }

    /// `dii(v)` shortcut for an operation type (paper footnote 1:
    /// `dii(v) = dii(futype(v))`).
    #[inline]
    pub fn dii_of_op(&self, p: OpType) -> u32 {
        self.dii(p.fu_type())
    }

    /// Whether cluster `c` can execute operations of type `p`
    /// (`N(c, futype(p)) > 0`). Moves are supported "between" clusters, so
    /// `supports(c, Move)` is true whenever the machine has a bus.
    pub fn supports(&self, c: ClusterId, p: OpType) -> bool {
        match p.fu_type() {
            FuType::Bus => self.bus_count > 0,
            t => self.fu_count(c, t) > 0,
        }
    }

    /// `TS(v)`: the target set of an operation type — all clusters with at
    /// least one FU able to execute it.
    pub fn target_set(&self, p: OpType) -> Vec<ClusterId> {
        self.cluster_ids()
            .filter(|&c| self.supports(c, p))
            .collect()
    }

    /// Per-operation latency vector for a DFG under this machine, in the
    /// layout expected by [`vliw_dfg::Timing`].
    pub fn op_latencies(&self, dfg: &Dfg) -> Vec<u32> {
        dfg.op_ids().map(|v| self.latency(dfg.op_type(v))).collect()
    }

    /// Checks that every operation of `dfg` can be executed somewhere on
    /// this machine, returning the first unsupported operation otherwise.
    pub fn check_supports_dfg(&self, dfg: &Dfg) -> Result<(), OpId> {
        for v in dfg.op_ids() {
            if self.target_set(dfg.op_type(v)).is_empty() {
                return Err(v);
            }
        }
        Ok(())
    }

    /// Returns a copy with a different bus count.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn with_bus_count(mut self, n: u32) -> Self {
        assert!(n > 0, "bus count must be at least 1");
        self.bus_count = n;
        self
    }

    /// Returns a copy with a different `lat(move)`.
    ///
    /// # Panics
    ///
    /// Panics if `lat` is zero.
    pub fn with_move_latency(mut self, lat: u32) -> Self {
        assert!(lat > 0, "move latency must be at least 1");
        self.move_latency = lat;
        self
    }

    /// Re-runs the [`MachineBuilder`] invariant checks on an existing
    /// machine. Construction always validates, but serde deserialization
    /// bypasses the builder, so descriptions loaded from JSON should be
    /// checked before use.
    ///
    /// # Errors
    ///
    /// Same conditions as [`MachineBuilder::build`].
    pub fn validate(&self) -> Result<(), MachineError> {
        if self.clusters.is_empty() {
            return Err(MachineError::NoClusters);
        }
        for (i, cl) in self.clusters.iter().enumerate() {
            if cl.total_fus() == 0 {
                return Err(MachineError::EmptyCluster(ClusterId::from_index(i)));
            }
        }
        if self.bus_count == 0 {
            return Err(MachineError::NoBus);
        }
        for (idx, &lat) in self.op_latency.iter().enumerate() {
            if lat == 0 {
                return Err(MachineError::ZeroLatency(OpType::REGULAR[idx]));
            }
        }
        if self.move_latency == 0 {
            return Err(MachineError::ZeroLatency(OpType::Move));
        }
        for t in FuType::ALL {
            if self.dii[t.index()] == 0 {
                return Err(MachineError::ZeroDii(t));
            }
        }
        Ok(())
    }

    /// Whether all clusters have identical FU complements (Capitanio's
    /// algorithm requires this; ours and PCC do not).
    pub fn is_homogeneous(&self) -> bool {
        self.clusters.windows(2).all(|w| w[0] == w[1])
    }

    /// Total number of regular FUs in the datapath (saturating).
    pub fn total_fus(&self) -> u32 {
        self.clusters
            .iter()
            .map(Cluster::total_fus)
            .fold(0u32, u32::saturating_add)
    }
}

impl fmt::Display for Machine {
    /// Formats in the paper's notation, e.g. `[2,1|1,1]`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("[")?;
        for (i, cl) in self.clusters.iter().enumerate() {
            if i > 0 {
                f.write_str("|")?;
            }
            write!(f, "{cl}")?;
        }
        f.write_str("]")
    }
}

/// Builder for [`Machine`]s with non-default latencies and pipelining.
///
/// # Example
///
/// A machine with 2-cycle non-pipelined multipliers:
///
/// ```
/// use vliw_datapath::{Cluster, MachineBuilder};
/// use vliw_dfg::{FuType, OpType};
///
/// # fn main() -> Result<(), vliw_datapath::MachineError> {
/// let m = MachineBuilder::new()
///     .cluster(Cluster::new(2, 1))
///     .cluster(Cluster::new(1, 1))
///     .op_latency(OpType::Mul, 2)
///     .fu_dii(FuType::Mul, 2) // dii = lat: not pipelined (footnote 3)
///     .build()?;
/// assert_eq!(m.latency(OpType::Mul), 2);
/// assert_eq!(m.dii(FuType::Mul), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MachineBuilder {
    clusters: Vec<Cluster>,
    bus_count: u32,
    op_latency: Vec<u32>,
    move_latency: u32,
    dii: [u32; 3],
}

impl Default for MachineBuilder {
    fn default() -> Self {
        MachineBuilder {
            clusters: Vec::new(),
            bus_count: 2,
            op_latency: vec![1; OpType::REGULAR.len()],
            move_latency: 1,
            dii: [1, 1, 1],
        }
    }
}

impl MachineBuilder {
    /// Creates a builder with the paper's Table-1 defaults: two buses,
    /// all latencies one cycle, fully pipelined resources.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a cluster.
    pub fn cluster(mut self, cl: Cluster) -> Self {
        self.clusters.push(cl);
        self
    }

    /// Replaces the cluster list.
    pub fn clusters(mut self, cls: Vec<Cluster>) -> Self {
        self.clusters = cls;
        self
    }

    /// Sets the number of buses `N_B`.
    pub fn bus_count(mut self, n: u32) -> Self {
        self.bus_count = n;
        self
    }

    /// Sets `lat(p)` for a regular operation type.
    ///
    /// # Panics
    ///
    /// Panics if `p` is [`OpType::Move`] (use
    /// [`MachineBuilder::move_latency`]).
    pub fn op_latency(mut self, p: OpType, lat: u32) -> Self {
        let idx = OpType::REGULAR
            .iter()
            .position(|&q| q == p)
            .expect("set move latency via move_latency()");
        self.op_latency[idx] = lat;
        self
    }

    /// Sets `lat(move)`.
    pub fn move_latency(mut self, lat: u32) -> Self {
        self.move_latency = lat;
        self
    }

    /// Sets `dii(t)` for an FU type (including the bus).
    pub fn fu_dii(mut self, t: FuType, dii: u32) -> Self {
        self.dii[t.index()] = dii;
        self
    }

    /// Finalizes the machine.
    ///
    /// # Errors
    ///
    /// Returns a [`MachineError`] if the machine has no clusters, an empty
    /// cluster, no bus, a zero latency, or a zero data-introduction
    /// interval.
    pub fn build(self) -> Result<Machine, MachineError> {
        let machine = Machine {
            clusters: self.clusters,
            bus_count: self.bus_count,
            op_latency: self.op_latency,
            move_latency: self.move_latency,
            dii: self.dii,
        };
        machine.validate()?;
        Ok(machine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_one_one_one() -> Machine {
        Machine::new(vec![Cluster::new(2, 1), Cluster::new(1, 1)]).expect("valid machine")
    }

    #[test]
    fn fu_counts() {
        let m = two_one_one_one();
        let c0 = ClusterId::from_index(0);
        let c1 = ClusterId::from_index(1);
        assert_eq!(m.fu_count(c0, FuType::Alu), 2);
        assert_eq!(m.fu_count(c0, FuType::Mul), 1);
        assert_eq!(m.fu_count(c1, FuType::Alu), 1);
        assert_eq!(m.fu_count_total(FuType::Alu), 3);
        assert_eq!(m.fu_count_total(FuType::Mul), 2);
        assert_eq!(m.total_fus(), 5);
    }

    #[test]
    fn defaults_match_table1_assumptions() {
        let m = two_one_one_one();
        assert_eq!(m.bus_count(), 2);
        assert_eq!(m.move_latency(), 1);
        for p in OpType::REGULAR {
            assert_eq!(m.latency(p), 1);
        }
        for t in FuType::ALL {
            assert_eq!(m.dii(t), 1);
        }
    }

    #[test]
    fn target_set_excludes_clusters_without_fu() {
        let m = Machine::new(vec![Cluster::new(2, 0), Cluster::new(1, 1)]).expect("valid");
        let ts = m.target_set(OpType::Mul);
        assert_eq!(ts, vec![ClusterId::from_index(1)]);
        assert_eq!(m.target_set(OpType::Add).len(), 2);
    }

    #[test]
    fn supports_move_iff_bus_present() {
        let m = two_one_one_one();
        for c in m.cluster_ids() {
            assert!(m.supports(c, OpType::Move));
        }
    }

    #[test]
    fn display_round_trips_through_parse() {
        let m = two_one_one_one();
        assert_eq!(m.to_string(), "[2,1|1,1]");
        let parsed = Machine::parse(&m.to_string()).expect("round trip");
        assert_eq!(parsed, m);
    }

    #[test]
    fn builder_rejects_invalid_machines() {
        assert_eq!(MachineBuilder::new().build(), Err(MachineError::NoClusters));
        assert_eq!(
            MachineBuilder::new().cluster(Cluster::new(0, 0)).build(),
            Err(MachineError::EmptyCluster(ClusterId::from_index(0)))
        );
        assert_eq!(
            MachineBuilder::new()
                .cluster(Cluster::new(1, 1))
                .bus_count(0)
                .build(),
            Err(MachineError::NoBus)
        );
        assert_eq!(
            MachineBuilder::new()
                .cluster(Cluster::new(1, 1))
                .op_latency(OpType::Add, 0)
                .build(),
            Err(MachineError::ZeroLatency(OpType::Add))
        );
        assert_eq!(
            MachineBuilder::new()
                .cluster(Cluster::new(1, 1))
                .move_latency(0)
                .build(),
            Err(MachineError::ZeroLatency(OpType::Move))
        );
        assert_eq!(
            MachineBuilder::new()
                .cluster(Cluster::new(1, 1))
                .fu_dii(FuType::Mul, 0)
                .build(),
            Err(MachineError::ZeroDii(FuType::Mul))
        );
    }

    #[test]
    fn with_methods_adjust_bus_parameters() {
        let m = two_one_one_one().with_bus_count(1).with_move_latency(2);
        assert_eq!(m.bus_count(), 1);
        assert_eq!(m.move_latency(), 2);
    }

    #[test]
    #[should_panic(expected = "bus count")]
    fn with_bus_count_zero_panics() {
        let _ = two_one_one_one().with_bus_count(0);
    }

    #[test]
    fn homogeneity() {
        assert!(!two_one_one_one().is_homogeneous());
        let homo =
            Machine::new(vec![Cluster::new(1, 1), Cluster::new(1, 1)]).expect("valid machine");
        assert!(homo.is_homogeneous());
    }

    #[test]
    fn non_pipelined_resource_dii_equals_lat() {
        let m = MachineBuilder::new()
            .cluster(Cluster::new(1, 1))
            .op_latency(OpType::Mul, 2)
            .fu_dii(FuType::Mul, 2)
            .build()
            .expect("valid machine");
        assert_eq!(m.dii_of_op(OpType::Mul), m.latency(OpType::Mul));
        assert_eq!(m.dii_of_op(OpType::Add), 1);
    }

    #[test]
    fn op_latencies_vector() {
        use vliw_dfg::DfgBuilder;
        let mut b = DfgBuilder::new();
        let a = b.add_op(OpType::Mul, &[]);
        let _ = b.add_op(OpType::Add, &[a]);
        let dfg = b.finish().expect("acyclic");
        let m = MachineBuilder::new()
            .cluster(Cluster::new(1, 1))
            .op_latency(OpType::Mul, 3)
            .build()
            .expect("valid machine");
        assert_eq!(m.op_latencies(&dfg), vec![3, 1]);
    }

    #[test]
    fn check_supports_dfg_finds_unsupported_op() {
        use vliw_dfg::DfgBuilder;
        let mut b = DfgBuilder::new();
        let _ = b.add_op(OpType::Mul, &[]);
        let dfg = b.finish().expect("acyclic");
        let no_mul = Machine::new(vec![Cluster::new(2, 0)]).expect("valid machine");
        assert!(no_mul.check_supports_dfg(&dfg).is_err());
        let with_mul = Machine::new(vec![Cluster::new(2, 1)]).expect("valid machine");
        assert!(with_mul.check_supports_dfg(&dfg).is_ok());
    }

    #[test]
    fn serde_round_trip() {
        let m = two_one_one_one();
        let json = serde_json::to_string(&m).expect("serialize");
        let back: Machine = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(m, back);
    }

    #[test]
    fn validate_catches_deserialized_invalid_machines() {
        let m = two_one_one_one();
        assert_eq!(m.validate(), Ok(()));
        // Deserialization bypasses the builder: a zero-bus description
        // loads fine but must fail validation.
        let mut v = serde_json::to_value(&m);
        if let serde_json::Value::Object(fields) = &mut v {
            for (k, val) in fields.iter_mut() {
                if k == "bus_count" {
                    *val = serde_json::to_value(&0u32);
                }
            }
        }
        let back: Machine = serde_json::from_value(v).expect("deserialize");
        assert_eq!(back.validate(), Err(MachineError::NoBus));
    }
}
