//! Clustered VLIW datapath machine model (paper Section 2, "Datapath
//! model").
//!
//! A datapath is a collection of *clusters*, each containing a local
//! register file and a number of functional units per FU type, connected by
//! a BUS able to perform `N_B` simultaneous inter-cluster data transfers.
//! Register files are modeled as unbounded (the paper binds before register
//! allocation and argues spills are rare on clustered machines).
//!
//! The crate provides:
//!
//! * [`Machine`] — the machine description: clusters, bus, operation
//!   latencies `lat(p)` and data-introduction intervals `dii(t)`;
//! * [`MachineBuilder`] — programmatic construction with non-default
//!   latencies/pipelining;
//! * [`Machine::parse`] — the paper's compact `[i,j|i,j|…]` notation where
//!   `i` is the number of ALUs and `j` the number of multipliers per
//!   cluster.
//!
//! # Example
//!
//! The Table-2 datapath with one bus and two-cycle transfers:
//!
//! ```
//! use vliw_datapath::Machine;
//!
//! # fn main() -> Result<(), vliw_datapath::ParseMachineError> {
//! let machine = Machine::parse("[2,2|2,1|2,2|3,1|1,1]")?
//!     .with_bus_count(1)
//!     .with_move_latency(2);
//! assert_eq!(machine.cluster_count(), 5);
//! assert_eq!(machine.bus_count(), 1);
//! assert_eq!(machine.move_latency(), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod machine;
mod parse;
mod presets;

pub use machine::{Cluster, ClusterId, Machine, MachineBuilder, MachineError};
pub use parse::ParseMachineError;
