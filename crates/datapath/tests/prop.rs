//! Fuzz-style property tests for the datapath parser: arbitrary input
//! must never panic, and everything the parser accepts must be a valid,
//! round-trippable machine.

use proptest::prelude::*;
use vliw_datapath::Machine;

/// Characters the parser's grammar actually talks about, so random
/// strings exercise deep parse paths instead of failing on byte one.
const GRAMMAR: &[u8] = b"0123456789,|[] x";

fn grammar_soup() -> impl Strategy<Value = String> {
    prop::collection::vec(0usize..GRAMMAR.len(), 0..48)
        .prop_map(|picks| picks.into_iter().map(|i| GRAMMAR[i] as char).collect())
}

fn ascii_soup() -> impl Strategy<Value = String> {
    prop::collection::vec(0u8..128, 0..64)
        .prop_map(|bytes| String::from_utf8(bytes).expect("ASCII is UTF-8"))
}

/// Small random cluster lists, including empty clusters and empty lists.
fn cluster_lists() -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec((0u32..4, 0u32..4), 0..6)
}

fn render(clusters: &[(u32, u32)]) -> String {
    let body: Vec<String> = clusters
        .iter()
        .map(|(alus, muls)| format!("{alus},{muls}"))
        .collect();
    format!("[{}]", body.join("|"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary ASCII never panics the parser, and anything accepted
    /// passes the machine invariants.
    #[test]
    fn arbitrary_ascii_never_panics(text in ascii_soup()) {
        if let Ok(machine) = Machine::parse(&text) {
            prop_assert!(machine.validate().is_ok());
        }
    }

    /// Strings over the parser's own alphabet — much likelier to parse
    /// partway — never panic either, and accepted machines round-trip
    /// through their canonical rendering.
    #[test]
    fn grammar_shaped_soup_never_panics(text in grammar_soup()) {
        if let Ok(machine) = Machine::parse(&text) {
            prop_assert!(machine.validate().is_ok());
            let back = Machine::parse(&machine.to_string()).expect("canonical form reparses");
            prop_assert_eq!(back, machine);
        }
    }

    /// A cluster list parses iff it is non-empty and no cluster is
    /// `0,0`: single-FU clusters like `[0,1]` are legal, FU-less ones
    /// are not.
    #[test]
    fn empty_clusters_are_the_only_structural_rejection(clusters in cluster_lists()) {
        let text = render(&clusters);
        let parsed = Machine::parse(&text);
        let legal = !clusters.is_empty() && clusters.iter().all(|&(a, m)| a + m > 0);
        prop_assert_eq!(parsed.is_ok(), legal, "{}", text);
        if let Ok(machine) = parsed {
            prop_assert_eq!(machine.cluster_count(), clusters.len());
            prop_assert_eq!(machine.to_string(), text);
        }
    }

    /// Adversarially huge FU counts neither panic nor overflow.
    #[test]
    fn huge_fu_counts_are_handled(alus in 0u64..=u64::from(u32::MAX) * 2, muls in 0u32..=u32::MAX) {
        let text = format!("[{alus},{muls}]");
        if let Ok(machine) = Machine::parse(&text) {
            prop_assert!(machine.validate().is_ok());
            prop_assert!(machine.total_fus() > 0);
        }
    }
}
