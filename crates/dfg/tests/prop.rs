//! Property tests for the DFG substrate's structural invariants.

use proptest::prelude::*;
use vliw_dfg::{
    connected_components, critical_path_len, topo_order, unroll, Dfg, DfgBuilder, LoopCarry, OpId,
    OpType, Timing,
};

fn arb_dfg(max_ops: usize) -> impl Strategy<Value = Dfg> {
    (1..=max_ops).prop_flat_map(|n| {
        let kinds = prop::collection::vec(0..3u8, n);
        let picks = prop::collection::vec((0usize..usize::MAX, 0usize..usize::MAX, 0..3u8), n);
        (kinds, picks).prop_map(|(kinds, picks)| {
            let mut b = DfgBuilder::new();
            let mut ids = Vec::new();
            for (i, (&kind, &(p1, p2, arity))) in kinds.iter().zip(&picks).enumerate() {
                let ty = match kind {
                    0 => OpType::Add,
                    1 => OpType::Sub,
                    _ => OpType::Mul,
                };
                let mut operands = Vec::new();
                if i > 0 && arity >= 1 {
                    operands.push(ids[p1 % i]);
                    if arity >= 2 {
                        let second = ids[p2 % i];
                        if !operands.contains(&second) {
                            operands.push(second);
                        }
                    }
                }
                ids.push(b.add_op(ty, &operands));
            }
            b.finish().expect("acyclic by construction")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Topological order respects every edge and covers every op once.
    #[test]
    fn topo_order_is_a_valid_permutation(dfg in arb_dfg(40)) {
        let order = topo_order(&dfg).expect("builder graphs are acyclic");
        prop_assert_eq!(order.len(), dfg.len());
        let mut pos = vec![usize::MAX; dfg.len()];
        for (i, v) in order.iter().enumerate() {
            prop_assert_eq!(pos[v.index()], usize::MAX, "duplicate in order");
            pos[v.index()] = i;
        }
        for (u, v) in dfg.edges() {
            prop_assert!(pos[u.index()] < pos[v.index()]);
        }
    }

    /// ASAP/ALAP sandwich every feasible start; mobility grows linearly
    /// with the target latency.
    #[test]
    fn timing_bounds_are_consistent(dfg in arb_dfg(40), stretch in 0u32..6) {
        let lat = vec![1u32; dfg.len()];
        let cp = critical_path_len(&dfg, &lat);
        let t = Timing::new(&dfg, &lat, cp + stretch);
        for v in dfg.op_ids() {
            prop_assert!(t.asap(v) <= t.alap(v));
            prop_assert_eq!(t.mobility(v), t.alap(v) - t.asap(v));
            for &u in dfg.preds(v) {
                prop_assert!(t.asap(v) > t.asap(u));
            }
        }
        // Some op is critical at every stretch.
        prop_assert!(dfg.op_ids().any(|v| t.is_critical(v)));
    }

    /// Transposition is an involution preserving all analyses' duals.
    #[test]
    fn transpose_involution(dfg in arb_dfg(40)) {
        let t = dfg.transposed();
        prop_assert_eq!(t.transposed(), dfg.clone());
        prop_assert_eq!(t.edge_count(), dfg.edge_count());
        let lat = vec![1u32; dfg.len()];
        prop_assert_eq!(critical_path_len(&t, &lat), critical_path_len(&dfg, &lat));
        prop_assert_eq!(connected_components(&t).1, connected_components(&dfg).1);
    }

    /// Unrolling without carries multiplies sizes and components.
    #[test]
    fn unroll_scales_structure(dfg in arb_dfg(20), factor in 1usize..5) {
        let u = unroll(&dfg, &[], factor).expect("unrolls");
        prop_assert_eq!(u.len(), dfg.len() * factor);
        prop_assert_eq!(u.edge_count(), dfg.edge_count() * factor);
        prop_assert_eq!(
            connected_components(&u).1,
            connected_components(&dfg).1 * factor
        );
        let lat_body = vec![1u32; dfg.len()];
        let lat_u = vec![1u32; u.len()];
        prop_assert_eq!(critical_path_len(&u, &lat_u), critical_path_len(&dfg, &lat_body));
    }

    /// A self-carry on a *deepest* sink chains copies: the critical
    /// path grows by at least one per extra copy along that chain.
    #[test]
    fn self_carry_chains_copies(dfg in arb_dfg(16), factor in 2usize..5) {
        let lat0 = vec![1u32; dfg.len()];
        let timing = Timing::with_critical_path(&dfg, &lat0);
        let sink = dfg
            .sinks()
            .into_iter()
            .max_by_key(|&v| timing.asap(v))
            .expect("every DAG has a sink");
        let carry = LoopCarry::next_iteration(sink, sink);
        let u = unroll(&dfg, &[carry], factor).expect("unrolls");
        prop_assert!(u.validate().is_ok());
        let lat_body = vec![1u32; dfg.len()];
        let lat_u = vec![1u32; u.len()];
        let cp_body = critical_path_len(&dfg, &lat_body);
        let cp_u = critical_path_len(&u, &lat_u);
        prop_assert!(cp_u >= cp_body + (factor as u32 - 1));
    }

    /// Serde round trips preserve graphs exactly.
    #[test]
    fn serde_round_trip(dfg in arb_dfg(30)) {
        let json = serde_json::to_string(&dfg).expect("serializes");
        let back: Dfg = serde_json::from_str(&json).expect("deserializes");
        prop_assert_eq!(&back, &dfg);
        prop_assert!(back.validate().is_ok());
    }

    /// Degree bookkeeping matches adjacency on every op.
    #[test]
    fn degrees_match_adjacency(dfg in arb_dfg(40)) {
        let mut outs = vec![0usize; dfg.len()];
        for (u, _) in dfg.edges() {
            outs[u.index()] += 1;
        }
        for v in dfg.op_ids() {
            prop_assert_eq!(dfg.out_degree(v), outs[v.index()]);
            prop_assert_eq!(dfg.in_degree(v), dfg.preds(v).len());
        }
        let _ = OpId::from_index(0);
    }
}
