//! Structural graph analyses: topological order, connected components,
//! critical path, and the summary statistics printed in the paper's table
//! sub-headers (`N_V`, `N_CC`, `L_CP`).

use crate::graph::{Dfg, OpId};
use std::fmt;

/// Computes a topological order of the graph with Kahn's algorithm.
///
/// Returns `None` if the dependence relation is cyclic (which
/// [`crate::DfgBuilder::finish`] rejects, so this only returns `None` for
/// hand-rolled or corrupted graphs).
///
/// The produced order is deterministic: among ready operations, the one
/// with the smallest id comes first. Determinism matters because the
/// binding heuristics break ties by visitation order and the reproduction
/// must be repeatable run-to-run.
pub fn topo_order(dfg: &Dfg) -> Option<Vec<OpId>> {
    let n = dfg.len();
    // Fast path: graphs whose every edge goes from a smaller to a larger
    // id (true for anything assembled through `DfgBuilder::add_op`,
    // including every bound graph) are already in the exact order Kahn's
    // smallest-ready-id rule produces. Induction: at step `k` every op
    // `< k` is emitted and op `k`'s predecessors all have smaller ids,
    // so `k` is ready and is the smallest ready id. The scan is O(E)
    // with no allocation, replacing the sorted-ready-list bookkeeping
    // on the candidate-evaluation hot path.
    if dfg
        .op_ids()
        .all(|v| dfg.preds(v).iter().all(|&u| u.index() < v.index()))
    {
        return Some(dfg.op_ids().collect());
    }
    let mut in_deg: Vec<usize> = dfg.op_ids().map(|v| dfg.in_degree(v)).collect();
    // Binary heap would give O(E log V); for the kernel sizes at hand a
    // sorted ready list is plenty and keeps the order fully deterministic.
    let mut ready: Vec<OpId> = dfg.op_ids().filter(|v| in_deg[v.index()] == 0).collect();
    ready.sort_unstable_by(|a, b| b.cmp(a)); // pop() takes the smallest id
    let mut order = Vec::with_capacity(n);
    while let Some(v) = ready.pop() {
        order.push(v);
        for &s in dfg.succs(v) {
            in_deg[s.index()] -= 1;
            if in_deg[s.index()] == 0 {
                // Insert keeping `ready` sorted descending.
                let pos = ready.partition_point(|&r| r > s);
                ready.insert(pos, s);
            }
        }
    }
    (order.len() == n).then_some(order)
}

/// Assigns every operation to a weakly-connected component.
///
/// Returns `(component_of, component_count)` where `component_of[v.index()]`
/// is a dense component id in `0..component_count`. The number of connected
/// components is the `N_CC` statistic from the paper's benchmark
/// sub-headers.
pub fn connected_components(dfg: &Dfg) -> (Vec<usize>, usize) {
    const UNVISITED: usize = usize::MAX;
    let mut comp = vec![UNVISITED; dfg.len()];
    let mut count = 0;
    let mut stack = Vec::new();
    for v in dfg.op_ids() {
        if comp[v.index()] != UNVISITED {
            continue;
        }
        stack.push(v);
        comp[v.index()] = count;
        while let Some(u) = stack.pop() {
            for &w in dfg.preds(u).iter().chain(dfg.succs(u)) {
                if comp[w.index()] == UNVISITED {
                    comp[w.index()] = count;
                    stack.push(w);
                }
            }
        }
        count += 1;
    }
    (comp, count)
}

/// Critical-path length `L_CP` in clock cycles for the given per-operation
/// latencies: the completion time of the longest dependence chain, i.e. the
/// minimum schedule latency with unlimited resources.
///
/// # Panics
///
/// Panics if `lat.len() != dfg.len()` or the graph is cyclic.
pub fn critical_path_len(dfg: &Dfg, lat: &[u32]) -> u32 {
    assert_eq!(lat.len(), dfg.len(), "one latency per operation required");
    let order = topo_order(dfg).expect("critical path requires an acyclic graph");
    let mut finish = vec![0u32; dfg.len()];
    let mut cp = 0;
    for v in order {
        let start = dfg
            .preds(v)
            .iter()
            .map(|&u| finish[u.index()])
            .max()
            .unwrap_or(0);
        finish[v.index()] = start + lat[v.index()];
        cp = cp.max(finish[v.index()]);
    }
    cp
}

/// Summary statistics of a benchmark DFG, matching the sub-headers of the
/// paper's Table 1 (`N_V`, `N_CC`, `L_CP`) plus the ALU/MUL operation mix.
///
/// # Example
///
/// ```
/// use vliw_dfg::{DfgBuilder, DfgStats, OpType};
/// # fn main() -> Result<(), vliw_dfg::DfgError> {
/// let mut b = DfgBuilder::new();
/// let a = b.add_op(OpType::Mul, &[]);
/// let _ = b.add_op(OpType::Add, &[a]);
/// let dfg = b.finish()?;
/// let stats = DfgStats::unit_latency(&dfg);
/// assert_eq!((stats.n_v, stats.n_cc, stats.l_cp), (2, 1, 2));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DfgStats {
    /// Number of operations `N_V`.
    pub n_v: usize,
    /// Number of weakly-connected components `N_CC`.
    pub n_cc: usize,
    /// Critical-path length `L_CP` in cycles.
    pub l_cp: u32,
    /// Number of ALU-class operations.
    pub n_alu: usize,
    /// Number of multiplier-class operations.
    pub n_mul: usize,
}

impl DfgStats {
    /// Computes statistics with explicit per-operation latencies.
    ///
    /// # Panics
    ///
    /// Panics if `lat.len() != dfg.len()`.
    pub fn new(dfg: &Dfg, lat: &[u32]) -> Self {
        let (_, n_cc) = connected_components(dfg);
        let (n_alu, n_mul) = dfg.regular_op_mix();
        DfgStats {
            n_v: dfg.len(),
            n_cc,
            l_cp: critical_path_len(dfg, lat),
            n_alu,
            n_mul,
        }
    }

    /// Statistics under the paper's Table-1 assumption that every operation
    /// takes one cycle.
    pub fn unit_latency(dfg: &Dfg) -> Self {
        Self::new(dfg, &vec![1; dfg.len()])
    }
}

impl fmt::Display for DfgStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "N_V = {}, N_CC = {}, L_CP = {} ({} ALU / {} MUL ops)",
            self.n_v, self.n_cc, self.l_cp, self.n_alu, self.n_mul
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DfgBuilder, OpType};

    fn two_chains() -> Dfg {
        // Component A: v0 -> v1 -> v2 ; Component B: v3 -> v4
        let mut b = DfgBuilder::new();
        let v0 = b.add_op(OpType::Add, &[]);
        let v1 = b.add_op(OpType::Mul, &[v0]);
        let _v2 = b.add_op(OpType::Add, &[v1]);
        let v3 = b.add_op(OpType::Add, &[]);
        let _v4 = b.add_op(OpType::Add, &[v3]);
        b.finish().expect("acyclic")
    }

    #[test]
    fn topo_order_respects_dependencies() {
        let dfg = two_chains();
        let order = topo_order(&dfg).expect("acyclic");
        let pos: Vec<usize> = {
            let mut p = vec![0; dfg.len()];
            for (i, v) in order.iter().enumerate() {
                p[v.index()] = i;
            }
            p
        };
        for (u, v) in dfg.edges() {
            assert!(pos[u.index()] < pos[v.index()], "{u} must precede {v}");
        }
    }

    #[test]
    fn topo_order_is_deterministic_smallest_id_first() {
        let mut b = DfgBuilder::new();
        let v0 = b.add_op(OpType::Add, &[]);
        let v1 = b.add_op(OpType::Add, &[]);
        let v2 = b.add_op(OpType::Add, &[]);
        let _ = b.add_op(OpType::Add, &[v0, v1, v2]);
        let dfg = b.finish().expect("acyclic");
        let order = topo_order(&dfg).expect("acyclic");
        assert_eq!(
            order.iter().map(|v| v.index()).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
    }

    #[test]
    fn components_counted_correctly() {
        let dfg = two_chains();
        let (comp, count) = connected_components(&dfg);
        assert_eq!(count, 2);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[1], comp[2]);
        assert_eq!(comp[3], comp[4]);
        assert_ne!(comp[0], comp[3]);
    }

    #[test]
    fn critical_path_unit_latency() {
        let dfg = two_chains();
        assert_eq!(critical_path_len(&dfg, &vec![1; dfg.len()]), 3);
    }

    #[test]
    fn critical_path_weighted_latency() {
        let dfg = two_chains();
        // v1 is a Mul; give multiplies latency 2 -> chain A takes 1+2+1 = 4.
        let lat: Vec<u32> = dfg
            .op_ids()
            .map(|v| if dfg.op_type(v) == OpType::Mul { 2 } else { 1 })
            .collect();
        assert_eq!(critical_path_len(&dfg, &lat), 4);
    }

    #[test]
    fn stats_match_expectations() {
        let dfg = two_chains();
        let stats = DfgStats::unit_latency(&dfg);
        assert_eq!(stats.n_v, 5);
        assert_eq!(stats.n_cc, 2);
        assert_eq!(stats.l_cp, 3);
        assert_eq!(stats.n_alu, 4);
        assert_eq!(stats.n_mul, 1);
        assert!(stats.to_string().contains("N_V = 5"));
    }

    #[test]
    fn empty_graph_analyses() {
        let dfg = DfgBuilder::new().finish().expect("empty");
        assert_eq!(topo_order(&dfg), Some(vec![]));
        assert_eq!(connected_components(&dfg).1, 0);
        assert_eq!(critical_path_len(&dfg, &[]), 0);
    }
}
