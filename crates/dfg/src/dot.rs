//! Graphviz (DOT) export of dataflow graphs.
//!
//! Useful for eyeballing benchmark kernels and bound graphs (the inserted
//! `move` operations render as gray boxes, mirroring the paper's Figure 1
//! illustration of a bound DFG).

use crate::graph::{Dfg, OpId};
use crate::op::OpType;
use std::fmt::Write as _;

/// Renders the graph in Graphviz DOT syntax.
///
/// Regular operations are ellipses labeled with their mnemonic (and debug
/// name if present); `move` operations are gray boxes. `cluster_of` may
/// supply a binding, in which case nodes are colored per cluster.
///
/// # Example
///
/// ```
/// use vliw_dfg::{DfgBuilder, OpType, dot};
/// # fn main() -> Result<(), vliw_dfg::DfgError> {
/// let mut b = DfgBuilder::new();
/// let a = b.add_op(OpType::Add, &[]);
/// let _m = b.add_op(OpType::Mul, &[a]);
/// let text = dot::to_dot(&b.finish()?, "example", |_| None);
/// assert!(text.starts_with("digraph example"));
/// # Ok(())
/// # }
/// ```
pub fn to_dot(dfg: &Dfg, graph_name: &str, cluster_of: impl Fn(OpId) -> Option<usize>) -> String {
    const PALETTE: [&str; 8] = [
        "#a6cee3", "#b2df8a", "#fb9a99", "#fdbf6f", "#cab2d6", "#ffff99", "#1f78b4", "#33a02c",
    ];
    let mut out = String::new();
    let _ = writeln!(out, "digraph {graph_name} {{");
    let _ = writeln!(out, "  rankdir=TB;");
    for v in dfg.op_ids() {
        let label = match dfg.name(v) {
            Some(name) => format!("{v}: {} [{name}]", dfg.op_type(v)),
            None => format!("{v}: {}", dfg.op_type(v)),
        };
        let shape = if dfg.op_type(v) == OpType::Move {
            "box, style=filled, fillcolor=\"#dddddd\""
        } else {
            "ellipse"
        };
        match cluster_of(v) {
            Some(c) => {
                let color = PALETTE[c % PALETTE.len()];
                let _ = writeln!(
                    out,
                    "  n{} [label=\"{label}\\ncl{c}\", shape={shape}, style=filled, fillcolor=\"{color}\"];",
                    v.index()
                );
            }
            None => {
                let _ = writeln!(out, "  n{} [label=\"{label}\", shape={shape}];", v.index());
            }
        }
    }
    for (u, v) in dfg.edges() {
        let _ = writeln!(out, "  n{} -> n{};", u.index(), v.index());
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DfgBuilder, OpType};

    fn sample() -> Dfg {
        let mut b = DfgBuilder::new();
        let a = b.add_named_op(OpType::Add, &[], "in0+in1");
        let m = b.add_op(OpType::Mul, &[a]);
        let _t = b.add_op(OpType::Move, &[m]);
        b.finish().expect("acyclic")
    }

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let dfg = sample();
        let text = to_dot(&dfg, "g", |_| None);
        for v in dfg.op_ids() {
            assert!(text.contains(&format!("n{}", v.index())));
        }
        assert!(text.contains("n0 -> n1;"));
        assert!(text.contains("n1 -> n2;"));
    }

    #[test]
    fn moves_render_as_boxes() {
        let text = to_dot(&sample(), "g", |_| None);
        assert!(text.contains("shape=box"));
    }

    #[test]
    fn names_appear_in_labels() {
        let text = to_dot(&sample(), "g", |_| None);
        assert!(text.contains("in0+in1"));
    }

    #[test]
    fn clusters_color_nodes() {
        let text = to_dot(&sample(), "g", |v| Some(v.index() % 2));
        assert!(text.contains("cl0"));
        assert!(text.contains("cl1"));
        assert!(text.contains("fillcolor"));
    }

    #[test]
    fn output_is_well_formed() {
        let text = to_dot(&sample(), "g", |_| None);
        assert!(text.starts_with("digraph g {"));
        assert!(text.trim_end().ends_with('}'));
    }
}
