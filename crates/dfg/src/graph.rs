//! The arena-based dataflow DAG.
//!
//! [`Dfg`] stores operations in a flat arena indexed by [`OpId`] and keeps
//! both predecessor (operand) and successor (consumer) adjacency, so every
//! query the binding and scheduling algorithms need — `pred(v)`, `succ(v)`,
//! in/out degrees, topological iteration — is O(1) amortized.
//!
//! Construction happens through [`crate::DfgBuilder`], which guarantees the
//! graph is acyclic by construction; deserialized graphs are re-validated.

use crate::op::OpType;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Identifier of an operation in a [`Dfg`] arena.
///
/// `OpId`s are dense indices `0..dfg.len()`, stable across clones and
/// serialization, so algorithms can use them directly as `Vec` indices via
/// [`OpId::index`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct OpId(pub(crate) u32);

impl OpId {
    /// Creates an `OpId` from a raw dense index.
    ///
    /// Intended for algorithms that iterate `0..dfg.len()`; the id is only
    /// meaningful for the graph it was derived from.
    ///
    /// # Panics
    ///
    /// Panics when `index` does not fit in `u32`.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        OpId(u32::try_from(index).expect("DFG larger than u32::MAX operations"))
    }

    /// The dense index of this operation, usable for table lookup.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// One operation vertex: its type and an optional debug name. The name
/// is reference-counted so derived graphs (a bound graph is rebuilt for
/// every candidate evaluation) can share the allocation instead of
/// cloning tens of strings per candidate.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub(crate) struct OpNode {
    pub(crate) kind: OpType,
    pub(crate) name: Option<Arc<str>>,
}

/// A dataflow graph representing a basic block (paper Section 2,
/// "Dataflow model"): a DAG whose vertices are operations and whose edges
/// are data dependencies.
///
/// The graph can be in *original* form (no [`OpType::Move`] vertices) or in
/// *bound* form, where data transfers have been materialized between
/// producers and consumers bound to different clusters (paper Figure 1).
/// `Dfg` itself is agnostic; the scheduler crate constructs bound graphs.
///
/// # Example
///
/// ```
/// use vliw_dfg::{DfgBuilder, OpType};
/// # fn main() -> Result<(), vliw_dfg::DfgError> {
/// let mut b = DfgBuilder::new();
/// let a = b.add_op(OpType::Mul, &[]);
/// let c = b.add_op(OpType::Add, &[a]);
/// let dfg = b.finish()?;
/// assert_eq!(dfg.len(), 2);
/// assert_eq!(dfg.preds(c), &[a]);
/// assert_eq!(dfg.succs(a), &[c]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dfg {
    pub(crate) ops: Vec<OpNode>,
    pub(crate) preds: Vec<Vec<OpId>>,
    pub(crate) succs: Vec<Vec<OpId>>,
}

impl Dfg {
    /// Number of operations `N_V = |V|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the graph contains no operations.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Iterator over all operation ids in dense order.
    pub fn op_ids(&self) -> impl ExactSizeIterator<Item = OpId> + Clone {
        (0..self.ops.len() as u32).map(OpId)
    }

    /// The operation type `optype(v)`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not an id of this graph.
    #[inline]
    pub fn op_type(&self, v: OpId) -> OpType {
        self.ops[v.index()].kind
    }

    /// The optional debug name attached at build time.
    #[inline]
    pub fn name(&self, v: OpId) -> Option<&str> {
        self.ops[v.index()].name.as_deref()
    }

    /// The shared handle of a debug name, for propagating names into
    /// derived graphs without re-allocating the string (see
    /// [`crate::DfgBuilder::add_op_shared_name`]).
    #[inline]
    pub fn shared_name(&self, v: OpId) -> Option<Arc<str>> {
        self.ops[v.index()].name.clone()
    }

    /// Direct predecessors (operand producers) `pred(v)`.
    #[inline]
    pub fn preds(&self, v: OpId) -> &[OpId] {
        &self.preds[v.index()]
    }

    /// Direct successors (result consumers) `succ(v)`.
    #[inline]
    pub fn succs(&self, v: OpId) -> &[OpId] {
        &self.succs[v.index()]
    }

    /// Number of operands of `v`.
    #[inline]
    pub fn in_degree(&self, v: OpId) -> usize {
        self.preds[v.index()].len()
    }

    /// Number of consumers of `v`'s result — the third component of the
    /// paper's binding order (Section 3.1.1).
    #[inline]
    pub fn out_degree(&self, v: OpId) -> usize {
        self.succs[v.index()].len()
    }

    /// Operations with no operands (DFG inputs).
    pub fn sources(&self) -> Vec<OpId> {
        self.op_ids().filter(|&v| self.in_degree(v) == 0).collect()
    }

    /// Operations with no consumers (DFG outputs).
    pub fn sinks(&self) -> Vec<OpId> {
        self.op_ids().filter(|&v| self.out_degree(v) == 0).collect()
    }

    /// Total number of data-dependence edges `|E|`.
    pub fn edge_count(&self) -> usize {
        self.preds.iter().map(Vec::len).sum()
    }

    /// Iterator over all edges as `(producer, consumer)` pairs.
    pub fn edges(&self) -> EdgeIter<'_> {
        EdgeIter {
            dfg: self,
            consumer: 0,
            slot: 0,
        }
    }

    /// Whether an edge `u -> v` exists.
    pub fn has_edge(&self, u: OpId, v: OpId) -> bool {
        self.preds[v.index()].contains(&u)
    }

    /// Number of operations of each [`crate::FuType`]'s operation class
    /// that are *regular* (`Move` excluded): `(n_alu, n_mul)`.
    pub fn regular_op_mix(&self) -> (usize, usize) {
        let mut alu = 0;
        let mut mul = 0;
        for node in &self.ops {
            match node.kind.fu_type() {
                crate::FuType::Alu => alu += 1,
                crate::FuType::Mul => mul += 1,
                crate::FuType::Bus => {}
            }
        }
        (alu, mul)
    }

    /// Ids of all `Move` operations (non-empty only in bound graphs).
    pub fn moves(&self) -> Vec<OpId> {
        self.op_ids()
            .filter(|&v| self.op_type(v) == OpType::Move)
            .collect()
    }

    /// Ids of all regular (non-`Move`) operations.
    pub fn regular_ops(&self) -> Vec<OpId> {
        self.op_ids()
            .filter(|&v| self.op_type(v).is_regular())
            .collect()
    }

    /// The transposed graph: same operations (ids and types preserved),
    /// every edge reversed.
    ///
    /// Binding "from the output nodes" (paper Section 3.1.4) is
    /// implemented by running the forward algorithm on the transpose —
    /// data flows backwards, so producers/consumers swap roles while all
    /// level analyses mirror symmetrically.
    pub fn transposed(&self) -> Dfg {
        Dfg {
            ops: self.ops.clone(),
            preds: self.succs.clone(),
            succs: self.preds.clone(),
        }
    }
}

/// Iterator over the edges of a [`Dfg`] as `(producer, consumer)` pairs;
/// created by [`Dfg::edges`].
#[derive(Debug, Clone)]
pub struct EdgeIter<'a> {
    dfg: &'a Dfg,
    consumer: usize,
    slot: usize,
}

impl Iterator for EdgeIter<'_> {
    type Item = (OpId, OpId);

    fn next(&mut self) -> Option<Self::Item> {
        while self.consumer < self.dfg.len() {
            let preds = &self.dfg.preds[self.consumer];
            if self.slot < preds.len() {
                let edge = (preds[self.slot], OpId(self.consumer as u32));
                self.slot += 1;
                return Some(edge);
            }
            self.consumer += 1;
            self.slot = 0;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use crate::{DfgBuilder, OpType};

    fn diamond() -> crate::Dfg {
        // v0 -> {v1, v2} -> v3
        let mut b = DfgBuilder::new();
        let v0 = b.add_op(OpType::Add, &[]);
        let v1 = b.add_op(OpType::Mul, &[v0]);
        let v2 = b.add_op(OpType::Sub, &[v0]);
        let _v3 = b.add_op(OpType::Add, &[v1, v2]);
        b.finish().expect("diamond is acyclic")
    }

    #[test]
    fn adjacency_is_consistent() {
        let dfg = diamond();
        for (u, v) in dfg.edges() {
            assert!(dfg.succs(u).contains(&v));
            assert!(dfg.preds(v).contains(&u));
        }
        assert_eq!(dfg.edge_count(), 4);
    }

    #[test]
    fn sources_and_sinks() {
        let dfg = diamond();
        assert_eq!(dfg.sources().len(), 1);
        assert_eq!(dfg.sinks().len(), 1);
        assert_eq!(dfg.sources()[0].index(), 0);
        assert_eq!(dfg.sinks()[0].index(), 3);
    }

    #[test]
    fn degrees() {
        let dfg = diamond();
        let ids: Vec<_> = dfg.op_ids().collect();
        assert_eq!(dfg.out_degree(ids[0]), 2);
        assert_eq!(dfg.in_degree(ids[3]), 2);
        assert_eq!(dfg.in_degree(ids[0]), 0);
        assert_eq!(dfg.out_degree(ids[3]), 0);
    }

    #[test]
    fn op_mix_counts_alu_and_mul() {
        let dfg = diamond();
        let (alu, mul) = dfg.regular_op_mix();
        assert_eq!(alu, 3);
        assert_eq!(mul, 1);
    }

    #[test]
    fn edge_iter_yields_every_edge_once() {
        let dfg = diamond();
        let edges: Vec<_> = dfg.edges().collect();
        assert_eq!(edges.len(), dfg.edge_count());
        let mut dedup = edges.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), edges.len());
    }

    #[test]
    fn has_edge_matches_adjacency() {
        let dfg = diamond();
        let ids: Vec<_> = dfg.op_ids().collect();
        assert!(dfg.has_edge(ids[0], ids[1]));
        assert!(!dfg.has_edge(ids[1], ids[0]));
        assert!(!dfg.has_edge(ids[0], ids[3]));
    }

    #[test]
    fn serde_round_trip_preserves_graph() {
        let dfg = diamond();
        let json = serde_json::to_string(&dfg).expect("serialize");
        let back: crate::Dfg = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(dfg, back);
    }

    #[test]
    fn display_for_opid() {
        assert_eq!(crate::OpId::from_index(7).to_string(), "v7");
    }

    #[test]
    fn transpose_reverses_every_edge() {
        let dfg = diamond();
        let t = dfg.transposed();
        assert_eq!(t.len(), dfg.len());
        assert_eq!(t.edge_count(), dfg.edge_count());
        for (u, v) in dfg.edges() {
            assert!(t.has_edge(v, u));
        }
        for v in dfg.op_ids() {
            assert_eq!(t.op_type(v), dfg.op_type(v));
        }
        // Transposing twice is the identity.
        assert_eq!(t.transposed(), dfg);
    }

    #[test]
    fn empty_graph() {
        let dfg = DfgBuilder::new().finish().expect("empty is fine");
        assert!(dfg.is_empty());
        assert_eq!(dfg.len(), 0);
        assert_eq!(dfg.edge_count(), 0);
        assert!(dfg.edges().next().is_none());
    }
}
