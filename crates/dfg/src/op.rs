//! Operation and functional-unit type alphabets.
//!
//! The paper associates every operation type `p` with exactly one
//! functional-unit type `futype(p)` (Section 2, "Datapath model"): the set
//! of FU types partitions the set of operation types. The evaluation uses
//! two regular FU classes — ALUs and multipliers — plus the bus, which is
//! modeled as a resource of type `BUS` executing the `move` operation type.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Functional-unit type (`FT` in the paper).
///
/// Every operation executes on exactly one FU type; the inter-cluster
/// data-transfer (`move`) operation executes on the [`FuType::Bus`].
///
/// # Example
///
/// ```
/// use vliw_dfg::{FuType, OpType};
/// assert_eq!(OpType::Mul.fu_type(), FuType::Mul);
/// assert_eq!(OpType::Move.fu_type(), FuType::Bus);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FuType {
    /// Arithmetic-logic unit: additions, subtractions, logic, shifts,
    /// comparisons.
    Alu,
    /// Multiplier: multiplications and multiply-accumulate.
    Mul,
    /// The inter-cluster bus, treated as a resource of type `BUS`
    /// (paper Section 2).
    Bus,
}

impl FuType {
    /// The two *regular* (in-cluster) FU types, i.e. everything except the
    /// bus. Iterating over this is how per-cluster resource tables are laid
    /// out.
    pub const REGULAR: [FuType; 2] = [FuType::Alu, FuType::Mul];

    /// All FU types including the bus.
    pub const ALL: [FuType; 3] = [FuType::Alu, FuType::Mul, FuType::Bus];

    /// Dense index of this FU type, usable for table lookup.
    ///
    /// `Alu → 0`, `Mul → 1`, `Bus → 2`.
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            FuType::Alu => 0,
            FuType::Mul => 1,
            FuType::Bus => 2,
        }
    }

    /// Whether this FU type lives inside clusters (ALU, multiplier) rather
    /// than between them (bus).
    #[inline]
    pub const fn is_regular(self) -> bool {
        !matches!(self, FuType::Bus)
    }
}

impl fmt::Display for FuType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FuType::Alu => "ALU",
            FuType::Mul => "MUL",
            FuType::Bus => "BUS",
        };
        f.write_str(s)
    }
}

/// Operation type (`optype(v)` / `OT` in the paper).
///
/// The alphabet covers the operations appearing in the paper's DSP kernels
/// (EWF, ARF, FFT, DCTs): additions/subtractions and their ALU relatives,
/// multiplications, and the `move` data transfer inserted by binding.
///
/// # Example
///
/// ```
/// use vliw_dfg::OpType;
/// assert!(OpType::Sub.is_regular());
/// assert!(!OpType::Move.is_regular());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum OpType {
    /// Two-operand addition (ALU).
    Add,
    /// Two-operand subtraction (ALU).
    Sub,
    /// Arithmetic negation (ALU).
    Neg,
    /// Logical/arithmetic shift (ALU).
    Shift,
    /// Comparison / min / max style ALU operation.
    Cmp,
    /// Bitwise logic operation (ALU).
    Logic,
    /// Two-operand multiplication (multiplier).
    Mul,
    /// Multiply-accumulate (multiplier).
    Mac,
    /// Inter-cluster data transfer over the bus; inserted by binding, never
    /// present in an original (unbound) DFG.
    Move,
}

impl OpType {
    /// All operation types executable on regular FUs (everything except
    /// [`OpType::Move`]).
    pub const REGULAR: [OpType; 8] = [
        OpType::Add,
        OpType::Sub,
        OpType::Neg,
        OpType::Shift,
        OpType::Cmp,
        OpType::Logic,
        OpType::Mul,
        OpType::Mac,
    ];

    /// The FU type executing this operation type (`futype(p)`).
    #[inline]
    pub const fn fu_type(self) -> FuType {
        match self {
            OpType::Add
            | OpType::Sub
            | OpType::Neg
            | OpType::Shift
            | OpType::Cmp
            | OpType::Logic => FuType::Alu,
            OpType::Mul | OpType::Mac => FuType::Mul,
            OpType::Move => FuType::Bus,
        }
    }

    /// Whether this operation executes on an in-cluster FU (i.e. is not a
    /// data transfer).
    #[inline]
    pub const fn is_regular(self) -> bool {
        !matches!(self, OpType::Move)
    }

    /// Short mnemonic used by the DOT exporter and schedule printers.
    pub const fn mnemonic(self) -> &'static str {
        match self {
            OpType::Add => "add",
            OpType::Sub => "sub",
            OpType::Neg => "neg",
            OpType::Shift => "shift",
            OpType::Cmp => "cmp",
            OpType::Logic => "logic",
            OpType::Mul => "mul",
            OpType::Mac => "mac",
            OpType::Move => "move",
        }
    }
}

impl fmt::Display for OpType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn futype_partitions_optypes() {
        // Every regular op type maps to a regular FU type; only Move maps
        // to the bus. This is the partition property from Section 2.
        for op in OpType::REGULAR {
            assert!(op.fu_type().is_regular(), "{op} should be regular");
        }
        assert_eq!(OpType::Move.fu_type(), FuType::Bus);
    }

    #[test]
    fn futype_indices_are_dense_and_distinct() {
        let mut seen = [false; 3];
        for t in FuType::ALL {
            assert!(!seen[t.index()], "duplicate index for {t}");
            seen[t.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn alu_ops_map_to_alu() {
        for op in [
            OpType::Add,
            OpType::Sub,
            OpType::Neg,
            OpType::Shift,
            OpType::Cmp,
            OpType::Logic,
        ] {
            assert_eq!(op.fu_type(), FuType::Alu);
        }
    }

    #[test]
    fn mul_ops_map_to_mul() {
        assert_eq!(OpType::Mul.fu_type(), FuType::Mul);
        assert_eq!(OpType::Mac.fu_type(), FuType::Mul);
    }

    #[test]
    fn display_is_nonempty() {
        for t in FuType::ALL {
            assert!(!t.to_string().is_empty());
        }
        for op in OpType::REGULAR {
            assert!(!op.to_string().is_empty());
        }
        assert_eq!(OpType::Move.to_string(), "move");
    }

    #[test]
    fn serde_round_trip() {
        for op in OpType::REGULAR.into_iter().chain([OpType::Move]) {
            let json = serde_json::to_string(&op).expect("serialize");
            let back: OpType = serde_json::from_str(&json).expect("deserialize");
            assert_eq!(op, back);
        }
    }

    #[test]
    fn regular_list_excludes_move() {
        assert!(!OpType::REGULAR.contains(&OpType::Move));
        assert!(OpType::REGULAR.iter().all(|op| op.is_regular()));
    }
}
