//! Incremental construction of [`Dfg`]s.
//!
//! [`DfgBuilder`] lets kernels and tests assemble graphs operation by
//! operation. Operands must already exist when an operation is added, so a
//! graph built purely with [`DfgBuilder::add_op`] is acyclic by
//! construction; extra edges added with [`DfgBuilder::add_edge`] (e.g. when
//! deserializing foreign formats) are checked for cycles and duplicates in
//! [`DfgBuilder::finish`].

use crate::graph::{Dfg, OpId, OpNode};
use crate::op::OpType;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// Error returned by [`DfgBuilder::finish`] and other fallible DFG
/// constructors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DfgError {
    /// An edge refers to an operation id that was never created.
    UnknownOp {
        /// The out-of-range id.
        id: OpId,
        /// Number of operations in the graph under construction.
        len: usize,
    },
    /// The edge set contains a cycle (data dependencies must form a DAG).
    Cycle,
    /// The same `producer -> consumer` edge was added twice.
    DuplicateEdge {
        /// Producer operation.
        from: OpId,
        /// Consumer operation.
        to: OpId,
    },
    /// An operation consumes its own result.
    SelfLoop(OpId),
}

impl fmt::Display for DfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DfgError::UnknownOp { id, len } => {
                write!(
                    f,
                    "edge references unknown operation {id} (graph has {len} ops)"
                )
            }
            DfgError::Cycle => write!(f, "data-dependence edges form a cycle"),
            DfgError::DuplicateEdge { from, to } => {
                write!(f, "duplicate data-dependence edge {from} -> {to}")
            }
            DfgError::SelfLoop(v) => write!(f, "operation {v} consumes its own result"),
        }
    }
}

impl Error for DfgError {}

/// Recycled backing storage for graphs that are built and torn down in a
/// hot loop — one bound graph is materialized per candidate evaluation,
/// and without recycling each of them pays two heap allocations per
/// operation for its adjacency lists.
///
/// The cycle is: [`DfgBuilder::recycled`] moves the pooled buffers into a
/// builder, [`DfgBuilder::finish_trusted_into`] returns the unused spares,
/// and [`Dfg::dismantle_into`] gives a retired graph's storage back. A
/// fresh (default) scratch behaves exactly like the non-pooled path —
/// the pool only ever recycles capacity, never contents.
#[derive(Debug, Default)]
pub struct DfgScratch {
    pub(crate) ops: Vec<OpNode>,
    pub(crate) preds: Vec<Vec<OpId>>,
    pub(crate) succs: Vec<Vec<OpId>>,
    /// Cleared adjacency lists waiting to be reused by `push`.
    pub(crate) spare: Vec<Vec<OpId>>,
}

impl Dfg {
    /// Tears the graph down into `scratch`, keeping every buffer's
    /// capacity for the next [`DfgBuilder::recycled`] build.
    pub fn dismantle_into(self, scratch: &mut DfgScratch) {
        let Dfg {
            mut ops,
            mut preds,
            mut succs,
        } = self;
        ops.clear();
        scratch.spare.extend(preds.drain(..).map(|mut v| {
            v.clear();
            v
        }));
        scratch.spare.extend(succs.drain(..).map(|mut v| {
            v.clear();
            v
        }));
        scratch.ops = ops;
        scratch.preds = preds;
        scratch.succs = succs;
    }
}

/// Builder for [`Dfg`]s.
///
/// # Example
///
/// ```
/// use vliw_dfg::{DfgBuilder, OpType};
/// # fn main() -> Result<(), vliw_dfg::DfgError> {
/// let mut b = DfgBuilder::new();
/// let x = b.add_named_op(OpType::Mul, &[], "x*c1");
/// let y = b.add_op(OpType::Add, &[x]);
/// b.add_edge(x, y)?; // would duplicate the operand edge -> caught later
/// assert!(b.finish().is_err());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct DfgBuilder {
    ops: Vec<OpNode>,
    preds: Vec<Vec<OpId>>,
    succs: Vec<Vec<OpId>>,
    /// Cleared recycled lists popped instead of allocating in `push`.
    stash: Vec<Vec<OpId>>,
    extra_edges: bool,
}

impl DfgBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder expecting roughly `n` operations.
    pub fn with_capacity(n: usize) -> Self {
        DfgBuilder {
            ops: Vec::with_capacity(n),
            preds: Vec::with_capacity(n),
            succs: Vec::with_capacity(n),
            stash: Vec::new(),
            extra_edges: false,
        }
    }

    /// Creates a builder backed by a [`DfgScratch`] pool: the outer
    /// arenas and any spare adjacency lists are moved in, so a build
    /// following a [`Dfg::dismantle_into`] of a similar-sized graph
    /// allocates nothing. Finish with [`DfgBuilder::finish_trusted_into`]
    /// to hand unused spares back.
    pub fn recycled(scratch: &mut DfgScratch, n: usize) -> Self {
        let mut b = DfgBuilder {
            ops: std::mem::take(&mut scratch.ops),
            preds: std::mem::take(&mut scratch.preds),
            succs: std::mem::take(&mut scratch.succs),
            stash: std::mem::take(&mut scratch.spare),
            extra_edges: false,
        };
        b.ops.reserve(n);
        b.preds.reserve(n);
        b.succs.reserve(n);
        b
    }

    /// Number of operations added so far.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether no operations have been added yet.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Adds an operation of type `kind` consuming the results of
    /// `operands`, returning its id.
    ///
    /// # Panics
    ///
    /// Panics if any operand id has not been created by this builder —
    /// operands must be added before their consumers, which is what keeps
    /// builder-constructed graphs acyclic.
    pub fn add_op(&mut self, kind: OpType, operands: &[OpId]) -> OpId {
        self.push(kind, operands, None)
    }

    /// Like [`DfgBuilder::add_op`] but attaches a debug name, which shows up
    /// in DOT dumps and schedule listings.
    ///
    /// # Panics
    ///
    /// Panics if any operand id is unknown (see [`DfgBuilder::add_op`]).
    pub fn add_named_op(&mut self, kind: OpType, operands: &[OpId], name: &str) -> OpId {
        self.push(kind, operands, Some(Arc::from(name)))
    }

    /// Like [`DfgBuilder::add_named_op`] but takes an already-shared
    /// name handle (e.g. [`Dfg::shared_name`]), so rebuilding a graph —
    /// the bound-graph constructor does this once per candidate
    /// evaluation — propagates names without re-allocating them.
    ///
    /// # Panics
    ///
    /// Panics if any operand id is unknown (see [`DfgBuilder::add_op`]).
    pub fn add_op_shared_name(
        &mut self,
        kind: OpType,
        operands: &[OpId],
        name: Option<Arc<str>>,
    ) -> OpId {
        self.push(kind, operands, name)
    }

    fn push(&mut self, kind: OpType, operands: &[OpId], name: Option<Arc<str>>) -> OpId {
        let id = OpId::from_index(self.ops.len());
        for &u in operands {
            assert!(
                u.index() < self.ops.len(),
                "operand {u} does not exist yet (adding {id})"
            );
        }
        self.ops.push(OpNode { kind, name });
        let mut preds = self.stash.pop().unwrap_or_default();
        preds.clear();
        preds.extend_from_slice(operands);
        self.preds.push(preds);
        let mut succs = self.stash.pop().unwrap_or_default();
        succs.clear();
        self.succs.push(succs);
        for &u in operands {
            self.succs[u.index()].push(id);
        }
        id
    }

    /// Adds a data-dependence edge between two existing operations.
    ///
    /// Unlike operand lists given to [`DfgBuilder::add_op`], edges added
    /// here may create cycles or duplicates; both are diagnosed by
    /// [`DfgBuilder::finish`].
    ///
    /// # Errors
    ///
    /// Returns [`DfgError::UnknownOp`] if either endpoint does not exist,
    /// or [`DfgError::SelfLoop`] if `from == to`.
    pub fn add_edge(&mut self, from: OpId, to: OpId) -> Result<(), DfgError> {
        let len = self.ops.len();
        for id in [from, to] {
            if id.index() >= len {
                return Err(DfgError::UnknownOp { id, len });
            }
        }
        if from == to {
            return Err(DfgError::SelfLoop(from));
        }
        self.preds[to.index()].push(from);
        self.succs[from.index()].push(to);
        self.extra_edges = true;
        Ok(())
    }

    /// Finalizes the graph.
    ///
    /// # Errors
    ///
    /// Returns [`DfgError::DuplicateEdge`] if the same edge appears twice
    /// and [`DfgError::Cycle`] if the dependence relation is cyclic (only
    /// possible when [`DfgBuilder::add_edge`] was used).
    pub fn finish(self) -> Result<Dfg, DfgError> {
        let dfg = Dfg {
            ops: self.ops,
            preds: self.preds,
            succs: self.succs,
        };
        // Duplicate detection.
        for v in dfg.op_ids() {
            let mut seen = dfg.preds(v).to_vec();
            seen.sort_unstable();
            for w in seen.windows(2) {
                if w[0] == w[1] {
                    return Err(DfgError::DuplicateEdge { from: w[0], to: v });
                }
            }
        }
        // Cycle detection via Kahn's algorithm; only add_edge can introduce
        // cycles but we always validate, so deserialized graphs can be
        // re-checked through `Dfg::validate` below too.
        if self.extra_edges && crate::analysis::topo_order(&dfg).is_none() {
            return Err(DfgError::Cycle);
        }
        Ok(dfg)
    }

    /// Finalizes a graph built purely with [`DfgBuilder::add_op`] and
    /// friends whose operand lists are known duplicate-free, skipping
    /// the re-validation scan of [`DfgBuilder::finish`]. Graphs built
    /// this way are acyclic and duplicate-free by construction; the
    /// bound-graph constructor relies on this to stay off the per-op
    /// sort-and-scan in its per-candidate hot path.
    ///
    /// # Panics
    ///
    /// Panics if [`DfgBuilder::add_edge`] was used (extra edges need
    /// the full [`DfgBuilder::finish`] validation). Debug builds
    /// re-validate the result outright.
    pub fn finish_trusted(self) -> Dfg {
        assert!(
            !self.extra_edges,
            "finish_trusted after add_edge; use finish"
        );
        let dfg = Dfg {
            ops: self.ops,
            preds: self.preds,
            succs: self.succs,
        };
        debug_assert!(
            dfg.validate().is_ok(),
            "trusted construction produced an invalid graph"
        );
        dfg
    }

    /// [`DfgBuilder::finish_trusted`] for a [`DfgBuilder::recycled`]
    /// builder: spare lists the build did not consume flow back into
    /// `scratch` instead of being dropped.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as
    /// [`DfgBuilder::finish_trusted`].
    pub fn finish_trusted_into(mut self, scratch: &mut DfgScratch) -> Dfg {
        scratch.spare.append(&mut self.stash);
        self.finish_trusted()
    }
}

impl Dfg {
    /// Re-validates a graph obtained from an untrusted source (e.g.
    /// deserialized JSON): adjacency consistency, no duplicate edges, no
    /// cycles.
    ///
    /// # Errors
    ///
    /// Returns the first structural problem found as a [`DfgError`].
    pub fn validate(&self) -> Result<(), DfgError> {
        let len = self.len();
        for v in self.op_ids() {
            for &u in self.preds(v) {
                if u.index() >= len {
                    return Err(DfgError::UnknownOp { id: u, len });
                }
                if u == v {
                    return Err(DfgError::SelfLoop(v));
                }
                if !self.succs(u).contains(&v) {
                    return Err(DfgError::UnknownOp { id: v, len });
                }
            }
            let mut sorted = self.preds(v).to_vec();
            sorted.sort_unstable();
            for w in sorted.windows(2) {
                if w[0] == w[1] {
                    return Err(DfgError::DuplicateEdge { from: w[0], to: v });
                }
            }
        }
        if crate::analysis::topo_order(self).is_none() {
            return Err(DfgError::Cycle);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_constructs_linear_chain() {
        let mut b = DfgBuilder::new();
        let mut prev = b.add_op(OpType::Add, &[]);
        for _ in 0..9 {
            prev = b.add_op(OpType::Add, &[prev]);
        }
        let dfg = b.finish().expect("chain");
        assert_eq!(dfg.len(), 10);
        assert_eq!(dfg.edge_count(), 9);
    }

    #[test]
    #[should_panic(expected = "does not exist yet")]
    fn forward_operand_panics() {
        let mut b = DfgBuilder::new();
        let ghost = OpId::from_index(5);
        b.add_op(OpType::Add, &[ghost]);
    }

    #[test]
    fn add_edge_rejects_unknown_ids() {
        let mut b = DfgBuilder::new();
        let v = b.add_op(OpType::Add, &[]);
        let ghost = OpId::from_index(9);
        assert!(matches!(
            b.add_edge(v, ghost),
            Err(DfgError::UnknownOp { .. })
        ));
    }

    #[test]
    fn add_edge_rejects_self_loop() {
        let mut b = DfgBuilder::new();
        let v = b.add_op(OpType::Add, &[]);
        assert_eq!(b.add_edge(v, v), Err(DfgError::SelfLoop(v)));
    }

    #[test]
    fn finish_detects_cycle_from_extra_edges() {
        let mut b = DfgBuilder::new();
        let a = b.add_op(OpType::Add, &[]);
        let c = b.add_op(OpType::Add, &[a]);
        b.add_edge(c, a).expect("edge endpoints exist");
        assert_eq!(b.finish(), Err(DfgError::Cycle));
    }

    #[test]
    fn finish_detects_duplicate_edge() {
        let mut b = DfgBuilder::new();
        let a = b.add_op(OpType::Add, &[]);
        let c = b.add_op(OpType::Add, &[a]);
        b.add_edge(a, c).expect("edge endpoints exist");
        assert!(matches!(b.finish(), Err(DfgError::DuplicateEdge { .. })));
    }

    #[test]
    fn names_are_preserved() {
        let mut b = DfgBuilder::new();
        let v = b.add_named_op(OpType::Mul, &[], "x*c3");
        let dfg = b.finish().expect("single op");
        assert_eq!(dfg.name(v), Some("x*c3"));
    }

    #[test]
    fn validate_accepts_builder_output() {
        let mut b = DfgBuilder::new();
        let a = b.add_op(OpType::Add, &[]);
        let c = b.add_op(OpType::Mul, &[a]);
        let _d = b.add_op(OpType::Sub, &[a, c]);
        let dfg = b.finish().expect("valid");
        assert_eq!(dfg.validate(), Ok(()));
    }

    #[test]
    fn error_messages_are_informative() {
        let err = DfgError::UnknownOp {
            id: OpId::from_index(3),
            len: 2,
        };
        assert!(err.to_string().contains("v3"));
        assert!(DfgError::Cycle.to_string().contains("cycle"));
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut b = DfgBuilder::with_capacity(16);
        assert!(b.is_empty());
        b.add_op(OpType::Add, &[]);
        assert_eq!(b.len(), 1);
    }
}
