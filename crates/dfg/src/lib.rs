//! Dataflow-graph substrate for clustered-VLIW operation binding.
//!
//! This crate implements the *dataflow model* of Lapinskii, Jacome and
//! de Veciana, "High-Quality Operation Binding for Clustered VLIW
//! Datapaths" (DAC 2001), Section 2: a basic block is represented as a
//! directed acyclic graph `DAG = (V, E)` whose vertices are operations and
//! whose edges are data dependencies.
//!
//! Provided here:
//!
//! * [`Dfg`] — an arena-based DAG with constant-time predecessor/successor
//!   access, built through [`DfgBuilder`];
//! * [`OpType`] — the operation-type alphabet (`optype(v)` in the paper),
//!   including the inter-cluster data-transfer type [`OpType::Move`];
//! * [`Timing`] — ASAP/ALAP/mobility/criticality analysis for a given
//!   per-operation latency assignment and target latency `L_TG`
//!   (paper footnote 2);
//! * [`analysis`] helpers — topological order, connected components,
//!   critical-path length, graph statistics;
//! * [`dot`] — Graphviz export for debugging and documentation.
//!
//! # Example
//!
//! Build the three-operation graph of the paper's Figure 1(a) and analyze
//! it:
//!
//! ```
//! use vliw_dfg::{DfgBuilder, OpType, Timing};
//!
//! # fn main() -> Result<(), vliw_dfg::DfgError> {
//! let mut b = DfgBuilder::new();
//! let v1 = b.add_op(OpType::Add, &[]);
//! let v2 = b.add_op(OpType::Add, &[]);
//! let v3 = b.add_op(OpType::Add, &[v1, v2]);
//! let dfg = b.finish()?;
//!
//! let lat = vec![1u32; dfg.len()];
//! let timing = Timing::with_critical_path(&dfg, &lat);
//! assert_eq!(timing.critical_path_len(), 2);
//! assert_eq!(timing.mobility(v3), 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod builder;
pub mod dot;
pub mod graph;
pub mod op;
pub mod timing;
pub mod unroll;

pub use analysis::{connected_components, critical_path_len, topo_order, DfgStats};
pub use builder::{DfgBuilder, DfgError, DfgScratch};
pub use graph::{Dfg, EdgeIter, OpId};
pub use op::{FuType, OpType};
pub use timing::Timing;
pub use unroll::{unroll, LoopCarry};
