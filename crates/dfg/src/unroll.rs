//! Loop unrolling of basic-block DFGs.
//!
//! The paper evaluates on DCT-DIT-2, "an unrolled version of DCT-DIT",
//! and argues (Section 4) that "a final, high quality binding and
//! scheduling solution should always be generated for the selected
//! retiming function (or unrolling factor, etc.)" — i.e. transform
//! first, then bind the transformed DFG with full information. This
//! module provides the transform: replicate a loop-body DFG `factor`
//! times and wire the loop-carried values between iterations.
//!
//! A value produced in iteration `i` and consumed in iteration
//! `i + distance` becomes a real data dependence between the copies;
//! consumers in the first `distance` copies read the pre-loop value,
//! which stays a primary input (no edge), exactly like the original
//! body's own inputs.

use crate::builder::{DfgBuilder, DfgError};
use crate::graph::{Dfg, OpId};

/// One loop-carried dependence of the loop body.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LoopCarry {
    /// Producer operation inside the body.
    pub from: OpId,
    /// Consumer operation inside the body (reads the value produced
    /// `distance` iterations earlier).
    pub to: OpId,
    /// Dependence distance in iterations (must be ≥ 1; a distance of 0
    /// is an ordinary intra-body edge).
    pub distance: u32,
}

impl LoopCarry {
    /// The common case: a value carried to the next iteration.
    pub fn next_iteration(from: OpId, to: OpId) -> Self {
        LoopCarry {
            from,
            to,
            distance: 1,
        }
    }
}

/// Unrolls `body` by `factor`, wiring `carries` across the copies.
///
/// With no carries the result is `factor` disjoint copies (exactly how
/// the paper's DCT-DIT-2 arises from DCT-DIT); with carries the copies
/// chain and the critical path grows accordingly.
///
/// Operation ids of copy `k` occupy the contiguous range
/// `k*body.len() .. (k+1)*body.len()` in body order, so
/// `OpId::from_index(k * body.len() + v.index())` addresses copy `k`'s
/// instance of body operation `v`.
///
/// # Errors
///
/// Returns [`DfgError::UnknownOp`] if a carry references an operation
/// outside the body and [`DfgError::SelfLoop`] for a zero-distance carry
/// (which would be an ordinary edge, or a genuine self-loop when
/// `from == to`).
///
/// # Panics
///
/// Panics if `factor` is zero.
///
/// # Example
///
/// A multiply-accumulate loop unrolled four times: the accumulator adds
/// chain serially, the multiplies stay parallel.
///
/// ```
/// use vliw_dfg::{critical_path_len, DfgBuilder, LoopCarry, OpType, unroll};
///
/// # fn main() -> Result<(), vliw_dfg::DfgError> {
/// let mut b = DfgBuilder::new();
/// let product = b.add_op(OpType::Mul, &[]);          // x[i] * c[i]
/// let acc = b.add_op(OpType::Add, &[product]);       // acc += product
/// let body = b.finish()?;
///
/// let unrolled = unroll(&body, &[LoopCarry::next_iteration(acc, acc)], 4)?;
/// assert_eq!(unrolled.len(), 8);
/// // mul(1) + 4 chained adds = 5.
/// assert_eq!(critical_path_len(&unrolled, &vec![1; 8]), 5);
/// # Ok(())
/// # }
/// ```
pub fn unroll(body: &Dfg, carries: &[LoopCarry], factor: usize) -> Result<Dfg, DfgError> {
    assert!(factor > 0, "unroll factor must be at least 1");
    let n = body.len();
    for carry in carries {
        for id in [carry.from, carry.to] {
            if id.index() >= n {
                return Err(DfgError::UnknownOp { id, len: n });
            }
        }
        if carry.distance == 0 {
            return Err(DfgError::SelfLoop(carry.from));
        }
    }

    // Operations first, edges second: a body may legally contain edges
    // from higher to lower ids (e.g. transfers appended to an existing
    // graph), so operand lists cannot be passed during creation.
    let mut b = DfgBuilder::with_capacity(n * factor);
    for k in 0..factor {
        let base = k * n;
        for v in body.op_ids() {
            let id = match body.name(v) {
                Some(name) => b.add_named_op(body.op_type(v), &[], &format!("{name}#{k}")),
                None => b.add_op(body.op_type(v), &[]),
            };
            debug_assert_eq!(id.index(), base + v.index());
        }
    }
    for k in 0..factor {
        let base = k * n;
        for v in body.op_ids() {
            for &u in body.preds(v) {
                b.add_edge(
                    OpId::from_index(base + u.index()),
                    OpId::from_index(base + v.index()),
                )?;
            }
        }
        for carry in carries {
            let Some(src_copy) = k.checked_sub(carry.distance as usize) else {
                // Reads the pre-loop value: a primary input, no edge.
                continue;
            };
            b.add_edge(
                OpId::from_index(src_copy * n + carry.from.index()),
                OpId::from_index(base + carry.to.index()),
            )?;
        }
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{connected_components, critical_path_len};
    use crate::op::OpType;

    fn mac_body() -> (Dfg, OpId, OpId) {
        let mut b = DfgBuilder::new();
        let product = b.add_op(OpType::Mul, &[]);
        let acc = b.add_op(OpType::Add, &[product]);
        (b.finish().expect("acyclic"), product, acc)
    }

    #[test]
    fn unroll_without_carries_yields_disjoint_copies() {
        let (body, _, _) = mac_body();
        let u = unroll(&body, &[], 3).expect("valid");
        assert_eq!(u.len(), 6);
        assert_eq!(u.edge_count(), 3 * body.edge_count());
        assert_eq!(connected_components(&u).1, 3);
    }

    #[test]
    fn carried_accumulator_chains_copies() {
        let (body, _, acc) = mac_body();
        let u = unroll(&body, &[LoopCarry::next_iteration(acc, acc)], 4).expect("valid");
        assert_eq!(u.len(), 8);
        assert_eq!(connected_components(&u).1, 1);
        // mul feeds add; adds chain: CP = 1 + 4.
        assert_eq!(critical_path_len(&u, &vec![1; u.len()]), 5);
    }

    #[test]
    fn distance_two_skips_a_copy() {
        let (body, _, acc) = mac_body();
        let carry = LoopCarry {
            from: acc,
            to: acc,
            distance: 2,
        };
        let u = unroll(&body, &[carry], 4).expect("valid");
        // Two interleaved accumulator chains of length 2 each.
        assert_eq!(connected_components(&u).1, 2);
        assert_eq!(critical_path_len(&u, &vec![1; u.len()]), 3);
    }

    #[test]
    fn first_copies_read_preloop_values() {
        let (body, _, acc) = mac_body();
        let u = unroll(&body, &[LoopCarry::next_iteration(acc, acc)], 3).expect("valid");
        // Copy 0's accumulator has only the product operand; later
        // copies also read the previous accumulator.
        let acc0 = OpId::from_index(acc.index());
        let acc1 = OpId::from_index(body.len() + acc.index());
        assert_eq!(u.in_degree(acc0), 1);
        assert_eq!(u.in_degree(acc1), 2);
    }

    #[test]
    fn names_are_suffixed_per_copy() {
        let mut b = DfgBuilder::new();
        let _ = b.add_named_op(OpType::Add, &[], "acc");
        let body = b.finish().expect("acyclic");
        let u = unroll(&body, &[], 2).expect("valid");
        assert_eq!(u.name(OpId::from_index(0)), Some("acc#0"));
        assert_eq!(u.name(OpId::from_index(1)), Some("acc#1"));
    }

    #[test]
    fn rejects_out_of_range_carry() {
        let (body, _, _) = mac_body();
        let bogus = LoopCarry::next_iteration(OpId::from_index(9), OpId::from_index(0));
        assert!(matches!(
            unroll(&body, &[bogus], 2),
            Err(DfgError::UnknownOp { .. })
        ));
    }

    #[test]
    fn rejects_zero_distance() {
        let (body, product, acc) = mac_body();
        let zero = LoopCarry {
            from: product,
            to: acc,
            distance: 0,
        };
        assert!(matches!(
            unroll(&body, &[zero], 2),
            Err(DfgError::SelfLoop(_))
        ));
    }

    #[test]
    fn factor_one_reproduces_the_body_shape() {
        let (body, _, acc) = mac_body();
        let u = unroll(&body, &[LoopCarry::next_iteration(acc, acc)], 1).expect("valid");
        assert_eq!(u.len(), body.len());
        assert_eq!(u.edge_count(), body.edge_count());
    }

    #[test]
    fn bodies_with_backward_id_edges_unroll() {
        // Regression: a body whose edge goes from a higher to a lower id
        // (legal via add_edge; bound loop bodies with appended transfer
        // nodes have this shape) must unroll without panicking.
        let mut b = DfgBuilder::new();
        let consumer = b.add_op(OpType::Add, &[]);
        let late_producer = b.add_op(OpType::Mul, &[]);
        b.add_edge(late_producer, consumer).expect("ids exist");
        let body = b.finish().expect("acyclic");
        let u = unroll(
            &body,
            &[LoopCarry::next_iteration(consumer, late_producer)],
            3,
        )
        .expect("unrolls");
        assert_eq!(u.len(), 6);
        assert!(u.validate().is_ok());
        // Intra edge preserved in every copy.
        for k in 0..3 {
            assert!(u.has_edge(OpId::from_index(2 * k + 1), OpId::from_index(2 * k),));
        }
    }

    #[test]
    fn unrolled_graph_always_validates() {
        let (body, product, acc) = mac_body();
        for factor in 1..=6 {
            let u = unroll(
                &body,
                &[
                    LoopCarry::next_iteration(acc, acc),
                    LoopCarry {
                        from: product,
                        to: acc,
                        distance: 2,
                    },
                ],
                factor,
            )
            .expect("valid");
            assert!(u.validate().is_ok(), "factor {factor}");
        }
    }
}
