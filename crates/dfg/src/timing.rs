//! ASAP/ALAP/mobility analysis (paper Section 3.1.1, footnote 2).
//!
//! For a target latency `L_TG`, every operation `v` gets an
//! "as soon as possible" start step `asap(v)`, an "as late as possible"
//! start step `alap(v)`, and a mobility `μ(v) = alap(v) − asap(v)`. The
//! paper's binding order and load profiles are both defined in terms of
//! these quantities; the load-profile latency `L_PR` of Section 3.1.3 is
//! simply a `Timing` computed with `L_TG = L_PR`.

use crate::analysis::topo_order;
use crate::graph::{Dfg, OpId};

/// ASAP/ALAP/mobility tables for a DFG under a given per-operation latency
/// assignment and target latency.
///
/// Start-time convention: an operation starting at step `τ` with latency
/// `l` occupies steps `τ .. τ+l` and its result is available at step
/// `τ + l`. Steps are 0-based; a schedule of latency `L` finishes all
/// operations by step `L` (i.e. the last operation *starts* at `L − l`).
///
/// # Example
///
/// ```
/// use vliw_dfg::{DfgBuilder, OpType, Timing};
/// # fn main() -> Result<(), vliw_dfg::DfgError> {
/// let mut b = DfgBuilder::new();
/// let a = b.add_op(OpType::Add, &[]);
/// let c = b.add_op(OpType::Add, &[a]);
/// let _free = b.add_op(OpType::Add, &[]); // independent: mobile
/// let dfg = b.finish()?;
/// let timing = Timing::new(&dfg, &[1, 1, 1], 2);
/// assert_eq!(timing.mobility(a), 0);
/// assert_eq!(timing.mobility(c), 0);
/// assert_eq!(timing.mobility(vliw_dfg::OpId::from_index(2)), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Timing {
    asap: Vec<u32>,
    alap: Vec<u32>,
    lat: Vec<u32>,
    l_tg: u32,
    l_cp: u32,
}

impl Timing {
    /// Computes ASAP/ALAP for target latency `l_tg`.
    ///
    /// # Panics
    ///
    /// Panics if `lat.len() != dfg.len()`, if the graph is cyclic, or if
    /// `l_tg` is smaller than the critical-path length (which would make
    /// mobilities negative).
    pub fn new(dfg: &Dfg, lat: &[u32], l_tg: u32) -> Self {
        Self::compute(dfg, lat, Some(l_tg))
    }

    /// Computes ASAP/ALAP with the tightest possible target latency,
    /// `L_TG = L_CP` (so critical operations have zero mobility).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Timing::new`].
    pub fn with_critical_path(dfg: &Dfg, lat: &[u32]) -> Self {
        // `l_tg = None` reuses the ASAP pass's critical-path length as
        // the target, skipping the separate `critical_path_len`
        // traversal — this runs once per candidate evaluation.
        Self::compute(dfg, lat, None)
    }

    /// The shared analysis: one ASAP pass (which also yields `L_CP`),
    /// one tail pass, `alap = l_tg - tail`. `l_tg = None` means
    /// "tightest", i.e. `l_tg = l_cp`.
    ///
    /// # Panics
    ///
    /// Panics under the conditions documented on [`Timing::new`].
    fn compute(dfg: &Dfg, lat: &[u32], l_tg: Option<u32>) -> Self {
        assert_eq!(lat.len(), dfg.len(), "one latency per operation required");
        let order = topo_order(dfg).expect("timing requires an acyclic graph");

        let mut asap = vec![0u32; dfg.len()];
        let mut l_cp = 0u32;
        for &v in &order {
            let start = dfg
                .preds(v)
                .iter()
                .map(|&u| asap[u.index()] + lat[u.index()])
                .max()
                .unwrap_or(0);
            asap[v.index()] = start;
            l_cp = l_cp.max(start + lat[v.index()]);
        }
        let l_tg = l_tg.unwrap_or(l_cp);
        assert!(
            l_tg >= l_cp,
            "target latency {l_tg} below critical path {l_cp}"
        );

        // tail(v) = longest completion chain starting at v, including v.
        let mut tail = vec![0u32; dfg.len()];
        for &v in order.iter().rev() {
            let below = dfg
                .succs(v)
                .iter()
                .map(|&s| tail[s.index()])
                .max()
                .unwrap_or(0);
            tail[v.index()] = lat[v.index()] + below;
        }
        let alap: Vec<u32> = dfg.op_ids().map(|v| l_tg - tail[v.index()]).collect();

        Timing {
            asap,
            alap,
            lat: lat.to_vec(),
            l_tg,
            l_cp,
        }
    }

    /// Earliest possible start step of `v`.
    #[inline]
    pub fn asap(&self, v: OpId) -> u32 {
        self.asap[v.index()]
    }

    /// Latest start step of `v` that still meets the target latency.
    #[inline]
    pub fn alap(&self, v: OpId) -> u32 {
        self.alap[v.index()]
    }

    /// Mobility `μ(v) = alap(v) − asap(v)` (paper footnote 2).
    #[inline]
    pub fn mobility(&self, v: OpId) -> u32 {
        self.alap[v.index()] - self.asap[v.index()]
    }

    /// Latency of `v` under this analysis' latency assignment.
    #[inline]
    pub fn lat(&self, v: OpId) -> u32 {
        self.lat[v.index()]
    }

    /// The target latency `L_TG` this analysis was computed for.
    #[inline]
    pub fn target_latency(&self) -> u32 {
        self.l_tg
    }

    /// The critical-path length `L_CP` of the graph.
    #[inline]
    pub fn critical_path_len(&self) -> u32 {
        self.l_cp
    }

    /// Whether `v` lies on a critical path (zero mobility at `L_TG = L_CP`;
    /// more generally, mobility equal to `L_TG − L_CP`).
    #[inline]
    pub fn is_critical(&self, v: OpId) -> bool {
        self.mobility(v) == self.l_tg - self.l_cp
    }

    /// Number of operations analyzed.
    #[inline]
    pub fn len(&self) -> usize {
        self.asap.len()
    }

    /// Whether the analysis covers zero operations.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.asap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DfgBuilder, OpType};

    /// The DFG of the paper's Figure 2: v1 -> v2 -> v4 -> v6 as the
    /// critical chain, v3 joining at v4's level, v5 feeding v6.
    fn figure2() -> (Dfg, Vec<OpId>) {
        let mut b = DfgBuilder::new();
        let v1 = b.add_op(OpType::Add, &[]);
        let v2 = b.add_op(OpType::Add, &[v1]);
        let v3 = b.add_op(OpType::Add, &[]);
        let v4 = b.add_op(OpType::Add, &[v2, v3]);
        let v5 = b.add_op(OpType::Add, &[]);
        let v6 = b.add_op(OpType::Add, &[v4, v5]);
        let dfg = b.finish().expect("acyclic");
        (dfg, vec![v1, v2, v3, v4, v5, v6])
    }

    #[test]
    fn asap_alap_on_figure2() {
        let (dfg, v) = figure2();
        let t = Timing::with_critical_path(&dfg, &vec![1; dfg.len()]);
        assert_eq!(t.critical_path_len(), 4);
        assert_eq!(t.asap(v[0]), 0);
        assert_eq!(t.asap(v[3]), 2);
        assert_eq!(t.asap(v[5]), 3);
        assert_eq!(t.alap(v[0]), 0);
        assert_eq!(t.alap(v[2]), 1); // v3 can slip one level
        assert_eq!(t.mobility(v[2]), 1);
        assert_eq!(t.alap(v[4]), 2); // v5 can slip to just before v6
        assert_eq!(t.mobility(v[4]), 2);
    }

    #[test]
    fn critical_ops_have_zero_mobility_at_lcp() {
        let (dfg, v) = figure2();
        let t = Timing::with_critical_path(&dfg, &vec![1; dfg.len()]);
        for &c in &[v[0], v[1], v[3], v[5]] {
            assert_eq!(t.mobility(c), 0, "{c} is on the critical path");
            assert!(t.is_critical(c));
        }
        assert!(!t.is_critical(v[2]));
    }

    #[test]
    fn stretching_target_latency_shifts_alap_uniformly() {
        let (dfg, _) = figure2();
        let lat = vec![1; dfg.len()];
        let tight = Timing::with_critical_path(&dfg, &lat);
        let loose = Timing::new(&dfg, &lat, tight.critical_path_len() + 3);
        for v in dfg.op_ids() {
            assert_eq!(loose.asap(v), tight.asap(v), "asap is latency-independent");
            assert_eq!(loose.alap(v), tight.alap(v) + 3);
            assert_eq!(loose.mobility(v), tight.mobility(v) + 3);
        }
    }

    #[test]
    fn multi_cycle_latencies_extend_asap() {
        let mut b = DfgBuilder::new();
        let m = b.add_op(OpType::Mul, &[]);
        let a = b.add_op(OpType::Add, &[m]);
        let dfg = b.finish().expect("acyclic");
        let t = Timing::with_critical_path(&dfg, &[3, 1]);
        assert_eq!(t.asap(a), 3);
        assert_eq!(t.critical_path_len(), 4);
        assert_eq!(t.alap(m), 0);
    }

    #[test]
    #[should_panic(expected = "below critical path")]
    fn target_below_cp_panics() {
        let (dfg, _) = figure2();
        let _ = Timing::new(&dfg, &vec![1; dfg.len()], 2);
    }

    #[test]
    fn mobility_is_nonnegative_everywhere() {
        let (dfg, _) = figure2();
        let t = Timing::new(&dfg, &vec![1; dfg.len()], 10);
        for v in dfg.op_ids() {
            assert!(t.alap(v) >= t.asap(v));
        }
    }

    #[test]
    fn empty_timing() {
        let dfg = DfgBuilder::new().finish().expect("empty");
        let t = Timing::with_critical_path(&dfg, &[]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.critical_path_len(), 0);
    }
}
