//! Deterministic fault injection for the binding pipeline.
//!
//! The build environment has no access to crates.io, so this crate is a
//! dependency-free stand-in for the `fail` failpoint crate covering
//! exactly what the chaos suite needs: **named sites** sprinkled through
//! the pipeline (`fault::point("eval.candidate")`), **typed actions**
//! ([`FaultAction::Error`], [`FaultAction::Panic`], [`FaultAction::Delay`])
//! and **hit-count schedules** ([`FaultSchedule`]: always, on the Nth
//! hit, every Kth hit, one-shot) so a failure can be injected at a
//! precise, reproducible moment of a run.
//!
//! Faults are configured programmatically ([`configure_point`]), from a
//! spec string ([`configure`]), or from the `VLIW_FAIL` environment
//! variable ([`init_from_env`]) that the CLI and bench binaries honor.
//!
//! # Disarmed cost
//!
//! When no fault is configured the registry is *disarmed* and every
//! [`point`] / [`point_infallible`] call is a single relaxed atomic load
//! followed by an early return — the hot path never takes a lock, never
//! allocates, and never reads a clock, so production behavior is
//! bit-identical with the crate compiled in.
//!
//! # Spec grammar
//!
//! ```text
//! spec    := entry (';' entry)*
//! entry   := site '=' [schedule ':'] action
//! schedule:= 'once' | 'on' N | 'every' K          (N, K >= 1; hits are 1-based)
//! action  := 'panic' ['(' payload ')']
//!          | 'error' ['(' message ')']
//!          | 'delay' '(' millis ')'
//! ```
//!
//! Examples: `eval.candidate=panic`,
//! `explore.candidate=every2:panic;trace.sink=on3:error(disk full)`,
//! `sched.list=once:delay(5)`.
//!
//! # Known sites
//!
//! The pipeline currently checks the sites listed in [`SITES`]. A spec
//! may name any site string — unknown sites simply never fire — but the
//! chaos suite iterates over [`SITES`] to prove every registered site
//! degrades gracefully.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Every failpoint site the pipeline currently checks, for suites that
/// want to inject at each in turn.
pub const SITES: &[&str] = &[
    "eval.candidate",
    "sched.list",
    "explore.candidate",
    "trace.sink",
];

/// What happens when a configured fault fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultAction {
    /// Return a typed [`FaultError`] carrying this message from
    /// [`point`]. At infallible sites ([`point_infallible`]) the error
    /// escalates to a panic, since there is no error channel to use.
    Error(String),
    /// Panic with this payload (the payload is prefixed with the site
    /// name so supervisors can attribute it).
    Panic(String),
    /// Sleep for this many milliseconds, then continue normally —
    /// exercises deadline/budget truncation paths without changing any
    /// result.
    Delay(u64),
}

/// When a configured fault fires, counted in per-site hits (1-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSchedule {
    /// Fire on every hit.
    Always,
    /// Fire only on the Nth hit of the site.
    OnNth(u64),
    /// Fire on every Kth hit (hits K, 2K, 3K, …).
    EveryKth(u64),
    /// Fire on the first hit, then never again.
    Once,
}

impl FaultSchedule {
    /// Whether hit number `hit` (1-based) fires under this schedule.
    fn fires(self, hit: u64) -> bool {
        match self {
            FaultSchedule::Always => true,
            FaultSchedule::OnNth(n) => hit == n,
            FaultSchedule::EveryKth(k) => k > 0 && hit.is_multiple_of(k),
            FaultSchedule::Once => hit == 1,
        }
    }
}

/// The typed error an armed [`FaultAction::Error`] injects at a
/// [`point`]. Downstream crates convert it into their own error types
/// (e.g. `BindError::FaultInjected`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultError {
    /// The site that fired.
    pub site: String,
    /// The configured message.
    pub message: String,
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "injected fault at {}: {}", self.site, self.message)
    }
}

impl std::error::Error for FaultError {}

/// A malformed fault spec string (see the crate docs for the grammar).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    entry: String,
    reason: String,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad fault spec entry `{}`: {}", self.entry, self.reason)
    }
}

impl std::error::Error for SpecError {}

/// One configured failpoint.
#[derive(Debug, Clone)]
struct Entry {
    site: String,
    schedule: FaultSchedule,
    action: FaultAction,
    hits: u64,
}

/// Fast-path gate: a relaxed load of `false` is the entire cost of a
/// disarmed failpoint.
static ARMED: AtomicBool = AtomicBool::new(false);

/// The configured failpoints. Only consulted when [`ARMED`] is set.
static REGISTRY: Mutex<Vec<Entry>> = Mutex::new(Vec::new());

thread_local! {
    /// The site whose injected panic is currently unwinding this thread,
    /// recorded just before the panic so `catch_unwind` supervisors can
    /// attribute it (a panic payload alone cannot carry typed data
    /// through an unwind boundary without downcasting conventions).
    static LAST_PANIC_SITE: RefCell<Option<String>> = const { RefCell::new(None) };
}

/// Locks the registry, recovering from poisoning: a worker that panicked
/// while firing a fault must not cascade a second panic into every
/// later failpoint check.
fn registry() -> std::sync::MutexGuard<'static, Vec<Entry>> {
    REGISTRY.lock().unwrap_or_else(|e| e.into_inner())
}

/// Replaces the entire fault configuration from a spec string (grammar
/// in the crate docs) and arms the registry if any entry was parsed.
/// An empty or all-whitespace spec clears the configuration and
/// disarms. Returns an error — leaving the previous configuration
/// untouched — if any entry is malformed.
pub fn configure(spec: &str) -> Result<(), SpecError> {
    let mut entries = Vec::new();
    for raw in spec.split(';') {
        let raw = raw.trim();
        if raw.is_empty() {
            continue;
        }
        entries.push(parse_entry(raw)?);
    }
    let armed = !entries.is_empty();
    *registry() = entries;
    ARMED.store(armed, Ordering::Relaxed);
    Ok(())
}

/// Adds one failpoint programmatically (keeping any existing ones) and
/// arms the registry.
pub fn configure_point(site: &str, schedule: FaultSchedule, action: FaultAction) {
    registry().push(Entry {
        site: site.to_owned(),
        schedule,
        action,
        hits: 0,
    });
    ARMED.store(true, Ordering::Relaxed);
}

/// Clears every configured failpoint and disarms the fast path.
pub fn reset() {
    registry().clear();
    ARMED.store(false, Ordering::Relaxed);
}

/// Whether any failpoint is currently armed.
pub fn is_armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// The sites with at least one configured entry, in configuration order.
pub fn configured_sites() -> Vec<String> {
    let mut sites: Vec<String> = registry().iter().map(|e| e.site.clone()).collect();
    sites.dedup();
    sites
}

/// Reads the `VLIW_FAIL` environment variable and, if set and
/// non-empty, installs it via [`configure`]. Returns whether a spec was
/// installed. Binaries call this once at startup so chaos runs need no
/// code changes.
pub fn init_from_env() -> Result<bool, SpecError> {
    match std::env::var("VLIW_FAIL") {
        Ok(spec) if !spec.trim().is_empty() => {
            configure(&spec)?;
            Ok(true)
        }
        _ => Ok(false),
    }
}

/// The site of the injected panic currently unwinding this thread, if
/// any, consumed by the call. Supervisors (`catch_unwind` wrappers) call
/// this right after catching to attribute the panic to its failpoint.
pub fn take_last_panic_site() -> Option<String> {
    LAST_PANIC_SITE.with(|s| s.borrow_mut().take())
}

/// Serializes tests that configure the process-global registry. Tests in
/// any crate that call [`configure`] / [`configure_point`] / [`reset`]
/// must hold this guard for their whole body, otherwise parallel test
/// threads interleave schedules and hit counts.
pub fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    static TEST_GUARD: Mutex<()> = Mutex::new(());
    TEST_GUARD.lock().unwrap_or_else(|e| e.into_inner())
}

/// Checks the failpoint `site` from a fallible context.
///
/// Disarmed, this is one relaxed atomic load. Armed, a firing
/// [`FaultAction::Error`] returns `Err`, a [`FaultAction::Delay`] sleeps
/// then returns `Ok`, and a [`FaultAction::Panic`] panics (after
/// recording the site for [`take_last_panic_site`]).
///
/// # Panics
///
/// Panics when a configured [`FaultAction::Panic`] fires — that is the
/// injected fault itself, meant to be contained by a `catch_unwind`
/// supervisor upstream.
pub fn point(site: &str) -> Result<(), FaultError> {
    if !ARMED.load(Ordering::Relaxed) {
        return Ok(());
    }
    match fire(site) {
        None => Ok(()),
        Some(FaultAction::Delay(ms)) => {
            std::thread::sleep(Duration::from_millis(ms));
            Ok(())
        }
        Some(FaultAction::Error(message)) => Err(FaultError {
            site: site.to_owned(),
            message,
        }),
        Some(FaultAction::Panic(payload)) => injected_panic(site, &payload),
    }
}

/// Checks the failpoint `site` from an infallible context (code with no
/// error channel, e.g. inside the list scheduler invocation).
///
/// Identical to [`point`] except that a firing [`FaultAction::Error`]
/// also escalates to a panic, so every action is still observable.
///
/// # Panics
///
/// Panics when a configured [`FaultAction::Panic`] or
/// [`FaultAction::Error`] fires; supervisors contain it upstream.
pub fn point_infallible(site: &str) {
    if !ARMED.load(Ordering::Relaxed) {
        return;
    }
    match fire(site) {
        None => {}
        Some(FaultAction::Delay(ms)) => std::thread::sleep(Duration::from_millis(ms)),
        Some(FaultAction::Error(message)) | Some(FaultAction::Panic(message)) => {
            injected_panic(site, &message)
        }
    }
}

/// Records the site in the thread-local slot, then panics with an
/// attributable payload.
///
/// # Panics
///
/// Always — this is the injected fault.
fn injected_panic(site: &str, payload: &str) -> ! {
    LAST_PANIC_SITE.with(|s| *s.borrow_mut() = Some(site.to_owned()));
    panic!("vliw-fault injected panic at {site}: {payload}")
}

/// Consults the registry for `site`, bumps its hit counter, and returns
/// the action to perform if the schedule fires. The lock is released
/// before the action runs so a sleeping or panicking fault never blocks
/// (or poisons the view of) other sites.
fn fire(site: &str) -> Option<FaultAction> {
    let mut reg = registry();
    for entry in reg.iter_mut() {
        if entry.site == site {
            entry.hits += 1;
            if entry.schedule.fires(entry.hits) {
                return Some(entry.action.clone());
            }
        }
    }
    None
}

/// Parses one `site=[schedule:]action` spec entry.
fn parse_entry(raw: &str) -> Result<Entry, SpecError> {
    let err = |reason: &str| SpecError {
        entry: raw.to_owned(),
        reason: reason.to_owned(),
    };
    let (site, rhs) = raw
        .split_once('=')
        .ok_or_else(|| err("expected `site=action`"))?;
    let site = site.trim();
    if site.is_empty() {
        return Err(err("empty site name"));
    }
    let rhs = rhs.trim();
    // A leading `schedule:` prefix is optional; if the text before the
    // first ':' does not parse as a schedule, the whole rhs is the
    // action (no action contains ':').
    let (schedule, action_src) = match rhs.split_once(':') {
        Some((s, a)) => match parse_schedule(s.trim()) {
            Some(schedule) => (schedule, a.trim()),
            None => (FaultSchedule::Always, rhs),
        },
        None => (FaultSchedule::Always, rhs),
    };
    let action = parse_action(action_src).ok_or_else(|| {
        err("expected action `panic[(payload)]`, `error[(message)]` or `delay(millis)`")
    })?;
    if let FaultSchedule::OnNth(0) | FaultSchedule::EveryKth(0) = schedule {
        return Err(err("schedule counts are 1-based; use `on 1` or `every 1`"));
    }
    Ok(Entry {
        site: site.to_owned(),
        schedule,
        action,
        hits: 0,
    })
}

/// Parses `once`, `on N` / `onN`, `every K` / `everyK`.
fn parse_schedule(s: &str) -> Option<FaultSchedule> {
    if s == "once" {
        return Some(FaultSchedule::Once);
    }
    if let Some(n) = s.strip_prefix("every") {
        return n.trim().parse().ok().map(FaultSchedule::EveryKth);
    }
    if let Some(n) = s.strip_prefix("on") {
        return n.trim().parse().ok().map(FaultSchedule::OnNth);
    }
    None
}

/// Parses `panic`, `panic(payload)`, `error`, `error(message)`,
/// `delay(millis)`.
fn parse_action(s: &str) -> Option<FaultAction> {
    let (name, arg) = match s.split_once('(') {
        Some((name, rest)) => (name.trim(), Some(rest.strip_suffix(')')?)),
        None => (s, None),
    };
    match name {
        "panic" => Some(FaultAction::Panic(
            arg.unwrap_or("injected panic").to_owned(),
        )),
        "error" => Some(FaultAction::Error(
            arg.unwrap_or("injected error").to_owned(),
        )),
        "delay" => arg?.trim().parse().ok().map(FaultAction::Delay),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry is process-global; tests that configure it must not
    /// interleave.
    fn serialized() -> std::sync::MutexGuard<'static, ()> {
        test_guard()
    }

    #[test]
    fn disarmed_points_are_no_ops() {
        let _g = serialized();
        reset();
        assert!(!is_armed());
        assert_eq!(point("eval.candidate"), Ok(()));
        point_infallible("sched.list");
    }

    #[test]
    fn error_action_fires_on_schedule() {
        let _g = serialized();
        reset();
        configure("eval.candidate=on2:error(boom)").expect("spec");
        assert!(is_armed());
        assert_eq!(point("eval.candidate"), Ok(()));
        let e = point("eval.candidate").expect_err("second hit fires");
        assert_eq!(e.site, "eval.candidate");
        assert_eq!(e.message, "boom");
        assert!(e.to_string().contains("eval.candidate"));
        assert_eq!(point("eval.candidate"), Ok(()), "on N fires exactly once");
        assert_eq!(point("other.site"), Ok(()), "other sites untouched");
        reset();
    }

    #[test]
    fn every_kth_and_once_schedules() {
        let _g = serialized();
        reset();
        configure("a=every2:error;b=once:error").expect("spec");
        let fired: Vec<bool> = (0..6).map(|_| point("a").is_err()).collect();
        assert_eq!(fired, vec![false, true, false, true, false, true]);
        assert!(point("b").is_err());
        assert!(point("b").is_ok(), "once never fires twice");
        reset();
    }

    #[test]
    fn panic_action_is_catchable_and_attributed() {
        let _g = serialized();
        reset();
        configure("sched.list=panic(chaos)").expect("spec");
        let caught = std::panic::catch_unwind(|| point_infallible("sched.list"));
        assert!(caught.is_err());
        assert_eq!(take_last_panic_site().as_deref(), Some("sched.list"));
        assert_eq!(take_last_panic_site(), None, "consumed by the take");
        reset();
    }

    #[test]
    fn delay_action_returns_ok() {
        let _g = serialized();
        reset();
        configure("x=delay(1)").expect("spec");
        assert_eq!(point("x"), Ok(()));
        reset();
    }

    #[test]
    fn spec_parser_accepts_the_documented_grammar() {
        let _g = serialized();
        reset();
        configure("eval.candidate=every2:panic; trace.sink = on 3 : error(disk full)")
            .expect("spec");
        assert_eq!(
            configured_sites(),
            vec!["eval.candidate".to_owned(), "trace.sink".to_owned()]
        );
        reset();
    }

    #[test]
    fn spec_parser_rejects_garbage() {
        let _g = serialized();
        reset();
        assert!(configure("no-equals").is_err());
        assert!(configure("=panic").is_err());
        assert!(configure("s=frobnicate").is_err());
        assert!(configure("s=delay").is_err(), "delay needs millis");
        assert!(configure("s=on0:panic").is_err(), "hits are 1-based");
        assert!(configure("s=panic(unclosed").is_err());
        // A failed configure leaves the registry disarmed/untouched.
        assert!(!is_armed());
        reset();
    }

    #[test]
    fn empty_spec_clears_and_disarms() {
        let _g = serialized();
        reset();
        configure("a=panic").expect("spec");
        assert!(is_armed());
        configure("  ").expect("empty spec is valid");
        assert!(!is_armed());
        assert!(configured_sites().is_empty());
    }

    #[test]
    fn programmatic_configuration_appends() {
        let _g = serialized();
        reset();
        configure_point("a", FaultSchedule::Always, FaultAction::Error("e".into()));
        configure_point("b", FaultSchedule::Once, FaultAction::Delay(0));
        assert!(is_armed());
        assert_eq!(configured_sites(), vec!["a".to_owned(), "b".to_owned()]);
        assert!(point("a").is_err());
        reset();
    }

    #[test]
    fn known_sites_list_is_nonempty_and_unique() {
        let mut sites = SITES.to_vec();
        sites.sort_unstable();
        sites.dedup();
        assert_eq!(sites.len(), SITES.len());
        assert!(!SITES.is_empty());
    }
}
