//! Unified Assign-and-Schedule (Özer, Banerjia, Conte — MICRO-31, 1998).
//!
//! UAS performs binding and scheduling in one greedy pass: operations
//! are taken in priority order cycle by cycle; for each, a cluster is
//! chosen *at scheduling time*, and any operands living in other
//! clusters are copied over by booking bus slots between the producer's
//! completion and the operation's issue cycle. The schedule built during
//! the pass is the final schedule (no separate evaluation step) — the
//! key structural difference from the paper's decoupled B-INIT, which
//! never fixes start times while binding.

use std::collections::HashMap;
use vliw_binding::{validate_inputs, verify_result, BindError, BindingResult};
use vliw_datapath::{ClusterId, Machine};
use vliw_dfg::{Dfg, FuType, OpId, Timing};
use vliw_sched::{Binding, BoundDfg, Schedule};

/// A feasible placement of a ready operation at the current cycle: the
/// cluster, the operand copies it requires (producer, bus start cycle),
/// and how many operands are already local.
type Placement = (ClusterId, Vec<(OpId, u32)>, usize);

/// Cluster-selection heuristic applied when several clusters can accept
/// an operation in the current cycle (the UAS paper compares several;
/// these are the natural analogues for a fixed issue cycle).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ClusterChoice {
    /// Lowest-indexed feasible cluster.
    FirstFit,
    /// Cluster holding the most of the operation's operands locally —
    /// minimizes new copies (the "majority weighted placement" idea).
    /// Ties go to the least-loaded cluster. The default.
    #[default]
    MostLocalOperands,
    /// Cluster with the fewest operations issued so far (pure load
    /// balancing).
    LeastLoaded,
}

/// The UAS binder.
///
/// # Example
///
/// ```
/// use vliw_baselines::Uas;
/// use vliw_datapath::Machine;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let dfg = vliw_kernels::arf();
/// let machine = Machine::parse("[1,1|1,1]")?;
/// let result = Uas::new(&machine).bind(&dfg);
/// assert!(result.latency() >= 8); // ARF critical path
/// result.schedule.validate(&result.bound, &machine)?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Uas<'m> {
    machine: &'m Machine,
    choice: ClusterChoice,
}

impl<'m> Uas<'m> {
    /// A UAS binder with the default cluster-selection heuristic.
    pub fn new(machine: &'m Machine) -> Self {
        Uas {
            machine,
            choice: ClusterChoice::default(),
        }
    }

    /// A UAS binder with an explicit cluster-selection heuristic.
    pub fn with_choice(machine: &'m Machine, choice: ClusterChoice) -> Self {
        Uas { machine, choice }
    }

    /// Runs the unified pass, returning the binding together with the
    /// *native* UAS schedule (start times fixed during binding). The
    /// booked copies coincide with the bound-DFG's deduplicated moves,
    /// so the native schedule validates against the standard
    /// [`BoundDfg`].
    ///
    /// # Panics
    ///
    /// Panics on the [`Uas::try_bind`] error conditions.
    pub fn bind(&self, dfg: &Dfg) -> BindingResult {
        self.try_bind(dfg)
            .unwrap_or_else(|e| panic!("UAS binding failed: {e}"))
    }

    /// Fallible [`Uas::bind`]: validates the inputs up front and
    /// re-checks the result with the independent verifier
    /// ([`vliw_sched::verify`]).
    ///
    /// # Errors
    ///
    /// A [`BindError`] for malformed inputs or a result failing
    /// verification.
    pub fn try_bind(&self, dfg: &Dfg) -> Result<BindingResult, BindError> {
        validate_inputs(dfg, self.machine)?;
        let result = self.bind_inner(dfg);
        verify_result(dfg, self.machine, &result)?;
        Ok(result)
    }

    fn bind_inner(&self, dfg: &Dfg) -> BindingResult {
        let machine = self.machine;
        let n = dfg.len();
        let lat = machine.op_latencies(dfg);
        let binding_empty = Binding::unbound(dfg);
        if n == 0 {
            let bound = BoundDfg::new(dfg, machine, &binding_empty);
            let schedule = Schedule::from_starts(Vec::new(), &[]);
            return BindingResult {
                binding: binding_empty,
                bound,
                schedule,
            };
        }
        let timing = Timing::with_critical_path(dfg, &lat);
        let priority = |v: OpId| (timing.alap(v), timing.mobility(v), v);

        let lat_move = machine.move_latency();
        let bus_dii = machine.dii(FuType::Bus) as i64;
        let n_clusters = machine.cluster_count();

        // Cycle each value becomes readable per cluster (home or copy).
        let mut avail: Vec<Vec<Option<u32>>> = vec![vec![None; n]; n_clusters];
        // FU instance pools per cluster per regular type.
        let mut pools: Vec<[Vec<u32>; 2]> = machine
            .cluster_ids()
            .map(|c| {
                [
                    vec![0u32; machine.fu_count(c, FuType::Alu) as usize],
                    vec![0u32; machine.fu_count(c, FuType::Mul) as usize],
                ]
            })
            .collect();
        // Bus bookings: copy start cycles (window-checked against N_B).
        let mut bus_starts: Vec<u32> = Vec::new();
        let can_book = |bus_starts: &[u32], extra: &[u32], sigma: u32| -> bool {
            let lo = sigma as i64 - bus_dii + 1;
            let hi = sigma as i64 + bus_dii - 1;
            // A start at σ conflicts with any start within ±(dii−1) only
            // through shared windows; count starts whose window covers σ
            // per sliding-window semantics: all starts in [σ-dii+1, σ]
            // plus σ itself joining windows up to σ+dii-1. Conservative
            // and exact for dii = 1; for dii > 1 check every window
            // containing σ.
            for w in lo..=sigma as i64 {
                if w < 0 {
                    continue;
                }
                let w_hi = w + bus_dii - 1;
                let count = bus_starts
                    .iter()
                    .chain(extra)
                    .filter(|&&s| (s as i64) >= w && (s as i64) <= w_hi)
                    .count() as u32;
                if count + 1 > machine.bus_count() {
                    return false;
                }
            }
            let _ = hi;
            true
        };

        let mut binding = binding_empty;
        let mut native_start = vec![0u32; n];
        // (producer, destination) -> copy start cycle.
        let mut copies: HashMap<(OpId, ClusterId), u32> = HashMap::new();
        let mut indeg: Vec<usize> = dfg.op_ids().map(|v| dfg.in_degree(v)).collect();
        let mut ready: Vec<OpId> = dfg.op_ids().filter(|v| indeg[v.index()] == 0).collect();
        ready.sort_by_key(|&v| priority(v));
        let mut issued_per_cluster = vec![0usize; n_clusters];
        let mut scheduled = 0usize;
        let mut tau = 0u32;
        let safety: u64 = lat.iter().map(|&l| l as u64).sum::<u64>() * 4
            + (n as u64) * (lat_move as u64 + 2)
            + 64;

        while scheduled < n {
            assert!(
                (tau as u64) < safety,
                "UAS failed to make progress by cycle {tau}"
            );
            let mut i = 0;
            while i < ready.len() {
                let v = ready[i];
                let ts = machine.target_set(dfg.op_type(v));
                assert!(!ts.is_empty(), "operation {v} has an empty target set");
                // Gather feasible placements at cycle tau.
                let mut feasible: Vec<Placement> = Vec::new();
                for &c in &ts {
                    let t = dfg.op_type(v).fu_type();
                    let pool = &pools[c.index()][t.index()];
                    if !pool.iter().any(|&free| free <= tau) {
                        continue;
                    }
                    let mut needed: Vec<(OpId, u32)> = Vec::new();
                    let mut local = 0usize;
                    let mut ok = true;
                    let mut tentative: Vec<u32> = Vec::new();
                    for &u in dfg.preds(v) {
                        match avail[c.index()][u.index()] {
                            Some(at) if at <= tau => local += 1,
                            Some(_) => {
                                ok = false;
                                break;
                            }
                            None => {
                                // Copy from the producer's home cluster.
                                let home = binding.cluster_of(u);
                                let ready_at = avail[home.index()][u.index()]
                                    .expect("producers are scheduled before consumers"); // lint:allow(no-panic)
                                if tau < ready_at + lat_move {
                                    ok = false;
                                    break;
                                }
                                let mut sigma = ready_at;
                                let deadline = tau - lat_move;
                                loop {
                                    if sigma > deadline {
                                        ok = false;
                                        break;
                                    }
                                    if can_book(&bus_starts, &tentative, sigma) {
                                        break;
                                    }
                                    sigma += 1;
                                }
                                if !ok {
                                    break;
                                }
                                tentative.push(sigma);
                                needed.push((u, sigma));
                            }
                        }
                    }
                    if ok {
                        feasible.push((c, needed, local));
                    }
                }
                let Some((c, needed, _)) = self.pick(&feasible, &issued_per_cluster) else {
                    i += 1;
                    continue;
                };
                // Commit.
                let t = dfg.op_type(v).fu_type();
                let slot = pools[c.index()][t.index()]
                    .iter_mut()
                    .find(|free| **free <= tau)
                    .expect("feasibility checked the pool"); // lint:allow(no-panic)
                *slot = tau + machine.dii(t);
                for (u, sigma) in needed {
                    bus_starts.push(sigma);
                    avail[c.index()][u.index()] = Some(sigma + lat_move);
                    copies.insert((u, c), sigma);
                }
                binding.bind(v, c);
                native_start[v.index()] = tau;
                avail[c.index()][v.index()] = Some(tau + lat[v.index()]);
                issued_per_cluster[c.index()] += 1;
                scheduled += 1;
                ready.remove(i);
                for &s in dfg.succs(v) {
                    indeg[s.index()] -= 1;
                    if indeg[s.index()] == 0 {
                        let pos = ready.partition_point(|&r| priority(r) < priority(s));
                        ready.insert(pos, s);
                        if pos <= i {
                            i += 1;
                        }
                    }
                }
            }
            tau += 1;
        }

        // Convert the native schedule onto the standard bound DFG: the
        // booked copies are exactly the deduplicated (producer, dest)
        // moves the bound graph materializes.
        let bound = BoundDfg::new(dfg, machine, &binding);
        let bound_lat = bound.latencies(machine);
        let starts: Vec<u32> = bound
            .dfg()
            .op_ids()
            .map(|bv| match bound.orig_of(bv) {
                Some(orig) => native_start[orig.index()],
                None => {
                    let producer_bound = bound.dfg().preds(bv)[0];
                    let producer = bound
                        .orig_of(producer_bound)
                        .expect("moves read regular producers"); // lint:allow(no-panic)
                    copies[&(producer, bound.cluster_of(bv))]
                }
            })
            .collect();
        let schedule = Schedule::from_starts(starts, &bound_lat);
        BindingResult {
            binding,
            bound,
            schedule,
        }
    }

    fn pick(&self, feasible: &[Placement], issued: &[usize]) -> Option<Placement> {
        if feasible.is_empty() {
            return None;
        }
        let best = match self.choice {
            ClusterChoice::FirstFit => feasible.first(),
            ClusterChoice::MostLocalOperands => feasible.iter().min_by_key(|(c, needed, local)| {
                (
                    needed.len(),
                    issued[c.index()],
                    usize::MAX - local,
                    c.index(),
                )
            }),
            ClusterChoice::LeastLoaded => feasible
                .iter()
                .min_by_key(|(c, _, _)| (issued[c.index()], c.index())),
        };
        best.cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_dfg::{DfgBuilder, OpType};

    #[test]
    fn uas_schedule_is_valid_on_kernels() {
        let machine = Machine::parse("[2,1|1,1]").expect("machine");
        for kernel in vliw_kernels::Kernel::ALL {
            let dfg = kernel.build();
            let result = Uas::new(&machine).bind(&dfg);
            assert!(
                result.binding.validate(&dfg, &machine).is_ok(),
                "{kernel}: binding invalid"
            );
            result
                .schedule
                .validate(&result.bound, &machine)
                .unwrap_or_else(|e| panic!("{kernel}: native schedule invalid: {e}"));
        }
    }

    #[test]
    fn uas_respects_critical_path() {
        let machine = Machine::parse("[2,1|2,1]").expect("machine");
        for kernel in vliw_kernels::Kernel::ALL {
            let dfg = kernel.build();
            let (_, _, l_cp) = kernel.paper_stats();
            let result = Uas::new(&machine).bind(&dfg);
            assert!(result.latency() >= l_cp, "{kernel}");
        }
    }

    #[test]
    fn single_cluster_degenerates_to_list_scheduling() {
        let machine = Machine::parse("[2,1]").expect("machine");
        let dfg = vliw_kernels::arf();
        let result = Uas::new(&machine).bind(&dfg);
        assert_eq!(result.moves(), 0);
        // One cluster, no copies: UAS is just list scheduling, so the
        // standard scheduler can't beat it by more than priority noise.
        let standard = vliw_sched::ListScheduler::new(&machine).schedule(&result.bound);
        assert!(result.latency() as i64 - standard.latency() as i64 <= 1);
    }

    #[test]
    fn copies_are_booked_within_bus_capacity() {
        // Force heavy copying: wide producer layer on one cluster feeds
        // consumers on another, with a single bus lane.
        let mut b = DfgBuilder::new();
        let producers: Vec<_> = (0..6).map(|_| b.add_op(OpType::Add, &[])).collect();
        for &p in &producers {
            b.add_op(OpType::Mul, &[p]);
        }
        let dfg = b.finish().expect("acyclic");
        let machine = Machine::parse("[6,0|0,6]")
            .expect("machine")
            .with_bus_count(1);
        let result = Uas::new(&machine).bind(&dfg);
        result
            .schedule
            .validate(&result.bound, &machine)
            .expect("bus constraints hold");
        assert_eq!(result.moves(), 6);
        // Six serialized copies: latency at least 1 + 6 + 1.
        assert!(result.latency() >= 8);
    }

    #[test]
    fn cluster_choice_heuristics_all_produce_valid_results() {
        let machine = Machine::parse("[1,1|1,1|1,1]").expect("machine");
        let dfg = vliw_kernels::fft();
        for choice in [
            ClusterChoice::FirstFit,
            ClusterChoice::MostLocalOperands,
            ClusterChoice::LeastLoaded,
        ] {
            let result = Uas::with_choice(&machine, choice).bind(&dfg);
            result
                .schedule
                .validate(&result.bound, &machine)
                .unwrap_or_else(|e| panic!("{choice:?}: {e}"));
        }
    }

    #[test]
    fn two_cycle_moves_delay_copies_correctly() {
        let mut b = DfgBuilder::new();
        let a = b.add_op(OpType::Add, &[]);
        let _ = b.add_op(OpType::Mul, &[a]);
        let dfg = b.finish().expect("acyclic");
        let machine = Machine::parse("[1,0|0,1]")
            .expect("machine")
            .with_move_latency(2);
        let result = Uas::new(&machine).bind(&dfg);
        // add(1) ; copy(2) ; mul(1) = 4 cycles minimum.
        assert_eq!(result.latency(), 4);
        result
            .schedule
            .validate(&result.bound, &machine)
            .expect("valid");
    }

    #[test]
    fn empty_graph() {
        let machine = Machine::parse("[1,1]").expect("machine");
        let dfg = DfgBuilder::new().finish().expect("empty");
        let result = Uas::new(&machine).bind(&dfg);
        assert_eq!(result.latency(), 0);
    }
}
