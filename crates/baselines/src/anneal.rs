//! Simulated-annealing binding (after Leupers, PACT 2000).
//!
//! Leupers' "instruction partitioning" starts from a random binding and
//! improves it by simulated annealing, with a detailed schedule computed
//! for every candidate and its latency used as the cost function. The
//! paper (Section 4) notes the approach delivers 7-26% over the TI
//! assembly optimizer on a two-cluster 'C6201 "at the expense of an
//! increase in compilation time", and that the runtime "is likely to
//! grow significantly" with more clusters — which this reimplementation
//! reproduces: every move costs a full list schedule.
//!
//! Deterministic for a fixed seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vliw_binding::{validate_inputs, verify_result, BindError, BindingResult};
use vliw_datapath::Machine;
use vliw_dfg::Dfg;
use vliw_sched::Binding;

/// Annealing-schedule parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct AnnealerConfig {
    /// RNG seed (results are reproducible per seed).
    pub seed: u64,
    /// Initial temperature, in cycles of latency (a move worsening the
    /// schedule by `t0` cycles is accepted with probability `1/e`).
    pub t0: f64,
    /// Geometric cooling factor per temperature step.
    pub cooling: f64,
    /// Candidate moves evaluated per temperature step, as a multiple of
    /// the operation count.
    pub moves_per_op: usize,
    /// Stop when the temperature falls below this value.
    pub t_min: f64,
}

impl Default for AnnealerConfig {
    fn default() -> Self {
        AnnealerConfig {
            seed: 0xC6201, // the TI DSP Leupers targeted
            t0: 3.0,
            cooling: 0.85,
            moves_per_op: 4,
            t_min: 0.05,
        }
    }
}

/// The simulated-annealing binder.
///
/// # Example
///
/// ```
/// use vliw_baselines::Annealer;
/// use vliw_datapath::Machine;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let dfg = vliw_kernels::arf();
/// let machine = Machine::parse("[1,1|1,1]")?;
/// let result = Annealer::new(&machine).bind(&dfg);
/// assert!(result.latency() >= 8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Annealer<'m> {
    machine: &'m Machine,
    config: AnnealerConfig,
}

impl<'m> Annealer<'m> {
    /// An annealer with the default schedule.
    pub fn new(machine: &'m Machine) -> Self {
        Annealer {
            machine,
            config: AnnealerConfig::default(),
        }
    }

    /// An annealer with an explicit schedule.
    pub fn with_config(machine: &'m Machine, config: AnnealerConfig) -> Self {
        Annealer { machine, config }
    }

    /// Runs the annealing search from a random initial binding,
    /// returning the best binding seen (not merely the final state).
    ///
    /// # Panics
    ///
    /// Panics on the [`Annealer::try_bind`] error conditions.
    pub fn bind(&self, dfg: &Dfg) -> BindingResult {
        self.try_bind(dfg)
            .unwrap_or_else(|e| panic!("annealing binding failed: {e}"))
    }

    /// Fallible [`Annealer::bind`]: validates the inputs up front and
    /// re-checks the best result with the independent verifier
    /// ([`vliw_sched::verify`]).
    ///
    /// # Errors
    ///
    /// A [`BindError`] for malformed inputs or a result failing
    /// verification.
    pub fn try_bind(&self, dfg: &Dfg) -> Result<BindingResult, BindError> {
        validate_inputs(dfg, self.machine)?;
        let result = self.bind_inner(dfg);
        verify_result(dfg, self.machine, &result)?;
        Ok(result)
    }

    fn bind_inner(&self, dfg: &Dfg) -> BindingResult {
        let machine = self.machine;
        let mut rng = StdRng::seed_from_u64(self.config.seed);

        // Random initial binding over the target sets.
        let mut binding = Binding::unbound(dfg);
        for v in dfg.op_ids() {
            let ts = machine.target_set(dfg.op_type(v));
            assert!(!ts.is_empty(), "operation {v} has an empty target set");
            binding.bind(v, ts[rng.gen_range(0..ts.len())]);
        }
        let mut current = BindingResult::evaluate(dfg, machine, binding);
        let mut best = current.clone();
        if dfg.is_empty() {
            return best;
        }

        let mut temperature = self.config.t0;
        let moves = self.config.moves_per_op.max(1) * dfg.len();
        while temperature >= self.config.t_min {
            for _ in 0..moves {
                let v = vliw_dfg::OpId::from_index(rng.gen_range(0..dfg.len()));
                let ts = machine.target_set(dfg.op_type(v));
                if ts.len() < 2 {
                    continue;
                }
                let mut c = ts[rng.gen_range(0..ts.len())];
                while c == current.binding.cluster_of(v) {
                    c = ts[rng.gen_range(0..ts.len())];
                }
                let mut candidate = current.binding.clone();
                candidate.bind(v, c);
                let result = BindingResult::evaluate(dfg, machine, candidate);
                let delta = result.latency() as f64 - current.latency() as f64;
                let accept = delta <= 0.0 || rng.gen::<f64>() < (-delta / temperature).exp();
                if accept {
                    current = result;
                    if current.lm() < best.lm() {
                        best = current.clone();
                    }
                }
            }
            temperature *= self.config.cooling;
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_dfg::{DfgBuilder, OpType};

    #[test]
    fn annealer_is_deterministic_per_seed() {
        let machine = Machine::parse("[1,1|1,1]").expect("machine");
        let dfg = vliw_kernels::arf();
        let a = Annealer::new(&machine).bind(&dfg);
        let b = Annealer::new(&machine).bind(&dfg);
        assert_eq!(a.lm(), b.lm());
        assert_eq!(a.binding, b.binding);
    }

    #[test]
    fn different_seeds_explore_differently() {
        let machine = Machine::parse("[1,1|1,1]").expect("machine");
        let dfg = vliw_kernels::fft();
        let a = Annealer::new(&machine).bind(&dfg);
        let b = Annealer::with_config(
            &machine,
            AnnealerConfig {
                seed: 7,
                ..AnnealerConfig::default()
            },
        )
        .bind(&dfg);
        // Both must be valid; bindings usually differ.
        assert!(a.binding.validate(&dfg, &machine).is_ok());
        assert!(b.binding.validate(&dfg, &machine).is_ok());
    }

    #[test]
    fn finds_the_obvious_split() {
        // Two independent chains: annealing must discover the 2-cluster
        // split (latency = chain length, zero transfers).
        let mut b = DfgBuilder::new();
        for _ in 0..2 {
            let mut prev = b.add_op(OpType::Add, &[]);
            for _ in 0..3 {
                prev = b.add_op(OpType::Add, &[prev]);
            }
        }
        let dfg = b.finish().expect("acyclic");
        let machine = Machine::parse("[1,1|1,1]").expect("machine");
        let result = Annealer::new(&machine).bind(&dfg);
        assert_eq!(result.latency(), 4);
        assert_eq!(result.moves(), 0);
    }

    #[test]
    fn respects_target_sets_throughout() {
        let machine = Machine::parse("[2,0|1,2]").expect("machine");
        let dfg = vliw_kernels::arf(); // multiply-heavy
        let result = Annealer::new(&machine).bind(&dfg);
        assert!(result.binding.validate(&dfg, &machine).is_ok());
        result
            .schedule
            .validate(&result.bound, &machine)
            .expect("valid schedule");
    }

    #[test]
    fn best_seen_is_returned_not_final_state() {
        // With an aggressive schedule the walk may end worse than its
        // best; the API contract is best-seen.
        let machine = Machine::parse("[1,1|1,1]").expect("machine");
        let dfg = vliw_kernels::dct_dif();
        let hot = Annealer::with_config(
            &machine,
            AnnealerConfig {
                t0: 10.0,
                cooling: 0.5,
                moves_per_op: 2,
                ..AnnealerConfig::default()
            },
        )
        .bind(&dfg);
        // Must at least not be absurd: within the serial upper bound.
        assert!(hot.latency() <= dfg.len() as u32);
    }
}
