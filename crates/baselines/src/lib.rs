//! Additional cluster-binding baselines from the paper's related-work
//! discussion (Section 4), implemented for comparison:
//!
//! * [`uas`] — **Unified Assign-and-Schedule** (Özer, Banerjia, Conte,
//!   MICRO-31 1998): a combined greedy binding/scheduling pass that
//!   places each operation cycle by cycle, choosing the cluster at
//!   scheduling time and booking the required inter-cluster copies on
//!   the bus as it goes. The paper contrasts it with B-INIT: "theirs
//!   requires the computation of ready times for operations being bound
//!   \[and\] the schedule generated during the binding process is
//!   considered to be the final schedule".
//! * [`anneal`] — **simulated-annealing binding** in the spirit of
//!   Leupers (PACT 2000): random single-operation re-bindings accepted
//!   under a temperature schedule, each evaluated by a full list
//!   schedule. Slow but a useful quality yardstick.
//!
//! Both produce the same [`vliw_binding::BindingResult`] as the main
//! algorithms, so every binder in the workspace is judged by the
//! identical list scheduler.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anneal;
pub mod uas;

pub use anneal::{Annealer, AnnealerConfig};
pub use uas::{ClusterChoice, Uas};
