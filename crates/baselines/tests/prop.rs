//! Property tests for the related-work baselines: like every binder in
//! the workspace, UAS and the annealer must produce valid bindings and
//! schedules on arbitrary inputs.

use proptest::prelude::*;
use vliw_baselines::{Annealer, AnnealerConfig, ClusterChoice, Uas};
use vliw_datapath::Machine;
use vliw_dfg::{Dfg, DfgBuilder, OpType};

fn arb_dfg(max_ops: usize) -> impl Strategy<Value = Dfg> {
    (2..=max_ops).prop_flat_map(|n| {
        let kinds = prop::collection::vec(0..2u8, n);
        let picks = prop::collection::vec((0usize..usize::MAX, 0usize..usize::MAX, 0..3u8), n);
        (kinds, picks).prop_map(|(kinds, picks)| {
            let mut b = DfgBuilder::new();
            let mut ids = Vec::new();
            for (i, (&kind, &(p1, p2, arity))) in kinds.iter().zip(&picks).enumerate() {
                let ty = if kind == 0 { OpType::Add } else { OpType::Mul };
                let mut operands = Vec::new();
                if i > 0 && arity >= 1 {
                    operands.push(ids[p1 % i]);
                    if arity >= 2 {
                        let second = ids[p2 % i];
                        if !operands.contains(&second) {
                            operands.push(second);
                        }
                    }
                }
                ids.push(b.add_op(ty, &operands));
            }
            b.finish().expect("acyclic")
        })
    })
}

fn arb_machine() -> impl Strategy<Value = Machine> {
    (
        prop::sample::select(vec!["[1,1]", "[1,1|1,1]", "[2,1|1,1]", "[2,0|1,2]"]),
        1..=2u32,
        1..=2u32,
    )
        .prop_map(|(cfg, buses, move_lat)| {
            Machine::parse(cfg)
                .expect("valid")
                .with_bus_count(buses)
                .with_move_latency(move_lat)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// UAS always terminates with a valid native schedule, for every
    /// cluster-selection heuristic.
    #[test]
    fn uas_is_sound(
        dfg in arb_dfg(24),
        machine in arb_machine(),
        choice_idx in 0usize..3,
    ) {
        let choice = [
            ClusterChoice::FirstFit,
            ClusterChoice::MostLocalOperands,
            ClusterChoice::LeastLoaded,
        ][choice_idx];
        let result = Uas::with_choice(&machine, choice).bind(&dfg);
        prop_assert!(result.binding.validate(&dfg, &machine).is_ok());
        prop_assert_eq!(result.schedule.validate(&result.bound, &machine), Ok(()));
        // The native schedule cannot beat the bound graph's critical path.
        let lat = result.bound.latencies(&machine);
        let cp = vliw_dfg::critical_path_len(result.bound.dfg(), &lat);
        prop_assert!(result.latency() >= cp);
    }

    /// UAS preserves dataflow semantics through its copy insertion.
    #[test]
    fn uas_preserves_semantics(dfg in arb_dfg(20), machine in arb_machine()) {
        let result = Uas::new(&machine).bind(&dfg);
        prop_assert!(vliw_sim::functional_check(&dfg, &result.bound).is_ok());
    }

    /// The annealer produces valid results under arbitrary (fast)
    /// schedules.
    #[test]
    fn annealer_is_sound(dfg in arb_dfg(16), seed in 0u64..64) {
        let machine = Machine::parse("[1,1|1,1]").expect("valid");
        let config = AnnealerConfig {
            seed,
            t0: 2.0,
            cooling: 0.5,
            moves_per_op: 2,
            t_min: 0.2,
        };
        let result = Annealer::with_config(&machine, config).bind(&dfg);
        prop_assert!(result.binding.validate(&dfg, &machine).is_ok());
        prop_assert_eq!(result.schedule.validate(&result.bound, &machine), Ok(()));
    }
}
