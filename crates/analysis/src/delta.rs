//! Delta-aware screening bounds for B-ITER candidates.
//!
//! The binder's improvement loop perturbs an incumbent binding in one or
//! two operations and evaluates every candidate with a full list
//! schedule. Most candidates provably cannot beat the incumbent's
//! `(L, N_MV)`, and a cheap admissible bound suffices to prove it. The
//! [`DeltaBoundAnalyzer`] specializes this crate's machinery to that
//! case:
//!
//! * **Per-cluster interval bounds.** The machine-wide interval bound of
//!   [`crate::analyze`] divides window populations by the *total* FU
//!   count, so it cannot tell candidates apart. Here the same window
//!   argument is applied per cluster: for a window `W` of class-`t` ops
//!   with `asap ≥ h` and `tail ≥ τ`, the members *bound to cluster `c`*
//!   must all start on `N(c, t)` units, hence
//!   `L ≥ h + τ + lat_min(W) + dii(t)·(⌈|W ∩ c|/N(c,t)⌉ − 1)`.
//!   The per-cluster populations are precomputed once per incumbent
//!   ([`DeltaBoundAnalyzer::anchor`]) and adjusted in O(delta) per
//!   candidate.
//! * **Exact transfer recount.** `N_MV` counts distinct
//!   `(producer, destination cluster)` pairs; re-binding `v` only
//!   changes the contributions of `v` and its predecessors, so the
//!   candidate's exact `N_MV` — not merely a bound — is recovered in
//!   O(affected ops) from the incumbent's per-producer counts.
//! * **Bus saturation.** The exact transfer count feeds the same
//!   bus-bandwidth argument as [`crate::analyze`]:
//!   `L ≥ 2 + lat(move) + dii(BUS)·(⌈N_MV/N_B⌉ − 1)`.
//!
//! Every claim carries a [`DeltaCertificate`] witness that the
//! derivation-independent checker (`vliw_sched::verify::check_delta_bound`,
//! which shares no code with this module) re-validates from first
//! principles. Like the rest of the crate, everything here is a pure
//! function of its inputs.

use crate::{asap_levels, critical_path_bound, tail_after_levels, LatencyCertificate};
use vliw_datapath::{ClusterId, Machine};
use vliw_dfg::{Dfg, FuType, OpId};

/// A certified lower bound on a candidate binding's `(L, N_MV)`.
///
/// `moves` is the candidate's *exact* transfer count (the recount is
/// exact, not an estimate); `latency` is an admissible lower bound on
/// its schedule latency. The certificate justifies both: the latency via
/// its witness, the move count by independent recount over the binding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaBound {
    /// Admissible lower bound on the candidate's schedule latency `L`.
    pub latency: u32,
    /// The candidate's exact transfer count `N_MV`.
    pub moves: usize,
    /// The witness justifying `latency` (the checker re-derives `moves`
    /// from the binding itself).
    pub certificate: DeltaCertificate,
}

/// The witness behind a [`DeltaBound`] latency claim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaCertificate {
    /// A binding-independent dependence chain: `L ≥ Σ lat(v)` over the
    /// chain, for any binding.
    CriticalPath {
        /// The chain, in dependence order (producer first).
        path: Vec<OpId>,
    },
    /// A per-cluster op-class window: every op in `ops` has FU class
    /// `class`, is bound to `cluster` by the candidate, has
    /// `asap(v) ≥ head` and at least `tail` cycles of dependent work
    /// after completion, so with `W` the *full* class window at
    /// `(head, tail)`,
    /// `L ≥ head + tail + lat_min(W) + dii·(⌈|ops|/N(cluster, class)⌉ − 1)`.
    ClusterInterval {
        /// FU class of every witness operation.
        class: FuType,
        /// The cluster the candidate binds every witness operation to.
        cluster: ClusterId,
        /// Lower bound on the ASAP level of every witness operation.
        head: u32,
        /// Lower bound on the dependent work after every witness
        /// operation completes.
        tail: u32,
        /// The witness operations, in id order.
        ops: Vec<OpId>,
    },
    /// The bus-saturation argument over the candidate's exact transfer
    /// count: `L ≥ 2 + lat(move) + dii(BUS)·(⌈moves/N_B⌉ − 1)`.
    BusSaturation {
        /// The candidate's exact transfer count (must match the
        /// checker's independent recount).
        moves: usize,
    },
}

impl DeltaCertificate {
    /// A short kebab-case name of the bound family, for reports.
    pub fn kind(&self) -> &'static str {
        match self {
            DeltaCertificate::CriticalPath { .. } => "critical-path",
            DeltaCertificate::ClusterInterval { .. } => "cluster-interval",
            DeltaCertificate::BusSaturation { .. } => "bus-saturation",
        }
    }
}

/// One per-(class, window) screening entry; per-cluster populations live
/// in the anchored state.
#[derive(Debug, Clone)]
struct Entry {
    class: FuType,
    head: u32,
    tail: u32,
    /// `min lat(v)` over the *full* class window at `(head, tail)` —
    /// binding-independent, so constant across candidates.
    lat_min: u32,
    dii: u32,
    /// `N(c, class)` per cluster index.
    fus: Vec<u32>,
}

/// Delta-aware screening analyzer for one `(Dfg, Machine)` pair.
///
/// Construction precomputes the binding-independent structure (levels,
/// windows, critical path); [`DeltaBoundAnalyzer::anchor`] then indexes
/// one incumbent binding so [`DeltaBoundAnalyzer::screen`] can bound any
/// candidate differing in a handful of ops in O(delta) time.
///
/// ```
/// use vliw_analysis::DeltaBoundAnalyzer;
/// use vliw_datapath::Machine;
/// use vliw_dfg::{DfgBuilder, OpType};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = DfgBuilder::new();
/// let p = b.add_op(OpType::Add, &[]);
/// let q = b.add_op(OpType::Add, &[p]);
/// let dfg = b.finish()?;
/// let machine = Machine::parse("[1,1|1,1]")?;
/// let c0 = machine.cluster_ids().next().unwrap();
/// let c1 = machine.cluster_ids().nth(1).unwrap();
///
/// let mut analyzer = DeltaBoundAnalyzer::new(&dfg, &machine);
/// analyzer.anchor(&[c0, c0]);
/// // Moving the consumer across clusters forces exactly one transfer.
/// let (latency, moves) = analyzer.screen(&[(q, c1)]);
/// assert_eq!(moves, 1);
/// assert!(latency >= 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DeltaBoundAnalyzer<'a> {
    dfg: &'a Dfg,
    machine: &'a Machine,
    /// The binding-independent critical-path bound (constant floor).
    cp_cycles: u32,
    cp_path: Vec<OpId>,
    entries: Vec<Entry>,
    /// Per-op bitmask over `entries` (bit `e` set ⇔ the op belongs to
    /// entry `e`'s class window).
    membership: Vec<u32>,
    /// Bus constants.
    nb: u32,
    dii_bus: u32,
    move_lat: u32,
    // ---- anchored state (incumbent-dependent) ----
    /// The incumbent assignment vector, `ClusterId` per op.
    anchor: Vec<ClusterId>,
    /// Per-entry, per-cluster window populations under the incumbent.
    counts: Vec<Vec<u32>>,
    /// Per-producer transfer contribution under the incumbent: the
    /// number of distinct successor clusters different from its own.
    producer_moves: Vec<u32>,
    /// `Σ producer_moves` — the incumbent's exact `N_MV`.
    anchor_moves: usize,
}

impl<'a> DeltaBoundAnalyzer<'a> {
    /// Precomputes the binding-independent screening structure. Cost is
    /// comparable to one [`crate::analyze`] call; amortize it over a
    /// whole descent.
    pub fn new(dfg: &'a Dfg, machine: &'a Machine) -> Self {
        let n = dfg.len();
        let (cp_cycles, cp_path) = if n == 0 {
            (0, Vec::new())
        } else {
            let lat = machine.op_latencies(dfg);
            let cp = critical_path_bound(dfg, &lat);
            let LatencyCertificate::CriticalPath { path } = cp.certificate else {
                unreachable!("critical_path_bound emits a chain witness") // lint:allow(no-panic) lint:allow(panic-reach)
            };
            (cp.cycles, path)
        };

        let mut entries = Vec::new();
        let mut membership = vec![0u32; n];
        if n > 0 {
            let lat = machine.op_latencies(dfg);
            let asap = asap_levels(dfg, &lat);
            let tail = tail_after_levels(dfg, &lat);
            for class in FuType::REGULAR {
                let ops: Vec<OpId> = dfg
                    .op_ids()
                    .filter(|&v| dfg.op_type(v).fu_type() == class)
                    .collect();
                if ops.is_empty() {
                    continue;
                }
                let fus: Vec<u32> = machine
                    .cluster_ids()
                    .map(|c| machine.fu_count(c, class))
                    .collect();
                let dii = machine.dii(class);
                let windows = class_windows(machine, &lat, &asap, &tail, class, &ops);
                for (head, tail_level) in windows {
                    let w: Vec<&OpId> = ops
                        .iter()
                        .filter(|&&v| asap[v.index()] >= head && tail[v.index()] >= tail_level)
                        .collect();
                    if w.is_empty() {
                        continue;
                    }
                    let lat_min = w.iter().map(|v| lat[v.index()]).min().unwrap_or(0);
                    let e = entries.len();
                    assert!(e < 32, "at most 2 windows per regular class");
                    for &&v in &w {
                        membership[v.index()] |= 1 << e;
                    }
                    entries.push(Entry {
                        class,
                        head,
                        tail: tail_level,
                        lat_min,
                        dii,
                        fus: fus.clone(),
                    });
                }
            }
        }

        DeltaBoundAnalyzer {
            dfg,
            machine,
            cp_cycles,
            cp_path,
            entries,
            membership,
            nb: machine.bus_count().max(1),
            dii_bus: machine.dii(FuType::Bus),
            move_lat: machine.move_latency(),
            anchor: Vec::new(),
            counts: Vec::new(),
            producer_moves: Vec::new(),
            anchor_moves: 0,
        }
    }

    /// Indexes an incumbent assignment vector (one [`ClusterId`] per op,
    /// e.g. `Binding::as_slice`): per-cluster window populations and
    /// per-producer transfer contributions. O(V + E); call once per
    /// accepted descent step.
    pub fn anchor(&mut self, binding: &[ClusterId]) {
        assert_eq!(
            binding.len(),
            self.dfg.len(),
            "anchor binding must cover the DFG"
        );
        self.anchor.clear();
        self.anchor.extend_from_slice(binding);
        let n_clusters = self.machine.cluster_count();
        self.counts = vec![vec![0u32; n_clusters]; self.entries.len()];
        for v in self.dfg.op_ids() {
            let mask = self.membership[v.index()];
            if mask == 0 {
                continue;
            }
            let c = binding[v.index()].index();
            for (e, counts) in self.counts.iter_mut().enumerate() {
                if mask & (1 << e) != 0 {
                    counts[c] += 1;
                }
            }
        }
        self.producer_moves.clear();
        self.producer_moves.resize(self.dfg.len(), 0);
        let mut total = 0usize;
        for u in self.dfg.op_ids() {
            let contrib = producer_contribution(self.dfg, u, |w| binding[w.index()]);
            self.producer_moves[u.index()] = contrib;
            total += contrib as usize;
        }
        self.anchor_moves = total;
    }

    /// The incumbent's exact transfer count, as indexed by
    /// [`DeltaBoundAnalyzer::anchor`].
    pub fn anchor_moves(&self) -> usize {
        self.anchor_moves
    }

    /// Bounds the candidate that differs from the anchor by `delta`
    /// (re-bind each listed op to the listed cluster; entries whose
    /// cluster equals the anchor's are ignored). Returns
    /// `(latency lower bound, exact transfer count)` of the candidate.
    ///
    /// # Panics
    ///
    /// Panics when no anchor was set.
    pub fn screen(&self, delta: &[(OpId, ClusterId)]) -> (u32, usize) {
        let (latency, moves, _) = self.bound_delta(delta);
        (latency, moves)
    }

    /// [`DeltaBoundAnalyzer::screen`] with a full machine-checkable
    /// witness for the same claim, for verification and audit paths.
    pub fn certify(&self, delta: &[(OpId, ClusterId)]) -> DeltaBound {
        let (latency, moves, source) = self.bound_delta(delta);
        let certificate = match source {
            BoundSource::CriticalPath => DeltaCertificate::CriticalPath {
                path: self.cp_path.clone(),
            },
            BoundSource::Entry(e, c) => {
                let entry = &self.entries[e];
                let cluster = ClusterId::from_index(c);
                let ops: Vec<OpId> = self
                    .dfg
                    .op_ids()
                    .filter(|&v| {
                        self.membership[v.index()] & (1 << e) != 0
                            && self.candidate_cluster(delta, v) == cluster
                    })
                    .collect();
                DeltaCertificate::ClusterInterval {
                    class: entry.class,
                    cluster,
                    head: entry.head,
                    tail: entry.tail,
                    ops,
                }
            }
            BoundSource::Bus => DeltaCertificate::BusSaturation { moves },
        };
        DeltaBound {
            latency,
            moves,
            certificate,
        }
    }

    /// The candidate's cluster for `v`: the delta's entry when listed,
    /// the anchor's otherwise.
    fn candidate_cluster(&self, delta: &[(OpId, ClusterId)], v: OpId) -> ClusterId {
        delta
            .iter()
            .find(|&&(u, _)| u == v)
            .map_or(self.anchor[v.index()], |&(_, c)| c)
    }

    /// The shared screen/certify computation: latency bound, exact move
    /// count, and which family achieved the latency maximum.
    fn bound_delta(&self, delta: &[(OpId, ClusterId)]) -> (u32, usize, BoundSource) {
        assert_eq!(
            self.anchor.len(),
            self.dfg.len(),
            "screen requires an anchored incumbent"
        );
        // Keep only real re-binds; duplicates keep their first entry
        // (matching `candidate_cluster`).
        let mut changes: [(OpId, ClusterId, ClusterId); 4] = [(
            OpId::from_index(0),
            ClusterId::from_index(0),
            ClusterId::from_index(0),
        ); 4];
        let mut n_changes = 0usize;
        for &(v, c) in delta {
            let old = self.anchor[v.index()];
            if c != old
                && !changes[..n_changes].iter().any(|&(u, _, _)| u == v)
                && n_changes < changes.len()
            {
                changes[n_changes] = (v, old, c);
                n_changes += 1;
            }
        }
        let changes = &changes[..n_changes];

        // Exact transfer recount: only the moved ops and their
        // predecessors can change their producer contributions.
        let mut affected: Vec<OpId> = Vec::with_capacity(8);
        for &(v, _, _) in changes {
            affected.push(v);
            affected.extend_from_slice(self.dfg.preds(v));
        }
        affected.sort_unstable();
        affected.dedup();
        let mut moves = self.anchor_moves;
        for &u in &affected {
            let fresh = producer_contribution(self.dfg, u, |w| self.candidate_cluster(delta, w));
            moves = moves + fresh as usize - self.producer_moves[u.index()] as usize;
        }

        // Latency: max over the constant critical path, every
        // per-cluster window entry (with O(delta) population
        // adjustments), and the bus-saturation value of the exact
        // transfer count. Ties resolve to the earliest family in that
        // order, deterministically.
        let mut best = self.cp_cycles;
        let mut source = BoundSource::CriticalPath;
        for (e, (entry, counts)) in self.entries.iter().zip(&self.counts).enumerate() {
            for (c, (&base, &fus)) in counts.iter().zip(&entry.fus).enumerate() {
                if fus == 0 {
                    continue;
                }
                let mut cnt = base;
                for &(v, old, new) in changes {
                    if self.membership[v.index()] & (1 << e) != 0 {
                        if old.index() == c {
                            cnt -= 1;
                        }
                        if new.index() == c {
                            cnt += 1;
                        }
                    }
                }
                if cnt == 0 {
                    continue;
                }
                let value =
                    entry.head + entry.tail + entry.lat_min + entry.dii * (cnt.div_ceil(fus) - 1);
                if value > best {
                    best = value;
                    source = BoundSource::Entry(e, c);
                }
            }
        }
        if moves > 0 {
            let per_bus = (moves as u32).div_ceil(self.nb);
            let value = 2 + self.move_lat + self.dii_bus * (per_bus - 1);
            if value > best {
                best = value;
                source = BoundSource::Bus;
            }
        }
        (best, moves, source)
    }
}

/// Which bound family achieved the maximum in `bound_delta`.
#[derive(Debug, Clone, Copy)]
enum BoundSource {
    CriticalPath,
    Entry(usize, usize),
    Bus,
}

/// The number of distinct destination clusters (different from the
/// producer's own) among `u`'s successors — `u`'s exact contribution to
/// `N_MV` under the binding described by `cluster_of`.
fn producer_contribution(dfg: &Dfg, u: OpId, cluster_of: impl Fn(OpId) -> ClusterId) -> u32 {
    let own = cluster_of(u).index();
    let succs = dfg.succs(u);
    if succs.is_empty() {
        return 0;
    }
    // Cluster counts on real datapaths are tiny; a 64-bit mask covers
    // them. Wider machines fall back to a sorted scratch list.
    let mut mask: u64 = 0;
    let mut wide: Vec<usize> = Vec::new();
    for &w in succs {
        let c = cluster_of(w).index();
        if c == own {
            continue;
        }
        if c < 64 {
            mask |= 1 << c;
        } else if !wide.contains(&c) {
            wide.push(c);
        }
    }
    mask.count_ones() + wide.len() as u32
}

/// The window set screened for `class`: the whole-graph window `(0, 0)`
/// plus, when some op sits strictly inside the schedule, the machine-wide
/// strongest `(head, tail)` window (any window is admissible; the
/// machine-wide argmax is a good cheap pick for per-cluster use too).
fn class_windows(
    machine: &Machine,
    lat: &[u32],
    asap: &[u32],
    tail: &[u32],
    class: FuType,
    ops: &[OpId],
) -> Vec<(u32, u32)> {
    let mut windows = vec![(0u32, 0u32)];
    let n_fus = machine.fu_count_total(class);
    if n_fus == 0 {
        return windows;
    }
    let dii = machine.dii(class);
    let value = |h: u32, t: u32, w: &[OpId]| -> u32 {
        let lat_min = w.iter().map(|&v| lat[v.index()]).min().unwrap_or(0);
        h + t + lat_min + dii * ((w.len() as u32).div_ceil(n_fus) - 1)
    };
    let mut heads: Vec<u32> = ops.iter().map(|&v| asap[v.index()]).collect();
    heads.sort_unstable();
    heads.dedup();
    let mut tails: Vec<u32> = ops.iter().map(|&v| tail[v.index()]).collect();
    tails.sort_unstable();
    tails.dedup();
    let mut best = value(0, 0, ops);
    let mut found = None;
    for &h in &heads {
        for &t in &tails {
            if h == 0 && t == 0 {
                continue;
            }
            let w: Vec<OpId> = ops
                .iter()
                .copied()
                .filter(|&v| asap[v.index()] >= h && tail[v.index()] >= t)
                .collect();
            if w.is_empty() {
                continue;
            }
            let cycles = value(h, t, &w);
            if cycles > best {
                best = cycles;
                found = Some((h, t));
            }
        }
    }
    windows.extend(found);
    windows
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_dfg::{DfgBuilder, OpType};

    fn machine(desc: &str) -> Machine {
        Machine::parse(desc).expect("machine")
    }

    fn cl(i: usize) -> ClusterId {
        ClusterId::from_index(i)
    }

    /// Brute-force `N_MV` of an assignment: distinct (producer, dest
    /// cluster) pairs over cut edges.
    fn exact_moves(dfg: &Dfg, of: &[ClusterId]) -> usize {
        let mut pairs: Vec<(OpId, usize)> = dfg
            .edges()
            .filter(|&(u, v)| of[u.index()] != of[v.index()])
            .map(|(u, v)| (u, of[v.index()].index()))
            .collect();
        pairs.sort_unstable();
        pairs.dedup();
        pairs.len()
    }

    /// A mixed add/mul graph with enough structure to exercise windows.
    fn mixed() -> Dfg {
        let mut b = DfgBuilder::new();
        let a = b.add_op(OpType::Add, &[]);
        let m0 = b.add_op(OpType::Mul, &[a]);
        let m1 = b.add_op(OpType::Mul, &[a]);
        let s = b.add_op(OpType::Add, &[m0, m1]);
        let _ = b.add_op(OpType::Sub, &[s]);
        let _ = b.add_op(OpType::Add, &[m1]);
        b.finish().expect("acyclic")
    }

    #[test]
    fn delta_moves_match_brute_force_over_all_single_rebinds() {
        let dfg = mixed();
        let m = machine("[2,1|2,1]");
        let n = dfg.len();
        let mut analyzer = DeltaBoundAnalyzer::new(&dfg, &m);
        for mask in 0..(1usize << n) {
            let of: Vec<ClusterId> = (0..n).map(|i| cl((mask >> i) & 1)).collect();
            analyzer.anchor(&of);
            assert_eq!(
                analyzer.anchor_moves(),
                exact_moves(&dfg, &of),
                "mask {mask}"
            );
            for v in dfg.op_ids() {
                for c in [cl(0), cl(1)] {
                    let mut cand = of.clone();
                    cand[v.index()] = c;
                    let (_, moves) = analyzer.screen(&[(v, c)]);
                    assert_eq!(moves, exact_moves(&dfg, &cand), "mask {mask} op {v} -> {c}");
                }
            }
        }
    }

    #[test]
    fn delta_moves_match_brute_force_over_pair_rebinds() {
        let dfg = mixed();
        let m = machine("[2,1|2,1]");
        let n = dfg.len();
        let of: Vec<ClusterId> = (0..n).map(|i| cl(i % 2)).collect();
        let mut analyzer = DeltaBoundAnalyzer::new(&dfg, &m);
        analyzer.anchor(&of);
        for v in dfg.op_ids() {
            for w in dfg.op_ids() {
                if v == w {
                    continue;
                }
                for (cv, cw) in [(cl(0), cl(0)), (cl(0), cl(1)), (cl(1), cl(0))] {
                    let mut cand = of.clone();
                    cand[v.index()] = cv;
                    cand[w.index()] = cw;
                    let (_, moves) = analyzer.screen(&[(v, cv), (w, cw)]);
                    assert_eq!(moves, exact_moves(&dfg, &cand), "{v}->{cv}, {w}->{cw}");
                }
            }
        }
    }

    #[test]
    fn screen_latency_is_admissible() {
        // The screening latency bound must never exceed the true list
        // schedule latency of the candidate.
        use vliw_sched::{Binding, BoundDfg, ListScheduler};
        let dfg = mixed();
        let m = machine("[1,1|1,1]");
        let n = dfg.len();
        let mut analyzer = DeltaBoundAnalyzer::new(&dfg, &m);
        for mask in 0..(1usize << n) {
            let of: Vec<ClusterId> = (0..n).map(|i| cl((mask >> i) & 1)).collect();
            analyzer.anchor(&of);
            for v in dfg.op_ids() {
                for c in [cl(0), cl(1)] {
                    let mut cand = of.clone();
                    cand[v.index()] = c;
                    let (bound_latency, moves) = analyzer.screen(&[(v, c)]);
                    let bn = Binding::new(&dfg, &m, cand).expect("valid");
                    let bdfg = BoundDfg::new(&dfg, &m, &bn);
                    let s = ListScheduler::new(&m).schedule(&bdfg);
                    assert!(
                        bound_latency <= s.latency(),
                        "mask {mask} {v}->{c}: bound {bound_latency} > true {}",
                        s.latency()
                    );
                    assert_eq!(moves, bdfg.move_count());
                }
            }
        }
    }

    #[test]
    fn certify_matches_screen_claim() {
        let dfg = mixed();
        let m = machine("[1,1|1,1]");
        let of = vec![cl(0), cl(1), cl(1), cl(0), cl(0), cl(1)];
        let mut analyzer = DeltaBoundAnalyzer::new(&dfg, &m);
        analyzer.anchor(&of);
        for v in dfg.op_ids() {
            for c in [cl(0), cl(1)] {
                let delta = [(v, c)];
                let (latency, moves) = analyzer.screen(&delta);
                let bound = analyzer.certify(&delta);
                assert_eq!((bound.latency, bound.moves), (latency, moves));
                if let DeltaCertificate::ClusterInterval { ops, cluster, .. } = &bound.certificate {
                    assert!(!ops.is_empty());
                    for &op in ops {
                        let cand = if op == v { c } else { of[op.index()] };
                        assert_eq!(cand, *cluster);
                    }
                }
            }
        }
    }

    #[test]
    fn no_op_delta_reproduces_anchor() {
        let dfg = mixed();
        let m = machine("[2,1|2,1]");
        let of = vec![cl(0); dfg.len()];
        let mut analyzer = DeltaBoundAnalyzer::new(&dfg, &m);
        analyzer.anchor(&of);
        let v = dfg.op_ids().next().expect("non-empty");
        let (latency, moves) = analyzer.screen(&[(v, cl(0))]);
        assert_eq!(moves, 0);
        assert!(latency >= 4, "critical path of the mixed graph");
    }

    #[test]
    fn screening_discriminates_crowded_clusters() {
        // 6 independent adds on [1,1|3,1]: crowding 5 onto the single-ALU
        // cluster must screen to a bound above the balanced latency.
        let mut b = DfgBuilder::new();
        for _ in 0..6 {
            b.add_op(OpType::Add, &[]);
        }
        let dfg = b.finish().expect("acyclic");
        let m = machine("[1,1|3,1]");
        let of = vec![cl(1); 6];
        let mut analyzer = DeltaBoundAnalyzer::new(&dfg, &m);
        analyzer.anchor(&of);
        // All six on the 3-ALU cluster: 2 cycles. Screen a candidate that
        // crowds nothing (stays put) vs the anchor with one op moved to
        // the single-ALU side.
        let ops: Vec<OpId> = dfg.op_ids().collect();
        let crowded = vec![cl(0); 6];
        analyzer.anchor(&crowded);
        let (latency, _) = analyzer.screen(&[(ops[0], cl(0))]);
        assert!(latency >= 6, "5 adds on one ALU need 5+ cycles: {latency}");
    }

    #[test]
    fn empty_dfg_screens_to_zero() {
        let dfg = DfgBuilder::new().finish().expect("empty");
        let m = machine("[1,1|1,1]");
        let mut analyzer = DeltaBoundAnalyzer::new(&dfg, &m);
        analyzer.anchor(&[]);
        assert_eq!(analyzer.screen(&[]), (0, 0));
    }

    #[test]
    fn screen_is_deterministic() {
        let dfg = mixed();
        let m = machine("[1,1|1,1]");
        let of = vec![cl(0), cl(1), cl(0), cl(1), cl(0), cl(1)];
        let mk = || {
            let mut a = DeltaBoundAnalyzer::new(&dfg, &m);
            a.anchor(&of);
            let v = dfg.op_ids().nth(2).expect("op");
            (a.screen(&[(v, cl(1))]), a.certify(&[(v, cl(1))]))
        };
        assert_eq!(mk(), mk());
    }
}
