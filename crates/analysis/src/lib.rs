//! Certified lower bounds on binding quality, computed *before* any
//! binding runs.
//!
//! [`analyze`] takes a `(Dfg, Machine)` pair and derives a
//! [`BoundReport`]: a set of lower bounds on the schedule latency `L`
//! and the inter-cluster transfer count `N_MV` that hold for **every**
//! legal binding of the graph on the machine. Each bound carries a
//! machine-checkable [`LatencyCertificate`] / [`MoveCertificate`] — the
//! witness (dependence chain, op window, uncoverable component, …) from
//! which the bound follows by a short counting argument — so a
//! completely independent checker (`vliw_sched::verify`, which shares no
//! derivation code with this crate) can re-validate every claim.
//!
//! The bounds:
//!
//! * **Critical path** — `L ≥ Σ lat(v)` along a dependence chain
//!   (transfers only add latency on edges, so the move-free chain length
//!   is a lower bound for any binding).
//! * **Resource / interval (Rim–Jain style)** — for any set `W` of
//!   operations of one FU class `t` whose members all have
//!   `asap(v) ≥ h` and at least `τ` cycles of dependent work after
//!   their completion, every start lies in a window of
//!   `L − h − τ − lat_min + 1` cycles served by `N(t)` units at one
//!   start per `dii(t)` cycles, hence
//!   `L ≥ h + τ + lat_min + dii(t)·(⌈|W|/N(t)⌉ − 1)`.
//!   The whole-graph case `h = τ = 0` is the classic work bound
//!   `⌈|ops(t)|/N(t)⌉` (unit latency, pipelined).
//! * **Forced transfers** — `N_MV` is bounded below by (a) the number
//!   of producers with a consumer whose target set is disjoint from
//!   theirs (the two can never be co-clustered) and (b) the number of
//!   weakly-connected components whose op-class mix no single cluster
//!   supports (such a component spans ≥ 2 clusters, and connectivity
//!   forces a cut edge, i.e. a transfer, inside it). The two counts may
//!   share witnesses, so the report keeps both and
//!   [`BoundReport::moves_bound`] takes the max, never the sum.
//! * **Bus bandwidth** — `M` forced transfers must each start after
//!   their producer (`≥ 1` cycle) and finish before their consumer
//!   (`≥ 1` cycle), with at most `N_B` transfers starting per
//!   `dii(BUS)` cycles: `L ≥ 2 + lat(move) + dii(BUS)·(⌈M/N_B⌉ − 1)`.
//!
//! A pair where some op class has zero compatible FUs anywhere is
//! *structurally infeasible* — no target latency fixes it — and is
//! reported as an [`Infeasibility`] certificate instead of a bound
//! (`vliw_binding::BindError` integrates it as its `Unsupported` case).
//!
//! Everything here is a pure function of the inputs: no randomness, no
//! clocks, no hash-order dependence — the same pair always produces the
//! same report.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod delta;

pub use delta::{DeltaBound, DeltaBoundAnalyzer, DeltaCertificate};

use vliw_datapath::Machine;
use vliw_dfg::{connected_components, topo_order, Dfg, FuType, OpId};

/// The witness behind a latency lower bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LatencyCertificate {
    /// A dependence chain: consecutive elements are edges of the DFG, so
    /// any schedule runs them back-to-back at best and
    /// `L ≥ Σ lat(v)` over the chain.
    CriticalPath {
        /// The chain, in dependence order (producer first).
        path: Vec<OpId>,
    },
    /// An op-class window: every op in `ops` has FU class `class`,
    /// `asap(v) ≥ head`, and at least `tail` cycles of dependent work
    /// after its completion, so
    /// `L ≥ head + tail + lat_min + dii·(⌈|ops|/N⌉ − 1)`.
    /// `head = tail = 0` is the whole-graph resource bound.
    Interval {
        /// FU class of every witness operation.
        class: FuType,
        /// Lower bound on the ASAP level of every witness operation.
        head: u32,
        /// Lower bound on the dependent work after every witness
        /// operation completes.
        tail: u32,
        /// The witness operations, in id order.
        ops: Vec<OpId>,
    },
    /// A bus-saturation argument on top of a forced-transfer bound:
    /// the certified `moves.moves` transfers need
    /// `L ≥ 2 + lat(move) + dii(BUS)·(⌈M/N_B⌉ − 1)`.
    BusBandwidth {
        /// The forced-transfer bound the argument builds on.
        moves: MoveBound,
    },
}

impl LatencyCertificate {
    /// A short kebab-case name of the bound family, for reports.
    pub fn kind(&self) -> &'static str {
        match self {
            LatencyCertificate::CriticalPath { .. } => "critical-path",
            LatencyCertificate::Interval {
                head: 0, tail: 0, ..
            } => "resource",
            LatencyCertificate::Interval { .. } => "interval",
            LatencyCertificate::BusBandwidth { .. } => "bus-bandwidth",
        }
    }
}

/// A certified lower bound on the schedule latency `L`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyBound {
    /// No legal binding of the pair schedules in fewer cycles.
    pub cycles: u32,
    /// The witness justifying `cycles`.
    pub certificate: LatencyCertificate,
}

/// The witness behind a transfer-count lower bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MoveCertificate {
    /// Edges `(u, v)` whose endpoint target sets share no cluster: `u`
    /// and `v` can never be co-clustered, so each listed producer must
    /// source at least one transfer. Producers are pairwise distinct, so
    /// the transfers are distinct too.
    DisjointTargets {
        /// One witness edge per distinct producer, in producer id order.
        edges: Vec<(OpId, OpId)>,
    },
    /// Weakly-connected components whose op-class mix no single cluster
    /// supports. Each must span ≥ 2 clusters, and connectivity forces a
    /// cluster-crossing edge — a transfer — among its own operations;
    /// the components are vertex-disjoint, so the transfers are
    /// distinct.
    ComponentSplit {
        /// The uncoverable components, each as an op list in id order.
        components: Vec<Vec<OpId>>,
    },
}

impl MoveCertificate {
    /// A short kebab-case name of the bound family, for reports.
    pub fn kind(&self) -> &'static str {
        match self {
            MoveCertificate::DisjointTargets { .. } => "disjoint-targets",
            MoveCertificate::ComponentSplit { .. } => "component-split",
        }
    }
}

/// A certified lower bound on the transfer count `N_MV`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MoveBound {
    /// No legal binding of the pair inserts fewer transfers.
    pub moves: usize,
    /// The witness justifying `moves`.
    pub certificate: MoveCertificate,
}

/// A certificate that *no* binding of the pair exists, at any latency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Infeasibility {
    /// Operations of `class` exist but no cluster has an FU of that
    /// class, so their target set is empty machine-wide.
    NoCompatibleFu {
        /// The FU class with zero units anywhere.
        class: FuType,
        /// Every operation of that class, in id order.
        ops: Vec<OpId>,
    },
}

impl std::fmt::Display for Infeasibility {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Infeasibility::NoCompatibleFu { class, ops } => write!(
                f,
                "{} operation(s) of class {class} but no {class} unit on any cluster",
                ops.len()
            ),
        }
    }
}

/// The full analyzer output: every derived bound with its certificate,
/// plus an infeasibility certificate when the pair has no binding at
/// all.
///
/// Empty DFGs produce an empty report ([`BoundReport::latency_bound`]
/// `= 0`, [`BoundReport::moves_bound`] `= 0`): the empty schedule
/// trivially meets both.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BoundReport {
    /// All latency bounds, strongest-family-agnostic (take the max).
    pub latency: Vec<LatencyBound>,
    /// All transfer bounds (take the max — witnesses may overlap, so
    /// the counts must never be summed).
    pub moves: Vec<MoveBound>,
    /// A certificate that no binding exists, when one was found. The
    /// latency list still carries the bounds that remain meaningful
    /// (critical path, classes that do have units); the move bounds are
    /// suppressed since "forced transfer" arguments presuppose every op
    /// can be placed somewhere.
    pub infeasible: Option<Infeasibility>,
}

impl BoundReport {
    /// The strongest certified latency lower bound (0 for an empty DFG).
    pub fn latency_bound(&self) -> u32 {
        self.latency.iter().map(|b| b.cycles).max().unwrap_or(0)
    }

    /// The strongest certified transfer lower bound.
    pub fn moves_bound(&self) -> usize {
        self.moves.iter().map(|b| b.moves).max().unwrap_or(0)
    }

    /// The certified `(L, N_MV)` floor. No binding evaluates to a
    /// lexicographically smaller pair, because both components are
    /// simultaneous lower bounds: any result has `L ≥ lm.0`, and at
    /// `L = lm.0` it still has `N_MV ≥ lm.1`.
    pub fn lm_bound(&self) -> (u32, usize) {
        (self.latency_bound(), self.moves_bound())
    }

    /// The first latency bound achieving [`BoundReport::latency_bound`].
    pub fn dominating_latency(&self) -> Option<&LatencyBound> {
        let max = self.latency_bound();
        self.latency.iter().find(|b| b.cycles == max)
    }

    /// The first move bound achieving [`BoundReport::moves_bound`].
    pub fn dominating_moves(&self) -> Option<&MoveBound> {
        let max = self.moves_bound();
        self.moves.iter().find(|b| b.moves == max)
    }

    /// Whether some binding can exist at all (no structural
    /// infeasibility was certified).
    pub fn is_feasible(&self) -> bool {
        self.infeasible.is_none()
    }
}

/// Analyzes a `(Dfg, Machine)` pair into a [`BoundReport`].
///
/// Pure and total for any graph a [`vliw_dfg::DfgBuilder`] can produce
/// and any machine a [`vliw_datapath::MachineBuilder`] accepts
/// (including pairs the binder would reject — those come back with
/// [`BoundReport::infeasible`] set instead of an error).
pub fn analyze(dfg: &Dfg, machine: &Machine) -> BoundReport {
    let mut report = BoundReport::default();
    if dfg.is_empty() {
        return report;
    }
    let lat = machine.op_latencies(dfg);

    for class in FuType::REGULAR {
        let ops: Vec<OpId> = dfg
            .op_ids()
            .filter(|&v| dfg.op_type(v).fu_type() == class)
            .collect();
        if !ops.is_empty() && machine.fu_count_total(class) == 0 {
            report.infeasible = Some(Infeasibility::NoCompatibleFu { class, ops });
            break;
        }
    }

    report.latency.push(critical_path_bound(dfg, &lat));

    let asap = asap_levels(dfg, &lat);
    let tail = tail_after_levels(dfg, &lat);
    for class in FuType::REGULAR {
        report
            .latency
            .extend(interval_bounds(dfg, machine, &lat, &asap, &tail, class));
    }

    if report.infeasible.is_none() {
        if let Some(b) = disjoint_target_bound(dfg, machine) {
            report.moves.push(b);
        }
        if let Some(b) = component_split_bound(dfg, machine) {
            report.moves.push(b);
        }
        if let Some(dominating) = report.dominating_moves().cloned() {
            report.latency.push(bus_bound(machine, dominating));
        }
    }
    report
}

/// Earliest start levels under machine latencies and unlimited
/// resources. Transfers only delay edges further, so `asap(v)` lower
/// bounds the start of `v` in any binding's schedule.
fn asap_levels(dfg: &Dfg, lat: &[u32]) -> Vec<u32> {
    let order = topo_order(dfg).expect("DfgBuilder only produces acyclic graphs"); // lint:allow(no-panic)
    let mut asap = vec![0u32; dfg.len()];
    for &v in &order {
        asap[v.index()] = dfg
            .preds(v)
            .iter()
            .map(|&u| asap[u.index()] + lat[u.index()])
            .max()
            .unwrap_or(0);
    }
    asap
}

/// Longest dependent-work chain *after* each operation completes: any
/// schedule has `start(v) + lat(v) + tail_after(v) ≤ L`.
fn tail_after_levels(dfg: &Dfg, lat: &[u32]) -> Vec<u32> {
    let order = topo_order(dfg).expect("DfgBuilder only produces acyclic graphs"); // lint:allow(no-panic)
    let mut tail = vec![0u32; dfg.len()];
    for &v in order.iter().rev() {
        tail[v.index()] = dfg
            .succs(v)
            .iter()
            .map(|&s| lat[s.index()] + tail[s.index()])
            .max()
            .unwrap_or(0);
    }
    tail
}

/// The critical path as an explicit chain witness.
fn critical_path_bound(dfg: &Dfg, lat: &[u32]) -> LatencyBound {
    let order = topo_order(dfg).expect("DfgBuilder only produces acyclic graphs"); // lint:allow(no-panic)
    let mut finish = vec![0u32; dfg.len()];
    for &v in &order {
        let start = dfg
            .preds(v)
            .iter()
            .map(|&u| finish[u.index()])
            .max()
            .unwrap_or(0);
        finish[v.index()] = start + lat[v.index()];
    }
    let end = dfg
        .op_ids()
        .max_by_key(|v| (finish[v.index()], std::cmp::Reverse(v.index())))
        .expect("non-empty graph"); // lint:allow(no-panic)
    let mut path = vec![end];
    let mut cur = end;
    loop {
        let start = finish[cur.index()] - lat[cur.index()];
        let Some(&prev) = dfg.preds(cur).iter().find(|&&u| finish[u.index()] == start) else {
            break;
        };
        path.push(prev);
        cur = prev;
    }
    path.reverse();
    LatencyBound {
        cycles: finish[end.index()],
        certificate: LatencyCertificate::CriticalPath { path },
    }
}

/// The whole-graph resource bound for `class` plus, when strictly
/// stronger, the best `(head, tail)` window over the class.
fn interval_bounds(
    dfg: &Dfg,
    machine: &Machine,
    lat: &[u32],
    asap: &[u32],
    tail: &[u32],
    class: FuType,
) -> Vec<LatencyBound> {
    let ops: Vec<OpId> = dfg
        .op_ids()
        .filter(|&v| dfg.op_type(v).fu_type() == class)
        .collect();
    let n_fus = machine.fu_count_total(class);
    if ops.is_empty() || n_fus == 0 {
        return Vec::new();
    }
    let dii = machine.dii(class);
    let value = |h: u32, t: u32, w: &[OpId]| -> u32 {
        let lat_min = w.iter().map(|&v| lat[v.index()]).min().unwrap_or(0);
        let rounds = (w.len() as u32).div_ceil(n_fus);
        h + t + lat_min + dii * (rounds - 1)
    };
    let bound = |h: u32, t: u32, w: Vec<OpId>| -> LatencyBound {
        LatencyBound {
            cycles: value(h, t, &w),
            certificate: LatencyCertificate::Interval {
                class,
                head: h,
                tail: t,
                ops: w,
            },
        }
    };

    let global = bound(0, 0, ops.clone());
    let mut heads: Vec<u32> = ops.iter().map(|&v| asap[v.index()]).collect();
    heads.sort_unstable();
    heads.dedup();
    let mut tails: Vec<u32> = ops.iter().map(|&v| tail[v.index()]).collect();
    tails.sort_unstable();
    tails.dedup();
    let mut windowed: Option<(u32, u32, Vec<OpId>)> = None;
    let mut best = global.cycles;
    for &h in &heads {
        for &t in &tails {
            if h == 0 && t == 0 {
                continue;
            }
            let w: Vec<OpId> = ops
                .iter()
                .copied()
                .filter(|&v| asap[v.index()] >= h && tail[v.index()] >= t)
                .collect();
            if w.is_empty() {
                continue;
            }
            let cycles = value(h, t, &w);
            if cycles > best {
                best = cycles;
                windowed = Some((h, t, w));
            }
        }
    }
    let mut out = vec![global];
    if let Some((h, t, w)) = windowed {
        out.push(bound(h, t, w));
    }
    out
}

/// Producers whose consumers can never share their cluster.
fn disjoint_target_bound(dfg: &Dfg, machine: &Machine) -> Option<MoveBound> {
    let mut edges: Vec<(OpId, OpId)> = Vec::new();
    for (u, v) in dfg.edges() {
        if edges.last().is_some_and(|&(p, _)| p == u) {
            continue; // one forced transfer counted per producer
        }
        let (tu, tv) = (dfg.op_type(u), dfg.op_type(v));
        let coclusterable = machine
            .cluster_ids()
            .any(|c| machine.supports(c, tu) && machine.supports(c, tv));
        if !coclusterable {
            edges.push((u, v));
        }
    }
    (!edges.is_empty()).then_some(MoveBound {
        moves: edges.len(),
        certificate: MoveCertificate::DisjointTargets { edges },
    })
}

/// Weakly-connected components no single cluster can host entirely.
fn component_split_bound(dfg: &Dfg, machine: &Machine) -> Option<MoveBound> {
    let (comp_of, count) = connected_components(dfg);
    let mut members: Vec<Vec<OpId>> = vec![Vec::new(); count];
    for v in dfg.op_ids() {
        members[comp_of[v.index()]].push(v);
    }
    let components: Vec<Vec<OpId>> = members
        .into_iter()
        .filter(|ops| {
            !machine
                .cluster_ids()
                .any(|c| ops.iter().all(|&v| machine.supports(c, dfg.op_type(v))))
        })
        .collect();
    (!components.is_empty()).then_some(MoveBound {
        moves: components.len(),
        certificate: MoveCertificate::ComponentSplit { components },
    })
}

/// The bus-saturation latency bound implied by a forced-transfer bound.
fn bus_bound(machine: &Machine, moves: MoveBound) -> LatencyBound {
    let per_bus = (moves.moves as u32).div_ceil(machine.bus_count().max(1));
    LatencyBound {
        cycles: 2 + machine.move_latency() + machine.dii(FuType::Bus) * (per_bus - 1),
        certificate: LatencyCertificate::BusBandwidth { moves },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_dfg::{DfgBuilder, OpType};

    fn machine(desc: &str) -> Machine {
        Machine::parse(desc).expect("machine")
    }

    /// Two independent 4-chains of adds.
    fn two_chains() -> Dfg {
        let mut b = DfgBuilder::new();
        for _ in 0..2 {
            let mut prev = b.add_op(OpType::Add, &[]);
            for _ in 1..4 {
                prev = b.add_op(OpType::Add, &[prev]);
            }
        }
        b.finish().expect("acyclic")
    }

    #[test]
    fn empty_dfg_has_zero_bounds() {
        let dfg = DfgBuilder::new().finish().expect("empty");
        let report = analyze(&dfg, &machine("[1,1|1,1]"));
        assert_eq!(report.lm_bound(), (0, 0));
        assert!(report.is_feasible());
        assert!(report.latency.is_empty());
    }

    #[test]
    fn critical_path_dominates_deep_graphs() {
        let report = analyze(&two_chains(), &machine("[2,1|2,1]"));
        assert_eq!(report.latency_bound(), 4);
        let dom = report.dominating_latency().expect("bounds exist");
        assert_eq!(dom.certificate.kind(), "critical-path");
        let LatencyCertificate::CriticalPath { path } = &dom.certificate else {
            panic!("wrong certificate");
        };
        assert_eq!(path.len(), 4, "unit-latency chain of 4");
        for pair in path.windows(2) {
            assert!(two_chains().has_edge(pair[0], pair[1]));
        }
    }

    #[test]
    fn resource_bound_dominates_wide_graphs() {
        // 8 independent adds on one 1-ALU cluster: L ≥ 8 despite L_CP = 1.
        let mut b = DfgBuilder::new();
        for _ in 0..8 {
            b.add_op(OpType::Add, &[]);
        }
        let dfg = b.finish().expect("acyclic");
        let report = analyze(&dfg, &machine("[1,1]"));
        assert_eq!(report.latency_bound(), 8);
        assert_eq!(
            report
                .dominating_latency()
                .expect("bound")
                .certificate
                .kind(),
            "resource"
        );
    }

    #[test]
    fn interval_bound_beats_both_plain_bounds() {
        // A 3-add head chain feeding 4 independent muls that all feed a
        // 3-add tail chain, on one multiplier: the muls all have
        // asap ≥ 3 and 3 cycles of work after completion, so
        // L ≥ 3 + 3 + 1 + (4 − 1) = 10, while L_CP = 7 and the global
        // mul resource bound is 4.
        let mut b = DfgBuilder::new();
        let mut head = b.add_op(OpType::Add, &[]);
        for _ in 0..2 {
            head = b.add_op(OpType::Add, &[head]);
        }
        let muls: Vec<OpId> = (0..4).map(|_| b.add_op(OpType::Mul, &[head])).collect();
        let mut tail = b.add_op(OpType::Add, &muls);
        for _ in 0..2 {
            tail = b.add_op(OpType::Add, &[tail]);
        }
        let dfg = b.finish().expect("acyclic");
        let report = analyze(&dfg, &machine("[4,1]"));
        assert_eq!(report.latency_bound(), 10);
        let dom = report.dominating_latency().expect("bound");
        assert_eq!(dom.certificate.kind(), "interval");
        let LatencyCertificate::Interval {
            class,
            head,
            tail,
            ops,
        } = &dom.certificate
        else {
            panic!("wrong certificate");
        };
        assert_eq!(*class, FuType::Mul);
        assert_eq!((*head, *tail), (3, 3));
        assert_eq!(ops.len(), 4);
    }

    #[test]
    fn disjoint_targets_force_moves() {
        // Muls only on cluster 1, adds only on cluster 0: every
        // mul→add edge forces a transfer.
        let mut b = DfgBuilder::new();
        let m0 = b.add_op(OpType::Mul, &[]);
        let m1 = b.add_op(OpType::Mul, &[]);
        let _ = b.add_op(OpType::Add, &[m0, m1]);
        let dfg = b.finish().expect("acyclic");
        let report = analyze(&dfg, &machine("[1,0|0,1]"));
        assert_eq!(report.moves_bound(), 2);
        let dom = report.dominating_moves().expect("bound");
        assert_eq!(dom.certificate.kind(), "disjoint-targets");
        // The forced transfers also imply a latency floor via the bus.
        assert!(report
            .latency
            .iter()
            .any(|b| b.certificate.kind() == "bus-bandwidth"));
    }

    #[test]
    fn uncoverable_component_forces_a_split() {
        // One connected mul+add component on an alu-only + mul-only
        // machine: no single cluster hosts it.
        let mut b = DfgBuilder::new();
        let m = b.add_op(OpType::Mul, &[]);
        let a = b.add_op(OpType::Add, &[m]);
        let _ = b.add_op(OpType::Sub, &[a]);
        let dfg = b.finish().expect("acyclic");
        let report = analyze(&dfg, &machine("[2,0|0,2]"));
        assert!(report
            .moves
            .iter()
            .any(|b| b.certificate.kind() == "component-split" && b.moves == 1));
        assert!(report.moves_bound() >= 1);
    }

    #[test]
    fn coverable_components_force_nothing() {
        let report = analyze(&two_chains(), &machine("[1,1|1,1]"));
        assert_eq!(report.moves_bound(), 0);
        assert!(report.moves.is_empty());
    }

    #[test]
    fn bus_bound_counts_rounds() {
        // 6 forced transfers over 2 buses, unit move latency, dii 1:
        // L ≥ 2 + 1 + (⌈6/2⌉ − 1) = 5.
        let mut b = DfgBuilder::new();
        for _ in 0..6 {
            let m = b.add_op(OpType::Mul, &[]);
            let _ = b.add_op(OpType::Add, &[m]);
        }
        let dfg = b.finish().expect("acyclic");
        let report = analyze(&dfg, &machine("[3,0|0,3]"));
        assert_eq!(report.moves_bound(), 6);
        let bus = report
            .latency
            .iter()
            .find(|b| b.certificate.kind() == "bus-bandwidth")
            .expect("bus bound");
        assert_eq!(bus.cycles, 5);
    }

    #[test]
    fn missing_fu_class_is_infeasible() {
        let mut b = DfgBuilder::new();
        let _ = b.add_op(OpType::Mul, &[]);
        let dfg = b.finish().expect("acyclic");
        let report = analyze(&dfg, &machine("[2,0]"));
        assert!(!report.is_feasible());
        let Some(Infeasibility::NoCompatibleFu { class, ops }) = &report.infeasible else {
            panic!("expected infeasibility");
        };
        assert_eq!(*class, FuType::Mul);
        assert_eq!(ops.len(), 1);
        assert!(report
            .infeasible
            .as_ref()
            .unwrap()
            .to_string()
            .contains("MUL"));
        // The still-meaningful bounds survive.
        assert_eq!(report.latency_bound(), 1);
        assert!(report.moves.is_empty(), "move bounds are suppressed");
    }

    #[test]
    fn report_is_deterministic() {
        let dfg = two_chains();
        let m = machine("[1,1|1,1]");
        assert_eq!(analyze(&dfg, &m), analyze(&dfg, &m));
    }
}
