//! Property-based tests: on random layered DAGs with random bindings, the
//! list scheduler must always produce a valid schedule, never beat the
//! critical path, and never exceed the fully-serial bound.

use proptest::prelude::*;
use vliw_datapath::{ClusterId, Machine};
use vliw_dfg::{critical_path_len, Dfg, DfgBuilder, OpType};
use vliw_sched::{Binding, BoundDfg, ListScheduler};

/// Strategy: a random DAG of `n` ops where each op draws 0-2 operands from
/// earlier ops, with a random ALU/MUL mix.
fn arb_dfg(max_ops: usize) -> impl Strategy<Value = Dfg> {
    (1..=max_ops).prop_flat_map(|n| {
        let op_kinds = prop::collection::vec(0..2u8, n);
        let operand_picks =
            prop::collection::vec((0usize..usize::MAX, 0usize..usize::MAX, 0..3u8), n);
        (op_kinds, operand_picks).prop_map(|(kinds, picks)| {
            let mut b = DfgBuilder::new();
            let mut ids = Vec::new();
            for (i, (&kind, &(p1, p2, arity))) in kinds.iter().zip(&picks).enumerate() {
                let ty = if kind == 0 { OpType::Add } else { OpType::Mul };
                let mut operands = Vec::new();
                if i > 0 {
                    if arity >= 1 {
                        operands.push(ids[p1 % i]);
                    }
                    if arity >= 2 {
                        let second = ids[p2 % i];
                        if !operands.contains(&second) {
                            operands.push(second);
                        }
                    }
                }
                ids.push(b.add_op(ty, &operands));
            }
            b.finish().expect("acyclic by construction")
        })
    })
}

fn arb_machine() -> impl Strategy<Value = Machine> {
    let configs = prop::sample::select(vec![
        "[1,1]",
        "[2,1]",
        "[1,1|1,1]",
        "[2,1|1,1]",
        "[2,1|2,1]",
        "[1,1|1,1|1,1]",
        "[3,1|2,2|1,3]",
        "[2,2|2,1|2,2|3,1|1,1]",
    ]);
    (configs, 1..=2u32, 1..=2u32).prop_map(|(cfg, buses, move_lat)| {
        Machine::parse(cfg)
            .expect("config is valid")
            .with_bus_count(buses)
            .with_move_latency(move_lat)
    })
}

fn random_binding(dfg: &Dfg, machine: &Machine, seeds: &[usize]) -> Binding {
    let mut bn = Binding::unbound(dfg);
    for v in dfg.op_ids() {
        let ts = machine.target_set(dfg.op_type(v));
        bn.bind(v, ts[seeds[v.index()] % ts.len()]);
    }
    bn
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn scheduler_output_is_always_valid(
        dfg in arb_dfg(40),
        machine in arb_machine(),
        seeds in prop::collection::vec(0usize..1024, 40),
    ) {
        let bn = random_binding(&dfg, &machine, &seeds);
        prop_assert!(bn.validate(&dfg, &machine).is_ok());
        let bound = BoundDfg::new(&dfg, &machine, &bn);
        let schedule = ListScheduler::new(&machine).schedule(&bound);
        prop_assert_eq!(schedule.validate(&bound, &machine), Ok(()));
    }

    #[test]
    fn latency_bounded_by_cp_and_serialization(
        dfg in arb_dfg(40),
        machine in arb_machine(),
        seeds in prop::collection::vec(0usize..1024, 40),
    ) {
        let bn = random_binding(&dfg, &machine, &seeds);
        let bound = BoundDfg::new(&dfg, &machine, &bn);
        let schedule = ListScheduler::new(&machine).schedule(&bound);
        // Lower bound: critical path of the *bound* graph.
        let lat = bound.latencies(&machine);
        let cp = critical_path_len(bound.dfg(), &lat);
        prop_assert!(schedule.latency() >= cp);
        // Upper bound: complete serialization of every operation.
        let serial: u32 = lat.iter().sum();
        prop_assert!(schedule.latency() <= serial.max(cp));
    }

    #[test]
    fn single_cluster_binding_inserts_no_moves(
        dfg in arb_dfg(30),
    ) {
        let machine = Machine::parse("[4,4]").expect("machine");
        let c0 = ClusterId::from_index(0);
        let bn = Binding::new(&dfg, &machine, vec![c0; dfg.len()]).expect("valid");
        let bound = BoundDfg::new(&dfg, &machine, &bn);
        prop_assert_eq!(bound.move_count(), 0);
        prop_assert_eq!(bound.dfg().len(), dfg.len());
    }

    #[test]
    fn move_count_bounded_by_cut_edges(
        dfg in arb_dfg(40),
        machine in arb_machine(),
        seeds in prop::collection::vec(0usize..1024, 40),
    ) {
        let bn = random_binding(&dfg, &machine, &seeds);
        let bound = BoundDfg::new(&dfg, &machine, &bn);
        // Dedup can only reduce the number of transfers relative to the
        // number of cluster-crossing edges.
        prop_assert!(bound.move_count() <= bn.cut_edges(&dfg));
    }

    #[test]
    fn completion_profile_sums_to_regular_ops(
        dfg in arb_dfg(40),
        machine in arb_machine(),
        seeds in prop::collection::vec(0usize..1024, 40),
    ) {
        let bn = random_binding(&dfg, &machine, &seeds);
        let bound = BoundDfg::new(&dfg, &machine, &bn);
        let schedule = ListScheduler::new(&machine).schedule(&bound);
        let profile = schedule.completion_profile(&bound);
        prop_assert_eq!(profile.iter().sum::<usize>(), dfg.len());
        prop_assert_eq!(profile.len() as u32, schedule.latency());
    }
}
