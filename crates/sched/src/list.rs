//! The resource-constrained list scheduler.
//!
//! The paper evaluates candidate bindings by list-scheduling the bound
//! DFG ("we use a list scheduling algorithm for quality estimation",
//! Section 3.2): operations "can only be delayed by either resource
//! constraints or inserted data transfers", so the resulting latency
//! directly measures binding quality.

use crate::bound::BoundDfg;
use crate::schedule::Schedule;
use vliw_datapath::Machine;
use vliw_dfg::{FuType, OpId, Timing};

/// Reusable scratch workspace for [`ListScheduler::schedule_with`].
///
/// A schedule run needs several working vectors (FU instance pools, the
/// in-degree table, per-op earliest-ready cycles, the ready list). In
/// the binder's inner loop these are rebuilt thousands of times for
/// graphs of identical shape, so the arena keeps them between calls:
/// when the shape matches the previous run everything is reset in place
/// and steady-state scheduling performs no heap allocation for them.
///
/// An arena never influences results — [`ListScheduler::schedule`] and
/// [`ListScheduler::schedule_with`] are bit-identical for any arena
/// state, fresh or reused.
#[derive(Debug, Default)]
pub struct SchedArena {
    /// Per-cluster `[Alu, Mul]` free-at tables.
    pools: Vec<[Vec<u32>; 2]>,
    /// Bus-lane free-at table.
    bus_pool: Vec<u32>,
    /// Remaining unscheduled predecessors per op.
    indeg: Vec<usize>,
    /// Earliest data-ready cycle per op.
    earliest: Vec<u32>,
    /// Ready list, kept sorted by priority descending.
    ready: Vec<OpId>,
    /// How many times the arena was reset in place (shape matched, no
    /// reallocation) — observability for the no-alloc steady state.
    reuses: u64,
    /// Bound-graph construction pool: recycled graph storage, flat
    /// lookup tables and move-name cache (see [`crate::BoundScratch`]).
    bound: crate::BoundScratch,
}

impl SchedArena {
    /// Creates an empty arena; the first schedule run sizes it.
    pub fn new() -> Self {
        SchedArena::default()
    }

    /// Number of times the arena was reset in place without
    /// reallocating (i.e. scheduling runs beyond the first for each
    /// distinct problem shape).
    pub fn reuses(&self) -> u64 {
        self.reuses
    }

    /// The arena's bound-graph construction pool, for pairing
    /// [`crate::BoundDfg::new_in`] / [`crate::BoundDfg::dismantle_into`]
    /// with the scheduling scratch of the same evaluation loop.
    pub fn bound_scratch(&mut self) -> &mut crate::BoundScratch {
        &mut self.bound
    }

    /// Resets the workspace for a run over `n` ops on `machine`,
    /// reusing every buffer whose shape or capacity already suffices.
    /// Candidate bound DFGs of one binder run share the machine but
    /// differ slightly in length (their move counts vary), so the
    /// per-op vectors are matched by capacity, not exact length.
    fn prepare(&mut self, machine: &Machine, n: usize) {
        let pools_match = self.pools.len() == machine.cluster_count()
            && machine.cluster_ids().zip(self.pools.iter()).all(|(c, p)| {
                p[0].len() == machine.fu_count(c, FuType::Alu) as usize
                    && p[1].len() == machine.fu_count(c, FuType::Mul) as usize
            })
            && self.bus_pool.len() == machine.bus_count() as usize;
        let in_place = pools_match
            && self.indeg.capacity() >= n
            && self.earliest.capacity() >= n
            && self.ready.capacity() >= n;
        if pools_match {
            for pool in &mut self.pools {
                pool[0].fill(0);
                pool[1].fill(0);
            }
            self.bus_pool.fill(0);
        } else {
            self.pools = machine
                .cluster_ids()
                .map(|c| {
                    [
                        vec![0u32; machine.fu_count(c, FuType::Alu) as usize],
                        vec![0u32; machine.fu_count(c, FuType::Mul) as usize],
                    ]
                })
                .collect();
            self.bus_pool = vec![0u32; machine.bus_count() as usize];
        }
        self.indeg.clear();
        self.indeg.resize(n, 0);
        self.earliest.clear();
        self.earliest.resize(n, 0);
        self.ready.clear();
        self.ready.reserve(n);
        if in_place {
            self.reuses += 1;
        }
    }
}

/// Cycle-based list scheduler for bound DFGs on a clustered machine.
///
/// Priority: smallest ALAP first (most critical), ties broken by smaller
/// mobility, then by operation id — the same lexicographic flavor as the
/// paper's binding order (Section 3.1.1), which keeps evaluation
/// deterministic.
///
/// Resource model: each functional unit (and each bus lane) is an
/// instance that can accept a new operation every `dii` cycles
/// (paper Section 2); an operation bound to cluster `c` may only use
/// instances of `c`, moves only bus lanes.
///
/// # Example
///
/// ```
/// use vliw_datapath::Machine;
/// use vliw_dfg::{DfgBuilder, OpType};
/// use vliw_sched::{Binding, BoundDfg, ListScheduler};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Three independent adds on a single-ALU cluster serialize fully.
/// let mut b = DfgBuilder::new();
/// for _ in 0..3 {
///     b.add_op(OpType::Add, &[]);
/// }
/// let dfg = b.finish()?;
/// let machine = Machine::parse("[1,1]")?;
/// let c0 = machine.cluster_ids().next().unwrap();
/// let bn = Binding::new(&dfg, &machine, vec![c0; 3])?;
/// let bound = BoundDfg::new(&dfg, &machine, &bn);
/// let schedule = ListScheduler::new(&machine).schedule(&bound);
/// assert_eq!(schedule.latency(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ListScheduler<'m> {
    machine: &'m Machine,
    priority: SchedulePriority,
}

/// Which urgency measure orders the ready list (ablation knob; the
/// default reproduces the paper-aligned behavior and is what every
/// binder in the workspace uses).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SchedulePriority {
    /// Smallest ALAP first, ties by mobility — level-oriented, matching
    /// the flavor of the paper's binding order (default).
    #[default]
    AlapMobility,
    /// Largest height (longest dependent chain below) first — the
    /// classic critical-path priority. At the critical-path target,
    /// height = `L_CP − alap`, so this coincides with ALAP ordering but
    /// drops the mobility tiebreak.
    Height,
    /// Smallest mobility first — pure slack ordering.
    Mobility,
}

impl<'m> ListScheduler<'m> {
    /// Creates a scheduler for `machine` with the default priority.
    pub fn new(machine: &'m Machine) -> Self {
        ListScheduler {
            machine,
            priority: SchedulePriority::default(),
        }
    }

    /// Creates a scheduler with an explicit ready-list priority.
    pub fn with_priority(machine: &'m Machine, priority: SchedulePriority) -> Self {
        ListScheduler { machine, priority }
    }

    /// Schedules a bound DFG, returning the start-time table.
    ///
    /// The produced schedule always satisfies [`Schedule::validate`]; the
    /// property-based tests assert this on random graphs and bindings.
    pub fn schedule(&self, bound: &BoundDfg) -> Schedule {
        self.schedule_with(bound, &mut SchedArena::new())
    }

    /// [`ListScheduler::schedule`] with caller-owned scratch space.
    ///
    /// Repeated calls with the same problem shape reuse the arena's
    /// working vectors instead of reallocating them; the result is
    /// bit-identical to [`ListScheduler::schedule`] regardless of what
    /// the arena previously scheduled.
    pub fn schedule_with(&self, bound: &BoundDfg, arena: &mut SchedArena) -> Schedule {
        let dfg = bound.dfg();
        let n = dfg.len();
        let lat = bound.latencies(self.machine);
        if n == 0 {
            return Schedule::from_starts(Vec::new(), &lat);
        }
        let timing = Timing::with_critical_path(dfg, &lat);

        // Priority key — lower is more urgent.
        let key = |v: OpId| -> (u32, u32, OpId) {
            match self.priority {
                SchedulePriority::AlapMobility => (timing.alap(v), timing.mobility(v), v),
                // height = L_CP − alap: ascending ALAP is descending
                // height; no secondary component.
                SchedulePriority::Height => (timing.alap(v), 0, v),
                SchedulePriority::Mobility => (timing.mobility(v), timing.alap(v), v),
            }
        };

        // FU instance pools: next cycle each instance can accept an op.
        let machine = self.machine;
        arena.prepare(machine, n);
        let SchedArena {
            pools,
            bus_pool,
            indeg,
            earliest,
            ready,
            ..
        } = arena;
        debug_assert_eq!(pools.len(), machine.cluster_count());

        for v in dfg.op_ids() {
            indeg[v.index()] = dfg.in_degree(v);
        }
        ready.extend(dfg.op_ids().filter(|v| indeg[v.index()] == 0));
        // Keep `ready` sorted by priority *descending* so pop() yields the
        // most urgent op and removals at the tail are cheap.
        ready.sort_unstable_by_key(|&v| std::cmp::Reverse(key(v)));

        // The start table is handed to the schedule, so it cannot live
        // in the arena.
        let mut start = vec![0u32; n];
        let mut scheduled = 0usize;
        let mut tau = 0u32;
        while scheduled < n {
            // Try every ready op at cycle tau in priority order.
            let mut i = ready.len();
            while i > 0 {
                i -= 1;
                let v = ready[i];
                if earliest[v.index()] > tau {
                    continue;
                }
                let t = dfg.op_type(v).fu_type();
                let pool: &mut Vec<u32> = match t {
                    FuType::Bus => &mut *bus_pool,
                    _ => &mut pools[bound.cluster_of(v).index()][t.index()],
                };
                let Some(slot) = pool.iter_mut().find(|free_at| **free_at <= tau) else {
                    continue;
                };
                *slot = tau + machine.dii(t);
                start[v.index()] = tau;
                scheduled += 1;
                ready.remove(i);
                let fin = tau + lat[v.index()];
                for &s in dfg.succs(v) {
                    earliest[s.index()] = earliest[s.index()].max(fin);
                    indeg[s.index()] -= 1;
                    if indeg[s.index()] == 0 {
                        let pos = ready.partition_point(|&r| {
                            std::cmp::Reverse(key(r)) < std::cmp::Reverse(key(s))
                        });
                        ready.insert(pos, s);
                        // Successors inserted below the cursor would be
                        // visited this same cycle; that is fine (they can
                        // never be data-ready at `tau` since fin > tau),
                        // but keep the cursor consistent anyway.
                        if pos <= i {
                            i += 1;
                        }
                    }
                }
            }
            tau += 1;
        }
        Schedule::from_starts(start, &lat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binding::Binding;
    use vliw_datapath::ClusterId;
    use vliw_dfg::{DfgBuilder, OpType};

    fn cl(i: usize) -> ClusterId {
        ClusterId::from_index(i)
    }

    fn schedule_all_on(
        dfg: &vliw_dfg::Dfg,
        machine: &Machine,
        of: Vec<ClusterId>,
    ) -> (BoundDfg, Schedule) {
        let bn = Binding::new(dfg, machine, of).expect("valid binding");
        let bound = BoundDfg::new(dfg, machine, &bn);
        let s = ListScheduler::new(machine).schedule(&bound);
        s.validate(&bound, machine)
            .expect("scheduler output is valid");
        (bound, s)
    }

    #[test]
    fn unconstrained_chain_matches_critical_path() {
        let mut b = DfgBuilder::new();
        let mut prev = b.add_op(OpType::Add, &[]);
        for _ in 0..4 {
            prev = b.add_op(OpType::Add, &[prev]);
        }
        let dfg = b.finish().expect("acyclic");
        let machine = Machine::parse("[2,1]").expect("machine");
        let (_, s) = schedule_all_on(&dfg, &machine, vec![cl(0); 5]);
        assert_eq!(s.latency(), 5);
    }

    #[test]
    fn serialization_on_narrow_cluster() {
        // 6 independent adds, 2 ALUs -> 3 cycles.
        let mut b = DfgBuilder::new();
        for _ in 0..6 {
            b.add_op(OpType::Add, &[]);
        }
        let dfg = b.finish().expect("acyclic");
        let machine = Machine::parse("[2,1]").expect("machine");
        let (_, s) = schedule_all_on(&dfg, &machine, vec![cl(0); 6]);
        assert_eq!(s.latency(), 3);
    }

    #[test]
    fn transfer_lengthens_cross_cluster_chain() {
        let mut b = DfgBuilder::new();
        let a = b.add_op(OpType::Add, &[]);
        let _ = b.add_op(OpType::Add, &[a]);
        let dfg = b.finish().expect("acyclic");
        let machine = Machine::parse("[1,1|1,1]").expect("machine");
        let (bound_same, s_same) = schedule_all_on(&dfg, &machine, vec![cl(0), cl(0)]);
        assert_eq!(bound_same.move_count(), 0);
        assert_eq!(s_same.latency(), 2);
        let (bound_x, s_x) = schedule_all_on(&dfg, &machine, vec![cl(0), cl(1)]);
        assert_eq!(bound_x.move_count(), 1);
        assert_eq!(s_x.latency(), 3); // add ; move ; add
    }

    #[test]
    fn bus_width_limits_parallel_transfers() {
        // Four values crossing clusters simultaneously on a 1-bus machine.
        let mut b = DfgBuilder::new();
        let mut producers = Vec::new();
        for _ in 0..4 {
            producers.push(b.add_op(OpType::Add, &[]));
        }
        for &p in &producers {
            b.add_op(OpType::Add, &[p]);
        }
        let dfg = b.finish().expect("acyclic");
        let machine = Machine::parse("[4,1|4,1]")
            .expect("machine")
            .with_bus_count(1);
        let mut of = vec![cl(0); 4];
        of.extend(vec![cl(1); 4]);
        let (bound, s) = schedule_all_on(&dfg, &machine, of);
        assert_eq!(bound.move_count(), 4);
        // producers@0, transfers serialized over cycles 1..=4, consumers
        // one cycle after their transfer -> latency 6.
        assert_eq!(s.latency(), 6);
        let machine2 = Machine::parse("[4,1|4,1]").expect("machine"); // N_B = 2
        let mut of2 = vec![cl(0); 4];
        of2.extend(vec![cl(1); 4]);
        let bn2 = Binding::new(&dfg, &machine2, of2).expect("valid binding");
        let bound2 = BoundDfg::new(&dfg, &machine2, &bn2);
        let s2 = ListScheduler::new(&machine2).schedule(&bound2);
        assert_eq!(s2.latency(), 4);
    }

    #[test]
    fn critical_ops_take_precedence_over_mobile_ones() {
        // One ALU; a 3-op chain plus one independent add. The chain must
        // not be delayed by the filler op.
        let mut b = DfgBuilder::new();
        let c1 = b.add_op(OpType::Add, &[]);
        let c2 = b.add_op(OpType::Add, &[c1]);
        let _c3 = b.add_op(OpType::Add, &[c2]);
        let _free = b.add_op(OpType::Add, &[]);
        let dfg = b.finish().expect("acyclic");
        let machine = Machine::parse("[1,1]").expect("machine");
        let (_, s) = schedule_all_on(&dfg, &machine, vec![cl(0); 4]);
        // chain occupies cycles 0,1,2; filler slots into any cycle 1..3
        // ... but with one ALU it must take cycle 3? No: cycles 0-2 are
        // taken by the chain ops, so filler lands at 3 -> latency 4.
        assert_eq!(s.latency(), 4);
        assert_eq!(s.start(c1), 0);
        assert_eq!(s.start(c2), 1);
    }

    #[test]
    fn move_latency_two_extends_schedule() {
        let mut b = DfgBuilder::new();
        let a = b.add_op(OpType::Add, &[]);
        let _ = b.add_op(OpType::Add, &[a]);
        let dfg = b.finish().expect("acyclic");
        let machine = Machine::parse("[1,1|1,1]")
            .expect("machine")
            .with_move_latency(2);
        let (_, s) = schedule_all_on(&dfg, &machine, vec![cl(0), cl(1)]);
        assert_eq!(s.latency(), 4); // add ; move(2) ; add
    }

    #[test]
    fn non_pipelined_multiplier_serializes_by_dii() {
        use vliw_datapath::{Cluster, MachineBuilder};
        let mut b = DfgBuilder::new();
        for _ in 0..3 {
            b.add_op(OpType::Mul, &[]);
        }
        let dfg = b.finish().expect("acyclic");
        let machine = MachineBuilder::new()
            .cluster(Cluster::new(1, 1))
            .op_latency(OpType::Mul, 2)
            .fu_dii(FuType::Mul, 2)
            .build()
            .expect("machine");
        let (_, s) = schedule_all_on(&dfg, &machine, vec![cl(0); 3]);
        // Starts at 0, 2, 4; finishes at 6.
        assert_eq!(s.latency(), 6);
    }

    #[test]
    fn pipelined_multicycle_multiplier_overlaps() {
        use vliw_datapath::{Cluster, MachineBuilder};
        let mut b = DfgBuilder::new();
        for _ in 0..3 {
            b.add_op(OpType::Mul, &[]);
        }
        let dfg = b.finish().expect("acyclic");
        let machine = MachineBuilder::new()
            .cluster(Cluster::new(1, 1))
            .op_latency(OpType::Mul, 2) // dii stays 1: fully pipelined
            .build()
            .expect("machine");
        let (_, s) = schedule_all_on(&dfg, &machine, vec![cl(0); 3]);
        // Starts 0,1,2; last finishes at 4.
        assert_eq!(s.latency(), 4);
    }

    #[test]
    fn empty_graph_schedules_to_zero() {
        let dfg = DfgBuilder::new().finish().expect("empty");
        let machine = Machine::parse("[1,1]").expect("machine");
        let bn = Binding::new(&dfg, &machine, vec![]).expect("valid binding");
        let bound = BoundDfg::new(&dfg, &machine, &bn);
        let s = ListScheduler::new(&machine).schedule(&bound);
        assert_eq!(s.latency(), 0);
        assert!(s.is_empty());
    }

    #[test]
    fn arena_reuse_is_bit_identical_and_allocation_free() {
        // A diamond with a cross-cluster edge, scheduled repeatedly under
        // different bindings of the same shape: after the first run the
        // arena must be reset in place (counted by `reuses`) with every
        // buffer keeping its allocation, and each run must match the
        // arena-free scheduler exactly.
        let mut b = DfgBuilder::new();
        let a = b.add_op(OpType::Add, &[]);
        let m = b.add_op(OpType::Mul, &[a]);
        let c = b.add_op(OpType::Add, &[a]);
        let _ = b.add_op(OpType::Add, &[m, c]);
        let dfg = b.finish().expect("acyclic");
        let machine = Machine::parse("[1,1|1,1]").expect("machine");
        let scheduler = ListScheduler::new(&machine);
        let mut arena = SchedArena::new();
        let bindings = [
            vec![cl(0), cl(0), cl(0), cl(0)],
            vec![cl(0), cl(1), cl(0), cl(0)],
            vec![cl(0), cl(1), cl(1), cl(1)],
            vec![cl(1), cl(1), cl(0), cl(0)],
        ];
        // First pass warms the arena up to the largest candidate (the
        // bound DFG lengths differ because the move counts differ); the
        // second pass is the steady state the binder's inner loop lives
        // in: every round resets in place and no buffer reallocates.
        let mut buffer_ptrs = None;
        for pass in 0..2 {
            let reuses_before = arena.reuses();
            for (round, of) in bindings.iter().enumerate() {
                let bn = Binding::new(&dfg, &machine, of.clone()).expect("valid binding");
                let bound = BoundDfg::new(&dfg, &machine, &bn);
                let fresh = scheduler.schedule(&bound);
                let reused = scheduler.schedule_with(&bound, &mut arena);
                assert_eq!(fresh, reused, "pass {pass} round {round}");
                if pass == 1 {
                    assert_eq!(
                        arena.reuses(),
                        reuses_before + round as u64 + 1,
                        "pass 1 round {round} was not an in-place reset"
                    );
                    let ptrs = (
                        arena.pools.as_ptr(),
                        arena.bus_pool.as_ptr(),
                        arena.indeg.as_ptr(),
                        arena.earliest.as_ptr(),
                        arena.ready.as_ptr(),
                    );
                    match buffer_ptrs {
                        None => buffer_ptrs = Some(ptrs),
                        Some(first) => {
                            assert_eq!(first, ptrs, "pass 1 round {round} reallocated");
                        }
                    }
                    // The ready list stayed within its pre-reservation.
                    assert!(arena.ready.capacity() >= bound.dfg().len());
                }
            }
        }
    }

    #[test]
    fn arena_rebuilds_on_shape_change() {
        let mut b = DfgBuilder::new();
        b.add_op(OpType::Add, &[]);
        let small = b.finish().expect("acyclic");
        let mut b = DfgBuilder::new();
        for _ in 0..5 {
            b.add_op(OpType::Add, &[]);
        }
        let big = b.finish().expect("acyclic");
        let machine = Machine::parse("[2,1]").expect("machine");
        let scheduler = ListScheduler::new(&machine);
        let mut arena = SchedArena::new();
        for dfg in [&small, &big, &small] {
            let n = dfg.len();
            let bn = Binding::new(dfg, &machine, vec![cl(0); n]).expect("valid binding");
            let bound = BoundDfg::new(dfg, &machine, &bn);
            let fresh = scheduler.schedule(&bound);
            let reused = scheduler.schedule_with(&bound, &mut arena);
            assert_eq!(fresh, reused);
        }
        // Cold start and growing past capacity both reallocate; only the
        // final shrink back to the small graph is an in-place reset.
        assert_eq!(arena.reuses(), 1);
    }

    #[test]
    fn heterogeneous_machine_respects_mul_placement() {
        // Cluster 0 has no multiplier: muls bound to cluster 1 only.
        let mut b = DfgBuilder::new();
        let m1 = b.add_op(OpType::Mul, &[]);
        let m2 = b.add_op(OpType::Mul, &[]);
        let _ = b.add_op(OpType::Add, &[m1, m2]);
        let dfg = b.finish().expect("acyclic");
        let machine = Machine::parse("[2,0|1,2]").expect("machine");
        let (_, s) = schedule_all_on(&dfg, &machine, vec![cl(1), cl(1), cl(1)]);
        assert_eq!(s.latency(), 2);
    }
}

#[cfg(test)]
mod priority_tests {
    use super::*;
    use crate::binding::Binding;
    use vliw_datapath::ClusterId;
    use vliw_dfg::{DfgBuilder, OpType};

    /// Every priority variant must produce a valid schedule; on a graph
    /// with a critical chain plus filler, none may delay the chain.
    #[test]
    fn all_priorities_produce_valid_schedules() {
        let mut b = DfgBuilder::new();
        let c1 = b.add_op(OpType::Add, &[]);
        let c2 = b.add_op(OpType::Mul, &[c1]);
        let _c3 = b.add_op(OpType::Add, &[c2]);
        let _f1 = b.add_op(OpType::Add, &[]);
        let _f2 = b.add_op(OpType::Add, &[]);
        let dfg = b.finish().expect("acyclic");
        let machine = Machine::parse("[1,1]").expect("machine");
        let bn = Binding::new(&dfg, &machine, vec![ClusterId::from_index(0); 5]).expect("ok");
        let bound = BoundDfg::new(&dfg, &machine, &bn);
        for priority in [
            SchedulePriority::AlapMobility,
            SchedulePriority::Height,
            SchedulePriority::Mobility,
        ] {
            let s = ListScheduler::with_priority(&machine, priority).schedule(&bound);
            s.validate(&bound, &machine)
                .unwrap_or_else(|e| panic!("{priority:?}: {e}"));
            // Chain (add, mul, add) + two filler adds on one ALU: the
            // four ALU ops need 4 cycles; a priority that delays the
            // chain pays one more.
            assert!(
                (4..=5).contains(&s.latency()),
                "{priority:?}: {}",
                s.latency()
            );
        }
    }

    #[test]
    fn default_priority_is_alap_mobility() {
        assert_eq!(SchedulePriority::default(), SchedulePriority::AlapMobility);
    }
}
