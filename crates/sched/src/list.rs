//! The resource-constrained list scheduler.
//!
//! The paper evaluates candidate bindings by list-scheduling the bound
//! DFG ("we use a list scheduling algorithm for quality estimation",
//! Section 3.2): operations "can only be delayed by either resource
//! constraints or inserted data transfers", so the resulting latency
//! directly measures binding quality.

use crate::bound::BoundDfg;
use crate::schedule::Schedule;
use vliw_datapath::Machine;
use vliw_dfg::{FuType, OpId, Timing};

/// Cycle-based list scheduler for bound DFGs on a clustered machine.
///
/// Priority: smallest ALAP first (most critical), ties broken by smaller
/// mobility, then by operation id — the same lexicographic flavor as the
/// paper's binding order (Section 3.1.1), which keeps evaluation
/// deterministic.
///
/// Resource model: each functional unit (and each bus lane) is an
/// instance that can accept a new operation every `dii` cycles
/// (paper Section 2); an operation bound to cluster `c` may only use
/// instances of `c`, moves only bus lanes.
///
/// # Example
///
/// ```
/// use vliw_datapath::Machine;
/// use vliw_dfg::{DfgBuilder, OpType};
/// use vliw_sched::{Binding, BoundDfg, ListScheduler};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Three independent adds on a single-ALU cluster serialize fully.
/// let mut b = DfgBuilder::new();
/// for _ in 0..3 {
///     b.add_op(OpType::Add, &[]);
/// }
/// let dfg = b.finish()?;
/// let machine = Machine::parse("[1,1]")?;
/// let c0 = machine.cluster_ids().next().unwrap();
/// let bn = Binding::new(&dfg, &machine, vec![c0; 3])?;
/// let bound = BoundDfg::new(&dfg, &machine, &bn);
/// let schedule = ListScheduler::new(&machine).schedule(&bound);
/// assert_eq!(schedule.latency(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ListScheduler<'m> {
    machine: &'m Machine,
    priority: SchedulePriority,
}

/// Which urgency measure orders the ready list (ablation knob; the
/// default reproduces the paper-aligned behavior and is what every
/// binder in the workspace uses).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SchedulePriority {
    /// Smallest ALAP first, ties by mobility — level-oriented, matching
    /// the flavor of the paper's binding order (default).
    #[default]
    AlapMobility,
    /// Largest height (longest dependent chain below) first — the
    /// classic critical-path priority. At the critical-path target,
    /// height = `L_CP − alap`, so this coincides with ALAP ordering but
    /// drops the mobility tiebreak.
    Height,
    /// Smallest mobility first — pure slack ordering.
    Mobility,
}

impl<'m> ListScheduler<'m> {
    /// Creates a scheduler for `machine` with the default priority.
    pub fn new(machine: &'m Machine) -> Self {
        ListScheduler {
            machine,
            priority: SchedulePriority::default(),
        }
    }

    /// Creates a scheduler with an explicit ready-list priority.
    pub fn with_priority(machine: &'m Machine, priority: SchedulePriority) -> Self {
        ListScheduler { machine, priority }
    }

    /// Schedules a bound DFG, returning the start-time table.
    ///
    /// The produced schedule always satisfies [`Schedule::validate`]; the
    /// property-based tests assert this on random graphs and bindings.
    pub fn schedule(&self, bound: &BoundDfg) -> Schedule {
        let dfg = bound.dfg();
        let n = dfg.len();
        let lat = bound.latencies(self.machine);
        if n == 0 {
            return Schedule::from_starts(Vec::new(), &lat);
        }
        let timing = Timing::with_critical_path(dfg, &lat);

        // Priority key — lower is more urgent.
        let key = |v: OpId| -> (u32, u32, OpId) {
            match self.priority {
                SchedulePriority::AlapMobility => (timing.alap(v), timing.mobility(v), v),
                // height = L_CP − alap: ascending ALAP is descending
                // height; no secondary component.
                SchedulePriority::Height => (timing.alap(v), 0, v),
                SchedulePriority::Mobility => (timing.mobility(v), timing.alap(v), v),
            }
        };

        // FU instance pools: next cycle each instance can accept an op.
        let machine = self.machine;
        let n_clusters = machine.cluster_count();
        let mut pools: Vec<[Vec<u32>; 2]> = machine
            .cluster_ids()
            .map(|c| {
                [
                    vec![0u32; machine.fu_count(c, FuType::Alu) as usize],
                    vec![0u32; machine.fu_count(c, FuType::Mul) as usize],
                ]
            })
            .collect();
        let mut bus_pool = vec![0u32; machine.bus_count() as usize];
        debug_assert_eq!(pools.len(), n_clusters);

        let mut indeg: Vec<usize> = dfg.op_ids().map(|v| dfg.in_degree(v)).collect();
        // Earliest data-ready cycle, updated as producers get scheduled.
        let mut earliest: Vec<u32> = vec![0; n];
        let mut ready: Vec<OpId> = dfg.op_ids().filter(|v| indeg[v.index()] == 0).collect();
        // Keep `ready` sorted by priority *descending* so pop() yields the
        // most urgent op and removals at the tail are cheap.
        ready.sort_unstable_by_key(|&v| std::cmp::Reverse(key(v)));

        let mut start = vec![0u32; n];
        let mut scheduled = 0usize;
        let mut tau = 0u32;
        while scheduled < n {
            // Try every ready op at cycle tau in priority order.
            let mut i = ready.len();
            while i > 0 {
                i -= 1;
                let v = ready[i];
                if earliest[v.index()] > tau {
                    continue;
                }
                let t = dfg.op_type(v).fu_type();
                let pool: &mut Vec<u32> = match t {
                    FuType::Bus => &mut bus_pool,
                    _ => &mut pools[bound.cluster_of(v).index()][t.index()],
                };
                let Some(slot) = pool.iter_mut().find(|free_at| **free_at <= tau) else {
                    continue;
                };
                *slot = tau + machine.dii(t);
                start[v.index()] = tau;
                scheduled += 1;
                ready.remove(i);
                let fin = tau + lat[v.index()];
                for &s in dfg.succs(v) {
                    earliest[s.index()] = earliest[s.index()].max(fin);
                    indeg[s.index()] -= 1;
                    if indeg[s.index()] == 0 {
                        let pos = ready.partition_point(|&r| {
                            std::cmp::Reverse(key(r)) < std::cmp::Reverse(key(s))
                        });
                        ready.insert(pos, s);
                        // Successors inserted below the cursor would be
                        // visited this same cycle; that is fine (they can
                        // never be data-ready at `tau` since fin > tau),
                        // but keep the cursor consistent anyway.
                        if pos <= i {
                            i += 1;
                        }
                    }
                }
            }
            tau += 1;
        }
        Schedule::from_starts(start, &lat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binding::Binding;
    use vliw_datapath::ClusterId;
    use vliw_dfg::{DfgBuilder, OpType};

    fn cl(i: usize) -> ClusterId {
        ClusterId::from_index(i)
    }

    fn schedule_all_on(
        dfg: &vliw_dfg::Dfg,
        machine: &Machine,
        of: Vec<ClusterId>,
    ) -> (BoundDfg, Schedule) {
        let bn = Binding::new(dfg, machine, of).expect("valid binding");
        let bound = BoundDfg::new(dfg, machine, &bn);
        let s = ListScheduler::new(machine).schedule(&bound);
        s.validate(&bound, machine)
            .expect("scheduler output is valid");
        (bound, s)
    }

    #[test]
    fn unconstrained_chain_matches_critical_path() {
        let mut b = DfgBuilder::new();
        let mut prev = b.add_op(OpType::Add, &[]);
        for _ in 0..4 {
            prev = b.add_op(OpType::Add, &[prev]);
        }
        let dfg = b.finish().expect("acyclic");
        let machine = Machine::parse("[2,1]").expect("machine");
        let (_, s) = schedule_all_on(&dfg, &machine, vec![cl(0); 5]);
        assert_eq!(s.latency(), 5);
    }

    #[test]
    fn serialization_on_narrow_cluster() {
        // 6 independent adds, 2 ALUs -> 3 cycles.
        let mut b = DfgBuilder::new();
        for _ in 0..6 {
            b.add_op(OpType::Add, &[]);
        }
        let dfg = b.finish().expect("acyclic");
        let machine = Machine::parse("[2,1]").expect("machine");
        let (_, s) = schedule_all_on(&dfg, &machine, vec![cl(0); 6]);
        assert_eq!(s.latency(), 3);
    }

    #[test]
    fn transfer_lengthens_cross_cluster_chain() {
        let mut b = DfgBuilder::new();
        let a = b.add_op(OpType::Add, &[]);
        let _ = b.add_op(OpType::Add, &[a]);
        let dfg = b.finish().expect("acyclic");
        let machine = Machine::parse("[1,1|1,1]").expect("machine");
        let (bound_same, s_same) = schedule_all_on(&dfg, &machine, vec![cl(0), cl(0)]);
        assert_eq!(bound_same.move_count(), 0);
        assert_eq!(s_same.latency(), 2);
        let (bound_x, s_x) = schedule_all_on(&dfg, &machine, vec![cl(0), cl(1)]);
        assert_eq!(bound_x.move_count(), 1);
        assert_eq!(s_x.latency(), 3); // add ; move ; add
    }

    #[test]
    fn bus_width_limits_parallel_transfers() {
        // Four values crossing clusters simultaneously on a 1-bus machine.
        let mut b = DfgBuilder::new();
        let mut producers = Vec::new();
        for _ in 0..4 {
            producers.push(b.add_op(OpType::Add, &[]));
        }
        for &p in &producers {
            b.add_op(OpType::Add, &[p]);
        }
        let dfg = b.finish().expect("acyclic");
        let machine = Machine::parse("[4,1|4,1]")
            .expect("machine")
            .with_bus_count(1);
        let mut of = vec![cl(0); 4];
        of.extend(vec![cl(1); 4]);
        let (bound, s) = schedule_all_on(&dfg, &machine, of);
        assert_eq!(bound.move_count(), 4);
        // producers@0, transfers serialized over cycles 1..=4, consumers
        // one cycle after their transfer -> latency 6.
        assert_eq!(s.latency(), 6);
        let machine2 = Machine::parse("[4,1|4,1]").expect("machine"); // N_B = 2
        let mut of2 = vec![cl(0); 4];
        of2.extend(vec![cl(1); 4]);
        let bn2 = Binding::new(&dfg, &machine2, of2).expect("valid binding");
        let bound2 = BoundDfg::new(&dfg, &machine2, &bn2);
        let s2 = ListScheduler::new(&machine2).schedule(&bound2);
        assert_eq!(s2.latency(), 4);
    }

    #[test]
    fn critical_ops_take_precedence_over_mobile_ones() {
        // One ALU; a 3-op chain plus one independent add. The chain must
        // not be delayed by the filler op.
        let mut b = DfgBuilder::new();
        let c1 = b.add_op(OpType::Add, &[]);
        let c2 = b.add_op(OpType::Add, &[c1]);
        let _c3 = b.add_op(OpType::Add, &[c2]);
        let _free = b.add_op(OpType::Add, &[]);
        let dfg = b.finish().expect("acyclic");
        let machine = Machine::parse("[1,1]").expect("machine");
        let (_, s) = schedule_all_on(&dfg, &machine, vec![cl(0); 4]);
        // chain occupies cycles 0,1,2; filler slots into any cycle 1..3
        // ... but with one ALU it must take cycle 3? No: cycles 0-2 are
        // taken by the chain ops, so filler lands at 3 -> latency 4.
        assert_eq!(s.latency(), 4);
        assert_eq!(s.start(c1), 0);
        assert_eq!(s.start(c2), 1);
    }

    #[test]
    fn move_latency_two_extends_schedule() {
        let mut b = DfgBuilder::new();
        let a = b.add_op(OpType::Add, &[]);
        let _ = b.add_op(OpType::Add, &[a]);
        let dfg = b.finish().expect("acyclic");
        let machine = Machine::parse("[1,1|1,1]")
            .expect("machine")
            .with_move_latency(2);
        let (_, s) = schedule_all_on(&dfg, &machine, vec![cl(0), cl(1)]);
        assert_eq!(s.latency(), 4); // add ; move(2) ; add
    }

    #[test]
    fn non_pipelined_multiplier_serializes_by_dii() {
        use vliw_datapath::{Cluster, MachineBuilder};
        let mut b = DfgBuilder::new();
        for _ in 0..3 {
            b.add_op(OpType::Mul, &[]);
        }
        let dfg = b.finish().expect("acyclic");
        let machine = MachineBuilder::new()
            .cluster(Cluster::new(1, 1))
            .op_latency(OpType::Mul, 2)
            .fu_dii(FuType::Mul, 2)
            .build()
            .expect("machine");
        let (_, s) = schedule_all_on(&dfg, &machine, vec![cl(0); 3]);
        // Starts at 0, 2, 4; finishes at 6.
        assert_eq!(s.latency(), 6);
    }

    #[test]
    fn pipelined_multicycle_multiplier_overlaps() {
        use vliw_datapath::{Cluster, MachineBuilder};
        let mut b = DfgBuilder::new();
        for _ in 0..3 {
            b.add_op(OpType::Mul, &[]);
        }
        let dfg = b.finish().expect("acyclic");
        let machine = MachineBuilder::new()
            .cluster(Cluster::new(1, 1))
            .op_latency(OpType::Mul, 2) // dii stays 1: fully pipelined
            .build()
            .expect("machine");
        let (_, s) = schedule_all_on(&dfg, &machine, vec![cl(0); 3]);
        // Starts 0,1,2; last finishes at 4.
        assert_eq!(s.latency(), 4);
    }

    #[test]
    fn empty_graph_schedules_to_zero() {
        let dfg = DfgBuilder::new().finish().expect("empty");
        let machine = Machine::parse("[1,1]").expect("machine");
        let bn = Binding::new(&dfg, &machine, vec![]).expect("valid binding");
        let bound = BoundDfg::new(&dfg, &machine, &bn);
        let s = ListScheduler::new(&machine).schedule(&bound);
        assert_eq!(s.latency(), 0);
        assert!(s.is_empty());
    }

    #[test]
    fn heterogeneous_machine_respects_mul_placement() {
        // Cluster 0 has no multiplier: muls bound to cluster 1 only.
        let mut b = DfgBuilder::new();
        let m1 = b.add_op(OpType::Mul, &[]);
        let m2 = b.add_op(OpType::Mul, &[]);
        let _ = b.add_op(OpType::Add, &[m1, m2]);
        let dfg = b.finish().expect("acyclic");
        let machine = Machine::parse("[2,0|1,2]").expect("machine");
        let (_, s) = schedule_all_on(&dfg, &machine, vec![cl(1), cl(1), cl(1)]);
        assert_eq!(s.latency(), 2);
    }
}

#[cfg(test)]
mod priority_tests {
    use super::*;
    use crate::binding::Binding;
    use vliw_datapath::ClusterId;
    use vliw_dfg::{DfgBuilder, OpType};

    /// Every priority variant must produce a valid schedule; on a graph
    /// with a critical chain plus filler, none may delay the chain.
    #[test]
    fn all_priorities_produce_valid_schedules() {
        let mut b = DfgBuilder::new();
        let c1 = b.add_op(OpType::Add, &[]);
        let c2 = b.add_op(OpType::Mul, &[c1]);
        let _c3 = b.add_op(OpType::Add, &[c2]);
        let _f1 = b.add_op(OpType::Add, &[]);
        let _f2 = b.add_op(OpType::Add, &[]);
        let dfg = b.finish().expect("acyclic");
        let machine = Machine::parse("[1,1]").expect("machine");
        let bn = Binding::new(&dfg, &machine, vec![ClusterId::from_index(0); 5]).expect("ok");
        let bound = BoundDfg::new(&dfg, &machine, &bn);
        for priority in [
            SchedulePriority::AlapMobility,
            SchedulePriority::Height,
            SchedulePriority::Mobility,
        ] {
            let s = ListScheduler::with_priority(&machine, priority).schedule(&bound);
            s.validate(&bound, &machine)
                .unwrap_or_else(|e| panic!("{priority:?}: {e}"));
            // Chain (add, mul, add) + two filler adds on one ALU: the
            // four ALU ops need 4 cycles; a priority that delays the
            // chain pays one more.
            assert!(
                (4..=5).contains(&s.latency()),
                "{priority:?}: {}",
                s.latency()
            );
        }
    }

    #[test]
    fn default_priority_is_alap_mobility() {
        assert_eq!(SchedulePriority::default(), SchedulePriority::AlapMobility);
    }
}
