//! Schedules: start/finish tables, validation, quality profiles.

use crate::bound::BoundDfg;
use std::error::Error;
use std::fmt;
use vliw_datapath::Machine;
use vliw_dfg::{FuType, OpId, OpType};

/// Error reported by [`Schedule::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// A consumer starts before one of its producers finishes.
    PrecedenceViolation {
        /// The producer.
        producer: OpId,
        /// The consumer starting too early.
        consumer: OpId,
    },
    /// More operations of one FU type started within a `dii` window than
    /// the cluster has units.
    FuOverload {
        /// Cluster index.
        cluster: usize,
        /// FU type overloaded.
        fu: FuType,
        /// Cycle where the window constraint is violated.
        cycle: u32,
    },
    /// More transfers started within a bus `dii` window than `N_B`.
    BusOverload {
        /// Cycle where the window constraint is violated.
        cycle: u32,
    },
    /// The schedule does not cover every operation of the bound graph.
    WrongLength {
        /// Entries in the schedule.
        got: usize,
        /// Operations in the bound graph.
        expected: usize,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::PrecedenceViolation { producer, consumer } => {
                write!(
                    f,
                    "{consumer} starts before its producer {producer} finishes"
                )
            }
            ScheduleError::FuOverload { cluster, fu, cycle } => {
                write!(
                    f,
                    "cluster cl{cluster} overloads its {fu}s at cycle {cycle}"
                )
            }
            ScheduleError::BusOverload { cycle } => {
                write!(f, "bus overloaded at cycle {cycle}")
            }
            ScheduleError::WrongLength { got, expected } => {
                write!(f, "schedule covers {got} ops but the graph has {expected}")
            }
        }
    }
}

impl Error for ScheduleError {}

/// A start-time table for a bound DFG, produced by
/// [`crate::ListScheduler`].
///
/// Uses the same convention as [`vliw_dfg::Timing`]: an operation starting
/// at cycle `τ` with latency `l` finishes at `τ + l`; the schedule latency
/// `L` is the maximum finish time (so a single unit-latency operation
/// yields `L = 1`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    start: Vec<u32>,
    finish: Vec<u32>,
    latency: u32,
}

impl Schedule {
    /// Creates a schedule from explicit per-operation start times and
    /// latencies (used by the scheduler and by tests that hand-craft
    /// schedules).
    ///
    /// # Panics
    ///
    /// Panics if the two slices differ in length.
    pub fn from_starts(start: Vec<u32>, lat: &[u32]) -> Self {
        assert_eq!(start.len(), lat.len(), "one latency per start time");
        let finish: Vec<u32> = start.iter().zip(lat).map(|(&s, &l)| s + l).collect();
        let latency = finish.iter().copied().max().unwrap_or(0);
        Schedule {
            start,
            finish,
            latency,
        }
    }

    /// Schedule latency `L`: the cycle by which every operation (data
    /// transfers included) has completed.
    #[inline]
    pub fn latency(&self) -> u32 {
        self.latency
    }

    /// Start cycle of a bound operation.
    #[inline]
    pub fn start(&self, v: OpId) -> u32 {
        self.start[v.index()]
    }

    /// Finish cycle of a bound operation (`start + lat`).
    #[inline]
    pub fn finish(&self, v: OpId) -> u32 {
        self.finish[v.index()]
    }

    /// Number of scheduled operations.
    #[inline]
    pub fn len(&self) -> usize {
        self.start.len()
    }

    /// Whether the schedule is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start.is_empty()
    }

    /// `U_i` profile of the paper's quality vector `Q_U = (L, U_0, U_1, …)`
    /// (Section 3.2, Figure 6): element `i` counts the *regular*
    /// operations (moves excluded) completing at step `L − i`.
    ///
    /// The returned vector has length `L`; comparing two schedules'
    /// vectors lexicographically (after `L` itself) prefers the schedule
    /// with fewer operations pinned to the final cycles — the property the
    /// paper exploits to escape plateaus of the plain latency objective.
    pub fn completion_profile(&self, bound: &BoundDfg) -> Vec<usize> {
        let l = self.latency as usize;
        let mut profile = vec![0usize; l];
        for v in bound.dfg().op_ids() {
            if bound.is_move(v) {
                continue;
            }
            let fin = self.finish[v.index()] as usize;
            // fin is in 1..=L; U_i counts completions at L - i.
            profile[l - fin] += 1;
        }
        profile
    }

    /// Independently re-checks that this schedule respects data
    /// dependences, per-cluster FU counts and bus width under the `dii`
    /// pipelining model (a unit of type `t` can start a new operation
    /// every `dii(t)` cycles).
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint as a [`ScheduleError`].
    pub fn validate(&self, bound: &BoundDfg, machine: &Machine) -> Result<(), ScheduleError> {
        let dfg = bound.dfg();
        if self.start.len() != dfg.len() {
            return Err(ScheduleError::WrongLength {
                got: self.start.len(),
                expected: dfg.len(),
            });
        }
        // Precedence.
        for (u, v) in dfg.edges() {
            if self.start[v.index()] < self.finish[u.index()] {
                return Err(ScheduleError::PrecedenceViolation {
                    producer: u,
                    consumer: v,
                });
            }
        }
        // Resources: count starts per cycle, then check every dii window.
        let horizon = self.latency as usize + 1;
        let n_clusters = machine.cluster_count();
        // starts[c][fu][cycle]
        let mut fu_starts = vec![[0u32; 2].map(|_| vec![0u32; horizon]); n_clusters];
        let mut bus_starts = vec![0u32; horizon];
        for v in dfg.op_ids() {
            let t = dfg.op_type(v).fu_type();
            let s = self.start[v.index()] as usize;
            match t {
                FuType::Bus => bus_starts[s] += 1,
                _ => fu_starts[bound.cluster_of(v).index()][t.index()][s] += 1,
            }
        }
        for (ci, per_fu) in fu_starts.iter().enumerate() {
            for t in FuType::REGULAR {
                let dii = machine.dii(t) as usize;
                let cap = machine.fu_count(vliw_datapath::ClusterId::from_index(ci), t);
                let starts = &per_fu[t.index()];
                let mut window = 0u32;
                for tau in 0..horizon {
                    window += starts[tau];
                    if tau >= dii {
                        window -= starts[tau - dii];
                    }
                    if window > cap {
                        return Err(ScheduleError::FuOverload {
                            cluster: ci,
                            fu: t,
                            cycle: tau as u32,
                        });
                    }
                }
            }
        }
        let bus_dii = machine.dii(FuType::Bus) as usize;
        let mut window = 0u32;
        for tau in 0..horizon {
            window += bus_starts[tau];
            if tau >= bus_dii {
                window -= bus_starts[tau - bus_dii];
            }
            if window > machine.bus_count() {
                return Err(ScheduleError::BusOverload { cycle: tau as u32 });
            }
        }
        Ok(())
    }

    /// Renders the schedule as a cycle-by-cycle table, one line per cycle,
    /// with each operation shown in its cluster column (moves in the BUS
    /// column). Intended for examples and debugging.
    pub fn to_table(&self, bound: &BoundDfg, machine: &Machine) -> String {
        use std::fmt::Write as _;
        let dfg = bound.dfg();
        let n_clusters = machine.cluster_count();
        let mut rows: Vec<Vec<Vec<String>>> =
            vec![vec![Vec::new(); n_clusters + 1]; self.latency as usize];
        for v in dfg.op_ids() {
            let cell = format!("{v}:{}", dfg.op_type(v).mnemonic());
            let col = if dfg.op_type(v) == OpType::Move {
                n_clusters
            } else {
                bound.cluster_of(v).index()
            };
            rows[self.start[v.index()] as usize][col].push(cell);
        }
        let mut out = String::new();
        let _ = write!(out, "cycle");
        for c in 0..n_clusters {
            let _ = write!(out, " | cl{c}");
        }
        let _ = writeln!(out, " | bus");
        for (tau, row) in rows.iter().enumerate() {
            let _ = write!(out, "{tau:5}");
            for cell in row {
                let _ = write!(out, " | {}", cell.join(" "));
            }
            let _ = writeln!(out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binding::Binding;
    use vliw_datapath::ClusterId;
    use vliw_dfg::DfgBuilder;

    fn cl(i: usize) -> ClusterId {
        ClusterId::from_index(i)
    }

    /// Chain a->b on one cluster plus a cross-cluster consumer.
    fn setup() -> (BoundDfg, Machine) {
        let mut b = DfgBuilder::new();
        let a = b.add_op(OpType::Add, &[]);
        let m = b.add_op(OpType::Mul, &[a]);
        let _ = b.add_op(OpType::Add, &[m]);
        let dfg = b.finish().expect("acyclic");
        let machine = Machine::parse("[1,1|1,1]").expect("machine");
        let bn = Binding::new(&dfg, &machine, vec![cl(0), cl(0), cl(1)]).expect("valid");
        (BoundDfg::new(&dfg, &machine, &bn), machine)
    }

    #[test]
    fn from_starts_computes_latency() {
        let s = Schedule::from_starts(vec![0, 1, 3], &[1, 2, 1]);
        assert_eq!(s.latency(), 4);
        assert_eq!(s.finish(OpId::from_index(1)), 3);
    }

    #[test]
    fn validate_accepts_legal_schedule() {
        let (bound, machine) = setup();
        // a@0, m@1, move@2, consumer@3 (bound graph order: a, m, move, c).
        let lat = bound.latencies(&machine);
        let s = Schedule::from_starts(vec![0, 1, 2, 3], &lat);
        assert_eq!(s.validate(&bound, &machine), Ok(()));
    }

    #[test]
    fn validate_rejects_precedence_violation() {
        let (bound, machine) = setup();
        let lat = bound.latencies(&machine);
        let s = Schedule::from_starts(vec![0, 0, 2, 3], &lat); // m starts with a
        assert!(matches!(
            s.validate(&bound, &machine),
            Err(ScheduleError::PrecedenceViolation { .. })
        ));
    }

    #[test]
    fn validate_rejects_fu_overload() {
        // Two independent adds on a 1-ALU cluster in the same cycle.
        let mut b = DfgBuilder::new();
        let _ = b.add_op(OpType::Add, &[]);
        let _ = b.add_op(OpType::Add, &[]);
        let dfg = b.finish().expect("acyclic");
        let machine = Machine::parse("[1,1]").expect("machine");
        let bn = Binding::new(&dfg, &machine, vec![cl(0), cl(0)]).expect("valid");
        let bound = BoundDfg::new(&dfg, &machine, &bn);
        let lat = bound.latencies(&machine);
        let s = Schedule::from_starts(vec![0, 0], &lat);
        assert!(matches!(
            s.validate(&bound, &machine),
            Err(ScheduleError::FuOverload { .. })
        ));
        let ok = Schedule::from_starts(vec![0, 1], &lat);
        assert_eq!(ok.validate(&bound, &machine), Ok(()));
    }

    #[test]
    fn validate_rejects_bus_overload() {
        // Three parallel transfers on a 2-bus machine in one cycle.
        let mut b = DfgBuilder::new();
        let mut srcs = Vec::new();
        for _ in 0..3 {
            srcs.push(b.add_op(OpType::Add, &[]));
        }
        for &s in &srcs {
            let _ = b.add_op(OpType::Add, &[s]);
        }
        let dfg = b.finish().expect("acyclic");
        let machine = Machine::parse("[3,1|3,1]").expect("machine");
        let of = vec![cl(0), cl(0), cl(0), cl(1), cl(1), cl(1)];
        let bn = Binding::new(&dfg, &machine, of).expect("valid");
        let bound = BoundDfg::new(&dfg, &machine, &bn);
        assert_eq!(bound.move_count(), 3);
        let lat = bound.latencies(&machine);
        // Bound order: a0, a1, a2 then moves interleaved before consumers.
        // Start everything as early as dependence alone allows: all moves
        // at cycle 1 -> bus overload (N_B = 2).
        let starts: Vec<u32> = bound
            .dfg()
            .op_ids()
            .map(|v| {
                if bound.is_move(v) {
                    1
                } else if bound.dfg().in_degree(v) == 0 {
                    0
                } else {
                    2
                }
            })
            .collect();
        let s = Schedule::from_starts(starts, &lat);
        assert!(matches!(
            s.validate(&bound, &machine),
            Err(ScheduleError::BusOverload { cycle: 1 })
        ));
    }

    #[test]
    fn validate_respects_dii_windows() {
        // Non-pipelined 2-cycle multiplier: two muls started 1 cycle apart
        // overload it; 2 cycles apart is fine.
        use vliw_datapath::{Cluster, MachineBuilder};
        let mut b = DfgBuilder::new();
        let _ = b.add_op(OpType::Mul, &[]);
        let _ = b.add_op(OpType::Mul, &[]);
        let dfg = b.finish().expect("acyclic");
        let machine = MachineBuilder::new()
            .cluster(Cluster::new(1, 1))
            .op_latency(OpType::Mul, 2)
            .fu_dii(FuType::Mul, 2)
            .build()
            .expect("machine");
        let bn = Binding::new(&dfg, &machine, vec![cl(0), cl(0)]).expect("valid");
        let bound = BoundDfg::new(&dfg, &machine, &bn);
        let lat = bound.latencies(&machine);
        let clash = Schedule::from_starts(vec![0, 1], &lat);
        assert!(matches!(
            clash.validate(&bound, &machine),
            Err(ScheduleError::FuOverload { .. })
        ));
        let ok = Schedule::from_starts(vec![0, 2], &lat);
        assert_eq!(ok.validate(&bound, &machine), Ok(()));
    }

    #[test]
    fn completion_profile_counts_regular_ops_only() {
        let (bound, machine) = setup();
        let lat = bound.latencies(&machine);
        let s = Schedule::from_starts(vec![0, 1, 2, 3], &lat);
        // L = 4. Finishes: a@1, m@2, move@3 (excluded), consumer@4.
        assert_eq!(s.completion_profile(&bound), vec![1, 0, 1, 1]);
    }

    #[test]
    fn wrong_length_is_reported() {
        let (bound, machine) = setup();
        let s = Schedule::from_starts(vec![0], &[1]);
        assert!(matches!(
            s.validate(&bound, &machine),
            Err(ScheduleError::WrongLength { .. })
        ));
    }

    #[test]
    fn table_lists_every_operation() {
        let (bound, machine) = setup();
        let lat = bound.latencies(&machine);
        let s = Schedule::from_starts(vec![0, 1, 2, 3], &lat);
        let table = s.to_table(&bound, &machine);
        for v in bound.dfg().op_ids() {
            assert!(table.contains(&v.to_string()), "missing {v} in:\n{table}");
        }
        assert!(table.contains("bus"));
    }
}
