//! Bound-DFG construction: materializing inter-cluster data transfers.
//!
//! A DFG "can assume two forms: the original and the bound" (paper
//! Section 2, Figure 1). The bound form contains one `move` operation for
//! every value that must travel from the cluster producing it to a
//! *different* cluster consuming it. A value consumed by several
//! operations in the same destination cluster is transferred **once**
//! (cf. the common-consumer argument of Section 3.1.2: once the data is in
//! the destination register file every local consumer can read it).

use crate::binding::Binding;

use std::sync::Arc;
use vliw_datapath::{ClusterId, Machine};
use vliw_dfg::{Dfg, DfgBuilder, DfgScratch, OpId, OpType};

/// Recycled workspace for [`BoundDfg::new_in`]: the graph-storage pool,
/// the flat lookup tables, and a cache of move debug names (a move's
/// name depends only on its producer id and destination cluster, so the
/// same `Arc<str>` serves every candidate that inserts that transfer).
///
/// A default scratch reproduces [`BoundDfg::new`] exactly; pooling only
/// recycles capacity, never anything observable.
#[derive(Debug, Default)]
pub struct BoundScratch {
    graph: DfgScratch,
    /// `(producer, destination) -> name`, flat-indexed like `move_of`;
    /// valid for any graph/binding under the same `(n, n_clusters)` key.
    move_names: Vec<Option<Arc<str>>>,
    /// The `(n, n_clusters)` shape `move_names` was sized for.
    names_key: (usize, usize),
    bound_of: Vec<OpId>,
    move_of: Vec<OpId>,
    orig_of: Vec<Option<OpId>>,
    cluster: Vec<ClusterId>,
}

/// An original DFG plus a complete [`Binding`], with the induced `move`
/// operations materialized (paper Figure 1b).
///
/// Operation ids of the bound graph differ from the original's (moves are
/// interleaved); [`BoundDfg::bound_of`] / [`BoundDfg::orig_of`] translate
/// between the two id spaces.
///
/// # Example
///
/// ```
/// use vliw_datapath::Machine;
/// use vliw_dfg::{DfgBuilder, OpType};
/// use vliw_sched::{Binding, BoundDfg};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // One producer, two consumers in the other cluster: a single move.
/// let mut b = DfgBuilder::new();
/// let p = b.add_op(OpType::Add, &[]);
/// let _u = b.add_op(OpType::Add, &[p]);
/// let _w = b.add_op(OpType::Add, &[p]);
/// let dfg = b.finish()?;
/// let machine = Machine::parse("[1,1|1,1]")?;
/// let c: Vec<_> = machine.cluster_ids().collect();
/// let bn = Binding::new(&dfg, &machine, vec![c[0], c[1], c[1]])?;
/// let bound = BoundDfg::new(&dfg, &machine, &bn);
/// assert_eq!(bound.move_count(), 1);
/// assert_eq!(bound.dfg().len(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BoundDfg {
    dfg: Dfg,
    cluster: Vec<ClusterId>,
    orig_of: Vec<Option<OpId>>,
    bound_of: Vec<OpId>,
    move_count: usize,
}

impl BoundDfg {
    /// Builds the bound graph for `binding`, inserting one `move` per
    /// (producer, destination-cluster) pair actually crossed by a data
    /// dependence.
    ///
    /// # Panics
    ///
    /// Panics if the binding is incomplete, its length does not match
    /// `dfg`, or `dfg` already contains `move` operations (binding binds
    /// *original* graphs only).
    pub fn new(dfg: &Dfg, machine: &Machine, binding: &Binding) -> Self {
        Self::new_in(dfg, machine, binding, &mut BoundScratch::default())
    }

    /// [`BoundDfg::new`] against a recycled [`BoundScratch`]: with a
    /// scratch warmed by [`BoundDfg::dismantle_into`], construction is
    /// allocation-free in the steady state. The result is identical to
    /// [`BoundDfg::new`] whatever the scratch's history.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`BoundDfg::new`].
    pub fn new_in(
        dfg: &Dfg,
        machine: &Machine,
        binding: &Binding,
        scratch: &mut BoundScratch,
    ) -> Self {
        assert_eq!(binding.len(), dfg.len(), "binding/DFG length mismatch");
        assert!(binding.is_complete(), "binding must cover every operation");
        let n = dfg.len();
        let n_clusters = machine.cluster_count().max(1);

        // This constructor runs once per candidate evaluation — the
        // descent's hottest loop — so it avoids the generic machinery:
        // builder-made graphs list operands before consumers, in which
        // case `topo_order`'s smallest-ready-id rule provably returns
        // the identity order and the O(V + E) check below replaces the
        // full sort; the (producer, destination) move table is a flat
        // array rather than a `HashMap`; `finish_trusted_into` skips the
        // duplicate re-scan (the original graph is validated and the
        // move mapping is injective, so operand lists stay
        // duplicate-free by construction); and every buffer, including
        // the graph's adjacency storage and the move debug names, is
        // recycled through the scratch.
        let index_topological = dfg
            .op_ids()
            .all(|v| dfg.preds(v).iter().all(|&u| u.index() < v.index()));
        let fallback_order = if index_topological {
            None
        } else {
            Some(vliw_dfg::topo_order(dfg).expect("original DFG is acyclic"))
        };

        let mut b = DfgBuilder::recycled(&mut scratch.graph, n + n / 2);
        let unset = OpId::from_index(u32::MAX as usize - 1);
        let mut bound_of = std::mem::take(&mut scratch.bound_of);
        bound_of.clear();
        bound_of.resize(n, unset);
        let mut orig_of = std::mem::take(&mut scratch.orig_of);
        orig_of.clear();
        let mut cluster = std::mem::take(&mut scratch.cluster);
        cluster.clear();
        // (original producer, destination cluster) -> bound move id,
        // flat-indexed as `producer * n_clusters + destination`.
        let mut move_of = std::mem::take(&mut scratch.move_of);
        move_of.clear();
        move_of.resize(n * n_clusters, unset);
        if scratch.names_key != (n, n_clusters) {
            scratch.move_names.clear();
            scratch.move_names.resize(n * n_clusters, None);
            scratch.names_key = (n, n_clusters);
        }
        let move_names = &mut scratch.move_names;
        let mut move_count = 0usize;
        let mut operands: Vec<OpId> = Vec::new();

        let mut step = |v: OpId| {
            assert!(
                dfg.op_type(v) != OpType::Move,
                "binding applies to original (move-free) DFGs, found {v}: move"
            );
            let dest = binding.cluster_of(v);
            operands.clear();
            for &u in dfg.preds(v) {
                let src = binding.cluster_of(u);
                if src == dest {
                    operands.push(bound_of[u.index()]);
                } else {
                    let slot = u.index() * n_clusters + dest.index();
                    if move_of[slot] == unset {
                        let name = move_names[slot]
                            .get_or_insert_with(|| Arc::from(format!("{u}->{dest}")))
                            .clone();
                        let id =
                            b.add_op_shared_name(OpType::Move, &[bound_of[u.index()]], Some(name));
                        orig_of.push(None);
                        cluster.push(dest);
                        move_of[slot] = id;
                        move_count += 1;
                    }
                    operands.push(move_of[slot]);
                }
            }
            let id = b.add_op_shared_name(dfg.op_type(v), &operands, dfg.shared_name(v));
            bound_of[v.index()] = id;
            orig_of.push(Some(v));
            cluster.push(dest);
        };
        match &fallback_order {
            None => dfg.op_ids().for_each(&mut step),
            Some(order) => order.iter().copied().for_each(&mut step),
        }
        scratch.move_of = move_of;

        BoundDfg {
            dfg: b.finish_trusted_into(&mut scratch.graph),
            cluster,
            orig_of,
            bound_of,
            move_count,
        }
    }

    /// Tears the bound graph down into `scratch`, keeping every buffer
    /// for the next [`BoundDfg::new_in`]. Called on candidates that lose
    /// the descent round, so the steady-state candidate loop stops
    /// touching the allocator entirely.
    pub fn dismantle_into(self, scratch: &mut BoundScratch) {
        let BoundDfg {
            dfg,
            mut cluster,
            mut orig_of,
            mut bound_of,
            move_count: _,
        } = self;
        dfg.dismantle_into(&mut scratch.graph);
        cluster.clear();
        scratch.cluster = cluster;
        orig_of.clear();
        scratch.orig_of = orig_of;
        bound_of.clear();
        scratch.bound_of = bound_of;
    }

    /// The bound graph itself (regular operations plus moves).
    #[inline]
    pub fn dfg(&self) -> &Dfg {
        &self.dfg
    }

    /// Number of inserted data transfers (`N_MV` / the `M` column of the
    /// paper's tables).
    #[inline]
    pub fn move_count(&self) -> usize {
        self.move_count
    }

    /// Cluster of a *bound* operation: the binding cluster for regular
    /// operations, the destination cluster for moves.
    #[inline]
    pub fn cluster_of(&self, bound: OpId) -> ClusterId {
        self.cluster[bound.index()]
    }

    /// The original operation behind a bound id; `None` for moves.
    #[inline]
    pub fn orig_of(&self, bound: OpId) -> Option<OpId> {
        self.orig_of[bound.index()]
    }

    /// The bound id of an original operation.
    #[inline]
    pub fn bound_of(&self, orig: OpId) -> OpId {
        self.bound_of[orig.index()]
    }

    /// Whether a bound operation is an inserted data transfer.
    #[inline]
    pub fn is_move(&self, bound: OpId) -> bool {
        self.dfg.op_type(bound) == OpType::Move
    }

    /// For a move, the cluster the transferred value originates from
    /// (the cluster of its single predecessor).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is not a move.
    pub fn move_source_cluster(&self, bound: OpId) -> ClusterId {
        assert!(self.is_move(bound), "{bound} is not a move");
        let src = self.dfg.preds(bound)[0];
        self.cluster_of(src)
    }

    /// Per-operation latency vector of the bound graph under `machine`,
    /// in the layout expected by [`vliw_dfg::Timing`].
    pub fn latencies(&self, machine: &Machine) -> Vec<u32> {
        machine.op_latencies(&self.dfg)
    }

    /// Number of operations in the original graph.
    #[inline]
    pub fn original_len(&self) -> usize {
        self.bound_of.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binding::Binding;

    fn cl(i: usize) -> ClusterId {
        ClusterId::from_index(i)
    }

    fn machine2() -> Machine {
        Machine::parse("[2,1|2,1]").expect("machine")
    }

    /// Figure 1 of the paper: v1,v2 -> v3 with v2 on another cluster than
    /// v3 requires transfer t1.
    #[test]
    fn figure1_transfer_insertion() {
        let mut b = DfgBuilder::new();
        let v1 = b.add_op(OpType::Add, &[]);
        let v2 = b.add_op(OpType::Add, &[]);
        let v3 = b.add_op(OpType::Add, &[v1, v2]);
        let dfg = b.finish().expect("acyclic");
        let machine = machine2();
        let bn = Binding::new(&dfg, &machine, vec![cl(0), cl(1), cl(0)]).expect("valid");
        let bound = BoundDfg::new(&dfg, &machine, &bn);

        assert_eq!(bound.move_count(), 1);
        assert_eq!(bound.dfg().len(), 4);
        let b3 = bound.bound_of(v3);
        // v3 now reads v1 directly and v2 through the move.
        let preds = bound.dfg().preds(b3);
        assert_eq!(preds.len(), 2);
        let mv = preds
            .iter()
            .copied()
            .find(|&p| bound.is_move(p))
            .expect("one operand is a move");
        assert_eq!(bound.cluster_of(mv), cl(0));
        assert_eq!(bound.move_source_cluster(mv), cl(1));
        assert_eq!(bound.dfg().preds(mv), &[bound.bound_of(v2)]);
    }

    #[test]
    fn no_transfers_when_single_cluster() {
        let mut b = DfgBuilder::new();
        let a = b.add_op(OpType::Mul, &[]);
        let c = b.add_op(OpType::Add, &[a]);
        let _ = b.add_op(OpType::Sub, &[a, c]);
        let dfg = b.finish().expect("acyclic");
        let machine = machine2();
        let bn = Binding::new(&dfg, &machine, vec![cl(0); 3]).expect("valid");
        let bound = BoundDfg::new(&dfg, &machine, &bn);
        assert_eq!(bound.move_count(), 0);
        assert_eq!(bound.dfg().len(), 3);
        // Id mapping is a bijection on originals.
        for v in dfg.op_ids() {
            assert_eq!(bound.orig_of(bound.bound_of(v)), Some(v));
        }
    }

    #[test]
    fn one_move_per_destination_cluster() {
        // Producer feeds two consumers on cluster 1 and one on cluster 2:
        // exactly two moves.
        let mut b = DfgBuilder::new();
        let p = b.add_op(OpType::Add, &[]);
        let _c1 = b.add_op(OpType::Add, &[p]);
        let _c2 = b.add_op(OpType::Add, &[p]);
        let _c3 = b.add_op(OpType::Add, &[p]);
        let dfg = b.finish().expect("acyclic");
        let machine = Machine::parse("[1,1|1,1|1,1]").expect("machine");
        let bn = Binding::new(&dfg, &machine, vec![cl(0), cl(1), cl(1), cl(2)]).expect("valid");
        let bound = BoundDfg::new(&dfg, &machine, &bn);
        assert_eq!(bound.move_count(), 2);
        assert_eq!(bound.dfg().len(), 6);
    }

    #[test]
    fn moves_preserve_dependence_topology() {
        let mut b = DfgBuilder::new();
        let a = b.add_op(OpType::Add, &[]);
        let m = b.add_op(OpType::Mul, &[a]);
        let s = b.add_op(OpType::Sub, &[m]);
        let _ = b.add_op(OpType::Add, &[s, a]);
        let dfg = b.finish().expect("acyclic");
        let machine = machine2();
        // Alternate clusters to force transfers on every edge.
        let bn = Binding::new(&dfg, &machine, vec![cl(0), cl(1), cl(0), cl(1)]).expect("valid");
        let bound = BoundDfg::new(&dfg, &machine, &bn);
        // Edges: a->m (cross), m->s (cross), s->last (cross), a->last (same
        // as a? a is cl0, last cl1 -> cross). A->last and a->m both go to
        // cluster 1 -> shared move. So moves: a->cl1 (shared), m->cl0,
        // s->cl1 = 3 moves.
        assert_eq!(bound.move_count(), 3);
        assert!(bound.dfg().validate().is_ok());
        // Every move has exactly one operand and at least one consumer.
        for v in bound.dfg().moves() {
            assert_eq!(bound.dfg().in_degree(v), 1);
            assert!(bound.dfg().out_degree(v) >= 1);
        }
    }

    #[test]
    fn clusters_of_regular_ops_match_binding() {
        let mut b = DfgBuilder::new();
        let a = b.add_op(OpType::Add, &[]);
        let _ = b.add_op(OpType::Mul, &[a]);
        let dfg = b.finish().expect("acyclic");
        let machine = machine2();
        let bn = Binding::new(&dfg, &machine, vec![cl(1), cl(0)]).expect("valid");
        let bound = BoundDfg::new(&dfg, &machine, &bn);
        for v in dfg.op_ids() {
            assert_eq!(bound.cluster_of(bound.bound_of(v)), bn.cluster_of(v));
        }
    }

    #[test]
    #[should_panic(expected = "must cover every operation")]
    fn incomplete_binding_panics() {
        let mut b = DfgBuilder::new();
        let _ = b.add_op(OpType::Add, &[]);
        let dfg = b.finish().expect("acyclic");
        let machine = machine2();
        let bn = Binding::unbound(&dfg);
        let _ = BoundDfg::new(&dfg, &machine, &bn);
    }

    #[test]
    fn latencies_cover_moves() {
        let mut b = DfgBuilder::new();
        let a = b.add_op(OpType::Add, &[]);
        let _ = b.add_op(OpType::Add, &[a]);
        let dfg = b.finish().expect("acyclic");
        let machine = machine2().with_move_latency(2);
        let bn = Binding::new(&dfg, &machine, vec![cl(0), cl(1)]).expect("valid");
        let bound = BoundDfg::new(&dfg, &machine, &bn);
        let lat = bound.latencies(&machine);
        let mv = bound.dfg().moves()[0];
        assert_eq!(lat[mv.index()], 2);
    }
}
