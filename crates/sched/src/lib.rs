//! Bound-DFG construction and resource-constrained list scheduling for
//! clustered VLIW datapaths.
//!
//! Binding algorithms (our B-INIT/B-ITER and the PCC baseline) decide a
//! [`Binding`] — a cluster for every operation of an *original* DFG. This
//! crate turns a binding into a *bound* DFG (paper Figure 1b) by
//! materializing the inter-cluster `move` operations, and evaluates it
//! with a cycle-based list scheduler honoring per-cluster FU counts, bus
//! width `N_B` and data-introduction intervals `dii(t)`.
//!
//! * [`Binding`] — validated operation-to-cluster map (`bn(v)`);
//! * [`BoundDfg`] — original DFG + binding with transfers materialized,
//!   one `move` per (producer, destination cluster) pair;
//! * [`ListScheduler`] / [`Schedule`] — the scheduler the paper uses to
//!   evaluate bindings ("we use a list scheduling algorithm for quality
//!   estimation", Section 3.2) and the resulting start-time table;
//! * [`Schedule::validate`] — independent re-check of precedence and
//!   resource constraints, used by tests and the simulator crate.
//!
//! # Example
//!
//! ```
//! use vliw_datapath::Machine;
//! use vliw_dfg::{DfgBuilder, OpType};
//! use vliw_sched::{Binding, BoundDfg, ListScheduler};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // v0 and v1 feed v2; bind v1 on the other cluster to force a transfer.
//! let mut b = DfgBuilder::new();
//! let v0 = b.add_op(OpType::Add, &[]);
//! let v1 = b.add_op(OpType::Mul, &[]);
//! let _v2 = b.add_op(OpType::Add, &[v0, v1]);
//! let dfg = b.finish()?;
//!
//! let machine = Machine::parse("[1,1|1,1]")?;
//! let c0 = machine.cluster_ids().next().unwrap();
//! let c1 = machine.cluster_ids().nth(1).unwrap();
//! let binding = Binding::new(&dfg, &machine, vec![c0, c1, c0])?;
//!
//! let bound = BoundDfg::new(&dfg, &machine, &binding);
//! assert_eq!(bound.move_count(), 1);
//!
//! let schedule = ListScheduler::new(&machine).schedule(&bound);
//! assert_eq!(schedule.latency(), 3); // v1 ; move ; v2 (v0 in parallel)
//! schedule.validate(&bound, &machine)?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
mod binding;
mod bound;
mod list;
mod pressure;
mod schedule;
pub mod verify;

pub use binding::{Binding, BindingError};
pub use bound::{BoundDfg, BoundScratch};
pub use list::{ListScheduler, SchedArena, SchedulePriority};
pub use pressure::RegisterPressure;
pub use schedule::{Schedule, ScheduleError};
pub use verify::{
    check_delta_bound, check_infeasibility, check_latency_bound, check_move_bound, check_report,
    verify, verify_reported, verify_traced, CertificateError, Violation,
};
