//! The operation-to-cluster binding function `bn(v)`.

use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;
use vliw_datapath::{ClusterId, Machine};
use vliw_dfg::{Dfg, OpId};

/// Error produced when constructing an invalid [`Binding`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BindingError {
    /// The assignment vector length does not match the DFG.
    WrongLength {
        /// Number of entries provided.
        got: usize,
        /// Number of operations in the DFG.
        expected: usize,
    },
    /// An operation was bound to a cluster outside its target set
    /// (`bn(v) = c` requires `N(c, futype(optype(v))) > 0`).
    OutsideTargetSet {
        /// The offending operation.
        op: OpId,
        /// The cluster it was bound to.
        cluster: ClusterId,
    },
    /// A cluster id does not exist on the machine.
    UnknownCluster(ClusterId),
}

impl fmt::Display for BindingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BindingError::WrongLength { got, expected } => {
                write!(
                    f,
                    "binding has {got} entries but the DFG has {expected} operations"
                )
            }
            BindingError::OutsideTargetSet { op, cluster } => {
                write!(
                    f,
                    "operation {op} bound to {cluster} which cannot execute it"
                )
            }
            BindingError::UnknownCluster(c) => write!(f, "cluster {c} does not exist"),
        }
    }
}

impl Error for BindingError {}

/// A complete binding `bn : V → CL` of an *original* (move-free) DFG.
///
/// Constructed from a dense per-operation cluster vector by
/// [`Binding::new`], which validates every assignment against the
/// machine's target sets, or grown incrementally during greedy binding via
/// [`Binding::unbound`] / [`Binding::bind`].
///
/// # Example
///
/// ```
/// use vliw_datapath::Machine;
/// use vliw_dfg::{DfgBuilder, OpType};
/// use vliw_sched::Binding;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = DfgBuilder::new();
/// let m = b.add_op(OpType::Mul, &[]);
/// let _ = b.add_op(OpType::Add, &[m]);
/// let dfg = b.finish()?;
/// let machine = Machine::parse("[2,0|1,1]")?; // cluster 0 has no multiplier
/// let c0 = machine.cluster_ids().next().unwrap();
/// let c1 = machine.cluster_ids().nth(1).unwrap();
/// assert!(Binding::new(&dfg, &machine, vec![c0, c0]).is_err());
/// assert!(Binding::new(&dfg, &machine, vec![c1, c0]).is_ok());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Binding {
    of: Vec<ClusterId>,
}

impl std::hash::Hash for Binding {
    /// Hashes the single [`Binding::fingerprint`] word instead of the
    /// assignment vector element by element, so memo tables keyed by
    /// binding (cf. `vliw_binding::Evaluator`) pay one hasher write per
    /// lookup regardless of DFG size.
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u64(self.fingerprint());
    }
}

impl Binding {
    /// Creates a binding from a dense vector (`of[v.index()] = bn(v)`).
    ///
    /// # Errors
    ///
    /// Returns a [`BindingError`] if the vector length is wrong, a cluster
    /// id is out of range, or an operation is bound outside its target
    /// set.
    pub fn new(dfg: &Dfg, machine: &Machine, of: Vec<ClusterId>) -> Result<Self, BindingError> {
        if of.len() != dfg.len() {
            return Err(BindingError::WrongLength {
                got: of.len(),
                expected: dfg.len(),
            });
        }
        for v in dfg.op_ids() {
            let c = of[v.index()];
            if c.index() >= machine.cluster_count() {
                return Err(BindingError::UnknownCluster(c));
            }
            if !machine.supports(c, dfg.op_type(v)) {
                return Err(BindingError::OutsideTargetSet { op: v, cluster: c });
            }
        }
        Ok(Binding { of })
    }

    /// A partial binding with every operation still unassigned; greedy
    /// binders fill it in with [`Binding::bind`]. The sentinel for
    /// "unbound" is internal; query with [`Binding::is_bound`].
    pub fn unbound(dfg: &Dfg) -> Self {
        Binding {
            of: vec![ClusterId::from_index(Self::UNBOUND); dfg.len()],
        }
    }

    const UNBOUND: usize = u32::MAX as usize;

    /// `bn(v)`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range or not yet bound.
    #[inline]
    pub fn cluster_of(&self, v: OpId) -> ClusterId {
        let c = self.of[v.index()];
        assert!(c.index() != Self::UNBOUND, "operation {v} is not bound yet");
        c
    }

    /// Whether `v` has been assigned a cluster.
    #[inline]
    pub fn is_bound(&self, v: OpId) -> bool {
        self.of[v.index()].index() != Self::UNBOUND
    }

    /// `bn(v)` as an `Option`, `None` while unbound.
    #[inline]
    pub fn get(&self, v: OpId) -> Option<ClusterId> {
        let c = self.of[v.index()];
        (c.index() != Self::UNBOUND).then_some(c)
    }

    /// Assigns (or reassigns) `v` to cluster `c` without validation;
    /// callers in the binding algorithms guarantee `c ∈ TS(v)`.
    #[inline]
    pub fn bind(&mut self, v: OpId, c: ClusterId) {
        self.of[v.index()] = c;
    }

    /// Number of operations covered (bound or not).
    #[inline]
    pub fn len(&self) -> usize {
        self.of.len()
    }

    /// Whether the binding covers zero operations.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.of.is_empty()
    }

    /// Whether every operation has been assigned.
    pub fn is_complete(&self) -> bool {
        self.of.iter().all(|c| c.index() != Self::UNBOUND)
    }

    /// Validates a (complete) binding against a machine's target sets.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Binding::new`].
    pub fn validate(&self, dfg: &Dfg, machine: &Machine) -> Result<(), BindingError> {
        let _ = Binding::new(dfg, machine, self.of.clone())?;
        Ok(())
    }

    /// Number of operations bound to each cluster, indexed by cluster
    /// index (unbound operations are not counted).
    pub fn cluster_sizes(&self, cluster_count: usize) -> Vec<usize> {
        let mut sizes = vec![0; cluster_count];
        for c in &self.of {
            if c.index() != Self::UNBOUND {
                sizes[c.index()] += 1;
            }
        }
        sizes
    }

    /// Number of *cut* edges — data dependencies crossing clusters; equals
    /// the transfer count before per-destination deduplication.
    pub fn cut_edges(&self, dfg: &Dfg) -> usize {
        dfg.edges()
            .filter(|&(u, v)| self.of[u.index()] != self.of[v.index()])
            .count()
    }

    /// The underlying dense vector.
    pub fn as_slice(&self) -> &[ClusterId] {
        &self.of
    }

    /// A cheap 64-bit key of the assignment vector (FNV-1a over the
    /// cluster indices). Equal bindings always agree on it, so it can
    /// seed `Hash` and pre-filter memo-table lookups.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for c in &self.of {
            h ^= c.index() as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_dfg::{DfgBuilder, OpType};

    fn setup() -> (Dfg, Machine) {
        let mut b = DfgBuilder::new();
        let m = b.add_op(OpType::Mul, &[]);
        let a = b.add_op(OpType::Add, &[m]);
        let _ = b.add_op(OpType::Add, &[a]);
        (
            b.finish().expect("acyclic"),
            Machine::parse("[2,0|1,1]").expect("machine"),
        )
    }

    fn cl(i: usize) -> ClusterId {
        ClusterId::from_index(i)
    }

    #[test]
    fn new_validates_target_sets() {
        let (dfg, machine) = setup();
        // Mul on cluster 0 (no multiplier) is illegal.
        let err = Binding::new(&dfg, &machine, vec![cl(0), cl(0), cl(0)]).unwrap_err();
        assert!(matches!(err, BindingError::OutsideTargetSet { .. }));
        assert!(Binding::new(&dfg, &machine, vec![cl(1), cl(0), cl(1)]).is_ok());
    }

    #[test]
    fn new_rejects_wrong_length_and_unknown_cluster() {
        let (dfg, machine) = setup();
        assert!(matches!(
            Binding::new(&dfg, &machine, vec![cl(1)]),
            Err(BindingError::WrongLength {
                got: 1,
                expected: 3
            })
        ));
        assert!(matches!(
            Binding::new(&dfg, &machine, vec![cl(1), cl(7), cl(0)]),
            Err(BindingError::UnknownCluster(_))
        ));
    }

    #[test]
    fn unbound_then_bind_incrementally() {
        let (dfg, machine) = setup();
        let mut bn = Binding::unbound(&dfg);
        assert!(!bn.is_complete());
        assert!(!bn.is_bound(OpId::from_index(0)));
        assert_eq!(bn.get(OpId::from_index(0)), None);
        for v in dfg.op_ids() {
            bn.bind(v, cl(1));
        }
        assert!(bn.is_complete());
        assert!(bn.validate(&dfg, &machine).is_ok());
        assert_eq!(bn.cluster_of(OpId::from_index(2)), cl(1));
    }

    #[test]
    #[should_panic(expected = "not bound yet")]
    fn cluster_of_unbound_panics() {
        let (dfg, _) = setup();
        let bn = Binding::unbound(&dfg);
        let _ = bn.cluster_of(OpId::from_index(0));
    }

    #[test]
    fn cluster_sizes_and_cut_edges() {
        let (dfg, machine) = setup();
        let bn = Binding::new(&dfg, &machine, vec![cl(1), cl(0), cl(1)]).expect("valid");
        assert_eq!(bn.cluster_sizes(machine.cluster_count()), vec![1, 2]);
        // Edges m->a and a->last both cross clusters.
        assert_eq!(bn.cut_edges(&dfg), 2);
        let same = Binding::new(&dfg, &machine, vec![cl(1), cl(1), cl(1)]).expect("valid");
        assert_eq!(same.cut_edges(&dfg), 0);
    }

    #[test]
    fn rebinding_overwrites() {
        let (dfg, _) = setup();
        let mut bn = Binding::unbound(&dfg);
        let v = OpId::from_index(1);
        bn.bind(v, cl(0));
        bn.bind(v, cl(1));
        assert_eq!(bn.cluster_of(v), cl(1));
    }

    #[test]
    fn fingerprint_tracks_equality() {
        let (dfg, machine) = setup();
        let a = Binding::new(&dfg, &machine, vec![cl(1), cl(0), cl(1)]).expect("valid");
        let b = Binding::new(&dfg, &machine, vec![cl(1), cl(0), cl(1)]).expect("valid");
        let c = Binding::new(&dfg, &machine, vec![cl(1), cl(1), cl(0)]).expect("valid");
        assert_eq!(a.fingerprint(), b.fingerprint());
        // Not guaranteed in general, but a collision between these two
        // tiny vectors would indicate a broken mixing function.
        assert_ne!(a.fingerprint(), c.fingerprint());
        use std::collections::HashSet;
        let set: HashSet<Binding> = [a, b, c].into_iter().collect();
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn serde_round_trip() {
        let (dfg, machine) = setup();
        let bn = Binding::new(&dfg, &machine, vec![cl(1), cl(0), cl(1)]).expect("valid");
        let json = serde_json::to_string(&bn).expect("serialize");
        let back: Binding = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(bn, back);
    }
}
